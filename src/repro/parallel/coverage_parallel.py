"""Baseline: data-parallel *coverage testing* (related work, paper §6).

The strategy of Graham et al. [14] and Konstantopoulos [19]: a single
master runs the ordinary sequential MDIE search, but each candidate rule's
coverage is computed by the workers on their example partitions and summed
by the master.  The search itself is not parallelised — only
``evalOnExamples`` is.

The task granularity is controlled by ``batch_size``: 1 rule per round is
Konstantopoulos' fine-grained variant (one latency-bound round trip per
candidate — the paper attributes his "poor results" to exactly this);
larger batches approximate Graham et al.  This baseline exists so the
benchmark suite can reproduce the §6 comparison: p²-mdie's medium/high
granularity vs. fine-grained coverage-parallelism.

Workers are the unchanged :class:`~repro.parallel.worker.P2Worker` — the
baseline master simply never sends ``start_pipeline``/``learn_rule'``
tasks, only ``evaluate`` and ``mark_covered``.  Under a fault plan the
evaluation rounds run through the self-healing collectives instead, and
the master checkpoints its search state (seed-pool masks + RNG) at epoch
boundaries so ``repro resume`` continues it bit-identically.

The same partitioned-coverage idea resurfaces at *query* time in the
service layer: :func:`repro.parallel.partition.shard_spans` splits a
query batch into contiguous spans and
:func:`repro.ilp.coverage.theory_covered_bits` evaluates each span on a
leased engine — see ``repro.service.query``.  Learning-time partitions
shuffle (the paper's random even split); query-time spans stay
contiguous because results must reassemble positionally.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.backend import Backend, fault_injection_scope, resolve_backend
from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.message import Tag
from repro.cluster.network import FAST_ETHERNET, NetworkModel
from repro.cluster.process import ProcContext, SimProcess
from repro.fault.plan import FaultPlan
from repro.fault.recovery import FTMasterMixin, PoolSupervisor
from repro.ilp.bottom import SaturationError, build_bottom, build_bottom_cached
from repro.ilp.config import ILPConfig
from repro.ilp.coverage import coverage_bitset
from repro.ilp.heuristics import is_good, score_rule
from repro.ilp.modes import ModeSet
from repro.ilp.refinement import SearchRule, refinements, start_rule
from repro.logic.clause import Clause, Theory
from repro.logic.engine import Engine
from repro.logic.knowledge import KnowledgeBase
from repro.logic.terms import Term
from repro.parallel.master import EpochLog
from repro.parallel.messages import (
    EvaluateRequest,
    EvaluateResult,
    LoadExamples,
    MarkCovered,
    StartPipeline,
    Stop,
    per_worker_evaluate_requests,
    record_candidate_masks,
)
from repro.parallel import wire
from repro.parallel.p2mdie import (
    P2Result,
    SharedProblem,
    _check_resume,
    _result_from_run,
    _validate_fault_args,
)
from repro.parallel.partition import partition_examples
from repro.parallel.worker import P2Worker
from repro.util.rng import make_rng

__all__ = ["CoverageParallelMaster", "run_coverage_parallel"]


class CoverageParallelMaster(FTMasterMixin, SimProcess):
    """Sequential search, distributed evaluation (rank 0)."""

    def __init__(
        self,
        n_workers: int,
        kb: KnowledgeBase,
        pos: Sequence[Term],
        neg: Sequence[Term],
        modes: ModeSet,
        config: ILPConfig,
        batch_size: int = 1,
        seed: int = 0,
        max_epochs: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        spares: int = 0,
        checkpoint_dir: Optional[str] = None,
        checkpoint_meta: tuple = (),
        resume=None,
    ):
        super().__init__(0)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.n_workers = n_workers
        self.kb = kb
        self.pos = list(pos)
        self.neg = list(neg)
        self.modes = modes
        self.config = config
        self.batch_size = batch_size
        self.seed = seed
        self.max_epochs = max_epochs
        self.fault_plan = fault_plan
        self.ft: Optional[PoolSupervisor] = (
            PoolSupervisor(n_workers, spares=spares, timeout=fault_plan.timeout)
            if fault_plan is not None
            else None
        )
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_meta = tuple(checkpoint_meta)
        self.fault_events: list[str] = []
        self._ft_current_log: Optional[EpochLog] = None
        # rank -> {clause -> (pos_cand, neg_cand)} local candidate masks:
        # every batch rule's parent was evaluated in an earlier round, so
        # inheritance narrows nearly every remote re-evaluation here.
        self._worker_cand: dict[int, dict[Clause, tuple[int, int]]] = {}
        # outputs:
        self.theory = Theory()
        self.epoch_logs: list[EpochLog] = []
        self.remaining = len(pos)
        self._resume = resume
        self._resume_alive: Optional[int] = None
        self._resume_failed = 0
        if resume is not None:
            from repro.fault.checkpoint import epoch_logs_from_records, verify_config

            verify_config(resume, repr(config))
            self.theory = Theory(resume.theory)
            self.epoch_logs = epoch_logs_from_records(resume.epoch_logs)
            self.remaining = resume.remaining
            self._resume_alive = resume.alive_mask
            self._resume_failed = resume.failed_mask

    @property
    def epochs(self) -> int:
        return len(self.epoch_logs)

    def _workers(self) -> list[int]:
        return list(range(1, self.n_workers + 1))

    # -- checkpointing -----------------------------------------------------------
    def _write_checkpoint(self, alive: int, failed: int, rng) -> None:
        if self.checkpoint_dir is None:
            return
        from repro.fault.checkpoint import (
            CHECKPOINT_VERSION,
            CheckpointState,
            checkpoint_path,
            records_from_epoch_logs,
            save_checkpoint,
        )

        os.makedirs(self.checkpoint_dir, exist_ok=True)
        state = CheckpointState(
            version=CHECKPOINT_VERSION,
            algo="covpar",
            seed=self.seed,
            n_workers=self.n_workers,
            total_pos=len(self.pos),
            epoch=self.epochs,
            remaining=max(self.remaining, 0),
            stall=0,
            theory=tuple(self.theory),
            epoch_logs=records_from_epoch_logs(self.epoch_logs),
            alive_mask=alive,
            failed_mask=failed,
            rng_state=rng.getstate(),
            config_sig=repr(self.config),
            meta=self.checkpoint_meta,
        )
        save_checkpoint(checkpoint_path(self.checkpoint_dir, self.epochs), state)

    def _eval_round(self, ctx: ProcContext, batch: list[SearchRule]):
        clauses = [r.clause for r in batch]
        if self.ft is not None:
            totals = yield from self._ft_eval_round(ctx, clauses)
            return totals
        rules = tuple(clauses)
        parents: Optional[tuple] = None
        if self.config.coverage_inheritance:
            ptuple = tuple(r.parent for r in batch)
            if any(p is not None for p in ptuple):
                parents = ptuple
        requests = per_worker_evaluate_requests(rules, parents, self._workers(), self._worker_cand)
        if requests is None:
            yield ctx.bcast(EvaluateRequest(rules=rules), tag=Tag.EVALUATE, dsts=self._workers())
        else:
            for k, req in requests.items():
                yield ctx.send(k, req, tag=Tag.EVALUATE)
        totals = [[0, 0] for _ in clauses]
        for _ in self._workers():
            msg = yield ctx.recv(tag=Tag.RESULT)
            res: EvaluateResult = msg.payload
            record_candidate_masks(self._worker_cand, clauses, res)
            for i, rs in enumerate(res.stats):
                totals[i][0] += rs.pos
                totals[i][1] += rs.neg
        yield ctx.compute(len(clauses) + 1, label="aggregate")
        return totals

    # -- fault-tolerant history ---------------------------------------------------
    def _ft_history(self):
        completed = tuple(tuple(log.accepted) for log in self.epoch_logs)
        current = self._ft_current_log.accepted if self._ft_current_log is not None else ()
        # Coverage-parallel workers only ever evaluate — the master owns
        # the seed pool — so replay is kills only, never seed draws.
        return (completed, tuple(current), False, False, self.epochs + 1)

    def run(self, ctx: ProcContext):
        ft = self.ft is not None
        if ft:
            self._ft_init()
        for k in self._workers():
            if self._resume is not None:
                # The epoch-boundary adoption payload doubles as the
                # resume loader (kills-only replay for covpar workers).
                yield ctx.send(k, self._ft_adopt_payload(k), tag=Tag.LOAD_EXAMPLES)
            else:
                yield ctx.send(k, LoadExamples(partition_id=k), tag=Tag.LOAD_EXAMPLES)

        engine = Engine(self.kb, self.config.engine_budget(), kernel=self.config.coverage_kernel)
        rng = make_rng(self.seed, "covpar")
        alive = (1 << len(self.pos)) - 1
        failed = 0
        if self._resume is not None:
            if self._resume.rng_state is not None:
                rng.setstate(self._resume.rng_state)
            alive = self._resume_alive if self._resume_alive is not None else alive
            failed = self._resume_failed

        while self.remaining > 0:
            if self.max_epochs is not None and self.epochs >= self.max_epochs:
                break
            if ft:
                yield from self._ft_admit_joins(ctx, self.epochs + 1)
            candidates = alive & ~failed
            idxs = [i for i in range(len(self.pos)) if (candidates >> i) & 1]
            if not idxs:
                break
            i = rng.choice(idxs) if self.config.select_seed_randomly else idxs[0]
            log = EpochLog(epoch=self.epochs + 1, bag_size=0)
            self._ft_current_log = log
            # Masks only serve parent->child narrowing within one seed's
            # search; dropping them per epoch bounds the master's memory.
            self._worker_cand.clear()

            ops0 = engine.total_ops
            saturate = build_bottom_cached if self.config.saturation_cache else build_bottom
            try:
                bottom = saturate(self.pos[i], engine, self.modes, self.config)
            except SaturationError:
                bottom = None
            yield ctx.compute(engine.total_ops - ops0, label="saturate")
            if bottom is None:
                failed |= 1 << i
                self.epoch_logs.append(log)
                self._ft_current_log = None
                self._write_checkpoint(alive, failed, rng)
                continue

            # Breadth-first search; evaluation happens remotely in batches.
            queue: list[SearchRule] = [start_rule(bottom)]
            qi = 0
            nodes = 0
            seen: set[Clause] = set()
            best: Optional[tuple[float, SearchRule, int, int]] = None
            while qi < len(queue) and nodes < self.config.max_nodes:
                batch: list[SearchRule] = []
                while qi < len(queue) and len(batch) < self.batch_size and nodes + len(batch) < self.config.max_nodes:
                    r = queue[qi]
                    qi += 1
                    if r.clause in seen:
                        continue
                    seen.add(r.clause)
                    batch.append(r)
                if not batch:
                    break
                nodes += len(batch)
                log.bag_size += len(batch)
                totals = yield from self._eval_round(ctx, batch)
                for r, (pcount, ncount) in zip(batch, totals):
                    score = score_rule(pcount, ncount, len(r.clause.body) + 1, self.config)
                    if r.clause.body and is_good(pcount, ncount, self.config):
                        if best is None or (score, -len(r.clause.body)) > (best[0], -len(best[1].clause.body)):
                            best = (score, r, pcount, ncount)
                    if pcount >= self.config.min_pos:
                        queue.extend(refinements(r, bottom, self.config))

            if best is None:
                failed |= 1 << i
                self.epoch_logs.append(log)
                self._ft_current_log = None
                if ft:
                    yield from self._ft_epoch_pulse(ctx, log)
                self._write_checkpoint(alive, failed, rng)
                continue

            _, rule, pcount, _ = best
            self.theory.add(rule.clause)
            log.accepted.append(rule.clause)
            log.pos_covered = pcount
            self.remaining -= pcount
            dsts = self.ft.serving_hosts() if ft else self._workers()
            yield ctx.bcast(MarkCovered(rule=rule.clause), tag=Tag.MARK_COVERED, dsts=dsts)
            # Master-side alive view: it owns the seed pool, so it tracks
            # global coverage with one local evaluation (charged).
            ops0 = engine.total_ops
            bits = coverage_bitset(engine, rule.clause, self.pos)
            yield ctx.compute(engine.total_ops - ops0, label="mark_covered")
            alive &= ~bits
            failed &= alive
            self.epoch_logs.append(log)
            self._ft_current_log = None
            if ft:
                yield from self._ft_epoch_pulse(ctx, log)
            self._write_checkpoint(alive, failed, rng)

        dsts = self.ft.hosts if ft else self._workers()
        yield ctx.bcast(Stop(), tag=Tag.STOP, dsts=dsts)


def run_coverage_parallel(
    kb: KnowledgeBase,
    pos: Sequence[Term],
    neg: Sequence[Term],
    modes: ModeSet,
    config: ILPConfig,
    p: int,
    batch_size: int = 1,
    seed: int = 0,
    network: NetworkModel = FAST_ETHERNET,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    max_epochs: Optional[int] = None,
    backend: Union[Backend, str, None] = None,
    fault_plan: Optional[FaultPlan] = None,
    spares: int = 0,
    checkpoint_dir: Optional[str] = None,
    checkpoint_meta: tuple = (),
    resume=None,
) -> P2Result:
    """Run the coverage-parallel baseline; returns the same artifact type
    as :func:`repro.parallel.p2mdie.run_p2mdie` so harness code can compare
    them directly."""
    plan = _validate_fault_args(fault_plan, spares, p)
    _check_resume(resume, "covpar", p, seed)
    rng = make_rng(seed, "partition")
    partitions = partition_examples(pos, neg, p, rng)
    shared = SharedProblem(kb, partitions, modes, config)
    master = CoverageParallelMaster(
        n_workers=p,
        kb=kb,
        pos=pos,
        neg=neg,
        modes=modes,
        config=config,
        batch_size=batch_size,
        seed=seed,
        max_epochs=max_epochs,
        fault_plan=plan,
        spares=spares,
        checkpoint_dir=checkpoint_dir,
        checkpoint_meta=checkpoint_meta,
        resume=resume,
    )
    workers = [P2Worker(rank, shared, p, seed=seed) for rank in range(1, p + spares + 1)]
    bk = resolve_backend(backend, network=network, cost_model=cost_model, fault_plan=plan)
    with wire.configured(config.wire_codec), fault_injection_scope(bk, plan):
        run = bk.run([master, *workers])
    return _result_from_run(run)

"""Pyrimidines-like synthetic dataset (pairwise structure–activity ranking).

The real pyrimidines dataset [King et al. 92] learns ``great(D1, D2)`` —
drug D1 binds dihydrofolate reductase more strongly than D2 — from the
substituents at three positions of the pyrimidine ring and their chemical
properties.  This generator mirrors that structure:

* each drug has one substituent per position (p3, p4, p5), drawn from a
  catalogue of groups;
* each group has fixed discrete property levels (polarity, size,
  flexibility, 0..2);
* a hidden activity score weights polarity at p3 most, then size at p4;
* ``great(hi, lo)`` pairs are positives, reversed pairs negatives, with a
  margin so the planted comparative rules
  (``great(D1,D2) :- subst(D1,p3,S), subst(D2,p3,T), polar_gt(S,T)``)
  hold crisply; a small fraction of labels is flipped as noise.

Table 1 cardinality at paper scale: 848+/764-.
"""

from __future__ import annotations

import itertools

from repro.datasets.base import Dataset, register_dataset
from repro.ilp.config import ILPConfig
from repro.ilp.modes import ModeSet
from repro.logic.knowledge import KnowledgeBase
from repro.logic.terms import atom
from repro.util.rng import make_rng

__all__ = ["make_pyrimidines"]

_POSITIONS = ("p3", "p4", "p5")
# group -> (polar, size, flex) levels in 0..2
_GROUPS = {
    "h": (0, 0, 0),
    "ch3": (0, 1, 1),
    "c2h5": (0, 2, 2),
    "oh": (2, 0, 0),
    "och3": (2, 1, 1),
    "nh2": (2, 0, 1),
    "cl": (1, 1, 0),
    "br": (1, 2, 0),
    "cf3": (1, 2, 1),
    "no2": (2, 1, 0),
}
_WEIGHTS = {"p3": 5.0, "p4": 2.0, "p5": 1.0}  # polarity weights
_SIZE_WEIGHT = 1.5  # size at p4


def _activity(groups: dict[str, str]) -> float:
    score = 0.0
    for pos in _POSITIONS:
        polar, size, flex = _GROUPS[groups[pos]]
        score += _WEIGHTS[pos] * polar
    score += _SIZE_WEIGHT * _GROUPS[groups["p4"]][1]
    return score


@register_dataset("pyrimidines")
def make_pyrimidines(
    seed: int = 0,
    scale: str = "small",
    n_pos: int | None = None,
    n_neg: int | None = None,
    margin: float = 1.5,
    label_noise: float = 0.03,
) -> Dataset:
    """Generate a pyrimidines-like ranking problem (848+/764- at
    ``scale="paper"``, 60+/52- at ``"small"``)."""
    if n_pos is None or n_neg is None:
        n_pos, n_neg = (848, 764) if scale == "paper" else (60, 52)
    rng = make_rng(seed, "pyrimidines")
    kb = KnowledgeBase()

    # Grow the drug pool until the margin-qualifying ordered pairs cover the
    # quotas with slack (the qualifying fraction depends on the random
    # property draws, so we check the actual count rather than estimate it).
    group_names = sorted(_GROUPS)
    drugs: dict[str, dict[str, str]] = {}

    def qualifying_pairs() -> list[tuple[str, str]]:
        names = sorted(drugs)
        return [
            (a, b)
            for a, b in itertools.permutations(names, 2)
            if _activity(drugs[a]) > _activity(drugs[b]) + margin
        ]

    n_drugs = max(8, int((2.5 * (n_pos + n_neg)) ** 0.5) + 1)
    while True:
        for d in range(len(drugs), n_drugs):
            name = f"d{d}"
            drugs[name] = {pos: rng.choice(group_names) for pos in _POSITIONS}
        if len(qualifying_pairs()) >= int(1.2 * (n_pos + n_neg)):
            break
        if n_drugs > 40 * (1 + n_pos + n_neg):  # pragma: no cover - defensive
            raise RuntimeError("pyrimidines generator cannot satisfy quotas")
        n_drugs += max(2, n_drugs // 4)

    for name, groups in drugs.items():
        for pos in _POSITIONS:
            sub = f"{name}_{pos}"
            kb.add_fact(atom("subst", name, pos, sub))
            kb.add_fact(atom("group", sub, groups[pos]))
            polar, size, flex = _GROUPS[groups[pos]]
            kb.add_fact(atom("polar", sub, polar))
            kb.add_fact(atom("size", sub, size))
            kb.add_fact(atom("flex", sub, flex))

    # Comparative background relations over substituent instances.
    subs = [(f"{d}_{pos}", _GROUPS[g[pos]]) for d, g in drugs.items() for pos in _POSITIONS]
    for (s1, (pol1, sz1, fl1)), (s2, (pol2, sz2, fl2)) in itertools.permutations(subs, 2):
        if pol1 > pol2:
            kb.add_fact(atom("polar_gt", s1, s2))
        if sz1 > sz2:
            kb.add_fact(atom("size_gt", s1, s2))
        if fl1 > fl2:
            kb.add_fact(atom("flex_gt", s1, s2))

    # Pairwise examples with a decision margin.
    pairs = qualifying_pairs()
    rng.shuffle(pairs)
    pos, neg = [], []
    for hi, lo in pairs:
        flip = label_noise > 0 and rng.random() < label_noise
        if not flip and len(pos) < n_pos:
            pos.append(atom("great", hi, lo))
        elif len(neg) < n_neg:
            neg.append(atom("great", lo, hi))
        if len(pos) >= n_pos and len(neg) >= n_neg:
            break
    if len(pos) < n_pos or len(neg) < n_neg:  # pragma: no cover - defensive
        raise RuntimeError(
            f"pyrimidines generator met only {len(pos)}+/{len(neg)}- of "
            f"{n_pos}+/{n_neg}-; increase n_drugs or lower margin"
        )

    modes = ModeSet(
        [
            "modeh(1, great(+drug, +drug))",
            "modeb(*, subst(+drug, #pos, -sub))",
            "modeb(1, polar(+sub, #lvl))",
            "modeb(1, size(+sub, #lvl))",
            "modeb(1, flex(+sub, #lvl))",
            "modeb(1, group(+sub, #grp))",
            "modeb(1, polar_gt(+sub, +sub))",
            "modeb(1, size_gt(+sub, +sub))",
            "modeb(1, flex_gt(+sub, +sub))",
        ]
    )
    config = ILPConfig(
        max_clause_length=3,
        var_depth=2,
        recall=3,
        noise=max(1, round(0.04 * n_neg)),
        min_pos=2,
        max_nodes=350,
        max_bottom_literals=45,
        pipeline_width=10,
    )
    return Dataset(
        name="pyrimidines",
        kb=kb,
        pos=pos,
        neg=neg,
        modes=modes,
        config=config,
        target_description=(
            "great(D1,D2) :- subst(D1,p3,S), subst(D2,p3,T), polar_gt(S,T).  (and "
            "weaker variants at p4/size)"
        ),
    )

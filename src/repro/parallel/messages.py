"""Task payloads exchanged by the P²-MDIE master and workers.

These are the paper's worker tasks (Fig. 6) plus the inter-stage pipeline
message (Fig. 7 line 17).  All payloads are plain picklable dataclasses;
their marshalled size — the compact wire encoding of
:mod:`repro.parallel.wire` when enabled, their pickled size otherwise —
is what the Table 4 communication accounting charges.

Design note: per §4.1 the training data itself is *not* shipped — "we
assumed ... the data can be shared by all processors, through a
distributed file system".  :class:`LoadExamples` therefore carries only
the partition id; the simulated shared filesystem is
:class:`repro.parallel.p2mdie.SharedProblem`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ilp.bottom import BottomClause
from repro.ilp.refinement import SearchRule
from repro.logic.clause import Clause

__all__ = [
    "LoadExamples",
    "LoadData",
    "StartPipeline",
    "PipelineTask",
    "PipelineRules",
    "EvaluateRequest",
    "EvaluateResult",
    "SampledEvaluateRequest",
    "SampledEvaluateResult",
    "MarkCovered",
    "GatherExamples",
    "ExamplesReport",
    "Repartition",
    "Stop",
    "RuleStats",
    "per_worker_evaluate_requests",
    "record_candidate_masks",
    "Ping",
    "Pong",
    "AdoptWorker",
    "RestartPipeline",
    "UpdateRouting",
    "FTEvaluateRequest",
    "FTEvaluateResult",
    "FTPipelineTask",
    "FTPipelineRules",
]


@dataclass(frozen=True)
class LoadExamples:
    """'Load your subset' notification (data comes from the shared FS)."""

    partition_id: int


@dataclass(frozen=True)
class LoadData:
    """Ship the training data itself (no shared filesystem, §4.1).

    "Obviously, if file sharing is not possible one needs to exchange
    messages containing the referred data."  This message carries one
    worker's example subset plus the full background knowledge as terms,
    so the one-time distribution cost is measured rather than assumed
    ("Example data is loaded only once, hence the transmission cost
    should be low in both approaches").
    """

    pos: tuple
    neg: tuple
    facts: tuple
    rules: tuple


@dataclass(frozen=True)
class StartPipeline:
    """Start a pipeline rooted at the receiving worker (Fig. 6)."""

    width: Optional[int]  # None = nolimit


@dataclass(frozen=True)
class PipelineTask:
    """``learn_rule'(⊥e, step, w, S)`` shipped to the next stage (Fig. 7).

    ``bottom`` is None when the originating worker had no usable seed (its
    positives were exhausted); such pipelines pass through unchanged so the
    master still receives exactly ``p`` result sets.
    """

    bottom: Optional[BottomClause]
    step: int
    width: Optional[int]
    rules: tuple[SearchRule, ...]
    origin: int  # rank that seeded this pipeline


@dataclass(frozen=True)
class PipelineRules:
    """Final rules of one pipeline, delivered to the master."""

    origin: int
    rules: tuple[SearchRule, ...]


@dataclass(frozen=True)
class EvaluateRequest:
    """Master → workers: evaluate these rules on your local subset.

    ``candidates`` (optional, per rule) ships ``(pos_mask, neg_mask)``
    candidate bitsets *in the receiving worker's local example numbering*:
    sound upper bounds on what each rule can cover there, echoed back from
    masks the worker itself reported for the rule's parent in an earlier
    round.  A worker whose evaluation cache no longer holds the parent
    still skips the provably-uncovered examples.  (Parent clauses
    themselves never ship — refinement only appends literals, so each
    side derives the lineage structurally.)
    """

    rules: tuple[Clause, ...]
    candidates: Optional[tuple] = None


@dataclass(frozen=True)
class RuleStats:
    """One rule's local evaluation: alive-positive and negative cover.

    ``pos_cand``/``neg_cand`` are the rule's *refinement candidate masks*
    (local covered|budget-exhausted bitsets): sound upper bounds on what
    any specialisation of the rule can cover on this worker's subset.  The
    master stores them per (worker, clause) and ships them back with later
    evaluation requests.
    """

    pos: int
    neg: int
    pos_cand: int = 0
    neg_cand: int = 0


@dataclass(frozen=True)
class EvaluateResult:
    """Worker → master: per-rule local stats, in request order."""

    rank: int
    stats: tuple[RuleStats, ...]


def per_worker_evaluate_requests(
    rules: tuple,
    parents: Optional[tuple],
    workers: list[int],
    worker_cand: dict,
) -> Optional[dict]:
    """Build the per-worker :class:`EvaluateRequest` payloads of one
    evaluation round, or None when a plain broadcast suffices (no worker
    has candidate masks to echo).

    ``parents`` is the per-rule lineage used to look masks up;
    ``worker_cand`` maps rank -> {clause -> (pos_cand, neg_cand)} local
    masks previously reported by that worker.  Shared by every master
    that runs evaluation rounds.
    """
    if parents is None:
        return None
    out: dict = {}
    plain = EvaluateRequest(rules=rules)
    any_masks = False
    for k in workers:
        wc = worker_cand.get(k)
        cands: Optional[tuple] = None
        if wc:
            ctuple = tuple(wc.get(p) if p is not None else None for p in parents)
            if any(c is not None for c in ctuple):
                cands = ctuple
                any_masks = True
        out[k] = EvaluateRequest(rules=rules, candidates=cands) if cands is not None else plain
    return out if any_masks else None


def record_candidate_masks(worker_cand: dict, clauses: list, result: "EvaluateResult") -> None:
    """Store the candidate masks one worker reported for ``clauses``."""
    wc = worker_cand.setdefault(result.rank, {})
    for i, rs in enumerate(result.stats):
        wc[clauses[i]] = (rs.pos_cand, rs.neg_cand)


@dataclass(frozen=True)
class SampledEvaluateRequest:
    """Master → workers: score these rules on your *stratified sample*.

    The screening half of a sampled evaluation round (see
    :mod:`repro.ilp.sampling`): each worker evaluates the rules only on
    its local per-shard sample (masks are derived deterministically from
    the run seed on both sides — they never ship) and replies with
    :class:`SampledEvaluateResult`.  Rules the pooled bounds cannot rule
    out get a normal exact :class:`EvaluateRequest` round afterwards, so
    acceptance always runs on exact statistics.
    """

    rules: tuple[Clause, ...]


@dataclass(frozen=True)
class SampledEvaluateResult:
    """Worker → master: per-rule sampled stats, in request order.

    ``stats`` holds :class:`repro.ilp.sampling.SampledStats` values; the
    master merges them across workers (per-shard strata pool into one
    stratified sample).
    """

    rank: int
    stats: tuple


@dataclass(frozen=True)
class MarkCovered:
    """Master → workers: rule accepted; retract covered positives."""

    rule: Clause


@dataclass(frozen=True)
class GatherExamples:
    """Master → workers: report your remaining examples (repartitioning).

    Part of the optional inter-epoch repartitioning extension — the
    alternative §4.1 considers and rejects "mainly because the high
    communication cost of repartitioning".  Implemented so that cost can
    be measured rather than assumed.
    """


@dataclass(frozen=True)
class ExamplesReport:
    """Worker → master: the local alive positives and all negatives."""

    rank: int
    pos: tuple
    neg: tuple


@dataclass(frozen=True)
class Repartition:
    """Master → one worker: replace your subset with these examples.

    Unlike :class:`LoadExamples` this ships the example terms themselves
    (the shared-filesystem shortcut does not apply to a mid-run reshuffle),
    so its pickled size is the repartitioning cost the paper worried about.
    """

    pos: tuple
    neg: tuple


@dataclass(frozen=True)
class Stop:
    """Master → workers: learning finished."""


# -- fault-tolerance protocol (repro.fault) ---------------------------------------
#
# None of the messages below is ever sent unless a non-empty
# :class:`repro.fault.plan.FaultPlan` activates the self-healing protocol
# (or a run is resumed from a checkpoint, which reuses AdoptWorker), so
# fault-free runs keep the exact PR 3 message flow and byte counts.


@dataclass(frozen=True)
class Ping:
    """Master → host: heartbeat probe (failure detection + epoch pulse)."""

    token: int


@dataclass(frozen=True)
class Pong:
    """Host → master: liveness reply, carrying the host's aggregate
    evaluation-cache counters (summed over hosted logical workers) so
    recovery-induced cache invalidation is observable per epoch."""

    rank: int
    token: int
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass(frozen=True)
class AdoptWorker:
    """Master → host: reconstruct logical worker ``virtual_rank`` here.

    The host reads partition ``partition_id`` from the shared filesystem
    and *replays* the logical worker's deterministic history — one seed
    draw per epoch (when ``draw_seeds``) and the kills of every accepted
    rule — so the rebuilt shard is bit-identical to the lost worker's
    state at the current protocol point.  ``completed`` holds the
    accepted rules of each finished epoch; ``current`` the rules accepted
    so far in epoch ``epoch``; ``draw_current`` says whether the
    in-progress epoch's seed draw already happened in the fault-free
    timeline (mid-epoch adoption) or not (epoch-boundary migration).
    Also the initial load message of a checkpoint-resumed run.
    """

    virtual_rank: int
    partition_id: int
    epoch: int
    completed: tuple
    current: tuple
    draw_seeds: bool = True
    draw_current: bool = False


@dataclass(frozen=True)
class RestartPipeline:
    """Master → host: (re)start the pipeline rooted at logical worker
    ``origin`` for ``epoch``.  The fault-tolerant replacement for
    :class:`StartPipeline`: idempotent (a shard reuses its remembered
    seed/bottom for the epoch), so lost pipelines can be reissued."""

    origin: int
    width: Optional[int]
    epoch: int


@dataclass(frozen=True)
class UpdateRouting:
    """Master → hosts: logical-worker → physical-host table.

    Hosts use it to forward pipeline stages and drop logical workers
    migrated elsewhere (elastic shrink of their own share)."""

    routing: tuple  # ((virtual_rank, host_rank), ...)


@dataclass(frozen=True)
class FTEvaluateRequest:
    """Fault-tolerant :class:`EvaluateRequest`: carries a round id so
    duplicate/stale results (recovery reissues, de-zombied hosts) are
    discarded instead of corrupting totals.  Candidate-mask echoing is
    disabled under fault tolerance — hosts evaluate every hosted shard."""

    round: int
    rules: tuple[Clause, ...]


@dataclass(frozen=True)
class FTEvaluateResult:
    """One logical worker's stats for one evaluation round."""

    round: int
    rank: int  # virtual (logical) rank
    stats: tuple[RuleStats, ...]


@dataclass(frozen=True)
class FTPipelineTask:
    """Fault-tolerant :class:`PipelineTask`: epoch-stamped so tokens of
    an aborted epoch attempt die instead of polluting the next one."""

    epoch: int
    bottom: Optional[BottomClause]
    step: int
    width: Optional[int]
    rules: tuple[SearchRule, ...]
    origin: int


@dataclass(frozen=True)
class FTPipelineRules:
    """Fault-tolerant :class:`PipelineRules` (epoch-stamped)."""

    epoch: int
    origin: int
    rules: tuple[SearchRule, ...]

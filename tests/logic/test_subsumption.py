"""Unit + property tests for θ-subsumption."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.clause import Clause
from repro.logic.parser import parse_clause
from repro.logic.subsumption import (
    reduce_clause,
    strictly_more_general,
    subsume_equivalent,
    theta_subsumes,
)
from repro.logic.terms import Const, Struct, Var


class TestThetaSubsumes:
    def test_identity(self):
        c = parse_clause("p(X) :- q(X).")
        assert theta_subsumes(c, c)

    def test_generalisation(self):
        g = parse_clause("p(X) :- q(X, Y).")
        s = parse_clause("p(a) :- q(a, b), r(a).")
        assert theta_subsumes(g, s)
        assert not theta_subsumes(s, g)

    def test_head_mismatch(self):
        assert not theta_subsumes(parse_clause("p(a)."), parse_clause("p(b)."))

    def test_empty_body_subsumes_everything_same_head(self):
        g = parse_clause("p(X).")
        s = parse_clause("p(a) :- q(a), r(b).")
        assert theta_subsumes(g, s)

    def test_shared_variable_constraint(self):
        g = parse_clause("p(X) :- q(X, X).")
        s1 = parse_clause("p(a) :- q(a, a).")
        s2 = parse_clause("p(a) :- q(a, b).")
        assert theta_subsumes(g, s1)
        assert not theta_subsumes(g, s2)

    def test_multi_literal_matching_needs_backtracking(self):
        # First candidate match for q(X,Y) must be revised to satisfy r(Y).
        g = parse_clause("p(X) :- q(X, Y), r(Y).")
        s = parse_clause("p(a) :- q(a, b), q(a, c), r(c).")
        assert theta_subsumes(g, s)

    def test_longer_can_subsume_shorter(self):
        # classic: C with repeated literals subsumes its reduction
        c = parse_clause("p(X) :- q(X, Y), q(X, Z).")
        d = parse_clause("p(X) :- q(X, Y).")
        assert theta_subsumes(c, d)
        assert theta_subsumes(d, c)
        assert subsume_equivalent(c, d)

    def test_strictly_more_general(self):
        g = parse_clause("p(X) :- q(X, Y).")
        s = parse_clause("p(X) :- q(X, Y), r(Y).")
        assert strictly_more_general(g, s)
        assert not strictly_more_general(s, g)


class TestReduce:
    def test_removes_redundant_literal(self):
        c = parse_clause("p(X) :- q(X, Y), q(X, Z).")
        assert len(reduce_clause(c).body) == 1

    def test_keeps_needed_literals(self):
        c = parse_clause("p(X) :- q(X, Y), r(Y).")
        assert reduce_clause(c) == c

    def test_reduction_is_equivalent(self):
        c = parse_clause("p(X) :- q(X, A), q(X, B), q(X, C), r(C).")
        r = reduce_clause(c)
        assert subsume_equivalent(c, r)
        assert len(r.body) <= len(c.body)


# ---- property-based: refinement chains are generality chains ----------------

_preds = ("q", "r", "s")


@st.composite
def _clause_chain(draw):
    """A clause and an extension of it by extra literals."""
    head = Struct("p", (Var("X"),))
    n = draw(st.integers(0, 3))
    body = []
    vars_ = [Var("X")]
    for i in range(n):
        pred = draw(st.sampled_from(_preds))
        v = Var(f"V{i}")
        body.append(Struct(pred, (draw(st.sampled_from(vars_)), v)))
        vars_.append(v)
    extra_pred = draw(st.sampled_from(_preds))
    extra = Struct(extra_pred, (draw(st.sampled_from(vars_)), Const("k")))
    return Clause(head, tuple(body)), Clause(head, tuple(body) + (extra,))


@given(_clause_chain())
@settings(max_examples=100, deadline=None)
def test_adding_literal_specialises(pair):
    """C θ-subsumes C + extra literal (the refinement invariant)."""
    general, special = pair
    assert theta_subsumes(general, special)


@given(_clause_chain())
@settings(max_examples=100, deadline=None)
def test_subsumption_transitive_along_chain(pair):
    general, special = pair
    head_only = Clause(general.head, ())
    assert theta_subsumes(head_only, general)
    assert theta_subsumes(head_only, special)


class TestEquivalenceInvariance:
    """Satellite regression: subsume_equivalent must be invariant under
    variable renaming and body-literal reordering (and its fingerprint
    fast path must agree with the full matcher)."""

    CASES = [
        ("p(X) :- q(X, Y), r(Y).", "p(A) :- q(A, B), r(B)."),
        ("p(X) :- q(X, Y), r(Y).", "p(A) :- r(B), q(A, B)."),
        ("p(X) :- s(X), q(X, Y), r(Y, z).", "p(U) :- r(V, z), q(U, V), s(U)."),
        ("p(X, Y) :- q(X), q(Y).", "p(B, A) :- q(A), q(B)."),
    ]

    @pytest.mark.parametrize("a,b", CASES)
    def test_variants_are_equivalent(self, a, b):
        ca, cb = parse_clause(a), parse_clause(b)
        assert subsume_equivalent(ca, cb)
        assert subsume_equivalent(cb, ca)
        # the slow path agrees with the fingerprint short-circuit
        assert theta_subsumes(ca, cb) and theta_subsumes(cb, ca)

    def test_non_equivalent_unchanged(self):
        g = parse_clause("p(X) :- q(X, Y).")
        s = parse_clause("p(a) :- q(a, b), r(a).")
        assert not subsume_equivalent(g, s)
        assert not subsume_equivalent(
            parse_clause("p(X) :- q(X)."), parse_clause("p(X) :- r(X).")
        )

    def test_reduce_clause_memoized_consistent(self):
        c = parse_clause("p(X) :- q(X, Y), q(X, Z).")
        r1 = reduce_clause(c)
        r2 = reduce_clause(c)
        assert r1 is r2  # memo hit
        assert len(r1.body) == 1


class TestMatcherSoundness:
    """Regressions for the one-way matcher: a pattern variable bound to a
    target variable must never be rebound (clauses under comparison may
    share variable names, so self-bindings like X -> X are real bindings,
    not unbound chains)."""

    def test_chain_does_not_subsume_shorter(self):
        c = parse_clause("p(X) :- q(X, Y), q(Y, Z).")
        d = parse_clause("p(X) :- q(X, Y).")
        assert not theta_subsumes(c, d)
        assert theta_subsumes(d, c)

    def test_chain_clause_is_irreducible(self):
        c = parse_clause("p(X) :- q(X, Y), q(Y, Z).")
        assert reduce_clause(c) == c

    def test_repeated_var_does_not_match_distinct(self):
        a = parse_clause("p(X) :- q(X, X).")
        b = parse_clause("p(X) :- q(X, Y).")
        assert not theta_subsumes(a, b)
        assert theta_subsumes(b, a)
        assert not subsume_equivalent(a, b)

    def test_shared_names_self_equivalence(self):
        c = parse_clause("p(X) :- q(X, Y), q(Y, Z).")
        assert subsume_equivalent(c, c.rename_apart())
        assert theta_subsumes(c, c)

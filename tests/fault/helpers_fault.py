"""Helpers shared by the fault-tolerance tests."""


def run_args(ds):
    return (ds.kb, ds.pos, ds.neg, ds.modes, ds.config)


def log_tuples(res):
    """The comparable core of the epoch logs (excludes FT-only cache
    counters, which fault-free runs don't collect)."""
    return [(l.epoch, l.bag_size, tuple(l.accepted), l.pos_covered) for l in res.epoch_logs]

"""Top-down refinement operator over a bottom clause.

Following Progol's δ operator, the hypothesis space for one seed example is
the set of *subsequences* of the bottom clause's body.  A search node is a
:class:`SearchRule`: the clause so far plus the bottom-body index of the
last literal added.  Refining appends a later literal whose input variables
are already in scope (head variables or outputs of earlier body literals),
so every generated clause is *connected* and executable left-to-right.

Because :class:`SearchRule` carries its refinement state, partially refined
rules can be shipped to another worker (with the same bottom clause) and
refined *further there* — exactly what the paper's pipeline stages do with
``learn_rule'(⊥e, step+1, w, Good)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.ilp.bottom import BottomClause
from repro.ilp.config import ILPConfig
from repro.logic.clause import Clause
from repro.logic.terms import Var, variables_of

__all__ = ["SearchRule", "refinements", "start_rule", "rule_vars_in_scope"]


@dataclass(frozen=True)
class SearchRule:
    """A clause plus its position in the bottom-clause subsequence order.

    ``last_index`` is the bottom-body index of the clause's last literal
    (-1 for the bare head).  Refinements only consider strictly larger
    indices, so each subsequence is generated exactly once.

    ``parent`` is the clause this one was refined from (None for roots and
    pre-lineage rules).  Because specialisation only shrinks coverage, a
    parent's cached coverage bounds the examples a refinement needs to be
    tested on — the lineage travels with the rule, including across
    pipeline stages and in the master's rule bags.
    """

    clause: Clause
    last_index: int = -1
    parent: Optional[Clause] = None

    def __len__(self) -> int:
        return len(self.clause.body)

    def __str__(self) -> str:
        return f"{self.clause} /{self.last_index}"


def start_rule(bottom: BottomClause) -> SearchRule:
    """The most general rule: bare head (the paper's START_RULE)."""
    return SearchRule(bottom.most_general_rule(), -1)


def rule_vars_in_scope(rule: SearchRule, bottom: BottomClause) -> frozenset:
    """Variables usable as inputs by the next literal."""
    scope = set(bottom.head_vars)
    for lit in rule.clause.body:
        scope.update(variables_of(lit))
    return frozenset(scope)


def refinements(rule: SearchRule, bottom: BottomClause, config: ILPConfig) -> Iterator[SearchRule]:
    """One-literal refinements of ``rule`` w.r.t. ``bottom``.

    Yields children in bottom-body order (deterministic).  No children are
    produced once the clause has ``max_clause_length`` body literals.
    """
    if len(rule.clause.body) >= config.max_clause_length:
        return
    scope = rule_vars_in_scope(rule, bottom)
    for j in range(rule.last_index + 1, len(bottom.literals)):
        bl = bottom.literals[j]
        if bl.input_vars <= scope:
            yield SearchRule(rule.clause.with_extra_literal(bl.literal), j, parent=rule.clause)

"""Pluggable execution backends for the parallel strategies.

The master/worker generators in :mod:`repro.parallel` yield syscalls to
whichever :class:`~repro.backend.base.Backend` drives them:

=========  ===============================================  ==============
name       substrate                                        ``seconds``
=========  ===============================================  ==============
``sim``    discrete-event VirtualCluster (deterministic)    virtual time
``local``  real ``multiprocessing`` processes over pipes    wall clock
``mpi``    real MPI communicator via mpi4py                 wall clock
=========  ===============================================  ==============

Use :func:`make_backend` to build one by name, or
:func:`resolve_backend` when accepting either a name or a ready instance
(the pattern every ``run_*`` front-end uses).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.backend.base import (
    Backend,
    BackendError,
    BackendRun,
    BackendTimeoutError,
    BackendUnavailableError,
    ExecutionContext,
    drive,
)
from repro.backend.local import LocalContext, LocalProcessBackend
from repro.backend.sim import SimBackend

__all__ = [
    "Backend",
    "BackendError",
    "BackendRun",
    "BackendTimeoutError",
    "BackendUnavailableError",
    "ExecutionContext",
    "drive",
    "SimBackend",
    "LocalContext",
    "LocalProcessBackend",
    "BACKEND_NAMES",
    "make_backend",
    "resolve_backend",
]

#: names accepted by :func:`make_backend` (and the CLI's ``--backend``).
BACKEND_NAMES = ("sim", "local", "mpi")


def make_backend(
    name: str,
    *,
    network=None,
    cost_model=None,
    record_trace: bool = False,
    timeout: Optional[float] = None,
    start_method: Optional[str] = None,
) -> Backend:
    """Build a backend by registry name.

    Substrate-specific options are applied where they make sense and
    ignored elsewhere (``network``/``cost_model`` only shape the sim;
    ``timeout``/``start_method`` only the local backend).
    """
    if name == "sim":
        from repro.cluster.costmodel import DEFAULT_COST_MODEL
        from repro.cluster.network import FAST_ETHERNET

        return SimBackend(
            network=network if network is not None else FAST_ETHERNET,
            cost_model=cost_model if cost_model is not None else DEFAULT_COST_MODEL,
            record_trace=record_trace,
        )
    if name == "local":
        return LocalProcessBackend(
            record_trace=record_trace, timeout=timeout, start_method=start_method
        )
    if name == "mpi":
        from repro.backend.mpi import MPIBackend

        return MPIBackend(record_trace=record_trace)
    raise ValueError(f"unknown backend {name!r}; known: {BACKEND_NAMES}")


def resolve_backend(
    backend: Union[Backend, str, None],
    *,
    network=None,
    cost_model=None,
    record_trace: bool = False,
    timeout: Optional[float] = None,
) -> Backend:
    """Accept a Backend instance, a registry name, or None (→ sim)."""
    if backend is None:
        backend = "sim"
    if isinstance(backend, Backend):
        return backend
    return make_backend(
        backend,
        network=network,
        cost_model=cost_model,
        record_trace=record_trace,
        timeout=timeout,
    )

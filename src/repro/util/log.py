"""Structured logging: JSON-lines or key=value text, with bound context.

``REPRO_LOG=json`` emits one JSON object per line (machine-ingestable);
``REPRO_LOG=text`` (the default) emits a human ``LEVEL logger event
k=v ...`` line.  Both carry whatever fields are bound in the ambient
:func:`log_context` — the service tier binds ``request_id`` at transport
read time and the scheduler binds ``job_id``, so every line about one
request or job correlates by grep.

Loggers write to stderr so they never pollute stdout result framing.
"""

from __future__ import annotations

import contextvars
import json
import os
import sys
import time
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "StructuredLogger",
    "get_logger",
    "log_context",
    "log_format",
    "set_log_format",
    "log_level",
    "set_log_level",
]

_LEVELS = ("debug", "info", "warning", "error")
_RANK = {name: i for i, name in enumerate(_LEVELS)}

_level_override: Optional[str] = None


def log_level() -> str:
    """Minimum emitted level: REPRO_LOG_LEVEL env (default ``info``)."""
    if _level_override is not None:
        return _level_override
    lvl = os.environ.get("REPRO_LOG_LEVEL", "info").lower()
    return lvl if lvl in _LEVELS else "info"


def set_log_level(level: Optional[str]) -> None:
    """Force the threshold in-process; None restores the env default."""
    global _level_override
    if level is not None and level not in _LEVELS:
        raise ValueError(f"log level must be one of {_LEVELS}, not {level!r}")
    _level_override = level

_context: contextvars.ContextVar = contextvars.ContextVar("repro_log_ctx", default=())

_format_override: Optional[str] = None


def log_format() -> str:
    """Active output format: ``"json"`` or ``"text"`` (REPRO_LOG env)."""
    if _format_override is not None:
        return _format_override
    fmt = os.environ.get("REPRO_LOG", "text").lower()
    return "json" if fmt == "json" else "text"


def set_log_format(fmt: Optional[str]) -> None:
    """Force the format in-process; None restores the env default."""
    global _format_override
    if fmt is not None and fmt not in ("json", "text"):
        raise ValueError(f"log format must be 'json' or 'text', not {fmt!r}")
    _format_override = fmt


@contextmanager
def log_context(**fields) -> Iterator[None]:
    """Bind fields (request_id=..., job_id=...) to every log line inside."""
    token = _context.set(_context.get() + tuple(fields.items()))
    try:
        yield
    finally:
        _context.reset(token)


def bound_context() -> dict:
    """The ambient fields bound by enclosing log_context blocks."""
    return dict(_context.get())


class StructuredLogger:
    """Named logger emitting structured lines to a stream (stderr default)."""

    def __init__(self, name: str, stream=None, clock=time.time):
        self.name = name
        self._stream = stream
        self.clock = clock

    @property
    def stream(self):
        return self._stream if self._stream is not None else sys.stderr

    def log(self, level: str, event: str, **fields) -> None:
        if level not in _LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        if _RANK[level] < _RANK[log_level()]:
            return
        record = {"ts": round(self.clock(), 6), "level": level, "logger": self.name, "event": event}
        record.update(bound_context())
        record.update(fields)
        try:
            if log_format() == "json":
                line = json.dumps(record, sort_keys=False, default=str)
            else:
                kv = " ".join(
                    f"{k}={_fmt_value(v)}"
                    for k, v in record.items()
                    if k not in ("ts", "level", "logger", "event")
                )
                line = f"{level.upper():7s} {self.name} {event}" + (f" {kv}" if kv else "")
            print(line, file=self.stream, flush=True)
        except (OSError, ValueError):
            pass  # a closed/broken log stream must never take down the server

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


def _fmt_value(v) -> str:
    s = str(v)
    if " " in s or '"' in s:
        return json.dumps(s)
    return s


_loggers: dict = {}


def get_logger(name: str) -> StructuredLogger:
    """Create-or-get the process-wide logger for *name*."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers[name] = StructuredLogger(name)
    return logger

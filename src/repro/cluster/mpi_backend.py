"""mpi4py port adapter (documentation + optional real-cluster backend).

The simulated :class:`~repro.cluster.process.ProcContext` API was designed
to map one-to-one onto mpi4py's lowercase (pickle-based) methods, so the
P²-MDIE master/worker code can run on a real cluster by swapping the
context object:

==========================  =========================================
simulated                    mpi4py
==========================  =========================================
``yield ctx.send(d, x, t)``  ``comm.send(x, dest=d, tag=TAGS[t])``
``yield ctx.bcast(x, t)``    loop of ``comm.send`` (or ``comm.bcast``)
``m = yield ctx.recv()``     ``comm.recv(source=ANY_SOURCE, ...)``
``yield ctx.compute(ops)``   (no-op — real CPUs charge themselves)
==========================  =========================================

This module provides :class:`MPIContext`, a drop-in context whose methods
*execute immediately* instead of being yielded; :func:`drive_with_mpi`
drives a :class:`~repro.cluster.process.SimProcess` generator against it.
It imports mpi4py lazily and raises a clear error when unavailable (as on
this offline host), so the rest of the library never depends on MPI.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.message import Message, payload_nbytes
from repro.cluster.process import BcastOp, ComputeOp, RecvOp, SendOp, SimProcess

__all__ = ["MPIContext", "drive_with_mpi", "mpi_available"]

_TAG_IDS = {
    "load_examples": 1,
    "start_pipeline": 2,
    "learn_rule'": 3,
    "rules": 4,
    "evaluate": 5,
    "result": 6,
    "mark_covered": 7,
    "stop": 8,
}
_ID_TAGS = {v: k for k, v in _TAG_IDS.items()}


def mpi_available() -> bool:
    try:
        import mpi4py  # noqa: F401

        return True
    except ImportError:
        return False


class MPIContext:
    """Execute ProcContext-style operations on a real MPI communicator."""

    def __init__(self, comm=None):
        if comm is None:
            from mpi4py import MPI  # lazy; raises ImportError offline

            comm = MPI.COMM_WORLD
        self._comm = comm
        self.rank = comm.Get_rank()
        self.n_procs = comm.Get_size()

    # -- syscall constructors (same surface as ProcContext) ---------------------
    def send(self, dst: int, payload: object, tag: str) -> SendOp:
        return SendOp(dst, payload, tag)

    def bcast(self, payload: object, tag: str, dsts=None) -> BcastOp:
        if dsts is None:
            dsts = [r for r in range(self.n_procs) if r != self.rank]
        return BcastOp(tuple(dsts), payload, tag)

    def recv(self, src: Optional[int] = None, tag: Optional[str] = None) -> RecvOp:
        return RecvOp(src, tag)

    def compute(self, ops: int, label: str = "compute") -> ComputeOp:
        return ComputeOp(int(ops), label)

    def execute(self, op):
        """Perform one syscall; returns a Message for receives."""
        if isinstance(op, SendOp):
            self._comm.send(op.payload, dest=op.dst, tag=_TAG_IDS.get(op.tag, 99))
            return None
        if isinstance(op, BcastOp):
            for dst in op.dsts:
                self._comm.send(op.payload, dest=dst, tag=_TAG_IDS.get(op.tag, 99))
            return None
        if isinstance(op, RecvOp):
            from mpi4py import MPI  # noqa: PLC0415 - lazy, only recv needs constants

            src = MPI.ANY_SOURCE if op.src is None else op.src
            tag = MPI.ANY_TAG if op.tag is None else _TAG_IDS.get(op.tag, 99)
            status = MPI.Status()
            payload = self._comm.recv(source=src, tag=tag, status=status)
            return Message(
                src=status.Get_source(),
                dst=self.rank,
                tag=_ID_TAGS.get(status.Get_tag(), str(status.Get_tag())),
                payload=payload,
                nbytes=payload_nbytes(payload),
                send_time=0.0,
                arrival_time=0.0,
                seq=0,
            )
        if isinstance(op, ComputeOp):
            return None  # real CPU time passes by itself
        raise TypeError(f"unknown syscall {op!r}")


def drive_with_mpi(proc: SimProcess, comm=None) -> None:
    """Run a SimProcess generator against a real MPI communicator.

    This is the entry point an ``mpiexec``-launched script would call; it
    is exercised only where mpi4py exists.
    """
    ctx = MPIContext(comm)
    gen = proc.run(ctx)  # SimProcess.run only uses the ctx constructors
    result = None
    try:
        while True:
            op = gen.send(result)
            result = ctx.execute(op)
    except StopIteration:
        return

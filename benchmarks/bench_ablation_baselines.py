"""Ablation (§6) — P²-MDIE vs data-parallel coverage testing.

The related work the paper discusses: Konstantopoulos' fine-grained
coverage parallelism (one clause per round trip — "the smaller granularity
of the parallel tasks may be the justification for the poor results") and
Graham et al.'s batched variant.  This bench quantifies the granularity
effect on the simulated cluster and shows the pipelined algorithm's
advantage.
"""

import pytest

from conftest import SEED, one_shot
from repro.datasets import make_dataset
from repro.ilp import accuracy
from repro.logic import Engine
from repro.parallel import run_coverage_parallel, run_independent, run_p2mdie


@pytest.fixture(scope="module")
def dataset(scale):
    return make_dataset("carcinogenesis", seed=SEED, scale=scale)


@pytest.fixture(scope="module")
def comparison(dataset):
    ds = dataset
    p = 4
    rows = {}
    rows["p2-mdie (W=10)"] = run_p2mdie(
        ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=p, width=10, seed=SEED
    )
    rows["cov-parallel batch=1"] = run_coverage_parallel(
        ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=p, batch_size=1, seed=SEED
    )
    rows["cov-parallel batch=32"] = run_coverage_parallel(
        ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=p, batch_size=32, seed=SEED
    )
    rows["independent (Matsui)"] = run_independent(
        ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=p, seed=SEED
    )
    return rows


def test_ablation_baselines(benchmark, dataset, comparison, table_sink):
    from repro.util.fmt import fmt_float, render_table

    one_shot(benchmark, lambda: None)  # timing lives in the module fixture
    engine = Engine(dataset.kb, dataset.config.engine_budget())
    rows = [
        [
            name,
            fmt_float(r.seconds, 1),
            fmt_float(r.mbytes, 2),
            r.comm.messages,
            r.epochs,
            len(r.theory),
            fmt_float(accuracy(engine, r.theory, dataset.pos, dataset.neg), 1),
        ]
        for name, r in comparison.items()
    ]
    table_sink(
        "ablation_baselines",
        render_table(
            ["strategy", "vtime(s)", "MB", "msgs", "epochs", "rules", "train acc %"],
            rows,
            title="Ablation: parallel ILP strategies from §6 (p=4)",
        ),
    )
    p2 = comparison["p2-mdie (W=10)"]
    fine = comparison["cov-parallel batch=1"]
    coarse = comparison["cov-parallel batch=32"]
    ind = comparison["independent (Matsui)"]
    # granularity effect: fine-grained is slower and chattier than batched
    assert fine.seconds > coarse.seconds
    assert fine.comm.messages > coarse.comm.messages
    # the paper's contribution beats the fine-grained related work
    assert p2.seconds < fine.seconds
    # independent learning communicates least but leaves quality/coverage
    # to a single local view; the pipeline must match or beat its accuracy
    acc_p2 = accuracy(engine, p2.theory, dataset.pos, dataset.neg)
    acc_ind = accuracy(engine, ind.theory, dataset.pos, dataset.neg)
    assert acc_p2 >= acc_ind - 3.0


def test_bench_coverage_parallel(benchmark, scale):
    ds = make_dataset("carcinogenesis", seed=SEED, scale=scale)
    res = one_shot(
        benchmark, run_coverage_parallel, ds.kb, ds.pos, ds.neg, ds.modes, ds.config,
        p=4, batch_size=8, seed=SEED, max_epochs=3,
    )
    assert res.epochs >= 1

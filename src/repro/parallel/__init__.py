"""P²-MDIE: the paper's pipelined data-parallel covering algorithm,
plus the related-work baseline (data-parallel coverage testing)."""

from repro.parallel.coverage_parallel import CoverageParallelMaster, run_coverage_parallel
from repro.parallel.independent import IndependentMaster, IndependentWorker, run_independent
from repro.parallel.master import EpochLog, P2Master
from repro.parallel.messages import (
    EvaluateRequest,
    EvaluateResult,
    LoadExamples,
    MarkCovered,
    PipelineRules,
    PipelineTask,
    RuleStats,
    StartPipeline,
    Stop,
)
from repro.parallel.p2mdie import (
    P2Result,
    SharedProblem,
    WorkerProblem,
    run_p2mdie,
    sequential_seconds,
)
from repro.parallel.partition import Partition, partition_examples
from repro.parallel.worker import MASTER_RANK, P2Worker

__all__ = [
    "CoverageParallelMaster",
    "run_coverage_parallel",
    "IndependentMaster",
    "IndependentWorker",
    "run_independent",
    "EpochLog",
    "P2Master",
    "EvaluateRequest",
    "EvaluateResult",
    "LoadExamples",
    "MarkCovered",
    "PipelineRules",
    "PipelineTask",
    "RuleStats",
    "StartPipeline",
    "Stop",
    "P2Result",
    "SharedProblem",
    "WorkerProblem",
    "run_p2mdie",
    "sequential_seconds",
    "Partition",
    "partition_examples",
    "MASTER_RANK",
    "P2Worker",
]

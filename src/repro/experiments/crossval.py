"""Stratified k-fold cross-validation (paper §5.2).

"The data was divided into 5 subsets (folds) of (approximately) equal
size.  Then, for each run one fold was set aside for testing while the
remaining were joined and used for learning."  Positives and negatives are
folded independently (stratified), so class balance is preserved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.logic.terms import Term
from repro.util.rng import make_rng

__all__ = ["Fold", "kfold"]


@dataclass(frozen=True)
class Fold:
    """One train/test split."""

    index: int
    train_pos: tuple[Term, ...]
    train_neg: tuple[Term, ...]
    test_pos: tuple[Term, ...]
    test_neg: tuple[Term, ...]


def _split(items: Sequence[Term], k: int, rng: random.Random) -> list[list[Term]]:
    idx = list(range(len(items)))
    rng.shuffle(idx)
    folds: list[list[Term]] = [[] for _ in range(k)]
    for pos, i in enumerate(idx):
        folds[pos % k].append(items[i])
    return folds


def kfold(pos: Sequence[Term], neg: Sequence[Term], k: int = 5, seed: int = 0) -> Iterator[Fold]:
    """Yield ``k`` stratified folds, deterministically from ``seed``.

    >>> from repro.logic.terms import atom
    >>> folds = list(kfold([atom("p", i) for i in range(10)],
    ...                    [atom("n", i) for i in range(10)], k=5))
    >>> [len(f.test_pos) for f in folds]
    [2, 2, 2, 2, 2]
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    if len(pos) < k or len(neg) < k:
        raise ValueError("need at least k examples of each class")
    rng = make_rng(seed, "kfold")
    pos_folds = _split(pos, k, rng)
    neg_folds = _split(neg, k, rng)
    for i in range(k):
        train_pos = tuple(e for j in range(k) if j != i for e in pos_folds[j])
        train_neg = tuple(e for j in range(k) if j != i for e in neg_folds[j])
        yield Fold(
            index=i,
            train_pos=train_pos,
            train_neg=train_neg,
            test_pos=tuple(pos_folds[i]),
            test_neg=tuple(neg_folds[i]),
        )

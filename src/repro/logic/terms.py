"""First-order logic terms.

Three immutable term kinds, as in a standard Prolog core:

* :class:`Var` — a logic variable (``X``, ``_G12``).
* :class:`Const` — an atomic constant: a symbol (``ethyl``), an ``int`` or a
  ``float``.
* :class:`Struct` — a compound term ``f(t1, ..., tn)``.  Predicates/atoms are
  represented as structs too (an atom is simply a term in predicate
  position).

Terms are immutable, hashable and compare structurally, so they can be used
as dict keys (substitutions, indices) and set members (coverage caches).

Hash-consing
------------
Constants and *ground* compound terms are **interned**: constructing the
same value twice returns the same object, so equality on the coverage
kernel's hot paths (fact unification, memo-table probes, ``fact_set``
membership) degenerates to a pointer comparison.  Three invariants follow:

* every ``Const`` in a process is interned (unpickling re-interns via
  ``__reduce__``), so two distinct ``Const`` objects are never equal;
* every *ground* ``Struct`` is interned, so two distinct interned structs
  are never equal — ``Struct.__eq__`` short-circuits to ``False`` when both
  sides carry the ``interned`` flag;
* **interned terms must never be mutated** — they are shared across every
  clause, index and cache in the process.  (All terms are immutable by
  construction; the invariant matters if you are tempted to poke at
  ``args`` through the C API or ``object.__setattr__``.)

Variable-containing structs are *not* interned (renaming-apart creates a
stream of short-lived variants that would only bloat the table); they still
precompute their hash and a ``ground`` flag, making :func:`is_ground` O(1)
for every term.

Interning can be disabled for measurement with ``REPRO_INTERN=0`` in the
environment (read once at import); all equality fast paths degrade to the
structural comparison of the seed implementation.
"""

from __future__ import annotations

import itertools
import os
import sys
from typing import Iterable, Iterator, Union

__all__ = [
    "Term",
    "Var",
    "Const",
    "Struct",
    "atom",
    "mk_term",
    "fresh_var",
    "variables_of",
    "constants_of",
    "term_size",
    "term_depth",
    "is_ground",
    "intern_enabled",
    "intern_stats",
]

_fresh_counter = itertools.count()

#: Environment switch for term hash-consing (default on).
INTERN_ENV = "REPRO_INTERN"
_INTERN = os.environ.get(INTERN_ENV, "") not in ("0", "off", "false")

_const_table: dict = {}
_struct_table: dict = {}

# Growth bound: interned terms live for the process lifetime (clearing
# would be unsound — the fast equality paths assume at most one canonical
# instance per value).  Past the cap, new distinct terms are simply no
# longer interned; every equality/matching path keeps a structural
# fallback, so only the identity fast path degrades.  The caps are far
# above any bundled workload (paper-scale carcinogenesis stays in the
# tens of thousands of ground terms).
_CONST_CAP = 1 << 20
_STRUCT_CAP = 1 << 20


def intern_enabled() -> bool:
    """Whether term hash-consing is active in this process."""
    return _INTERN


def intern_stats() -> dict:
    """Sizes of the process-wide intern tables (debugging/benchmarks)."""
    return {"consts": len(_const_table), "structs": len(_struct_table)}


class Var:
    """A logic variable, identified by name.

    Two ``Var`` objects with the same name are the same variable.  Fresh
    (globally unique) variables are produced by :func:`fresh_var`.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        self.name = name
        self._hash = hash(("V", name))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Var({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return type(other) is Var and other.name == self.name

    def __hash__(self) -> int:
        return self._hash


class Const:
    """An atomic constant: symbol, integer or float.

    Always interned: the constructor returns the canonical instance for a
    given ``(type, value)`` pair, and unpickling re-interns, so equal
    constants are identical within a process.  ``1``, ``1.0`` and ``True``
    are distinct constants (the key carries the concrete type, so no type
    tags are re-derived per comparison — the seed's ``__eq__`` called
    ``type()`` twice on every candidate fact argument).
    """

    __slots__ = ("value", "_key", "_hash")

    def __new__(cls, value: Union[str, int, float]):
        key = (value.__class__, value)
        if _INTERN:
            self = _const_table.get(key)
            if self is not None:
                return self
        self = object.__new__(cls)
        self.value = value
        self._key = key
        self._hash = hash(key)
        if _INTERN and len(_const_table) < _CONST_CAP:
            _const_table[key] = self
        return self

    def __init__(self, value: Union[str, int, float]):
        # All initialisation happens in __new__ (it may return a cached
        # instance that must not be re-initialised).
        pass

    def __reduce__(self):
        return (Const, (self.value,))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Const({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        # With interning on, equal-but-distinct constants cannot exist; the
        # structural fallback keeps REPRO_INTERN=0 (and hash collisions)
        # correct.  ``_key`` carries the concrete value type, keeping
        # int/float/bool constants distinct without per-call type checks.
        return type(other) is Const and other._key == self._key

    def __hash__(self) -> int:
        return self._hash


class Struct:
    """A compound term ``functor(arg1, ..., argN)`` (N >= 1).

    Zero-arity atoms are represented as :class:`Const`; the parser and
    :func:`atom` enforce this normal form.

    ``ground`` (no variables anywhere) is computed at construction, making
    :func:`is_ground` O(1).  Ground structs are interned (see module
    docstring); ``interned`` marks the canonical instances, letting
    equality short-circuit to identity in both directions.
    """

    __slots__ = ("functor", "args", "indicator", "ground", "interned", "_hash")

    def __new__(cls, functor: str, args: tuple):
        ground = True
        for a in args:
            ta = type(a)
            if ta is Const:
                continue
            if ta is Struct and a.ground:
                continue
            ground = False
            break
        if _INTERN and ground:
            key = (functor, args)
            self = _struct_table.get(key)
            if self is not None:
                return self
            self = object.__new__(cls)
            if len(_struct_table) < _STRUCT_CAP:
                functor = sys.intern(functor)
                self.interned = True
                _struct_table[(functor, args)] = self
            else:
                self.interned = False
        else:
            self = object.__new__(cls)
            self.interned = False
        self.functor = functor
        self.args = args
        self.ground = ground
        #: the predicate indicator ``(name, arity)`` — precomputed, it is
        #: read on every engine goal dispatch.
        self.indicator = (functor, len(args))
        self._hash = hash(("S", functor, args))
        return self

    def __init__(self, functor: str, args: tuple):
        # All initialisation happens in __new__ (it may return a cached
        # instance that must not be re-initialised).
        pass

    def __reduce__(self):
        return (Struct, (self.functor, self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Struct({self.functor!r}, {self.args!r})"

    def __str__(self) -> str:
        return f"{self.functor}({', '.join(map(str, self.args))})"

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not Struct:
            return False
        if self.interned and other.interned:
            # Both canonical: distinct objects are guaranteed unequal.
            return False
        return (
            other._hash == self._hash
            and other.functor == self.functor
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return self._hash


Term = Union[Var, Const, Struct]


def mk_term(value: object) -> Term:
    """Coerce a Python value into a term.

    Strings starting with an uppercase letter or ``_`` become variables,
    other strings become symbol constants; ints/floats become numeric
    constants; terms pass through unchanged.
    """
    if isinstance(value, (Var, Const, Struct)):
        return value
    if isinstance(value, bool):
        return Const("true" if value else "false")
    if isinstance(value, (int, float)):
        return Const(value)
    if isinstance(value, str):
        if value and (value[0].isupper() or value[0] == "_"):
            return Var(value)
        return Const(value)
    raise TypeError(f"cannot convert {value!r} to a term")


def atom(functor: str, *args: object) -> Term:
    """Build an atom/compound term, coercing Python args via :func:`mk_term`.

    >>> str(atom("bond", "m1", 3, "X"))
    'bond(m1, 3, X)'
    """
    if not args:
        return Const(functor)
    return Struct(functor, tuple(mk_term(a) for a in args))


def fresh_var(prefix: str = "_G") -> Var:
    """Return a globally fresh variable."""
    return Var(f"{prefix}{next(_fresh_counter)}")


def variables_of(term: Term) -> Iterator[Var]:
    """Iterate variables in ``term``, left-to-right, with repeats."""
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, Var):
            yield t
        elif isinstance(t, Struct) and not t.ground:
            stack.extend(reversed(t.args))


def constants_of(term: Term) -> Iterator[Const]:
    """Iterate constants in ``term``, left-to-right, with repeats."""
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, Const):
            yield t
        elif isinstance(t, Struct):
            stack.extend(reversed(t.args))


def term_size(term: Term) -> int:
    """Number of symbol occurrences in ``term`` (vars and consts count 1)."""
    if isinstance(term, Struct):
        return 1 + sum(term_size(a) for a in term.args)
    return 1


def term_depth(term: Term) -> int:
    """Nesting depth; constants and variables have depth 0."""
    if isinstance(term, Struct):
        return 1 + max((term_depth(a) for a in term.args), default=0)
    return 0


def is_ground(term: Term) -> bool:
    """True iff ``term`` contains no variables.

    O(1): groundness is precomputed at construction for every term kind.
    """
    t = type(term)
    if t is Const:
        return True
    if t is Struct:
        return term.ground
    return False

"""MDIE ILP engine: mode bias, bottom clauses, rule search, covering loop.

Implements the paper's sequential algorithm (Figs. 1-2) from scratch; the
parallel algorithm in :mod:`repro.parallel` reuses this package's search
(`learn_rule`) and evaluation machinery unchanged, so measured differences
between the two are attributable to the algorithm, not the implementation.
"""

from repro.ilp.bottom import BottomClause, BottomLiteral, SaturationError, build_bottom
from repro.ilp.config import ILPConfig, NO_LIMIT
from repro.ilp.coverage import CoverageStats, coverage_bitset, covers, popcount
from repro.ilp.heuristics import HEURISTICS, is_good, score_rule
from repro.ilp.mdie import MDIEResult, mdie
from repro.ilp.modes import ArgSpec, ModeDecl, ModeSet, parse_mode
from repro.ilp.prune import drop_redundant_clauses, prune_clause, prune_theory
from repro.ilp.refinement import SearchRule, refinements, start_rule
from repro.ilp.search import EvaluatedRule, SearchResult, learn_rule
from repro.ilp.store import ExampleStore
from repro.ilp.theory import TheoryReport, accuracy, confusion, predicts

__all__ = [
    "BottomClause",
    "BottomLiteral",
    "SaturationError",
    "build_bottom",
    "ILPConfig",
    "NO_LIMIT",
    "CoverageStats",
    "coverage_bitset",
    "covers",
    "popcount",
    "HEURISTICS",
    "is_good",
    "score_rule",
    "MDIEResult",
    "mdie",
    "ArgSpec",
    "ModeDecl",
    "ModeSet",
    "parse_mode",
    "drop_redundant_clauses",
    "prune_clause",
    "prune_theory",
    "SearchRule",
    "refinements",
    "start_rule",
    "EvaluatedRule",
    "SearchResult",
    "learn_rule",
    "ExampleStore",
    "TheoryReport",
    "accuracy",
    "confusion",
    "predicts",
]

"""Theory post-processing: clause reduction and redundancy elimination.

April (the paper's host system) inherits Progol-style post-processing:
learned rules can carry literals that no longer constrain anything, and a
greedy covering run can accept rules made redundant by later, more
general ones.  These passes clean both up **without changing the theory's
training-set extension** — each transformation is verified against the
coverage bitsets before being kept, so pruning is semantics-preserving by
construction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ilp.coverage import coverage_bitset
from repro.logic.clause import Clause, Theory
from repro.logic.engine import Engine
from repro.logic.subsumption import reduce_clause
from repro.logic.terms import Term

__all__ = ["prune_clause", "prune_theory", "drop_redundant_clauses", "ClauseBag"]


class ClauseBag:
    """An insertion-ordered candidate-rule bag deduplicating variants.

    The parallel masters collect every pipeline's rules into a bag before
    global evaluation.  Keying the bag by the order-preserving
    :meth:`repro.logic.clause.Clause.variant_key` collapses renamed-apart
    copies of a rule — same literals in the same order, hence
    charge-for-charge identical resource-bounded coverage — into one slot
    in O(1), instead of either evaluating both remotely or running
    pairwise θ-subsumption over the whole bag.  (The order-insensitive
    fingerprint is deliberately not used here: reordered bodies can
    exhaust query budgets differently, so their global stats need not
    coincide.)

    When two variants collide, the **lexicographically smallest** rendering
    is kept: that is exactly the representative the master's deterministic
    tie-break (`score desc, length, str`) would end up accepting, so the
    learned theory is bit-identical to the duplicate-evaluating baseline.
    ``reported_size`` counts clauses distinct by plain equality — the
    number the baseline's bag would hold — so epoch logs (Tables 3-5)
    stay bit-identical too.

    ``fingerprints=False`` degrades to plain clause-equality dedup (the
    seed behaviour).
    """

    __slots__ = ("_by_key", "_exact", "_fingerprints")

    def __init__(self, fingerprints: bool = True):
        self._by_key: dict = {}
        self._exact: set = set()
        self._fingerprints = fingerprints

    def _key(self, clause: Clause):
        return clause.variant_key() if self._fingerprints else clause

    def add(self, clause: Clause) -> None:
        self._exact.add(clause)
        key = self._key(clause)
        prev = self._by_key.get(key)
        if prev is None:
            self._by_key[key] = clause
        elif prev is not clause and str(clause) < str(prev):
            # Keep the tie-break winner; the slot keeps its bag position.
            self._by_key[key] = clause

    def discard(self, clause: Clause) -> None:
        self._by_key.pop(self._key(clause), None)

    def __iter__(self):
        return iter(list(self._by_key.values()))

    def __len__(self) -> int:
        return len(self._by_key)

    @property
    def reported_size(self) -> int:
        """Bag size by plain clause equality (baseline-log parity)."""
        return len(self._exact)

    def __contains__(self, clause: Clause) -> bool:
        return self._key(clause) in self._by_key

    def clauses(self) -> list[Clause]:
        return list(self._by_key.values())


def prune_clause(
    engine: Engine,
    clause: Clause,
    pos: Sequence[Term],
    neg: Sequence[Term],
) -> Clause:
    """Drop body literals whose removal changes no example's coverage.

    Subtly stronger than pure θ-reduction: a literal can be logically
    non-redundant yet extensionally idle on this training set (e.g. a type
    check every constant already satisfies).  Removal is kept only when
    positive *and* negative coverage stay identical, so consistency is
    preserved exactly.
    """
    best = clause
    pos_ref = coverage_bitset(engine, clause, pos)
    neg_ref = coverage_bitset(engine, clause, neg)
    changed = True
    while changed:
        changed = False
        body = list(best.body)
        for i in range(len(body)):
            candidate = Clause(best.head, tuple(body[:i] + body[i + 1 :]))
            if (
                coverage_bitset(engine, candidate, pos) == pos_ref
                and coverage_bitset(engine, candidate, neg) == neg_ref
            ):
                best = candidate
                changed = True
                break
    return best


def drop_redundant_clauses(
    engine: Engine,
    theory: Theory,
    pos: Sequence[Term],
) -> Theory:
    """Remove clauses that cover no positive example uniquely.

    Greedy back-to-front sweep: a clause is dropped if the remaining
    clauses still cover every positive the full theory covered.  (Negative
    coverage can only shrink when clauses are removed, so consistency is
    monotone under this pass.)
    """
    clauses = list(theory)
    full_cover = 0
    covers = []
    for c in clauses:
        bits = coverage_bitset(engine, c, pos)
        covers.append(bits)
        full_cover |= bits
    keep = list(range(len(clauses)))
    for i in reversed(range(len(clauses))):
        others = 0
        for j in keep:
            if j != i:
                others |= covers[j]
        if i in keep and others == full_cover:
            keep.remove(i)
    return Theory([clauses[i] for i in sorted(keep)])


def prune_theory(
    engine: Engine,
    theory: Theory,
    pos: Sequence[Term],
    neg: Sequence[Term],
    reduce_first: bool = True,
) -> Theory:
    """Full post-processing pipeline: θ-reduce, extensionally prune each
    clause, then drop redundant clauses.

    >>> # extension preserved by construction; see tests for properties
    """
    out = []
    for c in theory:
        c2 = reduce_clause(c) if reduce_first else c
        out.append(prune_clause(engine, c2, pos, neg))
    return drop_redundant_clauses(engine, Theory(out), pos)

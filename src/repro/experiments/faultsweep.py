"""Fault-injection sweep: recovery overhead & parity across strategies.

For each (strategy, p, scenario) cell the sweep runs the strategy
fault-free and under an injected fault plan, asserts that the learned
theory is **identical** (the self-healing protocol's core guarantee),
and reports the recovery overhead — extra makespan and extra
communication relative to the fault-free run.  This is the experiments
surface behind ``repro faults`` and the ``bench_fault_recovery``
benchmark.

Scenarios (all deterministic, cross-substrate):

* ``crash``          — one worker dies mid-run (processing its 2nd task);
* ``crash_standby``  — same crash, with one idle spare host provisioned;
* ``straggler``      — one worker computes 4x slower (timing only);
* ``supervised``     — fault-tolerance protocol on, nothing injected
  (isolates the protocol's own heartbeat/timeout overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.datasets import make_dataset
from repro.fault.plan import FaultPlan, Straggler, WorkerCrash
from repro.parallel.coverage_parallel import run_coverage_parallel
from repro.parallel.independent import run_independent
from repro.parallel.p2mdie import run_p2mdie

__all__ = ["FaultSweepRecord", "default_scenarios", "run_fault_sweep", "render_fault_sweep"]

STRATEGIES = ("p2mdie", "covpar", "independent")


@dataclass(frozen=True)
class FaultSweepRecord:
    """One (strategy, p, scenario) cell of the sweep."""

    strategy: str
    p: int
    scenario: str
    seconds: float
    fault_free_seconds: float
    mbytes: float
    fault_free_mbytes: float
    parity: bool
    recoveries: int
    cache_misses: int

    @property
    def overhead(self) -> float:
        """Relative makespan overhead vs. the fault-free run."""
        if self.fault_free_seconds <= 0:
            return 0.0
        return self.seconds / self.fault_free_seconds - 1.0


def default_scenarios(timeout: float = 2.0) -> dict[str, tuple[FaultPlan, int]]:
    """scenario name -> (plan, spares)."""
    return {
        "supervised": (FaultPlan(supervise=True, timeout=timeout), 0),
        "crash": (
            FaultPlan(crashes=(WorkerCrash(rank=2, on_recv=2),), timeout=timeout),
            0,
        ),
        "crash_standby": (
            FaultPlan(crashes=(WorkerCrash(rank=2, on_recv=2),), timeout=timeout),
            1,
        ),
        "straggler": (
            FaultPlan(stragglers=(Straggler(rank=1, factor=4.0),), timeout=max(timeout, 30.0)),
            0,
        ),
    }


def _run_strategy(strategy: str, ds, p: int, seed: int, backend, plan, spares: int):
    common = dict(seed=seed, backend=backend, fault_plan=plan, spares=spares)
    if strategy == "p2mdie":
        return run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=p, width=10, **common)
    if strategy == "covpar":
        return run_coverage_parallel(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=p, batch_size=4, max_epochs=8, **common
        )
    if strategy == "independent":
        return run_independent(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=p, **common)
    raise ValueError(f"unknown strategy {strategy!r} (known: {STRATEGIES})")


def run_fault_sweep(
    dataset: str = "trains",
    ps: Sequence[int] = (2, 4),
    strategies: Sequence[str] = ("p2mdie",),
    scenarios: Optional[dict] = None,
    seed: int = 0,
    scale: str = "small",
    backend="sim",
    timeout: float = 2.0,
) -> list[FaultSweepRecord]:
    """Run the full sweep; every record's ``parity`` should be True."""
    ds = make_dataset(dataset, seed=seed, scale=scale)
    scenarios = scenarios if scenarios is not None else default_scenarios(timeout)
    records: list[FaultSweepRecord] = []
    for strategy in strategies:
        for p in ps:
            base = _run_strategy(strategy, ds, p, seed, backend, None, 0)
            for name, (plan, spares) in scenarios.items():
                if any(ev.rank > p + spares for ev in plan.crashes):
                    continue  # scenario does not fit this pool size
                res = _run_strategy(strategy, ds, p, seed, backend, plan, spares)
                records.append(
                    FaultSweepRecord(
                        strategy=strategy,
                        p=p,
                        scenario=name,
                        seconds=res.seconds,
                        fault_free_seconds=base.seconds,
                        mbytes=res.mbytes,
                        fault_free_mbytes=base.mbytes,
                        parity=res.theory == base.theory,
                        recoveries=sum(
                            1 for ev in res.fault_events if "declared dead" in ev
                        ),
                        cache_misses=res.cache_misses,
                    )
                )
    return records


def render_fault_sweep(records: Sequence[FaultSweepRecord]) -> str:
    lines = [
        "Fault-injection sweep — makespan/communication overhead vs fault-free, theory parity",
        f"{'strategy':<12} {'p':>3} {'scenario':<14} {'seconds':>9} {'base s':>9} "
        f"{'overhead':>9} {'MB':>8} {'parity':>6} {'deaths':>6}",
    ]
    for r in records:
        lines.append(
            f"{r.strategy:<12} {r.p:>3} {r.scenario:<14} {r.seconds:>9.3f} "
            f"{r.fault_free_seconds:>9.3f} {r.overhead:>8.1%} {r.mbytes:>8.3f} "
            f"{str(r.parity):>6} {r.recoveries:>6}"
        )
    return "\n".join(lines)

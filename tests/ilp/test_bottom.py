"""Unit tests for bottom-clause construction (MDIE saturation)."""

import pytest

from repro.ilp.bottom import SaturationError, build_bottom
from repro.ilp.config import ILPConfig
from repro.ilp.modes import ModeSet
from repro.logic.engine import Engine
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_term
from repro.logic.subsumption import theta_subsumes
from repro.logic.terms import Const, Var


class TestHeadConstruction:
    def test_head_variablized(self, family_kb, family_modes, family_config, family_engine, family_pos):
        b = build_bottom(family_pos[0], family_engine, family_modes, family_config)
        assert b.head.functor == "daughter"
        assert all(isinstance(a, Var) for a in b.head.args)
        assert len(b.head_vars) == 2

    def test_same_constant_same_var(self, family_engine, family_modes, family_config):
        # daughter(x, x) would map both args to ONE variable
        e = parse_term("daughter(mary, mary)")
        b = build_bottom(e, family_engine, family_modes, family_config)
        assert b.head.args[0] == b.head.args[1]

    def test_hash_head_arg_stays_constant(self):
        kb = KnowledgeBase()
        kb.add_program("attr(e1, red).")
        modes = ModeSet(["modeh(1, cls(+e, #color))", "modeb(1, attr(+e, #color))"])
        eng = Engine(kb)
        b = build_bottom(parse_term("cls(e1, red)"), eng, modes, ILPConfig())
        assert b.head.args[1] == Const("red")

    def test_no_matching_modeh(self, family_engine, family_modes, family_config):
        with pytest.raises(SaturationError):
            build_bottom(parse_term("son(a, b)"), family_engine, family_modes, family_config)

    def test_nonground_example_rejected(self, family_engine, family_modes, family_config):
        with pytest.raises(SaturationError):
            build_bottom(parse_term("daughter(X, ann)"), family_engine, family_modes, family_config)


class TestBodySaturation:
    def test_contains_explaining_literals(self, family_engine, family_modes, family_config, family_pos):
        b = build_bottom(family_pos[0], family_engine, family_modes, family_config)
        lits = {str(bl.literal) for bl in b.literals}
        # daughter(mary, ann): parent(ann, mary) and female(mary) must appear,
        # variablized as parent(B, A) / female(A).
        a, bvar = b.head.args
        assert f"parent({bvar}, {a})" in lits
        assert f"female({a})" in lits

    def test_target_entailed_by_bottom(self, family_engine, family_modes, family_config, family_pos):
        # The bottom clause must subsume (be specialisable to) the target rule.
        from repro.logic.parser import parse_clause

        target = parse_clause("daughter(A, B) :- parent(B, A), female(A).")
        for e in family_pos:
            b = build_bottom(e, family_engine, family_modes, family_config)
            assert theta_subsumes(target, b.as_clause())

    def test_dedup(self, family_engine, family_modes, family_config, family_pos):
        b = build_bottom(family_pos[0], family_engine, family_modes, family_config)
        lits = [bl.literal for bl in b.literals]
        assert len(lits) == len(set(lits))

    def test_layering_gates_new_vars(self):
        # chain a->b->c: depth 1 sees only first hop
        kb = KnowledgeBase()
        kb.add_program("step(a, b). step(b, c).")
        modes = ModeSet(["modeh(1, start(+node))", "modeb(*, step(+node, -node))"])
        eng = Engine(kb)
        shallow = build_bottom(parse_term("start(a)"), eng, modes, ILPConfig(var_depth=1))
        deep = build_bottom(parse_term("start(a)"), eng, modes, ILPConfig(var_depth=2))
        assert len(shallow.literals) == 1
        assert len(deep.literals) == 2

    def test_recall_limits_answers(self):
        kb = KnowledgeBase()
        kb.add_program(" ".join(f"n(a, b{i})." for i in range(20)))
        modes = ModeSet(["modeh(1, t(+x))", "modeb(3, n(+x, -y))"])
        eng = Engine(kb)
        b = build_bottom(parse_term("t(a)"), eng, modes, ILPConfig())
        assert len(b.literals) == 3

    def test_max_bottom_literals_cap(self, family_engine, family_modes, family_pos):
        cfg = ILPConfig(max_bottom_literals=2)
        b = build_bottom(family_pos[0], family_engine, family_modes, cfg)
        assert len(b.literals) == 2

    def test_deterministic(self, family_engine, family_modes, family_config, family_pos):
        b1 = build_bottom(family_pos[0], family_engine, family_modes, family_config)
        b2 = build_bottom(family_pos[0], family_engine, family_modes, family_config)
        assert b1.as_clause() == b2.as_clause()

    def test_input_vars_recorded(self, family_engine, family_modes, family_config, family_pos):
        b = build_bottom(family_pos[0], family_engine, family_modes, family_config)
        for bl in b.literals:
            if bl.literal.functor == "female":
                assert len(bl.input_vars) == 1
                assert not bl.output_vars


class TestBottomClauseApi:
    def test_most_general_rule(self, family_engine, family_modes, family_config, family_pos):
        b = build_bottom(family_pos[0], family_engine, family_modes, family_config)
        mg = b.most_general_rule()
        assert mg.head == b.head
        assert mg.body == ()

    def test_len_and_str(self, family_engine, family_modes, family_config, family_pos):
        b = build_bottom(family_pos[0], family_engine, family_modes, family_config)
        assert len(b) == len(b.literals)
        assert " :- " in str(b)

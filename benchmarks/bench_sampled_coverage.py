"""Sampled-coverage benchmark: exact search vs stratified-sample screening.

Drives the sequential MDIE covering loop by hand (seed -> bottom ->
``learn_rule`` -> kill) so the **search phase** — the only phase the
sampling mode touches — is timed in isolation: bottom-clause saturation
costs the same in both variants and would otherwise dilute the measured
speedup.

Two variants per dataset:

* ``exact``   — ``coverage_sampling=False``: every candidate clause is
  evaluated on the full example bitsets (the reference path);
* ``sampled`` — ``coverage_sampling=True``: candidates are screened on a
  stratified pos/neg sample with Hoeffding bounds; survivors (and every
  accepted clause) are re-evaluated exactly, and the run emits a
  :class:`~repro.ilp.sampling.CoverageCertificate` whose per-clause
  exact recheck must pass.

The report records per-dataset search wall/ops, theory sizes, the
certificate summary, and the search-phase speedup.  The ``check`` gate
asserts every certificate is exact-good; in non-smoke runs it also
asserts the carcinogenesis search-phase speedup is >= 1.5x.

Knobs:

* ``REPRO_SCALE``         — ``small`` (default) or ``paper``;
* ``REPRO_SEED``          — RNG seed (default 0);
* ``REPRO_BENCH_SMOKE=1`` — CI smoke mode: tiny example counts, no
  speedup gate (certificate exactness is always asserted).

Writes ``BENCH_sampled_coverage.json`` at the repo root.

Standalone: ``PYTHONPATH=src python benchmarks/bench_sampled_coverage.py``.
Under the bench suite it runs as an ordinary test.
"""

from __future__ import annotations

import os
import pathlib
import time

DATASETS = ("carcinogenesis", "mesh")
SCALE = os.environ.get("REPRO_SCALE", "small")
SEED = int(os.environ.get("REPRO_SEED", "0"))
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = ROOT / "BENCH_sampled_coverage.json"


def _dataset_kwargs(name: str) -> dict:
    if SMOKE:
        if name == "carcinogenesis":
            return dict(seed=SEED, n_pos=24, n_neg=20)
        return dict(seed=SEED, n_pos=24, n_neg=24)
    return dict(seed=SEED, scale=SCALE)


def run_variant(name: str, sampling: bool) -> dict:
    """One covering run; only ``learn_rule`` calls are timed/op-counted."""
    from repro.datasets import make_dataset
    from repro.ilp.bottom import SaturationError, build_bottom, build_bottom_cached
    from repro.ilp.mdie import select_seed
    from repro.ilp.sampling import CoverageCertificate, clause_certificate, sampler_for
    from repro.ilp.search import learn_rule
    from repro.ilp.store import ExampleStore
    from repro.logic.clause import Clause, Theory
    from repro.logic.engine import Engine
    from repro.util.rng import make_rng

    ds = make_dataset(name, **_dataset_kwargs(name))
    config = ds.config.replace(coverage_sampling=sampling)
    engine = Engine(ds.kb, config.engine_budget(), kernel=config.coverage_kernel)
    store = ExampleStore(
        ds.pos,
        ds.neg,
        reorder_body=config.reorder_body,
        inherit=config.coverage_inheritance,
        fingerprints=config.clause_fingerprints,
    )
    rng = make_rng(SEED, "mdie")
    sampler = None
    if sampling:
        sampler = sampler_for(config, store.n_pos, store.n_neg, SEED, labels=("mdie",))
    theory = Theory()
    cert_entries: list = []
    failed_mask = 0
    epochs = 0
    search_s = 0.0
    search_ops = 0
    saturate = build_bottom_cached if config.saturation_cache else build_bottom
    while True:
        candidates = store.alive & ~failed_mask
        i = select_seed(store, candidates, rng, config.select_seed_randomly)
        if i is None:
            break
        example = store.pos[i]
        try:
            bottom = saturate(example, engine, ds.modes, config)
        except SaturationError:
            failed_mask |= 1 << i
            continue
        ops0 = engine.total_ops
        t0 = time.perf_counter()
        result = learn_rule(
            engine, bottom, store, config, seeds=None, width=1, sampler=sampler
        )
        search_s += time.perf_counter() - t0
        search_ops += engine.total_ops - ops0
        epochs += 1
        best = result.best
        if best is None:
            if config.on_uncoverable == "memorize":
                theory.add(Clause(example, ()))
                store.kill(1 << i)
            else:
                failed_mask |= 1 << i
            continue
        theory.add(best.clause)
        if sampler is not None:
            cert_entries.append(
                clause_certificate(
                    best.clause, best.sampled, best.stats.pos, best.stats.neg, config
                )
            )
        store.kill(best.stats.pos_bits)
    out = {
        "search_s": round(search_s, 4),
        "search_ops": search_ops,
        "epochs": epochs,
        "uncovered": store.remaining,
        "theory_size": len(theory),
        "theory": sorted(str(c) for c in theory),
        "n_pos": ds.n_pos,
        "n_neg": ds.n_neg,
    }
    if sampler is not None:
        cert = CoverageCertificate(
            seed=SEED,
            fraction=config.sample_fraction,
            delta=config.sample_delta,
            min_stratum=config.sample_min,
            strata=sampler.strata(),
            entries=tuple(cert_entries),
        )
        out["certificate"] = cert.to_dict()
        out["certificate_ok"] = cert.ok
        out["certificate_summary"] = cert.summary()
    return out


def run_benchmark() -> dict:
    report: dict = {"scale": SCALE, "seed": SEED, "smoke": SMOKE, "datasets": {}}
    for name in DATASETS:
        exact = run_variant(name, sampling=False)
        sampled = run_variant(name, sampling=True)
        speedup = (
            round(exact["search_s"] / sampled["search_s"], 3)
            if sampled["search_s"]
            else float("inf")
        )
        ops_ratio = (
            round(exact["search_ops"] / sampled["search_ops"], 3)
            if sampled["search_ops"]
            else float("inf")
        )
        report["datasets"][name] = {
            "exact": exact,
            "sampled": sampled,
            "speedup_search_wall": speedup,
            "speedup_search_ops": ops_ratio,
        }
    return report


def render(report: dict) -> str:
    lines = [
        f"Sampled coverage — search phase only (scale {report['scale']}, "
        f"seed {report['seed']}{', smoke' if report['smoke'] else ''})",
        f"{'dataset':>16}  {'variant':>8}  {'search s':>9}  {'search ops':>12}  "
        f"{'clauses':>7}  {'cert':>5}",
    ]
    for name, d in report["datasets"].items():
        for variant in ("exact", "sampled"):
            r = d[variant]
            cert = "-" if variant == "exact" else ("ok" if r["certificate_ok"] else "FAIL")
            lines.append(
                f"{name:>16}  {variant:>8}  {r['search_s']:>9.3f}  "
                f"{r['search_ops']:>12}  {r['theory_size']:>7}  {cert:>5}"
            )
        lines.append(
            f"{name:>16}  speedup: {d['speedup_search_wall']:.2f}x wall, "
            f"{d['speedup_search_ops']:.2f}x engine ops"
        )
    return "\n".join(lines)


def write_report(report: dict, duration_s: float) -> pathlib.Path:
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from bench_meta import write_bench_json

    return write_bench_json(OUT_PATH, report, SMOKE, duration_s=duration_s)


def check(report: dict) -> None:
    for name, d in report["datasets"].items():
        assert d["sampled"]["certificate_ok"], (
            f"{name}: a sampled-run certificate entry failed its exact recheck"
        )
    if not SMOKE and SCALE == "paper":
        sp = report["datasets"]["carcinogenesis"]["speedup_search_wall"]
        assert sp >= 1.5, f"carcinogenesis search-phase speedup below 1.5x: {sp}"


def test_sampled_coverage():
    t0 = time.perf_counter()
    report = run_benchmark()
    duration = time.perf_counter() - t0
    print("\n" + render(report) + "\n")
    write_report(report, duration)
    check(report)


if __name__ == "__main__":
    t0 = time.perf_counter()
    report = run_benchmark()
    duration = time.perf_counter() - t0
    print(render(report))
    path = write_report(report, duration)
    print(f"wrote {path}")
    check(report)

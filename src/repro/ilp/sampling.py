"""Sampled coverage: stratified example samples, confidence bounds, and
exactness certificates.

During search, most candidate clauses are pruned long before acceptance —
yet the reference kernel scores every one of them against every example.
This module ports two ideas from the related work (see PAPERS.md): score
candidates against a small *stratified sample* of the examples (the Secuer
anchor-set move), and *certify cheaply* that the approximate run accepted
the same clauses the exact evaluator would have (the sum-of-norms
certification move).

The contract, enforced across every layer that uses this module:

* **Screening is approximate, acceptance is exact.**  Sampled statistics
  (with Hoeffding-style confidence bounds) only decide which candidates
  are *worth* an exact evaluation; any clause that can enter a theory is
  re-evaluated on the full example set first, so accepted theories are
  always exact.
* **Certificates record the agreement.**  Every accepted clause carries a
  :class:`ClauseCertificate` (sampled estimate, exact counts, recheck
  outcome); the per-theory :class:`CoverageCertificate` bundles them with
  the sample parameters (seed, strata sizes, fraction, delta) so the
  claim "the sampled run accepted what exact evaluation accepts" is an
  artifact, not a hope.
* **Determinism.**  Sample masks derive from :func:`repro.util.rng.make_rng`
  labels, so the same seed produces the same strata on every backend (and
  on a rebuilt shard after fault recovery).

Strata are the positive and negative example lists; in the parallel
algorithm each worker shard samples its own span with the same fraction,
so the pooled sample is stratified per shard as well.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.ilp.config import ILPConfig
from repro.util.rng import make_rng

__all__ = [
    "StratifiedSampler",
    "SampledStats",
    "ClauseCertificate",
    "CoverageCertificate",
    "make_sampler",
    "sampler_for",
    "clause_certificate",
    "stratum_size",
    "hoeffding_eps",
    "certificate_to_bytes",
    "certificate_from_bytes",
    "CERT_WIRE_CODE",
]

#: wire type code of a serialized certificate (append-only registry of
#: :func:`repro.parallel.wire.register_codec`; see its docstring).
CERT_WIRE_CODE = 29


def stratum_size(n: int, fraction: float, min_stratum: int) -> int:
    """Sample size for a stratum of ``n`` examples: ``fraction`` of the
    stratum, never below ``min_stratum`` (small strata are evaluated in
    full — sampling 3 of 12 examples buys nothing but variance)."""
    if n <= 0:
        return 0
    return min(n, max(min_stratum, math.ceil(fraction * n)))


def hoeffding_eps(n: int, delta: float) -> float:
    """Two-sided Hoeffding radius for a mean of ``n`` 0/1 draws: the true
    coverage fraction lies within ``±eps`` of the sample fraction with
    probability ``1 - delta``."""
    if n <= 0:
        return 1.0
    return math.sqrt(math.log(2.0 / delta) / (2.0 * n))


@dataclass(frozen=True)
class StratifiedSampler:
    """Deterministic positive/negative sample masks over one example store.

    ``pos_mask`` / ``neg_mask`` are bitsets over the store's full example
    lists (bit i set ⇔ example i is in the sample), drawn once per run
    from the labelled RNG stream — liveness changes never redraw them, so
    sampled evaluations stay cacheable exactly like exact ones.
    """

    pos_mask: int
    neg_mask: int
    n_pos: int
    n_neg: int
    pos_n: int
    neg_n: int
    seed: int
    fraction: float
    delta: float
    min_stratum: int

    def strata(self) -> tuple:
        """``(label, sample_size, stratum_total)`` description rows."""
        return (("pos", self.pos_n, self.n_pos), ("neg", self.neg_n, self.n_neg))


def make_sampler(
    n_pos: int,
    n_neg: int,
    seed: int,
    *,
    fraction: float,
    delta: float,
    min_stratum: int,
    labels: tuple = (),
) -> StratifiedSampler:
    """Draw the stratified sample masks for one store.

    ``labels`` extends the RNG derivation path (e.g. the worker's virtual
    rank), so every shard draws an independent — but fully deterministic —
    sample regardless of which backend or host evaluates it.
    """
    rng = make_rng(seed, "coverage_sample", *labels)
    pos_n = stratum_size(n_pos, fraction, min_stratum)
    neg_n = stratum_size(n_neg, fraction, min_stratum)
    pos_mask = 0
    for i in sorted(rng.sample(range(n_pos), pos_n)) if pos_n else ():
        pos_mask |= 1 << i
    neg_mask = 0
    for i in sorted(rng.sample(range(n_neg), neg_n)) if neg_n else ():
        neg_mask |= 1 << i
    return StratifiedSampler(
        pos_mask=pos_mask,
        neg_mask=neg_mask,
        n_pos=n_pos,
        n_neg=n_neg,
        pos_n=pos_n,
        neg_n=neg_n,
        seed=seed,
        fraction=fraction,
        delta=delta,
        min_stratum=min_stratum,
    )


def sampler_for(
    config: ILPConfig, n_pos: int, n_neg: int, seed: int, labels: tuple = ()
) -> Optional[StratifiedSampler]:
    """The run's sampler when ``config`` enables sampling, else None."""
    if not config.sampling_enabled():
        return None
    return make_sampler(
        n_pos,
        n_neg,
        seed,
        fraction=config.sample_fraction,
        delta=config.sample_delta,
        min_stratum=config.sample_min,
        labels=labels,
    )


@dataclass(frozen=True)
class SampledStats:
    """One rule's sampled coverage: hits within each stratum's sample.

    ``pos_n``/``pos_total`` are the *alive* sample size and alive stratum
    total at evaluation time (positive coverage elsewhere in the system
    always means alive-positive coverage); negatives never die, so
    ``neg_n``/``neg_total`` are the drawn sample size and the full list.
    Mergeable across worker shards — each shard samples its own span at
    the same fraction, so summed counts remain a stratified sample.
    """

    pos_hits: int
    pos_n: int
    pos_total: int
    neg_hits: int
    neg_n: int
    neg_total: int

    def merged(self, other: "SampledStats") -> "SampledStats":
        return SampledStats(
            pos_hits=self.pos_hits + other.pos_hits,
            pos_n=self.pos_n + other.pos_n,
            pos_total=self.pos_total + other.pos_total,
            neg_hits=self.neg_hits + other.neg_hits,
            neg_n=self.neg_n + other.neg_n,
            neg_total=self.neg_total + other.neg_total,
        )

    # -- scaled estimates and bounds ------------------------------------------
    @staticmethod
    def _scale(hits: int, n: int, total: int) -> float:
        if n <= 0:
            return 0.0
        return hits / n * total

    def est_pos(self) -> int:
        return round(self._scale(self.pos_hits, self.pos_n, self.pos_total))

    def est_neg(self) -> int:
        return round(self._scale(self.neg_hits, self.neg_n, self.neg_total))

    def pos_upper(self, delta: float) -> int:
        """Optimistic positive-cover bound: the largest alive-positive
        count compatible with the sample at confidence ``1 - delta``.
        Exact (== hits) when the sample is the whole stratum."""
        if self.pos_n >= self.pos_total:
            return self.pos_hits
        p = self.pos_hits / self.pos_n if self.pos_n else 1.0
        return min(self.pos_total, math.ceil((p + hoeffding_eps(self.pos_n, delta)) * self.pos_total))

    def neg_lower(self, delta: float) -> int:
        """Optimistic negative-cover bound (smallest compatible count)."""
        if self.neg_n >= self.neg_total:
            return self.neg_hits
        p = self.neg_hits / self.neg_n if self.neg_n else 0.0
        return max(0, math.floor((p - hoeffding_eps(self.neg_n, delta)) * self.neg_total))

    def maybe_good(self, config: ILPConfig) -> bool:
        """Could this rule still be good?  The sampled screen: keep a rule
        unless the sample *confidently* rules it out (too few positives
        even at the upper bound, or too many negatives even at the lower
        bound).  Optimistic by construction — a True here only buys the
        rule an exact evaluation, never acceptance."""
        delta = config.sample_delta
        return (
            self.pos_upper(delta) >= config.min_pos
            and self.neg_lower(delta) <= config.noise
        )


@dataclass(frozen=True)
class ClauseCertificate:
    """One accepted clause's sampled-vs-exact agreement record."""

    clause: str
    est_pos: int
    est_neg: int
    sample_pos_n: int
    sample_neg_n: int
    exact_pos: int
    exact_neg: int
    #: outcome of the exact recheck at acceptance time — the claim the
    #: certificate exists to pin.  Always True on the supported paths
    #: (acceptance runs on exact statistics); recorded rather than
    #: assumed so a regression is visible in the artifact.
    exact_good: bool
    #: True when the clause was accepted through a round that deferred to
    #: exact evaluation (no sampled screen ran — e.g. fault-tolerant
    #: evaluation rounds); estimate fields are zero and meaningless then.
    deferred: bool = False

    def to_dict(self) -> dict:
        return {
            "clause": self.clause,
            "est_pos": self.est_pos,
            "est_neg": self.est_neg,
            "sample_pos_n": self.sample_pos_n,
            "sample_neg_n": self.sample_neg_n,
            "exact_pos": self.exact_pos,
            "exact_neg": self.exact_neg,
            "exact_good": self.exact_good,
            "deferred": self.deferred,
        }

    @staticmethod
    def from_dict(d: dict) -> "ClauseCertificate":
        return ClauseCertificate(
            clause=str(d["clause"]),
            est_pos=int(d["est_pos"]),
            est_neg=int(d["est_neg"]),
            sample_pos_n=int(d["sample_pos_n"]),
            sample_neg_n=int(d["sample_neg_n"]),
            exact_pos=int(d["exact_pos"]),
            exact_neg=int(d["exact_neg"]),
            exact_good=bool(d["exact_good"]),
            deferred=bool(d.get("deferred", False)),
        )


@dataclass(frozen=True)
class CoverageCertificate:
    """Per-theory exactness certificate of one sampled run.

    Persisted next to the theory in the registry (``vNNNN.cert``) and
    surfaced by ``repro registry show`` and the query tier's registry op.
    ``ok`` is the headline claim: every accepted clause passed its exact
    recheck at acceptance time.
    """

    seed: int
    fraction: float
    delta: float
    min_stratum: int
    #: ``(label, sample_size, stratum_total)`` rows — per-run strata for
    #: the sequential algorithm, per-rank strata for parallel runs.
    strata: tuple = ()
    entries: tuple = ()

    @property
    def ok(self) -> bool:
        return all(e.exact_good for e in self.entries)

    def replace(self, **kw) -> "CoverageCertificate":
        return replace(self, **kw)

    def summary(self) -> str:
        """One-line human summary for CLI output."""
        deferred = sum(1 for e in self.entries if e.deferred)
        tail = f", {deferred} deferred to exact" if deferred else ""
        return (
            f"{len(self.entries)} accepted clauses, exact recheck "
            f"{'ok' if self.ok else 'FAILED'} "
            f"(fraction={self.fraction}, delta={self.delta}{tail})"
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "fraction": self.fraction,
            "delta": self.delta,
            "min_stratum": self.min_stratum,
            "strata": [list(s) for s in self.strata],
            "entries": [e.to_dict() for e in self.entries],
            "ok": self.ok,
        }

    @staticmethod
    def from_dict(d: dict) -> "CoverageCertificate":
        return CoverageCertificate(
            seed=int(d["seed"]),
            fraction=float(d["fraction"]),
            delta=float(d["delta"]),
            min_stratum=int(d["min_stratum"]),
            strata=tuple((str(l), int(n), int(t)) for l, n, t in d.get("strata", ())),
            entries=tuple(ClauseCertificate.from_dict(e) for e in d.get("entries", ())),
        )


def clause_certificate(
    clause, sampled: Optional[SampledStats], exact_pos: int, exact_neg: int, config: ILPConfig
) -> ClauseCertificate:
    """Build one entry at acceptance time (deferred when no screen ran)."""
    from repro.ilp.heuristics import is_good

    good = is_good(exact_pos, exact_neg, config)
    if sampled is None:
        return ClauseCertificate(
            clause=str(clause),
            est_pos=0,
            est_neg=0,
            sample_pos_n=0,
            sample_neg_n=0,
            exact_pos=exact_pos,
            exact_neg=exact_neg,
            exact_good=good,
            deferred=True,
        )
    return ClauseCertificate(
        clause=str(clause),
        est_pos=sampled.est_pos(),
        est_neg=sampled.est_neg(),
        sample_pos_n=sampled.pos_n,
        sample_neg_n=sampled.neg_n,
        exact_pos=exact_pos,
        exact_neg=exact_neg,
        exact_good=good,
        deferred=False,
    )


# -- wire codec (registered lazily: repro.parallel.wire imports the message
# module which imports this one, so a module-level wire import would cycle) ---


def _enc_certificate(e, c: CoverageCertificate) -> None:
    e.u(c.seed)
    e.f64(c.fraction)
    e.f64(c.delta)
    e.u(c.min_stratum)
    e.u(len(c.strata))
    for label, n, total in c.strata:
        e.sym(label)
        e.u(n)
        e.u(total)
    e.u(len(c.entries))
    for ent in c.entries:
        e.sym(ent.clause)
        e.u(ent.est_pos)
        e.u(ent.est_neg)
        e.u(ent.sample_pos_n)
        e.u(ent.sample_neg_n)
        e.u(ent.exact_pos)
        e.u(ent.exact_neg)
        e.flag(ent.exact_good)
        e.flag(ent.deferred)


def _dec_certificate(d) -> CoverageCertificate:
    seed = d.u()
    fraction = d.f64()
    delta = d.f64()
    min_stratum = d.u()
    strata = tuple((d.sym(), d.u(), d.u()) for _ in range(d.u()))
    entries = tuple(
        ClauseCertificate(
            clause=d.sym(),
            est_pos=d.u(),
            est_neg=d.u(),
            sample_pos_n=d.u(),
            sample_neg_n=d.u(),
            exact_pos=d.u(),
            exact_neg=d.u(),
            exact_good=d.flag(),
            deferred=d.flag(),
        )
        for _ in range(d.u())
    )
    return CoverageCertificate(
        seed=seed,
        fraction=fraction,
        delta=delta,
        min_stratum=min_stratum,
        strata=strata,
        entries=entries,
    )


def _ensure_codec():
    from repro.parallel import wire

    wire.register_codec(CoverageCertificate, CERT_WIRE_CODE, _enc_certificate, _dec_certificate)
    return wire


def certificate_to_bytes(cert: CoverageCertificate) -> bytes:
    """Serialize a certificate in the wire format (``.cert`` file body)."""
    wire = _ensure_codec()
    data = wire.encode_always(cert)
    assert data is not None
    return data


def certificate_from_bytes(data: bytes) -> CoverageCertificate:
    """Decode a ``.cert`` file body; raises ``WireError``/``ValueError``
    on malformed or foreign payloads."""
    wire = _ensure_codec()
    out = wire.decode(data)
    if not isinstance(out, CoverageCertificate):
        raise wire.WireError("not a coverage certificate")
    return out

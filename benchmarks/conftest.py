"""Shared fixtures for the benchmark suite.

The evaluation matrix (every cell of Tables 2-6) is computed once per
session and shared across bench modules.  Scale knobs:

* ``REPRO_SCALE``    — ``small`` (default; seconds-scale synthetic data) or
  ``paper`` (Table 1 cardinalities; budget an hour+);
* ``REPRO_FOLDS``    — cross-validation folds (default 3 small / 5 paper);
* ``REPRO_DATASETS`` — comma-separated subset of
  ``carcinogenesis,mesh,pyrimidines``;
* ``REPRO_BACKEND``  — execution substrate for parallel cells
  (``sim``/``local``/``mpi``; default ``sim``).  Under ``sim`` times are
  virtual seconds; under the real backends they are wall-clock.

Each bench prints the corresponding paper table and writes it to
``benchmarks/output/`` so EXPERIMENTS.md can reference the artifacts.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.datasets import make_dataset
from repro.experiments.runner import MatrixResult, run_matrix

SCALE = os.environ.get("REPRO_SCALE", "small")
FOLDS = int(os.environ.get("REPRO_FOLDS", "5" if SCALE == "paper" else "3"))
DATASET_NAMES = tuple(
    os.environ.get("REPRO_DATASETS", "carcinogenesis,mesh,pyrimidines").split(",")
)
SEED = int(os.environ.get("REPRO_SEED", "0"))
BACKEND = os.environ.get("REPRO_BACKEND", "sim")
PS = (2, 4, 8)
WIDTHS = (None, 10)

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def scale() -> str:
    return SCALE


@pytest.fixture(scope="session")
def datasets():
    """The Table 1 datasets at the configured scale."""
    return [make_dataset(name, seed=SEED, scale=SCALE) for name in DATASET_NAMES]


@pytest.fixture(scope="session")
def matrix() -> MatrixResult:
    """The full evaluation matrix: every (dataset, width, p, fold) cell."""
    return run_matrix(
        dataset_names=DATASET_NAMES,
        widths=WIDTHS,
        ps=PS,
        k_folds=FOLDS,
        scale=SCALE,
        seed=SEED,
        backend=BACKEND,
    )


@pytest.fixture(scope="session")
def table_sink():
    """Print a rendered table and persist it under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def sink(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")

    return sink


def one_shot(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Matrix-style workloads take seconds; autocalibrated repetition would
    multiply the suite's runtime for no precision benefit (the runs are
    deterministic in virtual time anyway).
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)

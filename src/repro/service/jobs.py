"""Learning jobs: declarative specs and their execution.

A :class:`JobSpec` names everything one learning run needs — dataset,
algorithm, processor count, backend, seed — in plain data, so it can
travel as JSON over the service socket and as a wire-codec payload in
the scheduler's durable job records.  :func:`run_job` executes a spec
through the exact same front-ends the CLI uses (``mdie`` /
``run_p2mdie`` / ``run_coverage_parallel`` / ``run_independent``), so a
job's learned theory is bit-identical to the corresponding direct
``repro learn`` invocation.

Checkpoint-capable algorithms (``mdie``, ``p2mdie``, ``covpar``) may be
run in epoch *chunks* (``max_epochs`` + ``resume``), which is what gives
the scheduler preemption points for cancellation and crash-resume
without touching the algorithms themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.datasets import DATASETS, make_dataset
from repro.ilp import accuracy, mdie
from repro.logic.clause import Clause, Theory
from repro.logic.engine import Engine
from repro.parallel import wire

__all__ = [
    "ALGOS",
    "JobSpec",
    "JobRecord",
    "JobOutcome",
    "OutcomeSummary",
    "run_job",
]

#: algorithms a job may request.  ``mdie`` is the sequential baseline
#: (always p=1); the other three are the parallel strategies.
ALGOS = ("mdie", "p2mdie", "covpar", "independent")

#: algorithms that write epoch-boundary checkpoints (and can therefore
#: be preempted and resumed by the scheduler).
CHECKPOINTABLE = ("mdie", "p2mdie", "covpar")

#: wire type code of the durable job record (append-only registry;
#: 21 = checkpoint, 22 = registry record, 23 = job record).
_WIRE_CODE = 23

#: ``JobSpec.width`` sentinel: use the config's ``pipeline_width``.
WIDTH_DEFAULT = -1
#: ``JobSpec.width`` sentinel: the paper's "nolimit".
WIDTH_NOLIMIT = -2


@dataclass(frozen=True)
class JobSpec:
    """One declarative learning request.

    Attributes
    ----------
    dataset:
        Registered dataset name (see :data:`repro.datasets.DATASETS`).
    algo:
        One of :data:`ALGOS`.
    p:
        Worker count for the parallel algorithms (ignored by ``mdie``).
    width:
        Pipeline width: a positive int, :data:`WIDTH_DEFAULT` (use the
        dataset config's width) or :data:`WIDTH_NOLIMIT`.
    seed / scale:
        Dataset + run determinism knobs, as in ``repro learn``.
    backend:
        Execution substrate for parallel algorithms: ``"sim"``,
        ``"local"`` or ``"mpi"``.  An ``"mpi"`` job requires the service
        process to be rank 0 of an ``mpiexec`` launch whose world size
        matches the job's ``p`` (+1 master), and MPI jobs serialize over
        the one shared communicator — run them on a single-slot
        scheduler.  Without mpi4py the job fails cleanly at run time
        with a ``BackendUnavailableError`` outcome.
    priority:
        Scheduler queue priority — higher runs first; ties are FIFO.
    max_epochs:
        Optional cap on covering epochs (absolute, as in the front-ends).
    preemptible:
        Run in epoch chunks with checkpoints between them, giving the
        scheduler cancellation points mid-run and crash-resume.  Only
        meaningful for :data:`CHECKPOINTABLE` algorithms.
    register_as:
        When set, publish the learned theory under this name in the
        scheduler's :class:`~repro.service.registry.TheoryRegistry`.
    """

    dataset: str
    algo: str = "mdie"
    p: int = 1
    width: int = WIDTH_DEFAULT
    seed: int = 0
    scale: str = "small"
    backend: str = "sim"
    priority: int = 0
    max_epochs: Optional[int] = None
    preemptible: bool = False
    register_as: Optional[str] = None

    def __post_init__(self):
        if self.dataset not in DATASETS:
            raise ValueError(f"unknown dataset {self.dataset!r}; known: {sorted(DATASETS)}")
        if self.algo not in ALGOS:
            raise ValueError(f"unknown algo {self.algo!r}; known: {ALGOS}")
        if self.algo != "mdie" and self.p < 1:
            raise ValueError("p must be >= 1")
        from repro.backend import BACKEND_NAMES

        if self.backend not in BACKEND_NAMES:
            raise ValueError(f"job backend must be one of {BACKEND_NAMES}")
        if self.scale not in ("small", "paper"):
            raise ValueError("scale must be 'small' or 'paper'")
        if self.width != WIDTH_DEFAULT and self.width != WIDTH_NOLIMIT and self.width < 1:
            raise ValueError("width must be positive, WIDTH_DEFAULT or WIDTH_NOLIMIT")
        if self.max_epochs is not None and self.max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")
        if self.preemptible and self.algo not in CHECKPOINTABLE:
            raise ValueError(
                f"algo {self.algo!r} writes no checkpoints and cannot be "
                f"preemptible (checkpointable: {CHECKPOINTABLE})"
            )
        if self.max_epochs is not None and self.algo == "independent":
            raise ValueError(
                "algo 'independent' has a single merge epoch; max_epochs "
                "does not apply"
            )
        if self.register_as is not None:
            from repro.service.registry import validate_name

            validate_name(self.register_as)

    @property
    def checkpointable(self) -> bool:
        return self.algo in CHECKPOINTABLE

    def replace(self, **kw) -> "JobSpec":
        return replace(self, **kw)

    # -- JSON travel (service socket) -------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data form for the JSON-lines protocol."""
        return {
            "dataset": self.dataset,
            "algo": self.algo,
            "p": self.p,
            "width": self.width,
            "seed": self.seed,
            "scale": self.scale,
            "backend": self.backend,
            "priority": self.priority,
            "max_epochs": self.max_epochs,
            "preemptible": self.preemptible,
            "register_as": self.register_as,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        known = {
            "dataset", "algo", "p", "width", "seed", "scale", "backend",
            "priority", "max_epochs", "preemptible", "register_as",
        }
        extra = set(d) - known
        if extra:
            raise ValueError(f"unknown job-spec fields: {sorted(extra)}")
        if "dataset" not in d:
            raise ValueError("job spec needs a 'dataset'")
        return cls(**d)


@dataclass(frozen=True)
class OutcomeSummary:
    """Wire-persistable digest of a finished job's :class:`JobOutcome`.

    Exactly the plain-data view :meth:`JobOutcome.summary` serves over
    the protocol — embedded in the durable :class:`JobRecord` so ``done``
    jobs keep their outcome (theory text included) across scheduler
    restarts instead of degrading to a bare state string.
    """

    rules: int
    epochs: int
    seconds: float
    uncovered: int
    ops: int
    mbytes: float
    train_accuracy: float
    #: the learned theory as Prolog text.
    theory: str

    @classmethod
    def from_outcome(cls, outcome: "JobOutcome") -> "OutcomeSummary":
        return cls(**outcome.summary())

    def to_dict(self) -> dict:
        return {
            "rules": self.rules,
            "epochs": self.epochs,
            "seconds": self.seconds,
            "uncovered": self.uncovered,
            "ops": self.ops,
            "mbytes": self.mbytes,
            "train_accuracy": self.train_accuracy,
            "theory": self.theory,
        }


@dataclass(frozen=True)
class JobRecord:
    """Durable scheduler-side view of one job (spec + lifecycle state).

    Persisted per state transition (wire code 23) when the scheduler has
    a ``state_dir``, so an interrupted scheduler can recover its queue —
    see :meth:`repro.service.scheduler.JobScheduler.recover_jobs`.  The
    terminal ``done`` transition embeds an :class:`OutcomeSummary`, so
    finished jobs survive restarts with their results, and ``failed``
    ones with their error.
    """

    job_id: str
    seq: int
    spec: JobSpec
    #: "queued" | "running" | "done" | "failed" | "cancelled"
    state: str
    #: covering epochs completed so far (chunked jobs advance this).
    epochs_done: int = 0
    error: str = ""
    #: present on persisted ``done`` records.
    outcome: Optional[OutcomeSummary] = None
    #: client-supplied idempotency key (submit dedup across retries and
    #: scheduler restarts); None when the client sent none.
    idem_key: Optional[str] = None

    def replace(self, **kw) -> "JobRecord":
        return replace(self, **kw)

    def to_dict(self) -> dict:
        d = {"job": self.job_id, "seq": self.seq, "state": self.state,
             "epochs_done": self.epochs_done, "spec": self.spec.to_dict()}
        if self.error:
            d["error"] = self.error
        if self.outcome is not None:
            d["outcome"] = self.outcome.to_dict()
        if self.idem_key is not None:
            d["idem_key"] = self.idem_key
        return d


@dataclass
class JobOutcome:
    """Artifacts of one completed job (whatever the algorithm)."""

    theory: Theory
    epochs: int
    #: virtual seconds (sim / sequential cost model) or wall seconds (local).
    seconds: float
    uncovered: int
    #: engine operations (sequential mdie) — 0 for parallel runs.
    ops: int = 0
    #: communication volume in MB (parallel runs) — 0.0 for mdie.
    mbytes: float = 0.0
    #: training accuracy (percent) on the job's dataset.
    train_accuracy: float = 0.0
    #: True when the covering loop ran to completion (not an epoch cap).
    finished: bool = True
    #: ``repr`` of the ILPConfig the run used (registry provenance).
    config_sig: str = ""
    epoch_logs: list = field(default_factory=list)
    #: sampled-run :class:`~repro.ilp.sampling.CoverageCertificate`
    #: (None on exact runs); persisted next to the theory on publish.
    certificate: object = None

    def summary(self) -> dict:
        """Plain-data summary for status responses (theory as Prolog text)."""
        from repro.logic.io import theory_to_prolog

        return {
            "rules": len(self.theory),
            "epochs": self.epochs,
            "seconds": round(self.seconds, 3),
            "uncovered": self.uncovered,
            "ops": self.ops,
            "mbytes": round(self.mbytes, 6),
            "train_accuracy": round(self.train_accuracy, 2),
            "theory": theory_to_prolog(self.theory),
        }


def _width_arg(spec: JobSpec, config) -> Optional[int]:
    if spec.width == WIDTH_DEFAULT:
        return config.pipeline_width
    if spec.width == WIDTH_NOLIMIT:
        return None
    return spec.width


def run_job(
    spec: JobSpec,
    *,
    checkpoint_dir: Optional[str] = None,
    resume=None,
    max_epochs: Optional[int] = None,
) -> JobOutcome:
    """Execute one job spec through the standard run front-ends.

    ``checkpoint_dir`` / ``resume`` / ``max_epochs`` are the chunking
    hooks the scheduler uses for preemptible jobs; they forward directly
    to the front-ends' checkpoint machinery, so a chunked job's final
    theory is bit-identical to a one-shot run (the guarantee pinned by
    ``tests/fault/test_resume.py``).  ``max_epochs`` is absolute (total
    completed epochs), overriding ``spec.max_epochs`` when given.
    """
    ds = make_dataset(spec.dataset, seed=spec.seed, scale=spec.scale)
    cap = max_epochs if max_epochs is not None else spec.max_epochs
    meta = (
        ("dataset", spec.dataset),
        ("scale", spec.scale),
        ("p", str(spec.p)),
        ("width", str(spec.width)),
    )
    if spec.algo == "mdie":
        res = mdie(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=spec.seed,
            max_epochs=cap, checkpoint_dir=checkpoint_dir,
            checkpoint_meta=meta, resume=resume,
        )
        from repro.parallel import sequential_seconds

        outcome = JobOutcome(
            theory=res.theory,
            epochs=res.epochs,
            seconds=sequential_seconds(res),
            uncovered=res.uncovered,
            ops=res.ops,
            finished=_seq_finished(res, cap),
            certificate=res.certificate,
        )
    elif spec.algo == "independent":
        from repro.parallel import run_independent

        res = run_independent(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=spec.p,
            width=_width_arg(spec, ds.config), seed=spec.seed, backend=spec.backend,
        )
        # Single merge epoch, no cap parameter: always ran to completion.
        outcome = _parallel_outcome(res, None)
    else:
        if spec.algo == "p2mdie":
            from repro.parallel import run_p2mdie as front
        else:
            from repro.parallel import run_coverage_parallel as front

        kw = dict(
            p=spec.p, seed=spec.seed, backend=spec.backend, max_epochs=cap,
            checkpoint_dir=checkpoint_dir, checkpoint_meta=meta, resume=resume,
        )
        if spec.algo == "p2mdie":
            kw["width"] = _width_arg(spec, ds.config)
        res = front(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, **kw)
        outcome = _parallel_outcome(res, cap)
    engine = Engine(ds.kb, ds.config.engine_budget(), kernel=ds.config.coverage_kernel)
    outcome.train_accuracy = accuracy(engine, outcome.theory, ds.pos, ds.neg)
    outcome.config_sig = repr(ds.config)
    return outcome


def _seq_finished(res, cap: Optional[int]) -> bool:
    # An epoch-capped run that hit the cap may have had more work to do;
    # everything else terminated because the covering loop was done.
    return not (cap is not None and res.epochs >= cap and res.uncovered > 0)


def _parallel_outcome(res, cap: Optional[int]) -> JobOutcome:
    return JobOutcome(
        theory=res.theory,
        epochs=res.epochs,
        seconds=res.seconds,
        uncovered=res.uncovered,
        mbytes=res.mbytes,
        finished=not (cap is not None and res.epochs >= cap and res.uncovered > 0),
        epoch_logs=list(getattr(res, "epoch_logs", [])),
        certificate=getattr(res, "certificate", None),
    )


# -- wire codec for the durable job record ----------------------------------------


def _enc_job_record(e, r: JobRecord) -> None:
    e.sym(r.job_id)
    e.u(r.seq)
    e.sym(r.state)
    e.u(r.epochs_done)
    e.sym(r.error)
    s = r.spec
    e.sym(s.dataset)
    e.sym(s.algo)
    e.u(s.p)
    e.z(s.width)
    e.z(s.seed)
    e.sym(s.scale)
    e.sym(s.backend)
    e.z(s.priority)
    e.flag(s.max_epochs is not None)
    if s.max_epochs is not None:
        e.u(s.max_epochs)
    e.flag(s.preemptible)
    e.flag(s.register_as is not None)
    if s.register_as is not None:
        e.sym(s.register_as)
    e.flag(r.outcome is not None)
    if r.outcome is not None:
        o = r.outcome
        e.u(o.rules)
        e.u(o.epochs)
        # Floats travel as repr text: exact round-trip, symbol-table cheap.
        e.sym(repr(o.seconds))
        e.u(o.uncovered)
        e.u(o.ops)
        e.sym(repr(o.mbytes))
        e.sym(repr(o.train_accuracy))
        e.sym(o.theory)
    e.flag(r.idem_key is not None)
    if r.idem_key is not None:
        e.sym(r.idem_key)


def _dec_outcome_summary(d) -> OutcomeSummary:
    rules = d.u()
    epochs = d.u()
    seconds = float(d.sym())
    uncovered = d.u()
    ops = d.u()
    return OutcomeSummary(
        rules=rules,
        epochs=epochs,
        seconds=seconds,
        uncovered=uncovered,
        ops=ops,
        mbytes=float(d.sym()),
        train_accuracy=float(d.sym()),
        theory=d.sym(),
    )


def _dec_job_record(d) -> JobRecord:
    job_id = d.sym()
    seq = d.u()
    state = d.sym()
    epochs_done = d.u()
    error = d.sym()
    spec = JobSpec(
        dataset=d.sym(),
        algo=d.sym(),
        p=d.u(),
        width=d.z(),
        seed=d.z(),
        scale=d.sym(),
        backend=d.sym(),
        priority=d.z(),
        max_epochs=d.u() if d.flag() else None,
        preemptible=d.flag(),
        register_as=d.sym() if d.flag() else None,
    )
    outcome = _dec_outcome_summary(d) if d.flag() else None
    idem_key = d.sym() if d.flag() else None
    return JobRecord(
        job_id=job_id, seq=seq, spec=spec, state=state,
        epochs_done=epochs_done, error=error, outcome=outcome,
        idem_key=idem_key,
    )


wire.register_codec(JobRecord, _WIRE_CODE, _enc_job_record, _dec_job_record)

"""Unit tests for heuristics, acceptance, theories and config."""

import pytest

from repro.ilp.config import ILPConfig
from repro.ilp.heuristics import HEURISTICS, is_good, score_rule
from repro.ilp.theory import TheoryReport, accuracy, confusion, predicts
from repro.logic.clause import Theory
from repro.logic.engine import Engine
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_clause, parse_term


class TestHeuristics:
    def test_coverage(self):
        assert HEURISTICS["coverage"](10, 3, 2) == 7.0

    def test_compression_penalises_length(self):
        assert HEURISTICS["compression"](10, 0, 1) > HEURISTICS["compression"](10, 0, 4)

    def test_laplace_bounds(self):
        assert 0 < HEURISTICS["laplace"](0, 0, 1) < 1
        assert HEURISTICS["laplace"](100, 0, 1) > HEURISTICS["laplace"](1, 0, 1)

    def test_mestimate(self):
        assert 0 < HEURISTICS["mestimate"](5, 5, 1) < 1

    def test_precision_zero_cover(self):
        assert HEURISTICS["precision"](0, 0, 1) == 0.0

    def test_score_rule_dispatch(self):
        cfg = ILPConfig(heuristic="coverage")
        assert score_rule(5, 2, 2, cfg) == 3.0

    def test_unknown_heuristic(self):
        cfg = ILPConfig(heuristic="coverage")
        object.__setattr__(cfg, "heuristic", "nope")
        with pytest.raises(ValueError):
            score_rule(1, 0, 1, cfg)


class TestIsGood:
    def test_min_pos(self):
        cfg = ILPConfig(min_pos=3, noise=0)
        assert not is_good(2, 0, cfg)
        assert is_good(3, 0, cfg)

    def test_noise_bound(self):
        cfg = ILPConfig(min_pos=1, noise=2)
        assert is_good(5, 2, cfg)
        assert not is_good(5, 3, cfg)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ILPConfig(max_clause_length=0)
        with pytest.raises(ValueError):
            ILPConfig(noise=-1)
        with pytest.raises(ValueError):
            ILPConfig(pipeline_width=0)
        with pytest.raises(ValueError):
            ILPConfig(on_uncoverable="whatever")

    def test_width_none_ok(self):
        assert ILPConfig(pipeline_width=None).pipeline_width is None

    def test_with_width(self):
        cfg = ILPConfig(pipeline_width=10)
        assert cfg.with_width(None).pipeline_width is None
        assert cfg.pipeline_width == 10  # frozen original

    def test_engine_budget(self):
        cfg = ILPConfig(engine_max_depth=5, engine_max_ops=100)
        b = cfg.engine_budget()
        assert (b.max_depth, b.max_ops) == (5, 100)


class TestTheoryPrediction:
    @pytest.fixture
    def setup(self):
        kb = KnowledgeBase()
        kb.add_program("q(a). q(b). r(c).")
        theory = Theory([parse_clause("p(X) :- q(X).")])
        return Engine(kb), theory

    def test_predicts(self, setup):
        eng, th = setup
        assert predicts(eng, th, parse_term("p(a)"))
        assert not predicts(eng, th, parse_term("p(c)"))

    def test_confusion(self, setup):
        eng, th = setup
        pos = [parse_term("p(a)"), parse_term("p(c)")]
        neg = [parse_term("p(b)"), parse_term("p(z)")]
        rep = confusion(eng, th, pos, neg)
        assert (rep.tp, rep.fn, rep.fp, rep.tn) == (1, 1, 1, 1)
        assert rep.accuracy == 0.5
        assert rep.precision == 0.5
        assert rep.recall == 0.5

    def test_accuracy_percentage(self, setup):
        eng, th = setup
        assert accuracy(eng, th, [parse_term("p(a)")], [parse_term("p(z)")]) == 100.0

    def test_empty_theory_rejects_all(self, setup):
        eng, _ = setup
        th = Theory()
        assert accuracy(eng, th, [parse_term("p(a)")], [parse_term("p(z)")]) == 50.0

    def test_report_zero_division(self):
        rep = TheoryReport(tp=0, fn=0, tn=0, fp=0)
        assert rep.accuracy == 0.0
        assert rep.precision == 0.0
        assert rep.recall == 0.0

"""Pipeline activity trace — a text reproduction of the paper's Figs. 3-4.

Figures 3 and 4 illustrate the pipelined search: p concurrent searches,
each visiting every worker once, stages passing "good" rules onward, the
master collecting the final rule sets.  From a traced run
(``record_trace=True``) we render the equivalent as a Gantt-style text
chart: one row per rank, time binned into columns, each busy bin showing
the stage being executed (``1``..``9`` then ``A``..``Z`` for
``search(sK)``, ``s`` for saturation, ``e`` for evaluation, ``m`` for
mark_covered, ``.`` idle).  Search stages use digits for 1-9 and
uppercase letters for 10-35 (``+`` beyond that) so every stage keeps a
distinct cell at p >= 10; lowercase letters stay reserved for the named
pipeline phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.process import ComputeInterval

__all__ = ["render_gantt", "occupancy", "stage_summary"]

_LABEL_CHARS = {
    "load": "l",
    "saturate": "s",
    "evaluate": "e",
    "mark_covered": "m",
    "aggregate": "a",
    "compute": "c",
    "gather": "g",
    "recover": "r",
    "local_mdie": "w",
}


def _char_for(label: str) -> str:
    if label.startswith("search(s") and label.endswith(")"):
        try:
            k = int(label[len("search(s") : -1])
        except ValueError:
            return "c"
        if 1 <= k <= 9:
            return str(k)
        if 10 <= k <= 35:  # base-36 digit, uppercased to dodge stage-name chars
            return chr(ord("A") + k - 10)
        return "+"
    return _LABEL_CHARS.get(label, "c")


def render_gantt(trace: Sequence[ComputeInterval], width: int = 100, t_end: float | None = None) -> str:
    """Render busy intervals as one text row per rank.

    >>> from repro.cluster.process import ComputeInterval as CI
    >>> print(render_gantt([CI(1, 0.0, 0.5, "search(s1)"), CI(1, 0.5, 1.0, "evaluate")], width=10))
    rank 1 |11111eeeee|
    """
    if not trace:
        return "(empty trace)"
    end = t_end if t_end is not None else max(iv.end for iv in trace)
    if end <= 0:
        return "(zero-length trace)"
    ranks = sorted({iv.rank for iv in trace})
    rows = []
    for rank in ranks:
        cells = ["."] * width
        for iv in trace:
            if iv.rank != rank:
                continue
            lo = int(iv.start / end * width)
            hi = max(lo + 1, int(iv.end / end * width))
            ch = _char_for(iv.label)
            for i in range(lo, min(hi, width)):
                cells[i] = ch
        rows.append(f"rank {rank} |{''.join(cells)}|")
    return "\n".join(rows)


def occupancy(trace: Sequence[ComputeInterval], makespan: float) -> dict[int, float]:
    """Busy fraction per rank — the pipeline's load-balance measure.

    The paper argues stage granularity is "very similar, leading to
    balanced computations"; this quantifies that claim for a run.
    """
    if makespan <= 0:
        raise ValueError("makespan must be positive")
    busy: dict[int, float] = {}
    for iv in trace:
        busy[iv.rank] = busy.get(iv.rank, 0.0) + (iv.end - iv.start)
    return {rank: b / makespan for rank, b in sorted(busy.items())}


@dataclass(frozen=True)
class StageStat:
    label: str
    count: int
    total_seconds: float


def stage_summary(trace: Sequence[ComputeInterval]) -> list[StageStat]:
    """Aggregate busy time per stage label (search stages, evaluate, ...)."""
    agg: dict[str, list[float]] = {}
    for iv in trace:
        agg.setdefault(iv.label, []).append(iv.end - iv.start)
    return [
        StageStat(label=k, count=len(v), total_seconds=sum(v))
        for k, v in sorted(agg.items())
    ]

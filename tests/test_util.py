"""Tests for the shared utilities (rng, formatting)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.fmt import fmt_float, fmt_int, fmt_mbytes, render_table
from repro.util.rng import RngStream, derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_label_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_types(self):
        assert derive_seed(0, ("x", 1)) != derive_seed(0, ("x", 2))

    @given(st.integers(0, 2**31), st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_collision_resistance_smoke(self, a, b):
        if a != b:
            assert derive_seed(a, "k") != derive_seed(b, "k")


class TestMakeRng:
    def test_same_stream(self):
        assert make_rng(7, "x").random() == make_rng(7, "x").random()

    def test_independent_streams(self):
        assert make_rng(7, "x").random() != make_rng(7, "y").random()


class TestRngStream:
    def test_child_paths(self):
        root = RngStream(seed=1)
        a = root.child("part")
        b = root.child("part")
        assert a.rng.random() == b.rng.random()

    def test_nested_children_differ(self):
        root = RngStream(seed=1)
        assert root.child("a").rng.random() != root.child("a", "b").rng.random()

    def test_passthroughs(self):
        s = RngStream(seed=3).child("t")
        xs = [1, 2, 3, 4]
        s.shuffle(xs)
        assert sorted(xs) == [1, 2, 3, 4]
        assert s.choice([1]) == 1
        assert 0 <= s.randint(0, 5) <= 5
        assert 0.0 <= s.random() < 1.0
        assert 1.0 <= s.uniform(1.0, 2.0) <= 2.0
        assert len(s.sample(range(10), 3)) == 3
        s.gauss(0, 1)  # no exception


class TestFmt:
    def test_fmt_int_thousands(self):
        assert fmt_int(3231) == "3,231"
        assert fmt_int(999.6) == "1,000"

    def test_fmt_float(self):
        assert fmt_float(3.14159, 2) == "3.14"

    def test_fmt_mbytes(self):
        assert fmt_mbytes(1024 * 1024 * 33) == "33"

    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].index("bb") == lines[1].index("2")
        assert lines[0].index("bb") == lines[2].index("4")

    def test_render_table_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"
        assert set(out.splitlines()[1]) == {"-"}

"""Table 1 — dataset characterisation.

Regenerates the paper's Table 1 (|E+| / |E-| per dataset) from the
synthetic generators and benchmarks generation cost.
"""

import pytest

from conftest import SEED, one_shot
from repro.datasets import make_dataset
from repro.experiments.tables import table1_datasets


def test_table1(benchmark, datasets, table_sink):
    table = one_shot(benchmark, table1_datasets, datasets)
    table_sink("table1_datasets", table)
    for ds in datasets:
        assert ds.n_pos > 0 and ds.n_neg > 0


@pytest.mark.parametrize("name", ("carcinogenesis", "mesh", "pyrimidines"))
def test_bench_generation(benchmark, name, scale):
    ds = one_shot(benchmark, make_dataset, name, seed=SEED, scale=scale)
    assert ds.kb.n_facts > 0

"""Learning-as-a-service benchmark: job throughput and query scaling.

Two measurements, both wall-clock (the service layer overlaps real
work — virtual time has no meaning here):

* **Job throughput** — a fleet of learning jobs (distinct seeds, the
  ``local`` backend: real OS processes per job) executed over 1, 2 and
  4 scheduler slots.  More slots should complete the same fleet in less
  wall time; every job's theory is asserted bit-identical to a direct
  in-process run of the same spec.
* **Query latency / batch scaling** — batched coverage queries against
  a registered theory for batch sizes 1 → 1000, versus the naive
  per-example ``predicts`` loop on the same warm engine.  Batched and
  one-shot classifications must agree exactly (asserted); the report
  records the per-query latency amortization.
* **Shard scaling** — the same batched query evaluated shard-parallel
  over 1, 2 and 4 worker threads; every sharded covered-bitset is
  asserted bit-identical to the sequential path (the query tier's core
  guarantee), with throughput gated only on machines with real cores.
* **Streaming latency** — time-to-first-shard-frame vs full-batch
  latency of one streamed query (shards serialized on one worker, so
  the decoupling is structural, not a scheduling accident); first
  frame strictly below full batch is asserted unconditionally.
* **Transport bytes** — one identical batched query over the JSON-lines
  and the negotiated binary wire transports against a live server;
  wire must cost strictly fewer bytes on the socket (asserted).
* **Chaos** — the full served workload driven twice through the
  :mod:`repro.experiments.chaos` harness (fault-free leg + the
  ``examples/faultplans/service_chaos.json`` plan: connection resets,
  engine-lease faults, a scheduler-slot crash, a torn durable write,
  graceful drain and restart).  Result parity, zero duplicated jobs
  and zero corrupt records are asserted; the tail-latency delta is
  the reported price.

Knobs:

* ``REPRO_SERVICE_DATASET`` — dataset name (default ``trains``);
* ``REPRO_SEED``            — base RNG seed (default 0);
* ``REPRO_BENCH_SMOKE=1``   — CI smoke mode: fewer jobs/slots and
  smaller batches, assertions unchanged.

Writes ``BENCH_service.json`` at the repo root (all ``BENCH_*``
artifacts live there so the perf trajectory is trackable PR-over-PR).

Standalone: ``PYTHONPATH=src python benchmarks/bench_service.py``.
Under the bench suite it runs as an ordinary test.
"""

from __future__ import annotations

import os
import pathlib
import time

from repro.experiments.chaos import chaos_passed, run_chaos
from repro.experiments.serviceload import (
    make_job_fleet,
    measure_query_scaling,
    measure_shard_scaling,
    measure_streaming_latency,
    measure_transport_bytes,
    run_job_fleet,
)
from repro.fault.service import ServiceFaultPlan

DATASET = os.environ.get("REPRO_SERVICE_DATASET", "trains")
SEED = int(os.environ.get("REPRO_SEED", "0"))
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = ROOT / "BENCH_service.json"

SLOTS = (1, 2) if SMOKE else (1, 2, 4)
N_JOBS = 4 if SMOKE else 8
BATCHES = (1, 10, 100) if SMOKE else (1, 10, 100, 1000)
SHARDS = (1, 2, 4)
# The query-tier legs stay at full size even in smoke mode: they are
# pure-query (milliseconds), and the issue's acceptance criteria pin the
# streaming comparison to the 1000-example leg.
SHARD_BATCH = 1000
STREAM_BATCH = 1000
WIRE_BATCH = 200
CHAOS_PLAN = ROOT / "examples" / "faultplans" / "service_chaos.json"
CHAOS_REQUESTS = 12 if SMOKE else 30
CHAOS_BATCH = 40 if SMOKE else 100


def run_benchmark() -> dict:
    throughput = []
    for slots in SLOTS:
        fleet = make_job_fleet(
            N_JOBS, dataset=DATASET, algo="p2mdie", p=2, backend="local",
            base_seed=SEED,
        )
        # Parity is asserted once (it is slot-count independent and the
        # direct baseline runs dominate the benchmark's own runtime).
        row = run_job_fleet(fleet, slots=slots, verify_parity=(slots == SLOTS[0]))
        throughput.append(row)

    queries = measure_query_scaling(BATCHES, dataset=DATASET, seed=SEED)
    shard_scaling = measure_shard_scaling(SHARDS, batch=SHARD_BATCH, dataset=DATASET, seed=SEED)
    streaming = measure_streaming_latency(batch=STREAM_BATCH, shards=4, dataset=DATASET, seed=SEED)
    transport = measure_transport_bytes(batch=WIRE_BATCH, dataset=DATASET, seed=SEED)
    chaos_full = run_chaos(
        ServiceFaultPlan.load(str(CHAOS_PLAN)),
        dataset=DATASET, seed=SEED,
        batch=CHAOS_BATCH, requests=CHAOS_REQUESTS,
    )
    # The full per-leg payloads are large and machine-specific; the bench
    # artifact keeps the gated invariants and the headline tail price.
    chaos = {
        "plan_events": chaos_full["plan_events"],
        "injected": len(chaos_full["injected"]),
        "baseline_latency": chaos_full["baseline"]["load"].get("latency"),
        "chaos_latency": chaos_full["chaos"]["load"].get("latency"),
        "tail_delta_ms": chaos_full["tail_delta_ms"],
        "invariants": chaos_full["invariants"],
        "passed": chaos_passed(chaos_full),
    }
    return {
        "dataset": DATASET,
        "seed": SEED,
        "n_jobs": N_JOBS,
        "cpu_count": os.cpu_count() or 1,
        "throughput": throughput,
        "queries": queries,
        "shard_scaling": shard_scaling,
        "streaming": streaming,
        "transport": transport,
        "chaos": chaos,
    }


def render(report: dict) -> str:
    lines = [
        f"Learning-as-a-service — {report['n_jobs']} p2mdie jobs (local backend) "
        f"on {report['dataset']}, batched queries vs one-shot",
        f"{'slots':>6} {'wall s':>9} {'jobs/s':>8} {'parity':>7}",
    ]
    for row in report["throughput"]:
        lines.append(
            f"{row['slots']:>6} {row['wall_s']:>9.3f} {row['jobs_per_s']:>8.3f} "
            f"{str(row['parity']):>7}"
        )
    lines.append(
        f"{'batch':>6} {'batched µs/q':>13} {'one-shot µs/q':>14} {'speedup':>8}"
    )
    for row in report["queries"]["rows"]:
        lines.append(
            f"{row['batch']:>6} {row['batched_us_per_query']:>13.1f} "
            f"{row['oneshot_us_per_query']:>14.1f} {row['speedup']:>8.2f}x"
        )
    shard = report["shard_scaling"]
    lines.append(
        f"{'shards':>6} {'wall s':>9} {'ex/s':>10} {'vs seq':>8}   "
        f"(batch={shard['batch']}, sequential {shard['sequential_s']:.4f}s)"
    )
    for row in shard["rows"]:
        lines.append(
            f"{row['shards']:>6} {row['wall_s']:>9.4f} {row['examples_per_s']:>10.0f} "
            f"{row['speedup_vs_seq']:>7.2f}x"
        )
    stream = report["streaming"]
    lines.append(
        f"streaming: first frame {1e3 * stream['first_frame_s']:.2f} ms vs "
        f"full batch {1e3 * stream['full_batch_s']:.2f} ms "
        f"({stream['shards']} shards, batch={stream['batch']}, "
        f"first at {100 * stream['first_fraction']:.0f}% of full)"
    )
    wire = report["transport"]
    lines.append(
        f"transport: wire {wire['wire']['bytes_total']} B vs "
        f"json {wire['json']['bytes_total']} B per {wire['batch']}-example query "
        f"({100 * wire['wire_fraction']:.0f}% of JSON-lines)"
    )
    chaos = report["chaos"]
    deltas = chaos["tail_delta_ms"]
    lines.append(
        f"chaos: {chaos['injected']} faults injected, "
        f"parity={chaos['invariants']['parity']} "
        f"duplicated={chaos['invariants']['duplicated_jobs']} "
        f"corrupt={chaos['invariants']['corrupt_records']}, tail price "
        f"p95+{deltas.get('p95_ms', 0.0)}ms p99+{deltas.get('p99_ms', 0.0)}ms"
    )
    return "\n".join(lines)


def write_report(report: dict, duration_s: float = None) -> pathlib.Path:
    from bench_meta import write_bench_json

    return write_bench_json(OUT_PATH, report, SMOKE, duration_s=duration_s)


def check(report: dict) -> None:
    assert all(r["parity"] for r in report["throughput"]), (
        "service job results diverged from direct runs!"
    )
    assert report["queries"]["parity"], (
        "batched query results diverged from one-shot evaluation!"
    )
    assert report["shard_scaling"]["parity"], (
        "sharded query results diverged from the sequential path!"
    )
    assert report["streaming"]["parity"], (
        "streamed/reassembled query results diverged from the sequential path!"
    )
    assert report["transport"]["parity"], (
        "wire-transport query results diverged from JSON-lines!"
    )
    # Structural guarantees: asserted on every machine, every mode.
    stream = report["streaming"]
    assert stream["first_frame_s"] < stream["full_batch_s"], (
        f"streaming bought no latency: first={stream['first_frame_s']} "
        f"full={stream['full_batch_s']}"
    )
    wire = report["transport"]
    assert wire["wire"]["bytes_total"] < wire["json"]["bytes_total"], (
        f"wire transport not smaller than JSON-lines: {wire}"
    )
    assert report["chaos"]["passed"], (
        f"chaos invariants violated: {report['chaos']['invariants']}"
    )
    walls = {r["slots"]: r["wall_s"] for r in report["throughput"]}
    slots = sorted(walls)
    if len(slots) >= 2 and not SMOKE and report["cpu_count"] >= 4:
        # Scaling gate: the widest pool must beat the single slot.  Only
        # meaningful with real cores to spread over — on one or two CPUs
        # concurrent local jobs time-slice instead of overlapping, so the
        # gate is parity-and-report-only there (and in smoke mode: CI
        # machines are noisy).
        assert walls[slots[-1]] < walls[slots[0]], (
            f"no throughput scaling: {walls}"
        )
    shard_walls = {r["shards"]: r["wall_s"] for r in report["shard_scaling"]["rows"]}
    shard_counts = sorted(shard_walls)
    if len(shard_counts) >= 2 and not SMOKE and report["cpu_count"] >= 4:
        # Same convention as slots: shard threads only overlap with real
        # cores under them; elsewhere the gate is parity-and-report-only.
        assert shard_walls[shard_counts[-1]] < shard_walls[shard_counts[0]], (
            f"no shard scaling: {shard_walls}"
        )


def test_service():
    t0 = time.perf_counter()
    report = run_benchmark()
    duration = time.perf_counter() - t0
    print("\n" + render(report) + "\n")
    write_report(report, duration)
    check(report)


if __name__ == "__main__":
    t0 = time.perf_counter()
    report = run_benchmark()
    duration = time.perf_counter() - t0
    print(render(report))
    path = write_report(report, duration)
    print(f"\nwrote {path}")
    check(report)

"""Unit + property tests for example partitioning (Fig. 5 line 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.terms import atom
from repro.parallel.partition import partition_examples
from repro.util.rng import make_rng


def _examples(n, pred="p"):
    return [atom(pred, i) for i in range(n)]


class TestPartition:
    def test_every_example_exactly_once(self):
        pos, neg = _examples(10), _examples(7, "n")
        parts = partition_examples(pos, neg, 3, make_rng(0))
        all_pos = [e for p in parts for e in p.pos]
        all_neg = [e for p in parts for e in p.neg]
        assert sorted(map(str, all_pos)) == sorted(map(str, pos))
        assert sorted(map(str, all_neg)) == sorted(map(str, neg))

    def test_even_sizes(self):
        parts = partition_examples(_examples(10), _examples(9, "n"), 4, make_rng(0))
        pos_sizes = [p.n_pos for p in parts]
        neg_sizes = [p.n_neg for p in parts]
        assert max(pos_sizes) - min(pos_sizes) <= 1
        assert max(neg_sizes) - min(neg_sizes) <= 1

    def test_deterministic(self):
        a = partition_examples(_examples(20), _examples(20, "n"), 4, make_rng(5))
        b = partition_examples(_examples(20), _examples(20, "n"), 4, make_rng(5))
        assert a == b

    def test_different_seed_different_split(self):
        a = partition_examples(_examples(20), _examples(20, "n"), 4, make_rng(1))
        b = partition_examples(_examples(20), _examples(20, "n"), 4, make_rng(2))
        assert a != b

    def test_p1_is_everything(self):
        parts = partition_examples(_examples(5), _examples(3, "n"), 1, make_rng(0))
        assert len(parts) == 1
        assert parts[0].n_pos == 5 and parts[0].n_neg == 3

    def test_p_larger_than_examples(self):
        parts = partition_examples(_examples(2), _examples(1, "n"), 5, make_rng(0))
        assert len(parts) == 5
        assert sum(p.n_pos for p in parts) == 2

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            partition_examples(_examples(2), _examples(1, "n"), 0, make_rng(0))


@given(st.integers(1, 40), st.integers(0, 40), st.integers(1, 8), st.integers(0, 100))
@settings(max_examples=100, deadline=None)
def test_partition_properties(n_pos, n_neg, p, seed):
    """Disjoint, covering, balanced — for any sizes and processor count."""
    pos, neg = _examples(n_pos), _examples(n_neg, "n")
    parts = partition_examples(pos, neg, p, make_rng(seed))
    assert len(parts) == p
    assert sum(x.n_pos for x in parts) == n_pos
    assert sum(x.n_neg for x in parts) == n_neg
    sizes = [x.n_pos for x in parts]
    assert max(sizes) - min(sizes) <= 1
    seen = set()
    for part in parts:
        for e in part.pos:
            assert e not in seen
            seen.add(e)

"""LocalProcessBackend: run the generators on real OS processes.

Each rank becomes one ``multiprocessing`` process; ranks are connected by
a full mesh of duplex pipes.  The same master/worker generators that run
in virtual time on :class:`~repro.backend.sim.SimBackend` run here
unmodified — ``compute`` syscalls become (traced) no-ops because real
CPUs charge themselves, and ``seconds`` in the returned
:class:`~repro.backend.base.BackendRun` is genuine wall-clock time.

Transport notes
---------------
* **Non-blocking sends.**  The simulated model (paper §2.2) makes sends
  non-blocking; a naive ``Connection.send`` is not (it blocks once the OS
  pipe buffer fills), which can deadlock a ring of mutually-sending
  ranks.  Every rank therefore owns a background *sender thread* draining
  an unbounded queue, so the generator thread never blocks on a send and
  always stays available to receive.
* **Blocking receives** poll all peer connections with
  ``multiprocessing.connection.wait``; non-matching arrivals are parked
  in a local mailbox, mirroring the scheduler's matching rules.
* **Accounting** uses the same payload sizing (wire codec when enabled,
  pickle otherwise) and :class:`~repro.cluster.scheduler.CommStats` as
  the simulation, so communication volumes are directly comparable
  across substrates.  Wire-encodable payloads actually travel as their
  encoded bytes and are decoded on receipt — the accounted bytes are the
  shipped bytes.
* **Timeouts.**  The parent supervises children with an optional
  wall-clock ``timeout``; on expiry every child is terminated and
  :class:`~repro.backend.base.BackendTimeoutError` is raised — the
  safety net for transport or protocol deadlocks.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import threading
import time
import traceback
from multiprocessing.connection import Connection, wait
from typing import Optional, Sequence

from repro.backend.base import Backend, BackendError, BackendRun, BackendTimeoutError, drive
from repro.cluster.message import Message, marshal_payload, payload_nbytes
from repro.cluster.process import (
    BcastOp,
    ComputeInterval,
    ComputeOp,
    RecvOp,
    SendOp,
    SimProcess,
)
from repro.cluster.scheduler import CommStats

__all__ = ["LocalProcessBackend", "LocalContext"]

_SENDER_STOP = object()


class LocalContext:
    """Immediate-mode execution context for one rank (runs in the child).

    Satisfies :class:`~repro.backend.base.ExecutionContext`; its
    ``execute`` method performs each yielded syscall for real.
    """

    def __init__(self, rank: int, n_procs: int, peers: dict[int, Connection], record_trace: bool = False):
        self.rank = rank
        self._n_procs = n_procs
        self._peers = peers
        self._live_conns = list(peers.values())
        self.record_trace = record_trace
        self.stats = CommStats()
        self.trace: list[ComputeInterval] = []
        self._mailbox: list[Message] = []
        self._seq = 0
        self._t0 = time.perf_counter()
        self._last_mark = 0.0
        self._send_error: Optional[BaseException] = None
        self._outq: "queue.SimpleQueue" = queue.SimpleQueue()
        self._sender = threading.Thread(target=self._sender_loop, daemon=True)
        self._sender.start()

    # -- syscall constructors (same surface as ProcContext) ---------------------
    def send(self, dst: int, payload: object, tag: str) -> SendOp:
        return SendOp(dst, payload, tag)

    def bcast(self, payload: object, tag: str, dsts=None) -> BcastOp:
        if dsts is None:
            dsts = [r for r in range(self.n_procs) if r != self.rank]
        return BcastOp(tuple(dsts), payload, tag)

    def recv(self, src: Optional[int] = None, tag: Optional[str] = None) -> RecvOp:
        return RecvOp(src, tag)

    def compute(self, ops: int, label: str = "compute") -> ComputeOp:
        return ComputeOp(int(ops), label)

    # -- introspection -----------------------------------------------------------
    @property
    def clock(self) -> float:
        """Wall-clock seconds since this rank started."""
        return time.perf_counter() - self._t0

    @property
    def n_procs(self) -> int:
        return self._n_procs

    def reset_clock(self) -> None:
        self._t0 = time.perf_counter()
        self._last_mark = 0.0

    # -- execution ---------------------------------------------------------------
    def execute(self, op):
        """Perform one syscall; returns a Message for receives."""
        if isinstance(op, SendOp):
            self._post(op.dst, op.payload, op.tag)
            return None
        if isinstance(op, BcastOp):
            for dst in op.dsts:
                self._post(dst, op.payload, op.tag)
            return None
        if isinstance(op, RecvOp):
            return self._recv(op)
        if isinstance(op, ComputeOp):
            # Real CPU time has already passed between yields; just trace it.
            now = self.clock
            if self.record_trace:
                self.trace.append(ComputeInterval(self.rank, self._last_mark, now, op.label))
            self._last_mark = now
            return None
        raise TypeError(f"rank {self.rank} yielded non-syscall {op!r}")

    def _post(self, dst: int, payload: object, tag: str) -> None:
        if self._send_error is not None:
            raise BackendError(f"rank {self.rank}: send failed") from self._send_error
        if dst == self.rank:
            raise ValueError(f"rank {self.rank} sending to itself")
        if dst not in self._peers:
            raise ValueError(f"send to unknown rank {dst}")
        # Task payloads ship in the compact wire encoding (when enabled);
        # the same bytes drive the accounting, so CommStats match the sim
        # backend exactly.  Unknown payloads fall back to pickled objects.
        data = marshal_payload(payload)
        if data is not None:
            nbytes = len(data)
            body: object = data
        else:
            nbytes = payload_nbytes(payload)
            body = payload
        now = self.clock
        self._seq += 1
        self.stats.record(
            Message(
                src=self.rank,
                dst=dst,
                tag=tag,
                payload=payload,
                nbytes=nbytes,
                send_time=now,
                arrival_time=now,
                seq=self._seq,
            )
        )
        self._outq.put((dst, (self.rank, tag, body, nbytes, data is not None)))

    def _sender_loop(self) -> None:
        while True:
            item = self._outq.get()
            if item is _SENDER_STOP:
                return
            dst, wire = item
            try:
                self._peers[dst].send(wire)
            except BaseException as exc:  # surfaced on the next send/close
                self._send_error = exc
                return

    def _recv(self, spec: RecvOp) -> Message:
        while True:
            for i, m in enumerate(self._mailbox):
                if spec.matches(m):
                    return self._mailbox.pop(i)
            if not self._live_conns:
                raise BackendError(
                    f"rank {self.rank}: receive {spec} can never be satisfied "
                    "(all peers exited, mailbox has no match)"
                )
            for conn in wait(self._live_conns):
                try:
                    src, tag, payload, nbytes, encoded = conn.recv()
                except (EOFError, OSError):
                    # Peer exited; buffered data was drained first, so
                    # nothing is lost — stop watching this connection.
                    self._live_conns.remove(conn)
                    continue
                if encoded:
                    # Imported lazily: repro.backend must stay importable
                    # while repro.parallel (which imports it back) loads.
                    from repro.parallel.wire import decode as wire_decode

                    payload = wire_decode(payload)
                self._seq += 1
                now = self.clock
                self._mailbox.append(
                    Message(
                        src=src,
                        dst=self.rank,
                        tag=tag,
                        payload=payload,
                        nbytes=nbytes,
                        send_time=now,
                        arrival_time=now,
                        seq=self._seq,
                    )
                )

    def close(self) -> None:
        """Flush and stop the sender thread; surface any send failure."""
        self._outq.put(_SENDER_STOP)
        self._sender.join(timeout=30.0)
        if self._send_error is not None:
            raise BackendError(f"rank {self.rank}: send failed") from self._send_error


def _child_main(proc: SimProcess, n_procs: int, peers: dict, inherited, result_conn, barrier, record_trace: bool, wire_enabled: bool) -> None:
    """Entry point of one rank's OS process."""
    # Close pipe ends belonging to other ranks.  Under 'fork' every child
    # inherits the whole mesh; if these stayed open, a peer's exit would
    # never surface as EOF in _recv (some process would always hold the
    # other end of its pipes).
    for conn in inherited:
        conn.close()
    # Pin the parent's resolved wire-codec setting: under 'spawn' the
    # parent's in-process override (ILPConfig.wire_codec via
    # wire.configured) would otherwise be lost and children would fall
    # back to the REPRO_WIRE environment default.
    from repro.parallel.wire import set_enabled

    set_enabled(wire_enabled)
    try:
        ctx = LocalContext(proc.rank, n_procs, peers, record_trace=record_trace)
        barrier.wait()
        ctx.reset_clock()
        drive(proc, ctx)
        elapsed = ctx.clock
        ctx.close()
        result_conn.send(("ok", proc.rank, proc, ctx.stats, elapsed, ctx.trace))
    except BaseException as exc:
        try:
            result_conn.send(("error", proc.rank, repr(exc), traceback.format_exc()))
        except BaseException:  # pragma: no cover - result pipe gone
            pass
    finally:
        result_conn.close()


class LocalProcessBackend(Backend):
    """Real parallel execution on the local host via ``multiprocessing``.

    Parameters
    ----------
    timeout:
        Wall-clock budget for the whole run, in seconds.  ``None`` (the
        default) falls back to the ``REPRO_LOCAL_TIMEOUT`` environment
        variable, or waits forever when that is unset too.  Set it to
        convert deadlocks into
        :class:`~repro.backend.base.BackendTimeoutError`.
    start_method:
        ``multiprocessing`` start method.  Defaults to ``fork`` where
        available (cheap — no re-import, no argument pickling), falling
        back to the platform default otherwise.
    """

    name = "local"

    def __init__(
        self,
        record_trace: bool = False,
        timeout: Optional[float] = None,
        start_method: Optional[str] = None,
    ):
        self.record_trace = record_trace
        if timeout is None:
            env = os.environ.get("REPRO_LOCAL_TIMEOUT")
            timeout = float(env) if env else None
        self.timeout = timeout
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else None
        self.start_method = start_method

    def run(self, procs: Sequence[SimProcess]) -> BackendRun:
        ordered = sorted(procs, key=lambda p: p.rank)
        n = len(ordered)
        ranks = [p.rank for p in ordered]
        if ranks != list(range(n)):
            raise ValueError(f"ranks must be contiguous 0..{n - 1}, got {ranks}")
        mpctx = mp.get_context(self.start_method)
        from repro.parallel.wire import enabled as wire_enabled_now

        wire_flag = wire_enabled_now()

        # Full mesh of duplex pipes + one result pipe per rank.
        ends: dict[int, dict[int, Connection]] = {r: {} for r in ranks}
        for i in ranks:
            for j in ranks:
                if i < j:
                    a, b = mpctx.Pipe(duplex=True)
                    ends[i][j] = a
                    ends[j][i] = b
        result_parent: dict[int, Connection] = {}
        result_child: dict[int, Connection] = {}
        for r in ranks:
            result_parent[r], result_child[r] = mpctx.Pipe(duplex=False)
        barrier = mpctx.Barrier(n)

        def _foreign_ends(rank: int) -> list[Connection]:
            """Every transport end that is not this rank's own."""
            return [c for r in ranks if r != rank for c in ends[r].values()] + [
                result_child[r] for r in ranks if r != rank
            ]

        children = [
            mpctx.Process(
                target=_child_main,
                args=(
                    p,
                    n,
                    ends[p.rank],
                    _foreign_ends(p.rank),
                    result_child[p.rank],
                    barrier,
                    self.record_trace,
                    wire_flag,
                ),
                name=f"repro-rank{p.rank}",
                daemon=True,
            )
            for p in ordered
        ]
        for c in children:
            c.start()
        # Parent keeps no transport ends open: close ours so EOFs propagate.
        for r in ranks:
            result_child[r].close()
            for conn in ends[r].values():
                conn.close()

        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        results: dict[int, tuple] = {}
        pending = {result_parent[r]: r for r in ranks}
        child_by_rank = {p.rank: c for p, c in zip(ordered, children)}
        failure: Optional[BackendError] = None

        def _take(conn, rank, block_ok: bool) -> None:
            nonlocal failure
            try:
                if not block_ok and not conn.poll(1.0):
                    code = child_by_rank[rank].exitcode
                    failure = BackendError(
                        f"rank {rank} died without reporting a result (exitcode {code})"
                    )
                    return
                msg = conn.recv()
            except (EOFError, OSError):
                failure = BackendError(f"rank {rank} died without reporting a result")
                return
            del pending[conn]
            if msg[0] == "error":
                _, _, err, tb = msg
                failure = BackendError(f"rank {rank} failed: {err}\n{tb}")
            else:
                results[rank] = msg

        try:
            while pending and failure is None:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise BackendTimeoutError(
                        f"local backend timed out after {self.timeout}s with "
                        f"ranks {sorted(pending.values())} still running "
                        "(transport or protocol deadlock?)"
                    )
                # Watch result pipes plus the sentinels of still-pending
                # children, so a rank dying hard (no result message) is
                # noticed immediately rather than at the timeout.
                sentinel_ranks = {child_by_rank[r].sentinel: r for r in pending.values()}
                ready = wait(list(pending) + list(sentinel_ranks), timeout=remaining)
                if not ready:
                    raise BackendTimeoutError(
                        f"local backend timed out after {self.timeout}s with "
                        f"ranks {sorted(pending.values())} still running "
                        "(transport or protocol deadlock?)"
                    )
                conn_ready = [x for x in ready if x in pending]
                for conn in conn_ready:
                    _take(conn, pending[conn], block_ok=True)
                    if failure is not None:
                        break
                if not conn_ready and failure is None:
                    # Only sentinels fired: the child exited; its result may
                    # still be in flight, so give the pipe a short grace poll.
                    for s in ready:
                        rank = sentinel_ranks.get(s)
                        if rank is not None and rank in pending.values():
                            _take(result_parent[rank], rank, block_ok=False)
                            if failure is not None:
                                break
        finally:
            if pending or failure is not None:
                for c in children:
                    if c.is_alive():
                        c.terminate()
            for c in children:
                c.join(timeout=10.0)
                if c.is_alive():  # pragma: no cover - last resort
                    c.kill()
                    c.join()
            for conn in result_parent.values():
                conn.close()
        if failure is not None:
            raise failure

        comm = CommStats()
        clocks: list[float] = []
        trace: list[ComputeInterval] = []
        final_procs: list[SimProcess] = []
        for r in ranks:
            _, _, proc, stats, elapsed, rtrace = results[r]
            final_procs.append(proc)
            clocks.append(elapsed)
            trace.extend(rtrace)
            comm.merge(stats)
        trace.sort(key=lambda iv: (iv.start, iv.rank))
        return BackendRun(
            seconds=max(clocks) if clocks else 0.0,
            comm=comm,
            clocks=clocks,
            trace=trace,
            procs=final_procs,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LocalProcessBackend(timeout={self.timeout}, start_method={self.start_method!r})"

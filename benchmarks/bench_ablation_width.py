"""Ablation (§5.3) — pipeline width sweep.

The paper evaluates only W ∈ {10, nolimit} and observes that constraining
the width "leads to increased speedups, without affecting the quality of
the models" because wide pipelines move more data.  This ablation sweeps
the width knob to expose the full trade-off curve on the chattiest
dataset (mesh-like).
"""

import pytest

from conftest import SEED, one_shot
from repro.datasets import make_dataset
from repro.parallel import run_p2mdie
from repro.util.fmt import fmt_float, render_table

WIDTHS = (1, 2, 5, 10, 20, None)


@pytest.fixture(scope="module")
def sweep(scale):
    ds = make_dataset("mesh", seed=SEED, scale=scale)
    out = {}
    for w in WIDTHS:
        out[w] = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=4, width=w, seed=SEED)
    return out


def test_ablation_width(benchmark, sweep, table_sink):
    one_shot(benchmark, lambda: None)  # timing lives in the module fixture
    rows = []
    for w, r in sweep.items():
        label = "nolimit" if w is None else str(w)
        rows.append(
            [label, fmt_float(r.seconds, 1), fmt_float(r.mbytes, 3), r.epochs, len(r.theory), r.uncovered]
        )
    table_sink(
        "ablation_width",
        render_table(
            ["width", "vtime(s)", "MB", "epochs", "rules", "uncovered"],
            rows,
            title="Ablation: pipeline width W on mesh-like data (p=4)",
        ),
    )
    # Communication volume must grow monotonically-ish with width.
    assert sweep[1].mbytes < sweep[None].mbytes
    # Every width still learns (quality preserved).
    for w, r in sweep.items():
        assert len(r.theory) >= 1, f"width {w} learned nothing"


def test_bench_width1(benchmark, scale):
    ds = make_dataset("mesh", seed=SEED, scale=scale)
    res = one_shot(
        benchmark, run_p2mdie, ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=4, width=1, seed=SEED
    )
    assert res.epochs >= 1

"""Unified telemetry: spans, metrics, and activity traces.

Three small pieces, all off-by-default-cheap:

* :mod:`repro.obs.span` — ``Span`` records ``(rank, name, start, end,
  attrs)`` around pipeline stage boundaries; ``SpanBatch`` is wire-codec
  message 28, carrying each rank's spans to rank 0 at halt so ``repro
  trace`` renders Fig. 3-4 Gantt charts from real local/MPI runs.
  ``Tracer`` records spans; the disabled tracer (``NULL_TRACER``) is a
  no-op object.
* :mod:`repro.obs.metrics` — thread-safe ``Counter`` / ``Gauge`` /
  fixed-bucket ``Histogram`` in a ``MetricsRegistry`` that renders both
  a plain-dict snapshot (the ``metrics`` service op) and Prometheus
  text exposition (``repro serve --metrics-port``).
* :mod:`repro.util.log` — the structured JSON-lines logger the service
  tier correlates with request and job ids (documented here, lives in
  ``repro.util`` to stay import-light).
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.obs.span import (
    NULL_TRACER,
    Span,
    SpanBatch,
    Tracer,
    intervals_from_spans,
    read_spans_jsonl,
    set_tracing,
    spans_from_intervals,
    tracing_enabled,
    write_spans_jsonl,
)

__all__ = [
    "Span",
    "SpanBatch",
    "Tracer",
    "NULL_TRACER",
    "tracing_enabled",
    "set_tracing",
    "spans_from_intervals",
    "intervals_from_spans",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "percentile",
]

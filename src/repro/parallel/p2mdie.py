"""P²-MDIE front-end: run the pipelined data-parallel algorithm end-to-end.

``run_p2mdie`` wires a :class:`~repro.parallel.master.P2Master` and ``p``
:class:`~repro.parallel.worker.P2Worker` ranks onto a
:class:`~repro.cluster.VirtualCluster`, executes to completion and returns
a :class:`P2Result` carrying everything the paper's tables need: the
learned theory, virtual execution time (Table 3), communication volume
(Table 4), and epoch count (Table 5).  Speedups (Table 2) come from
pairing it with a sequential :func:`repro.ilp.mdie.mdie` run via
:func:`sequential_seconds`.

Fault tolerance & elasticity (:mod:`repro.fault`): pass ``fault_plan``
to inject crashes/stragglers/message loss and activate the self-healing
protocol, ``spares`` to provision standby hosts, ``checkpoint_dir`` to
snapshot master learning state at epoch boundaries, and ``resume`` to
continue a checkpointed run bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.backend import Backend, BackendRun, fault_injection_scope, resolve_backend
from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.network import FAST_ETHERNET, NetworkModel
from repro.cluster.process import ComputeInterval
from repro.cluster.scheduler import CommStats
from repro.fault.plan import FaultPlan, normalize_plan
from repro.ilp.config import ILPConfig
from repro.ilp.mdie import MDIEResult
from repro.ilp.modes import ModeSet
from repro.logic.clause import Theory
from repro.logic.knowledge import KnowledgeBase
from repro.logic.terms import Term
from repro.parallel import wire
from repro.parallel.master import EpochLog, P2Master
from repro.parallel.partition import Partition, partition_examples
from repro.parallel.worker import P2Worker
from repro.util.rng import make_rng

__all__ = ["WorkerProblem", "SharedProblem", "P2Result", "run_p2mdie", "sequential_seconds"]


@dataclass(frozen=True)
class WorkerProblem:
    """Everything one worker reads from the shared filesystem."""

    kb: KnowledgeBase
    pos: tuple[Term, ...]
    neg: tuple[Term, ...]
    modes: ModeSet
    config: ILPConfig


class SharedProblem:
    """The simulated distributed filesystem (§4.1).

    The paper assumes background knowledge, constraints and example subsets
    are visible to every node through a shared FS, so ``load_examples``
    messages carry only a partition id.  This object plays that role: it
    holds the KB and the partitions; workers read their share by id.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        partitions: Sequence[Partition],
        modes: ModeSet,
        config: ILPConfig,
    ):
        self.kb = kb
        self.partitions = list(partitions)
        self.modes = modes
        self.config = config

    def worker_problem(self, partition_id: int) -> WorkerProblem:
        """Partition ids are worker ranks (1-based)."""
        part = self.partitions[partition_id - 1]
        return WorkerProblem(
            kb=self.kb,
            pos=part.pos,
            neg=part.neg,
            modes=self.modes,
            config=self.config,
        )


@dataclass
class P2Result:
    """Artifacts of one P²-MDIE run (everything Tables 2-6 consume)."""

    theory: Theory
    epochs: int
    #: virtual wall-clock of the whole run, in seconds (Table 3).
    seconds: float
    #: communication accounting (Table 4).
    comm: CommStats
    #: positives left uncovered at termination.
    uncovered: int
    epoch_logs: list[EpochLog] = field(default_factory=list)
    clocks: list[float] = field(default_factory=list)
    trace: list[ComputeInterval] = field(default_factory=list)
    #: final per-logical-worker evaluation-cache counters: rank ->
    #: (hits, misses).  Recovery-induced cache invalidation shows up here
    #: (adopted workers restart cold).
    cache_stats: dict = field(default_factory=dict)
    #: master-observed recovery narrative (detections, adoptions, joins).
    fault_events: list = field(default_factory=list)
    #: substrate-injected fault events (crashes, drops) in firing order.
    fault_log: list = field(default_factory=list)
    #: sampled-run exactness certificate (None on the reference path) —
    #: see :mod:`repro.ilp.sampling`.
    certificate: object = None

    @property
    def mbytes(self) -> float:
        return self.comm.mbytes_total

    @property
    def cache_hits(self) -> int:
        return sum(h for h, _ in self.cache_stats.values())

    @property
    def cache_misses(self) -> int:
        return sum(m for _, m in self.cache_stats.values())


def collect_cache_stats(run: BackendRun, routing=None) -> dict:
    """Per-logical-worker (hits, misses) from the final worker states.

    Works on every substrate: the sim runs workers in-process, the local
    backend ships final process objects home.  ``routing`` (the master's
    final logical→host table, when fault tolerance ran) pins each logical
    worker to its authoritative host, so stale copies on falsely-declared
    -dead hosts are never counted; without it every hosted shard reports.
    """
    by_rank = {
        proc.rank: getattr(proc, "shards", None)
        for proc in run.procs
        if getattr(proc, "shards", None)
    }
    out: dict = {}
    if routing:
        for logical in sorted(routing):
            shards = by_rank.get(routing[logical])
            if shards and logical in shards:
                store = shards[logical].store
                out[logical] = (store.cache_hits(), store.cache_misses())
        return out
    for rank in sorted(by_rank):
        for virtual_rank in sorted(by_rank[rank]):
            store = by_rank[rank][virtual_rank].store
            out[virtual_rank] = (store.cache_hits(), store.cache_misses())
    return out


def _result_from_run(run: BackendRun) -> P2Result:
    """Assemble the shared P2Result artifact from any strategy's run."""
    final = run.proc(0)
    ft = getattr(final, "ft", None)
    return P2Result(
        theory=final.theory,
        epochs=final.epochs,
        seconds=run.seconds,
        comm=run.comm,
        uncovered=max(final.remaining, 0),
        epoch_logs=final.epoch_logs,
        clocks=run.clocks,
        trace=run.trace,
        cache_stats=collect_cache_stats(run, routing=ft.routing if ft is not None else None),
        fault_events=list(getattr(final, "fault_events", ())),
        fault_log=list(run.fault_log),
        certificate=getattr(final, "certificate", None),
    )


def _validate_fault_args(
    fault_plan: Optional[FaultPlan],
    spares: int,
    p: int,
    share_mode: str = "shared_fs",
    repartition_each_epoch: bool = False,
):
    """Common front-end guards for the fault-tolerance arguments."""
    plan = normalize_plan(fault_plan)
    if spares < 0:
        raise ValueError("spares must be >= 0")
    if plan is None:
        if spares:
            raise ValueError("spares require a fault plan (they are a fault-tolerance feature)")
        return None
    if share_mode != "shared_fs":
        raise ValueError(
            "fault tolerance requires the shared-filesystem data model "
            "(recovery rebuilds workers from shared partitions)"
        )
    if repartition_each_epoch:
        raise ValueError("fault tolerance and per-epoch repartitioning are mutually exclusive")
    plan.validate_ranks(p, spares)
    return plan


def _check_resume(resume, algo: str, p: int, seed: int) -> None:
    if resume is None:
        return
    if resume.algo != algo:
        raise ValueError(f"checkpoint is for {resume.algo!r}, not {algo!r}")
    if resume.n_workers and resume.n_workers != p:
        raise ValueError(
            f"checkpoint was taken at p={resume.n_workers}; resuming at p={p} "
            "cannot reproduce the run (partitions differ)"
        )
    if resume.seed != seed:
        raise ValueError(f"checkpoint seed {resume.seed} != requested seed {seed}")


def run_p2mdie(
    kb: KnowledgeBase,
    pos: Sequence[Term],
    neg: Sequence[Term],
    modes: ModeSet,
    config: ILPConfig,
    p: int,
    width: Optional[int] = ...,
    seed: int = 0,
    network: NetworkModel = FAST_ETHERNET,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    record_trace: bool = False,
    max_epochs: Optional[int] = None,
    stall_limit: int = 3,
    repartition_each_epoch: bool = False,
    share_mode: str = "shared_fs",
    backend: Union[Backend, str, None] = None,
    fault_plan: Optional[FaultPlan] = None,
    spares: int = 0,
    checkpoint_dir: Optional[str] = None,
    checkpoint_meta: tuple = (),
    resume=None,
) -> P2Result:
    """Run p2-mdie(E+, E-, B, C, p, w) — the paper's Fig. 5 entry point.

    ``width=...`` defaults to ``config.pipeline_width``; pass ``None``
    explicitly for the "nolimit" configuration.
    ``repartition_each_epoch`` enables the §4.1 alternative the paper
    rejected (reshuffling remaining examples before every epoch), so its
    communication cost can be measured.
    ``share_mode`` is ``"shared_fs"`` (paper's assumption: workers read
    their subsets from a distributed filesystem) or ``"messages"`` (the
    §4.1 fallback: the master ships background knowledge and example
    subsets over the network at start-up).
    ``backend`` selects the execution substrate: a
    :class:`~repro.backend.Backend` instance or a name (``"sim"``,
    ``"local"``, ``"mpi"``); ``None`` means the simulated cluster built
    from ``network``/``cost_model``.  On a real backend ``seconds`` is
    wall-clock time and the learned theory is identical to the sim's for
    the same seed/config (backend parity).

    ``fault_plan`` injects deterministic faults and activates the
    self-healing protocol (an empty plan is a no-op: the run is
    byte-identical to ``fault_plan=None``); ``spares`` provisions idle
    standby hosts ranks ``p+1..p+spares`` for adoption/elastic joins;
    ``checkpoint_dir`` writes a resumable snapshot after every epoch;
    ``resume`` (a loaded :class:`~repro.fault.checkpoint.CheckpointState`)
    continues a run from such a snapshot, reproducing the remaining
    epochs exactly.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    if share_mode not in ("shared_fs", "messages"):
        raise ValueError("share_mode must be 'shared_fs' or 'messages'")
    plan = _validate_fault_args(fault_plan, spares, p, share_mode, repartition_each_epoch)
    _check_resume(resume, "p2mdie", p, seed)
    rng = make_rng(seed, "partition")
    partitions = partition_examples(pos, neg, p, rng)
    shared = SharedProblem(kb, partitions, modes, config)
    ship_data = None
    if share_mode == "messages":
        from repro.parallel.messages import LoadData

        facts = tuple(f for ind in kb.predicates() for f in kb.facts_for(ind))
        rules = tuple(r for ind in kb.predicates() for r in kb.rules_for(ind))
        ship_data = [
            LoadData(pos=part.pos, neg=part.neg, facts=facts, rules=rules)
            for part in partitions
        ]
    master = P2Master(
        n_workers=p,
        total_pos=len(pos),
        config=config,
        width=width,
        max_epochs=max_epochs,
        stall_limit=stall_limit,
        repartition_each_epoch=repartition_each_epoch,
        seed=seed,
        ship_data=ship_data,
        fault_plan=plan,
        spares=spares,
        checkpoint_dir=checkpoint_dir,
        checkpoint_meta=checkpoint_meta,
        resume=resume,
    )
    workers = [P2Worker(rank, shared, p, seed=seed) for rank in range(1, p + spares + 1)]
    bk = resolve_backend(
        backend,
        network=network,
        cost_model=cost_model,
        record_trace=record_trace,
        fault_plan=plan,
    )
    with wire.configured(config.wire_codec), fault_injection_scope(bk, plan):
        run: BackendRun = bk.run([master, *workers])
    # Read the master's run artifacts from the backend's returned process
    # state: on multi-process backends the local ``master`` object was
    # never mutated (rank 0 ran in a child process).
    return _result_from_run(run)


def sequential_seconds(result: MDIEResult, cost_model: CostModel = DEFAULT_COST_MODEL) -> float:
    """Virtual execution time of a sequential MDIE run.

    The sequential algorithm runs on one node with no communication, so its
    virtual time is exactly its engine work under the same cost model the
    cluster charges — making Table 2's speedup ratios well-defined.
    """
    return cost_model.seconds_for_ops(result.ops)

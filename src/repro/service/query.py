"""Batched, sharded and streaming coverage queries against registered theories.

Theory *application* is orders of magnitude cheaper than theory
*learning*, but the naive per-example path (``predicts``: rename every
clause, unify, prove — per example) still re-pays two setup costs on
every call: rebuilding the dataset's knowledge base/engine, and renaming
each clause apart.  The query engine amortizes both:

* a **prepared-theory cache**: the first query against ``(name,
  version)`` builds the dataset KB (from the record's provenance), an
  :class:`~repro.logic.engine.Engine` and the clause list once; every
  later batch reuses them (KB indexes and the engine's ground-goal memo
  stay warm across batches);
* **micro-batching**: a batch is evaluated clause-by-clause via
  :func:`repro.ilp.coverage.theory_covered_bits` — one ``rename_apart``
  per clause per batch instead of per example, and each clause only
  tests the examples no earlier clause covered (first-match semantics);
* **sharding**: the same data-parallel move the learning side makes
  (partition the examples, evaluate in parallel, merge — see
  :mod:`repro.parallel.coverage_parallel`): a batch is cut into
  contiguous spans by :func:`repro.parallel.partition.shard_spans`,
  each span evaluated on its own engine over the shared KB by a worker
  thread, and the per-span bitsets OR-merged back into batch order;
* **streaming**: :meth:`QueryEngine.query_stream` hands each shard's
  result out as soon as it (and every earlier shard) is done, so a
  consumer sees first results after ~1/shards of the batch work instead
  of all of it.

**Determinism invariant**: the covered bitset a batch returns is a pure
per-example function of (clause list, KB, engine budget) — independent
of micro-batch size, shard count, shard scheduling and transport — so
sharded and streamed answers are bit-identical to the sequential path
(pinned by ``tests/service/test_query.py`` and
``tests/service/test_streaming.py``).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.datasets import make_dataset
from repro.ilp.coverage import popcount, theory_covered_bits
from repro.logic.clause import Theory
from repro.logic.engine import Engine
from repro.logic.terms import Term, is_ground
from repro.parallel.partition import shard_spans
from repro.service.errors import Unavailable

__all__ = [
    "QueryEngine",
    "QueryResult",
    "PreparedTheory",
    "ShardResult",
    "QueryStream",
]


@dataclass(frozen=True)
class QueryResult:
    """Coverage of one query batch."""

    #: bit i set ⇔ examples[i] is covered (predicted positive).
    covered: int
    #: number of examples in the batch.
    n: int
    #: engine operations spent answering the batch (summed over shards).
    ops: int
    #: spans the batch was evaluated in (1 = sequential path).
    shards: int = 1

    @property
    def n_covered(self) -> int:
        return popcount(self.covered)

    def decisions(self) -> list[bool]:
        """Per-example predictions, batch order."""
        return [bool((self.covered >> i) & 1) for i in range(self.n)]


@dataclass(frozen=True)
class ShardResult:
    """One shard's slice of a streamed query batch.

    ``covered`` is local to the span — bit ``i`` refers to example
    ``lo + i`` — so a consumer reassembles the batch bitset as
    ``merged |= covered << lo`` whatever order frames are applied in.
    """

    shard: int
    lo: int
    n: int
    covered: int
    ops: int

    def decisions(self) -> list[bool]:
        """Per-example predictions for this span, span order."""
        return [bool((self.covered >> i) & 1) for i in range(self.n)]


@dataclass
class PreparedTheory:
    """A theory bound to a warm engine over its dataset's KB.

    One prepared entry serializes its own *sequential* batches: the
    engine's per-query mutable state (op budget counter,
    ``last_exhausted``) must not interleave across threads, so
    concurrent server requests against the *same* theory queue here
    while different theories (and learning jobs) still overlap freely.
    Sharded queries bypass the queue instead: every shard leases a
    private engine over the same KB from :meth:`lease_engine`, so
    shards of one batch — and whole batches against one theory — can
    genuinely overlap.
    """

    theory: Theory
    engine: Engine
    #: KB + config retained to build per-shard engines on demand.
    kb: object = None
    config: object = None
    #: batches answered from this entry (cache effectiveness counter).
    batches: int = 0

    def __post_init__(self):
        self._lock = threading.Lock()
        self._engine_pool: list[Engine] = []

    def query(self, examples: Sequence[Term], micro_batch: int = 1024) -> QueryResult:
        """Coverage of ``examples``; every example must be ground.

        ``micro_batch`` bounds the slice evaluated per clause pass (it
        caps transient bitset width on very large batches; results are
        independent of its value).
        """
        check_ground(examples)
        with self._lock:
            ops0 = self.engine.total_ops
            covered = theory_covered_bits(
                self.engine, tuple(self.theory), examples, micro_batch=micro_batch
            )
            self.batches += 1
            return QueryResult(
                covered=covered, n=len(examples), ops=self.engine.total_ops - ops0
            )

    # -- shard engines -----------------------------------------------------------

    def lease_engine(self) -> Engine:
        """A private engine over this theory's KB (pooled across queries).

        Engines are cheap to build — the KB owns the fact indexes — but
        each keeps its own ground-goal memo, so recycling leased engines
        keeps shard memos warm across batches.
        """
        with self._lock:
            if self._engine_pool:
                return self._engine_pool.pop()
        budget = self.config.engine_budget() if self.config is not None else self.engine.budget
        kernel = self.config.coverage_kernel if self.config is not None else self.engine.kernel
        return Engine(self.kb if self.kb is not None else self.engine.kb, budget, kernel=kernel)

    def release_engine(self, engine: Engine) -> None:
        with self._lock:
            self._engine_pool.append(engine)

    def eval_span(self, engine: Engine, examples: Sequence[Term], lo: int, hi: int,
                  micro_batch: int = 1024) -> tuple[int, int]:
        """(covered, ops) of ``examples[lo:hi]`` on a leased engine.

        ``covered`` is span-local (bit 0 = example ``lo``), exactly the
        sequential path's answer for the same slice.
        """
        ops0 = engine.total_ops
        covered = theory_covered_bits(
            engine, tuple(self.theory), examples[lo:hi], micro_batch=micro_batch
        )
        return covered, engine.total_ops - ops0

    def count_batch(self) -> None:
        with self._lock:
            self.batches += 1


def check_ground(examples: Sequence[Term]) -> None:
    for e in examples:
        if not is_ground(e):
            raise ValueError(f"query example must be ground: {e}")


class QueryStream:
    """One in-flight sharded query, streamed shard-by-shard.

    Shard tasks are submitted up front; :meth:`next_frame` hands frames
    out in **shard order** (ascending spans), each as soon as it and all
    earlier shards are done — a consumer that applies frames as they
    arrive therefore sees a strictly growing prefix of the batch.  The
    final frame is followed by ``None``; :meth:`result` then has the
    merged batch answer, bit-identical to the sequential path.

    :meth:`cancel` is thread-safe and is how the serving layer avoids
    leaking work when a client disconnects mid-stream: not-yet-started
    shard tasks are cancelled at the executor, and frames stop.  (A
    shard already executing runs its slice to completion — Python
    threads cannot be interrupted mid-evaluation — but its result is
    dropped and its engine returned to the pool.)
    """

    def __init__(
        self,
        prepared: PreparedTheory,
        examples: Sequence[Term],
        spans: list[tuple[int, int]],
        executor: ThreadPoolExecutor,
        micro_batch: int = 1024,
        stats=None,
        fault_injector=None,
    ):
        self.prepared = prepared
        self.n = len(examples)
        self.spans = spans
        self._micro_batch = micro_batch
        self._cancelled = threading.Event()
        self._stats = stats
        self._injector = fault_injector
        self._next = 0
        self._merged = 0
        self._ops = 0
        self._futures: list[Future] = [
            executor.submit(self._run_shard, k, examples, lo, hi)
            for k, (lo, hi) in enumerate(spans)
        ]

    def _run_shard(self, shard: int, examples, lo: int, hi: int) -> ShardResult:
        if self._stats is not None:
            self._stats.shard_started()
        try:
            if self._cancelled.is_set():
                raise CancelledError()
            if self._injector is not None:
                fault = self._injector.on_lease()
                if fault is not None:
                    if fault.mode == "fail":
                        # Surfaces through next_frame() as a retryable
                        # `unavailable` error; results are never partial —
                        # the server cancels the whole stream.
                        raise Unavailable(
                            "injected engine-lease failure (chaos plan)"
                        )
                    time.sleep(fault.delay)  # mode == "slow": tail latency only
            engine = self.prepared.lease_engine()
            try:
                covered, ops = self.prepared.eval_span(
                    engine, examples, lo, hi, micro_batch=self._micro_batch
                )
            finally:
                self.prepared.release_engine(engine)
            return ShardResult(shard=shard, lo=lo, n=hi - lo, covered=covered, ops=ops)
        finally:
            if self._stats is not None:
                self._stats.shard_finished()

    def next_frame(self, timeout: Optional[float] = None) -> Optional[ShardResult]:
        """Block for the next in-order shard frame; None when done/cancelled."""
        if self._cancelled.is_set() or self._next >= len(self._futures):
            return None
        try:
            frame = self._futures[self._next].result(timeout=timeout)
        except CancelledError:
            return None
        self._next += 1
        self._merged |= frame.covered << frame.lo
        self._ops += frame.ops
        return frame

    def frames(self) -> Iterator[ShardResult]:
        """Iterate the remaining frames in shard order."""
        while True:
            frame = self.next_frame()
            if frame is None:
                return
            yield frame

    @property
    def done(self) -> bool:
        return self._next >= len(self._futures) and not self._cancelled.is_set()

    def result(self) -> QueryResult:
        """The merged batch answer (every frame must have been consumed)."""
        if not self.done:
            raise RuntimeError("stream not fully consumed (or cancelled)")
        return QueryResult(
            covered=self._merged, n=self.n, ops=self._ops, shards=len(self.spans)
        )

    def cancel(self) -> None:
        """Stop streaming and cancel every not-yet-started shard task."""
        if self._cancelled.is_set():
            return
        self._cancelled.set()
        for f in self._futures:
            f.cancel()
        if self._stats is not None:
            self._stats.stream_cancelled()


class _StreamStats:
    """Thread-safe counters for in-flight shard work (leak visibility)."""

    def __init__(self):
        self._lock = threading.Lock()
        self.streams_started = 0
        self.streams_cancelled = 0
        self.shard_tasks_started = 0
        self.shard_tasks_active = 0

    def stream_started(self):
        with self._lock:
            self.streams_started += 1

    def stream_cancelled(self):
        with self._lock:
            self.streams_cancelled += 1

    def shard_started(self):
        with self._lock:
            self.shard_tasks_started += 1
            self.shard_tasks_active += 1

    def shard_finished(self):
        with self._lock:
            self.shard_tasks_active -= 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "streams_started": self.streams_started,
                "streams_cancelled": self.streams_cancelled,
                "shard_tasks_started": self.shard_tasks_started,
                "shard_tasks_active": self.shard_tasks_active,
            }


class QueryEngine:
    """Serve coverage queries against a :class:`TheoryRegistry`.

    One instance may be shared by many server threads: the prepared
    cache is locked (cheaply — expensive dataset builds happen outside
    the lock), and each :class:`PreparedTheory` serializes its own
    sequential engine while sharded work runs on leased per-shard
    engines, so batches overlap freely.

    ``shard_workers`` sizes the shared shard thread pool (default: the
    machine's CPU count) — shards beyond it queue, which also serializes
    shards on a single-CPU host instead of time-slicing them under the
    GIL (keeping first-shard latency well below full-batch latency).
    """

    def __init__(
        self,
        registry=None,
        shard_workers: Optional[int] = None,
        fault_injector=None,
    ):
        import os

        self.registry = registry
        self._prepared: dict[tuple, PreparedTheory] = {}
        self._datasets: dict[tuple, object] = {}
        self._lock = threading.Lock()
        self._shard_workers = max(1, shard_workers or os.cpu_count() or 1)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._stream_stats = _StreamStats()
        self._injector = fault_injector
        #: prepared-cache counters (amortization visibility).
        self.prepared_hits = 0
        self.prepared_misses = 0
        #: sharded queries served sequentially under shard-pool pressure.
        self.degraded = 0

    def should_degrade(self) -> bool:
        """True when the shard pool is saturated.

        Overload policy: a sharded query arriving while every shard
        worker is busy is served on the *sequential* prepared-engine
        path instead — slower for that one query, but it neither queues
        behind a full pool nor fails.  The bitset is bit-identical
        either way (the determinism invariant), so degrading is always
        answer-safe.
        """
        with self._stream_stats._lock:
            return self._stream_stats.shard_tasks_active >= self._shard_workers

    def note_degraded(self) -> None:
        with self._lock:
            self.degraded += 1

    # -- preparation -------------------------------------------------------------

    def _dataset(self, name: str, seed: int, scale: str):
        key = (name, seed, scale)
        with self._lock:
            ds = self._datasets.get(key)
        if ds is None:
            # Built outside the lock: dataset generation can take seconds
            # and must not stall cache hits for other theories.  A racing
            # duplicate build is harmless (last writer wins; both are
            # equal by construction).
            ds = make_dataset(name, seed=seed, scale=scale)
            with self._lock:
                ds = self._datasets.setdefault(key, ds)
        return ds

    def prepare(self, name: str, version: Optional[int] = None) -> PreparedTheory:
        """Prepared entry for a registered theory (build once, reuse)."""
        if self.registry is None:
            raise ValueError("QueryEngine has no registry attached")
        resolved = self.registry.resolve_version(name, version)
        key = (name, resolved)
        with self._lock:
            prepared = self._prepared.get(key)
            if prepared is not None:
                self.prepared_hits += 1
                return prepared
        record = self.registry.get(name, resolved)
        prov = record.provenance_dict()
        dataset = prov.get("dataset")
        if dataset is None:
            raise ValueError(
                f"registry record {name} v{resolved} has no dataset provenance; "
                "pass a KB explicitly via prepare_theory()"
            )
        ds = self._dataset(
            dataset, int(prov.get("seed", "0")), prov.get("scale", "small")
        )
        fresh = self._prepare(record.to_theory(), ds.kb, ds.config)
        with self._lock:
            prepared = self._prepared.get(key)
            if prepared is not None:  # lost a prepare race: reuse the winner
                self.prepared_hits += 1
                return prepared
            self.prepared_misses += 1
            self._prepared[key] = fresh
            return fresh

    def prepare_theory(self, theory: Theory, kb, config) -> PreparedTheory:
        """Prepared entry for an unregistered theory over an explicit KB."""
        return self._prepare(theory, kb, config)

    @staticmethod
    def _prepare(theory: Theory, kb, config) -> PreparedTheory:
        engine = Engine(kb, config.engine_budget(), kernel=config.coverage_kernel)
        return PreparedTheory(theory=theory, engine=engine, kb=kb, config=config)

    def _shard_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._shard_workers,
                    thread_name_prefix="repro-query-shard",
                )
            return self._executor

    # -- querying ----------------------------------------------------------------

    def query(
        self,
        name: str,
        examples: Sequence[Term],
        version: Optional[int] = None,
        micro_batch: int = 1024,
        shards: Optional[int] = None,
    ) -> QueryResult:
        """Batched coverage of ``examples`` under a registered theory.

        ``shards`` > 1 evaluates the batch shard-parallel (contiguous
        spans on leased engines, merged in order); None or 1 keeps the
        sequential prepared-engine path.  The merged bitset is
        bit-identical either way.
        """
        if shards is None or shards <= 1 or len(examples) <= 1:
            return self.prepare(name, version).query(examples, micro_batch=micro_batch)
        stream = self.query_stream(
            name, examples, version=version, micro_batch=micro_batch, shards=shards
        )
        for _ in stream.frames():
            pass
        return stream.result()

    def query_stream(
        self,
        name: str,
        examples: Sequence[Term],
        version: Optional[int] = None,
        micro_batch: int = 1024,
        shards: Optional[int] = None,
    ) -> QueryStream:
        """Open a sharded streaming query; frames arrive in shard order.

        Consumers must either drain :meth:`QueryStream.frames` or call
        :meth:`QueryStream.cancel` — the serving layer cancels on client
        disconnect so no orphaned shard work survives the connection.
        """
        prepared = self.prepare(name, version)
        check_ground(examples)
        spans = shard_spans(len(examples), shards or 1)
        prepared.count_batch()
        self._stream_stats.stream_started()
        return QueryStream(
            prepared,
            examples,
            spans,
            self._shard_executor(),
            micro_batch=micro_batch,
            stats=self._stream_stats,
            fault_injector=self._injector,
        )

    def dataset_for(self, name: str, version: Optional[int] = None):
        """The (cached) dataset a registered theory was learned on.

        Callers that want to classify a theory's own training examples
        reuse the dataset the prepare step already built instead of
        regenerating it.
        """
        record = self.registry.get(name, self.registry.resolve_version(name, version))
        prov = record.provenance_dict()
        dataset = prov.get("dataset")
        if dataset is None:
            raise ValueError(
                f"registry record {name} has no dataset provenance"
            )
        return self._dataset(
            dataset, int(prov.get("seed", "0")), prov.get("scale", "small")
        )

    def stats(self) -> dict:
        """Prepared-cache and streaming-shard effectiveness counters."""
        with self._lock:
            out = {
                "prepared_hits": self.prepared_hits,
                "prepared_misses": self.prepared_misses,
                "prepared_entries": len(self._prepared),
                "batches": sum(p.batches for p in self._prepared.values()),
                "degraded": self.degraded,
            }
        out.update(self._stream_stats.snapshot())
        return out

"""Socket-level fuzzing of both front doors (JSON-lines and wire framing).

The promise under test: whatever bytes arrive — truncated frames,
oversized frames, garbage that decodes to nothing — the server either
answers with a structured error or closes the connection cleanly.  It
never hangs a connection task, never crashes the event loop, and the
connection *after* the abuse still gets served.
"""

import json
import random
import socket
import struct
import threading

import pytest

from repro.service.server import ServiceClient, serve
from repro.service.wiremsg import FRAME_HEADER, MAX_FRAME, pack_frame, WireJson

IO_TIMEOUT = 15.0  # every raw-socket op is bounded: a hang fails the test


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("fuzz")
    ready = threading.Event()
    box = {}

    def on_ready(srv):
        box["port"] = srv.port
        ready.set()

    thread = threading.Thread(
        target=serve,
        kwargs=dict(
            port=0, slots=1,
            state_dir=str(tmp_path / "jobs"),
            registry_dir=str(tmp_path / "registry"),
            ready=on_ready,
        ),
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=10)
    yield box["port"]
    with ServiceClient(port=box["port"]) as c:
        c.request({"op": "shutdown"})
    thread.join(timeout=15)


def raw_connection(port):
    sock = socket.create_connection(("127.0.0.1", port), timeout=IO_TIMEOUT)
    sock.settimeout(IO_TIMEOUT)
    return sock


def wire_connection(port):
    """A raw socket already switched to the wire transport."""
    sock = raw_connection(port)
    f = sock.makefile("rwb")
    f.write(b'{"op": "hello", "transport": "wire"}\n')
    f.flush()
    resp = json.loads(f.readline())
    assert resp["ok"] and resp["transport"] == "wire"
    return sock, f


def assert_still_serving(port):
    """The abuse above must not have taken the server down."""
    with ServiceClient(port=port) as c:
        assert c.request({"op": "ping"})["ok"]


class TestJsonFrontDoor:
    def test_garbage_line_answered_connection_kept(self, server):
        sock = raw_connection(server)
        with sock:
            f = sock.makefile("rwb")
            f.write(b"\x00\xff\xfe this is not json\n")
            f.flush()
            resp = json.loads(f.readline())
            assert not resp["ok"] and resp["code"] == "bad_request"
            f.write(b'{"op": "ping"}\n')  # same connection still serves
            f.flush()
            assert json.loads(f.readline())["ok"]
        assert_still_serving(server)

    def test_non_object_request_rejected(self, server):
        sock = raw_connection(server)
        with sock:
            f = sock.makefile("rwb")
            f.write(b"[1, 2, 3]\n")
            f.flush()
            resp = json.loads(f.readline())
            assert not resp["ok"] and resp["code"] == "bad_request"
        assert_still_serving(server)

    def test_truncated_line_answered_then_closed(self, server):
        sock = raw_connection(server)
        with sock:
            f = sock.makefile("rb")
            sock.sendall(b'{"op": "ping"')  # no newline, then half-close
            sock.shutdown(socket.SHUT_WR)
            # EOF turns the partial line into a (broken) request: the
            # server answers it structurally, then closes — no hang.
            resp = json.loads(f.readline())
            assert not resp["ok"] and resp["code"] == "bad_request"
            assert f.readline() == b""
        assert_still_serving(server)

    def test_oversized_line_gets_structured_error(self, server):
        sock = raw_connection(server)
        with sock:
            f = sock.makefile("rwb")
            f.write(b'{"pad": "' + b"a" * (MAX_FRAME + 16) + b'"}\n')
            f.flush()
            resp = json.loads(f.readline())
            assert not resp["ok"] and resp["code"] == "frame_too_large"
            # The tail of an oversized line cannot be resynchronized:
            # the server closes after answering.
            assert f.readline() == b""
        assert_still_serving(server)

    def test_random_bytes_never_hang(self, server):
        rng = random.Random(0)
        for trial in range(8):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 2048)))
            sock = raw_connection(server)
            with sock:
                sock.sendall(blob)
                sock.shutdown(socket.SHUT_WR)
                # Bounded by the socket timeout: the server must answer
                # (anything) or close; either drains to EOF.
                while sock.recv(65536):
                    pass
        assert_still_serving(server)


class TestCorruptCertificateFrontDoor:
    """A damaged ``.cert`` artifact is a *server-side* fuzz case: whatever
    is on disk, the front door answers structurally.  Startup recovery
    quarantines it; damage arriving while live yields a structured
    ``certificate_error`` on ``registry show`` — and in both cases the
    theory itself keeps being served and the server stays up."""

    @pytest.fixture(scope="class")
    def cert_server(self, tmp_path_factory):
        from repro.ilp.sampling import ClauseCertificate, CoverageCertificate
        from repro.logic import Theory
        from repro.logic.parser import parse_clause
        from repro.service import TheoryRegistry

        tmp_path = tmp_path_factory.mktemp("certfuzz")
        registry = TheoryRegistry(str(tmp_path / "registry"))
        cert = CoverageCertificate(
            seed=0, fraction=0.25, delta=0.05, min_stratum=16,
            entries=(ClauseCertificate("p(X) :- q(X).", 1, 0, 1, 1, 2, 0, True),),
        )
        theory = Theory([parse_clause("p(X) :- q(X).")])
        registry.publish("startup-corrupt", theory, certificate=cert)
        registry.publish("live-corrupt", theory, certificate=cert)
        # damage the first one *before* the server boots
        with open(registry.certificate_path("startup-corrupt", 1), "wb") as fh:
            fh.write(b"\x00\xff" * 8)

        ready = threading.Event()
        box = {"registry": registry}

        def on_ready(srv):
            box["port"] = srv.port
            ready.set()

        thread = threading.Thread(
            target=serve,
            kwargs=dict(
                port=0, slots=1,
                state_dir=str(tmp_path / "jobs"),
                registry_dir=str(tmp_path / "registry"),
                ready=on_ready,
            ),
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=10)
        yield box
        with ServiceClient(port=box["port"]) as c:
            c.request({"op": "shutdown"})
        thread.join(timeout=15)

    def test_startup_corruption_quarantined_not_fatal(self, cert_server):
        port = cert_server["port"]
        with ServiceClient(port=port) as c:
            stats = c.request({"op": "stats"})
            assert stats["ok"]
            assert stats["resilience"]["registry_quarantined"] == ["startup-corrupt/v0001"]
            resp = c.request({"op": "registry", "action": "show", "name": "startup-corrupt"})
            assert resp["ok"]  # theory served, quarantined cert simply absent
            assert "certificate" not in resp and "certificate_error" not in resp
        assert_still_serving(port)

    def test_live_corruption_answers_structurally(self, cert_server):
        port = cert_server["port"]
        path = cert_server["registry"].certificate_path("live-corrupt", 1)
        with open(path, "wb") as fh:
            fh.write(b"\xde\xad\xbe\xef")
        with ServiceClient(port=port) as c:
            resp = c.request({"op": "registry", "action": "show", "name": "live-corrupt"})
            assert resp["ok"]  # the exact record is the artifact of record
            assert "certificate_error" in resp
            # the same connection keeps serving after the damaged read
            assert c.request({"op": "ping"})["ok"]
        assert_still_serving(port)

    def test_intact_certificate_still_served(self, cert_server):
        # (startup recovery must not have touched the healthy artifact —
        # run after the startup-corruption leg by class ordering)
        port = cert_server["port"]
        with ServiceClient(port=port) as c:
            resp = c.request({"op": "registry", "action": "show", "name": "live-corrupt"})
            if "certificate" in resp:  # before the live-damage leg ran
                assert resp["certificate"]["ok"] is True


class TestWireFrontDoor:
    def test_oversized_frame_answered_framing_resyncs(self, server):
        sock, f = wire_connection(server)
        with sock:
            # Full oversized frame: header + (MAX_FRAME + 1) payload bytes.
            f.write(FRAME_HEADER.pack(MAX_FRAME + 1))
            f.write(b"\x00" * (MAX_FRAME + 1))
            f.write(pack_frame(WireJson({"op": "ping"})))  # queued behind it
            f.flush()
            from repro.service import wiremsg

            msg, _ = wiremsg.read_frame_from(f)
            assert isinstance(msg, WireJson)
            assert not msg.payload["ok"]
            assert msg.payload["code"] == "frame_too_large"
            # The body was discarded, so the framing is intact and the
            # ping behind the oversized frame still gets its answer.
            msg, _ = wiremsg.read_frame_from(f)
            assert isinstance(msg, WireJson) and msg.payload["ok"]
        assert_still_serving(server)

    def test_truncated_oversized_frame_no_hang(self, server):
        sock, f = wire_connection(server)
        with sock:
            f.write(FRAME_HEADER.pack(MAX_FRAME + 1))
            f.write(b"\x00" * 64)  # a sliver of the promised body
            f.flush()
            sock.shutdown(socket.SHUT_WR)  # EOF mid-discard
            # The server abandons the discard at EOF; the error answer may
            # or may not make it out before close — the invariant is no
            # hang, bounded by the socket timeout.
            while sock.recv(65536):
                pass
        assert_still_serving(server)

    def test_truncated_frame_closes_cleanly(self, server):
        sock, f = wire_connection(server)
        with sock:
            f.write(FRAME_HEADER.pack(100))
            f.write(b"short")
            f.flush()
            sock.shutdown(socket.SHUT_WR)
            assert sock.recv(4096) == b""
        assert_still_serving(server)

    def test_garbage_frame_answered_then_closed(self, server):
        sock, f = wire_connection(server)
        with sock:
            payload = b"\xde\xad\xbe\xef garbage that is no wire message"
            f.write(FRAME_HEADER.pack(len(payload)) + payload)
            f.flush()
            from repro.service import wiremsg

            msg, _ = wiremsg.read_frame_from(f)
            assert isinstance(msg, WireJson)
            assert not msg.payload["ok"]
            assert msg.payload["code"] == "bad_request"
            # After a decode failure nothing later on the connection is
            # trustworthy: the server closes.
            assert f.read(1) == b""
        assert_still_serving(server)

    def test_random_frames_never_hang(self, server):
        rng = random.Random(1)
        for trial in range(8):
            payload = bytes(
                rng.randrange(256) for _ in range(rng.randrange(1, 512))
            )
            sock, f = wire_connection(server)
            with sock:
                f.write(FRAME_HEADER.pack(len(payload)) + payload)
                f.flush()
                sock.shutdown(socket.SHUT_WR)
                while sock.recv(65536):
                    pass
        assert_still_serving(server)

    def test_outbound_oversize_is_structured_client_side(self):
        with pytest.raises(Exception) as err:
            pack_frame(WireJson({"pad": "a" * (MAX_FRAME + 16)}))
        from repro.service.errors import FrameTooLarge

        assert isinstance(err.value, FrameTooLarge)

"""Simulated distributed-memory cluster (the Beowulf stand-in).

A deterministic discrete-event simulation of a message-passing cluster:
per-node virtual clocks, an mpi4py-style ``send``/``bcast``/``recv`` API
(§2.2 of the paper), a latency+bandwidth network model, pickled-payload
size accounting (Table 4), and a pluggable compute-cost model fed by the
logic engine's inference-operation counter.
"""

from repro.cluster.cluster import ClusterRun, VirtualCluster
from repro.cluster.costmodel import (
    CostModel,
    DEFAULT_COST_MODEL,
    OpsCostModel,
    PerRankCostModel,
    WallClockCostModel,
)
from repro.cluster.message import Message, Tag, payload_nbytes
from repro.cluster.network import FAST_ETHERNET, GIGABIT, INFINIBAND_LIKE, NetworkModel
from repro.cluster.process import ComputeInterval, ProcContext, SimProcess
from repro.cluster.scheduler import CommStats, DeadlockError, Scheduler

__all__ = [
    "ClusterRun",
    "VirtualCluster",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "OpsCostModel",
    "PerRankCostModel",
    "WallClockCostModel",
    "Message",
    "Tag",
    "payload_nbytes",
    "FAST_ETHERNET",
    "GIGABIT",
    "INFINIBAND_LIKE",
    "NetworkModel",
    "ComputeInterval",
    "ProcContext",
    "SimProcess",
    "CommStats",
    "DeadlockError",
    "Scheduler",
]

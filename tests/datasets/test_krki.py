"""Tests for the KRK-illegal dataset generator."""

import pytest

from repro.datasets import make_dataset
from repro.datasets.krki import _is_illegal
from repro.ilp.mdie import mdie
from repro.ilp.theory import accuracy
from repro.logic.engine import Engine


class TestLabelFunction:
    def test_adjacent_kings_illegal(self):
        assert _is_illegal(3, 3, 0, 7, 4, 4)

    def test_rook_attacks_file(self):
        assert _is_illegal(0, 0, 5, 3, 5, 7)

    def test_rook_attacks_rank(self):
        assert _is_illegal(0, 0, 2, 6, 7, 6)

    def test_shared_square_illegal(self):
        assert _is_illegal(2, 2, 2, 2, 7, 7)

    def test_legal_position(self):
        assert not _is_illegal(0, 0, 2, 3, 7, 7)


class TestGenerator:
    def test_quotas(self):
        ds = make_dataset("krki", seed=1, scale="small")
        assert (ds.n_pos, ds.n_neg) == (60, 60)

    def test_deterministic(self):
        a = make_dataset("krki", seed=4)
        b = make_dataset("krki", seed=4)
        assert [str(e) for e in a.pos] == [str(e) for e in b.pos]

    def test_modes_validate(self):
        make_dataset("krki", seed=1).modes.validate()

    def test_labels_consistent_with_bk(self):
        """Every positive's board must satisfy the illegality predicate
        computed from its stored piece facts."""
        ds = make_dataset("krki", seed=1, scale="small")
        boards = {}
        for pred in ("wk", "wr", "bk"):
            for f in ds.kb.facts_for((pred, 3)):
                pid = str(f.args[0])
                boards.setdefault(pid, {})[pred] = (f.args[1].value, f.args[2].value)
        for e in ds.pos:
            b = boards[str(e.args[0])]
            assert _is_illegal(*b["wk"], *b["wr"], *b["bk"])
        for e in ds.neg:
            b = boards[str(e.args[0])]
            assert not _is_illegal(*b["wk"], *b["wr"], *b["bk"])


class TestLearnable:
    def test_mdie_beats_chance(self):
        ds = make_dataset("krki", seed=1, scale="small")
        res = mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=1)
        eng = Engine(ds.kb, ds.config.engine_budget())
        acc = accuracy(eng, res.theory, ds.pos, ds.neg)
        assert acc > 75.0

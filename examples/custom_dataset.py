#!/usr/bin/env python
"""Build an ILP problem from scratch with the public API and learn on a
simulated cluster — the template for using this library on your own
relational data.

The task: learn `grandparent(X, Y)` from family trees.

Run:  python examples/custom_dataset.py
"""

from repro.cluster import GIGABIT, OpsCostModel
from repro.ilp import ILPConfig, ModeSet, accuracy, mdie
from repro.logic import Engine, KnowledgeBase, parse_term
from repro.parallel import run_p2mdie, sequential_seconds


def build_problem():
    # 1. Background knowledge: plain Prolog-ish text (or atom()/add_fact).
    kb = KnowledgeBase()
    kb.add_program(
        """
        parent(ann, bob).  parent(ann, cee).  parent(bob, dan).
        parent(bob, eve).  parent(cee, fred). parent(dan, gil).
        parent(eve, hana). parent(fred, ian). parent(gil, jon).
        parent(hana, kim). parent(ian, lea).  parent(jon, mia).
        male(bob). male(dan). male(fred). male(gil). male(ian). male(jon).
        female(ann). female(cee). female(eve). female(hana). female(kim).
        female(lea). female(mia).
        """
    )

    # 2. Examples: ground atoms of the target predicate.
    pos = [
        parse_term(s)
        for s in (
            "grandparent(ann, dan)", "grandparent(ann, eve)", "grandparent(ann, fred)",
            "grandparent(bob, gil)", "grandparent(bob, hana)", "grandparent(cee, ian)",
            "grandparent(dan, jon)", "grandparent(eve, kim)", "grandparent(fred, lea)",
            "grandparent(gil, mia)",
        )
    ]
    neg = [
        parse_term(s)
        for s in (
            "grandparent(ann, bob)", "grandparent(bob, ann)", "grandparent(dan, dan)",
            "grandparent(eve, ann)", "grandparent(kim, ann)", "grandparent(jon, gil)",
            "grandparent(mia, jon)", "grandparent(cee, bob)",
        )
    ]

    # 3. Language bias: one head mode + body modes with +/-/# placemarkers.
    modes = ModeSet(
        [
            "modeh(1, grandparent(+person, +person))",
            "modeb(*, parent(+person, -person))",
            "modeb(*, parent(-person, +person))",
            "modeb(1, male(+person))",
            "modeb(1, female(+person))",
        ]
    )

    # 4. Constraints C: clause length, noise tolerance, search budget, W.
    config = ILPConfig(
        max_clause_length=3,
        var_depth=2,
        noise=0,
        min_pos=2,
        max_nodes=400,
        pipeline_width=5,
    )
    return kb, pos, neg, modes, config


def main() -> None:
    kb, pos, neg, modes, config = build_problem()

    seq = mdie(kb, pos, neg, modes, config, seed=0)
    print("sequential theory:")
    for c in seq.theory:
        print(f"  {c}")

    # A faster interconnect and a custom cost model, to show the knobs.
    par = run_p2mdie(
        kb, pos, neg, modes, config,
        p=3,
        seed=0,
        network=GIGABIT,
        cost_model=OpsCostModel(sec_per_op=40e-6),
    )
    print("\np2-mdie theory (p=3, gigabit fabric):")
    for c in par.theory:
        print(f"  {c}")

    engine = Engine(kb, config.engine_budget())
    print(f"\nsequential acc: {accuracy(engine, seq.theory, pos, neg):.1f}%   "
          f"parallel acc: {accuracy(engine, par.theory, pos, neg):.1f}%")
    print(f"speedup: {sequential_seconds(seq) / par.seconds:.2f}x   "
          f"comm: {par.mbytes * 1024:.1f} KB   epochs: {par.epochs}")


if __name__ == "__main__":
    main()

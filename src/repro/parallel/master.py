"""P²-MDIE master process (paper Fig. 5).

Per epoch the master:

1. starts ``p`` pipelines, one rooted at each worker (lines 6-8);
2. collects the ``p`` pipelines' final rule sets into ``RulesBag``
   (line 9);
3. globally evaluates the bag (broadcast ``evaluate`` / gather results,
   lines 10-11);
4. greedily consumes the bag (lines 12-22): accept the globally best rule,
   broadcast ``mark_covered``, re-evaluate the remainder, drop rules that
   are no longer good.

Epochs repeat until every positive example is covered or learning stalls
(no pipeline produced an acceptable rule for ``stall_limit`` consecutive
epochs — the paper's generic "stopping condition").

Fault tolerance: when a :class:`~repro.fault.plan.FaultPlan` is active
the master runs the same algorithm through the self-healing collectives
of :class:`~repro.fault.recovery.FTMasterMixin` — timed receives,
heartbeat probes, adoption of dead hosts' logical workers, idempotent
reissue of lost pipelines/evaluations — and stamps every pipeline and
evaluation round so stale traffic from de-zombied hosts is discarded.
With no plan the historical protocol runs byte-for-byte unchanged.
Checkpoints (when enabled) are written at epoch boundaries on either
path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.message import Tag
from repro.cluster.process import ProcContext, SimProcess
from repro.fault.plan import FaultPlan
from repro.fault.recovery import FTMasterMixin, PoolSupervisor
from repro.ilp.config import ILPConfig
from repro.ilp.heuristics import is_good, score_rule
from repro.ilp.prune import ClauseBag
from repro.logic.clause import Clause, Theory
from repro.parallel.messages import (
    AdoptWorker,
    EvaluateRequest,
    EvaluateResult,
    ExamplesReport,
    GatherExamples,
    LoadExamples,
    MarkCovered,
    PipelineRules,
    Repartition,
    SampledEvaluateRequest,
    SampledEvaluateResult,
    StartPipeline,
    Stop,
    per_worker_evaluate_requests,
    record_candidate_masks,
)
from repro.util.rng import make_rng

__all__ = ["P2Master", "EpochLog", "drop_not_good", "pick_best", "consume_bag"]


def drop_not_good(bag: "ClauseBag", stats: dict, config: ILPConfig) -> None:
    """Fig. 5 lines 20-21: discard rules that stopped being good.

    Shared by every master that consumes a rule bag — the filter and the
    tie-break below are parity-critical (golden tests pin bit-identical
    theories), so they live in exactly one place.
    """
    for clause in bag:
        p, n = stats[clause]
        if not is_good(p, n, config):
            bag.discard(clause)


def pick_best(bag: "ClauseBag", stats: dict, config: ILPConfig) -> Clause:
    """Fig. 5 line 13: best rule by global-coverage heuristic."""

    def key(clause: Clause):
        p, n = stats[clause]
        s = score_rule(p, n, len(clause.body) + 1, config)
        return (-s, len(clause.body), str(clause))

    return min(bag, key=key)


def consume_bag(master, ctx: ProcContext, bag: ClauseBag, log: EpochLog, evaluate):
    """Fig. 5 lines 10-22: evaluate, filter, then greedily consume a bag.

    One implementation for every master and both protocol flavours —
    ``evaluate(ctx, clauses)`` is the strategy's evaluation round
    (fault-free ``_global_eval`` or the self-healing ``_ft_eval_round``).
    Mutates ``master.theory``/``master.remaining`` and the epoch log.
    """
    clauses = bag.clauses()
    totals = yield from evaluate(ctx, clauses)
    stats = dict(zip(clauses, totals))
    drop_not_good(bag, stats, master.config)
    while bag:
        best = pick_best(bag, stats, master.config)
        bag.discard(best)
        master.theory.add(best)
        # Sampled runs certify every acceptance (masters without the hook
        # — the covering baselines — are untouched).
        record = getattr(master, "_record_certificate", None)
        if record is not None:
            record(best, stats[best])
        log.accepted.append(best)
        covered = stats[best][0]
        log.pos_covered += covered
        master.remaining -= covered
        dsts = master.ft.serving_hosts() if master.ft is not None else master._workers()
        yield ctx.bcast(MarkCovered(rule=best), tag=Tag.MARK_COVERED, dsts=dsts)
        if not bag:
            break
        clauses = bag.clauses()
        totals = yield from evaluate(ctx, clauses)
        stats = dict(zip(clauses, totals))
        drop_not_good(bag, stats, master.config)


@dataclass
class EpochLog:
    """Per-epoch bookkeeping (drives Tables 3-5 and the trace figure)."""

    epoch: int
    bag_size: int
    accepted: list[Clause] = field(default_factory=list)
    pos_covered: int = 0
    #: aggregate worker evaluation-cache counters at epoch end (collected
    #: by the fault-tolerance heartbeat; None on the fault-free path,
    #: whose wire protocol predates — and must stay identical to — them).
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None


class P2Master(FTMasterMixin, SimProcess):
    """Rank-0 master driving the worker ring."""

    def __init__(
        self,
        n_workers: int,
        total_pos: int,
        config: ILPConfig,
        width: Optional[int] = ...,
        max_epochs: Optional[int] = None,
        stall_limit: int = 3,
        repartition_each_epoch: bool = False,
        seed: int = 0,
        ship_data: Optional[list] = None,
        fault_plan: Optional[FaultPlan] = None,
        spares: int = 0,
        checkpoint_dir: Optional[str] = None,
        checkpoint_meta: tuple = (),
        resume=None,
    ):
        super().__init__(0)
        self.n_workers = n_workers
        self.total_pos = total_pos
        self.config = config
        self.width = config.pipeline_width if width is ... else width
        self.max_epochs = max_epochs
        self.stall_limit = stall_limit
        #: §4.1's rejected alternative, implemented so its cost is
        #: measurable: reshuffle the remaining examples over the workers
        #: before every epoch after the first.
        self.repartition_each_epoch = repartition_each_epoch
        self.seed = seed
        #: when set (no shared filesystem), a list of per-worker LoadData
        #: payloads to ship instead of LoadExamples notifications (§4.1).
        self.ship_data = ship_data
        # fault tolerance & checkpointing (repro.fault):
        self.fault_plan = fault_plan
        self.ft: Optional[PoolSupervisor] = (
            PoolSupervisor(n_workers, spares=spares, timeout=fault_plan.timeout)
            if fault_plan is not None
            else None
        )
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_meta = tuple(checkpoint_meta)
        self.fault_events: list[str] = []
        self._ft_current_log: Optional[EpochLog] = None
        # outputs, populated by run():
        self.theory = Theory()
        self.epoch_logs: list[EpochLog] = []
        self.remaining: int = total_pos
        self._stall0 = 0
        self._resume = resume
        if resume is not None:
            from repro.fault.checkpoint import epoch_logs_from_records, verify_config

            verify_config(resume, repr(config))
            self.theory = Theory(resume.theory)
            self.epoch_logs = epoch_logs_from_records(resume.epoch_logs)
            self.remaining = resume.remaining
            self._stall0 = resume.stall
        # coverage-inheritance bookkeeping: rank -> {clause ->
        # (pos_cand, neg_cand)} local candidate masks reported by each
        # worker (lineage itself is structural: parent = body minus the
        # appended last literal).
        self._worker_cand: dict[int, dict[Clause, tuple[int, int]]] = {}
        # sampled-coverage mode (resolved once here so the decision
        # travels with the pickled master to real backends, whatever the
        # remote environment says):
        self._sampling = config.sampling_enabled()
        #: clause -> pooled SampledStats of the latest screening round.
        self._sample_est: dict = {}
        #: per-rank strata rows recorded on first contact.
        self._sample_strata: dict[int, tuple] = {}
        self._cert_entries: list = []
        #: sampled-run exactness certificate (None on the reference path).
        self.certificate = None

    @property
    def epochs(self) -> int:
        return len(self.epoch_logs)

    def _workers(self) -> list[int]:
        return list(range(1, self.n_workers + 1))

    # -- checkpointing -----------------------------------------------------------
    def _resume_payload(self, rank: int) -> AdoptWorker:
        """Initial load of a resumed run: history instead of a blank slate.

        At an epoch boundary (no epoch in progress) the adoption payload
        of the self-healing protocol is exactly the resume payload — the
        resume loader *is* the adoption machinery.
        """
        return self._ft_adopt_payload(rank)

    def _write_checkpoint(self, stall: int) -> None:
        if self.checkpoint_dir is None:
            return
        from repro.fault.checkpoint import (
            CHECKPOINT_VERSION,
            CheckpointState,
            checkpoint_path,
            records_from_epoch_logs,
            save_checkpoint,
        )

        os.makedirs(self.checkpoint_dir, exist_ok=True)
        state = CheckpointState(
            version=CHECKPOINT_VERSION,
            algo="p2mdie",
            seed=self.seed,
            n_workers=self.n_workers,
            total_pos=self.total_pos,
            epoch=self.epochs,
            remaining=max(self.remaining, 0),
            stall=stall,
            theory=tuple(self.theory),
            epoch_logs=records_from_epoch_logs(self.epoch_logs),
            config_sig=repr(self.config),
            meta=self.checkpoint_meta,
        )
        save_checkpoint(checkpoint_path(self.checkpoint_dir, self.epochs), state)

    # -- global evaluation round (Fig. 5 lines 10-11 / 18-19) --------------------
    def _global_eval(self, ctx: ProcContext, clauses: list[Clause]):
        """One evaluation round: exact, or sampled screen + exact on the
        survivors when ``coverage_sampling`` is on.

        The sampled flavour broadcasts a :class:`SampledEvaluateRequest`
        (workers score the bag on their local per-shard strata — masks
        never ship, both sides derive them from the run seed), pools the
        per-rule sampled stats, and sends the plausibly-good survivors
        through a normal exact round.  Screened-out rules report their
        *optimistic bounds* as totals, so the shared bag-consumption
        filter (:func:`drop_not_good`) discards exactly the rules the
        sample confidently ruled out — and anything that can be accepted
        was measured exactly.
        """
        if not self._sampling:
            totals = yield from self._exact_eval(ctx, clauses)
            return totals
        rules = tuple(clauses)
        yield ctx.bcast(SampledEvaluateRequest(rules=rules), tag=Tag.EVALUATE, dsts=self._workers())
        pooled: list = [None] * len(rules)
        for _ in self._workers():
            msg = yield ctx.recv(tag=Tag.RESULT)
            res: SampledEvaluateResult = msg.payload
            if res.rank not in self._sample_strata and res.stats:
                s0 = res.stats[0]
                self._sample_strata[res.rank] = (
                    (f"pos@r{res.rank}", s0.pos_n, s0.pos_total),
                    (f"neg@r{res.rank}", s0.neg_n, s0.neg_total),
                )
            for i, ss in enumerate(res.stats):
                pooled[i] = ss if pooled[i] is None else pooled[i].merged(ss)
        yield ctx.compute(len(clauses) + 1, label="aggregate")
        delta = self.config.sample_delta
        survivors = [c for c, ss in zip(clauses, pooled) if ss.maybe_good(self.config)]
        for c, ss in zip(clauses, pooled):
            self._sample_est[c] = ss
        exact: dict = {}
        if survivors:
            ex_totals = yield from self._exact_eval(ctx, survivors)
            exact = dict(zip(survivors, ex_totals))
        out = []
        for c, ss in zip(clauses, pooled):
            if c in exact:
                out.append(exact[c])
            else:
                out.append((ss.pos_upper(delta), ss.neg_lower(delta)))
        return out

    def _exact_eval(self, ctx: ProcContext, clauses: list[Clause]):
        """Broadcast evaluate(); gather and sum per-worker stats.

        With coverage inheritance, when the master knows a worker's local
        candidate masks for a rule's parent (reported in an earlier
        round), it ships them back so the worker narrows its
        re-evaluation even on a cold cache — at the price of per-worker
        (rather than broadcast) requests.
        """
        rules = tuple(clauses)
        parents: Optional[tuple] = None
        if self.config.coverage_inheritance:
            parents = tuple(Clause(c.head, c.body[:-1]) if c.body else None for c in clauses)
        requests = per_worker_evaluate_requests(rules, parents, self._workers(), self._worker_cand)
        if requests is None:
            yield ctx.bcast(EvaluateRequest(rules=rules), tag=Tag.EVALUATE, dsts=self._workers())
        else:
            for k, req in requests.items():
                yield ctx.send(k, req, tag=Tag.EVALUATE)
        totals = [[0, 0] for _ in clauses]
        for _ in self._workers():
            msg = yield ctx.recv(tag=Tag.RESULT)
            res: EvaluateResult = msg.payload
            record_candidate_masks(self._worker_cand, clauses, res)
            for i, rs in enumerate(res.stats):
                totals[i][0] += rs.pos
                totals[i][1] += rs.neg
        # Aggregation cost is linear in bag size.
        yield ctx.compute(len(clauses) + 1, label="aggregate")
        return [(p, n) for p, n in totals]

    # -- sampled-run certification ------------------------------------------------
    def _record_certificate(self, best: Clause, totals: tuple) -> None:
        """Record one acceptance's sampled-vs-exact agreement.

        Called by :func:`consume_bag` right after ``theory.add``.  On the
        fault-tolerant path no screen runs (``_ft_eval_round`` is always
        exact), so entries there are ``deferred``.
        """
        if not self._sampling:
            return
        from repro.ilp.sampling import clause_certificate

        self._cert_entries.append(
            clause_certificate(best, self._sample_est.get(best), totals[0], totals[1], self.config)
        )

    def _build_certificate(self) -> None:
        if not self._sampling:
            return
        from repro.ilp.sampling import CoverageCertificate

        strata = tuple(
            row for rank in sorted(self._sample_strata) for row in self._sample_strata[rank]
        )
        self.certificate = CoverageCertificate(
            seed=self.seed,
            fraction=self.config.sample_fraction,
            delta=self.config.sample_delta,
            min_stratum=self.config.sample_min,
            strata=strata,
            entries=tuple(self._cert_entries),
        )

    # -- process body ----------------------------------------------------------------
    def run(self, ctx: ProcContext):
        if self.ft is not None:
            yield from self._run_ft(ctx)
            return
        # Fig. 5 line 3: broadcast load_examples (partition id == rank), or
        # ship the data itself when no shared filesystem is assumed.  A
        # resumed run ships the accepted-rule history for replay instead.
        for k in self._workers():
            if self._resume is not None:
                yield ctx.send(k, self._resume_payload(k), tag=Tag.LOAD_EXAMPLES)
            elif self.ship_data is not None:
                yield ctx.send(k, self.ship_data[k - 1], tag=Tag.LOAD_EXAMPLES)
            else:
                yield ctx.send(k, LoadExamples(partition_id=k), tag=Tag.LOAD_EXAMPLES)

        stall = self._stall0
        while self.remaining > 0:
            if self.max_epochs is not None and self.epochs >= self.max_epochs:
                break
            if self.repartition_each_epoch and self.epochs > 0:
                yield from self._repartition_round(ctx)
            log = EpochLog(epoch=self.epochs + 1, bag_size=0)
            # Masks only serve narrowing within this epoch's bag rounds;
            # dropping them per epoch bounds the master's memory.
            self._worker_cand.clear()

            # Lines 6-8: start p pipelines.
            for k in self._workers():
                yield ctx.send(k, StartPipeline(width=self.width), tag=Tag.START_PIPELINE)
            # Line 9: collect every pipeline's rules (renamed-apart
            # variants collapse to one bag slot via their variant key).
            bag = ClauseBag(self.config.clause_fingerprints)
            for _ in self._workers():
                msg = yield ctx.recv(tag=Tag.RULES)
                rules: PipelineRules = msg.payload
                for sr in rules.rules:
                    bag.add(sr.clause)
            log.bag_size = bag.reported_size

            if bag:
                # Lines 10-22: evaluate and greedily consume the bag.
                yield from consume_bag(self, ctx, bag, log, self._global_eval)

            self.epoch_logs.append(log)
            if log.accepted:
                stall = 0
            else:
                stall += 1
            self._write_checkpoint(stall)
            if not log.accepted and stall >= self.stall_limit:
                break

        self._build_certificate()
        yield ctx.bcast(Stop(), tag=Tag.STOP, dsts=self._workers())

    # -- fault-tolerant body ------------------------------------------------------
    def _ft_history(self):
        """Replay payload for adoptions at the current protocol point."""
        completed = tuple(tuple(log.accepted) for log in self.epoch_logs)
        log = self._ft_current_log
        if log is not None:
            # Mid-epoch: the lost worker had already drawn this epoch's
            # seed and applied the kills accepted so far.
            return (completed, tuple(log.accepted), True, True, log.epoch)
        return (completed, (), True, False, self.epochs)

    def _run_ft(self, ctx: ProcContext):
        """The same covering algorithm over self-healing collectives."""
        self._ft_init()
        for k in self._workers():
            if self._resume is not None:
                yield ctx.send(k, self._resume_payload(k), tag=Tag.LOAD_EXAMPLES)
            else:
                yield ctx.send(k, LoadExamples(partition_id=k), tag=Tag.LOAD_EXAMPLES)

        stall = self._stall0
        while self.remaining > 0:
            if self.max_epochs is not None and self.epochs >= self.max_epochs:
                break
            epoch = self.epochs + 1
            yield from self._ft_admit_joins(ctx, epoch)
            log = EpochLog(epoch=epoch, bag_size=0)
            self._ft_current_log = log

            rules_by_origin = yield from self._ft_pipeline_round(ctx, self.width, epoch)
            bag = ClauseBag(self.config.clause_fingerprints)
            for origin in sorted(rules_by_origin):
                for sr in rules_by_origin[origin]:
                    bag.add(sr.clause)
            log.bag_size = bag.reported_size

            if bag:
                yield from consume_bag(self, ctx, bag, log, self._ft_eval_round)

            self.epoch_logs.append(log)
            self._ft_current_log = None
            yield from self._ft_epoch_pulse(ctx, log)
            if log.accepted:
                stall = 0
            else:
                stall += 1
            self._write_checkpoint(stall)
            if not log.accepted and stall >= self.stall_limit:
                break

        # Stop every provisioned host — including declared-dead ones that
        # may in fact be alive (false positives keep running otherwise).
        self._build_certificate()
        yield ctx.bcast(Stop(), tag=Tag.STOP, dsts=self.ft.hosts)

    # -- repartitioning extension (§4.1's rejected alternative) ------------------
    def _repartition_round(self, ctx: ProcContext):
        """Gather remaining examples, reshuffle, redistribute.

        This ships example terms over the network (no shared-FS shortcut
        mid-run) — precisely the communication the paper declined to pay.
        """
        from repro.parallel.partition import partition_examples

        yield ctx.bcast(GatherExamples(), tag=Tag.LOAD_EXAMPLES, dsts=self._workers())
        pos: list = []
        neg: list = []
        for _ in self._workers():
            msg = yield ctx.recv(tag=Tag.LOAD_EXAMPLES)
            report: ExamplesReport = msg.payload
            pos.extend(report.pos)
            neg.extend(report.neg)
        # Deterministic global ordering before the shuffle.
        pos.sort(key=str)
        neg.sort(key=str)
        rng = make_rng(self.seed, "repartition", self.epochs)
        parts = partition_examples(pos, neg, self.n_workers, rng)
        yield ctx.compute(len(pos) + len(neg) + 1, label="aggregate")
        # Candidate masks are in each worker's local example numbering;
        # repartitioning renumbers everything, so they all expire.
        self._worker_cand.clear()
        for k, part in zip(self._workers(), parts):
            yield ctx.send(k, Repartition(pos=part.pos, neg=part.neg), tag=Tag.LOAD_EXAMPLES)

"""Sampling parity across execution substrates.

The deterministic-seed regression for the sampled-coverage mode: with a
fixed seed, the stratified samplers draw identical masks everywhere —
the discrete-event sim, real local processes, and a threaded-SPMD MPI
harness — so all three substrates learn identical theories, log
identical epochs, and emit identical :class:`CoverageCertificate`
artifacts (strata rows included).

Also pins the raw sampler mask stream for a fixed seed: the masks are
derived, never shipped, so any drift in the RNG derivation path would
silently desynchronize master and (re-adopted) worker shards.  The
golden values below make such a drift a loud test failure instead.
"""

import threading

import pytest

from repro.backend import LocalProcessBackend
from repro.backend.mpi import MPIBackend
from repro.datasets import make_dataset
from repro.ilp.sampling import make_sampler
from repro.parallel import run_p2mdie

from test_mpi_fault import ClusterComm, FakeStatus  # same directory

LOCAL_TIMEOUT = 300.0


@pytest.fixture
def fake_mpi(monkeypatch):
    import sys
    import types

    mod = types.ModuleType("mpi4py")
    mpi = types.SimpleNamespace(ANY_SOURCE=-1, ANY_TAG=-1, Status=FakeStatus)
    mod.MPI = mpi
    monkeypatch.setitem(sys.modules, "mpi4py", mod)
    monkeypatch.setitem(sys.modules, "mpi4py.MPI", mpi)
    return mod


def _sampled_dataset(name="trains"):
    ds = make_dataset(name, seed=0, scale="small")
    return ds, ds.config.replace(
        coverage_sampling=True, sample_fraction=0.5, sample_min=2
    )


def _epoch_rows(res):
    return [
        (l.epoch, l.bag_size, tuple(str(c) for c in l.accepted), l.pos_covered)
        for l in res.epoch_logs
    ]


def _assert_sampled_parity(a, b):
    assert list(a.theory) == list(b.theory)
    assert a.epochs == b.epochs
    assert a.uncovered == b.uncovered
    assert _epoch_rows(a) == _epoch_rows(b)
    assert a.certificate is not None and b.certificate is not None
    assert a.certificate == b.certificate  # strata rows and entries included
    assert a.certificate.ok


class TestSimLocalParity:
    @pytest.mark.parametrize("name", ["trains", "krki"])
    def test_p2mdie_sampled(self, name):
        ds, config = _sampled_dataset(name)
        args = (ds.kb, ds.pos, ds.neg, ds.modes, config)
        r_sim = run_p2mdie(*args, p=2, seed=0)
        r_loc = run_p2mdie(
            *args, p=2, seed=0, backend=LocalProcessBackend(timeout=LOCAL_TIMEOUT)
        )
        assert len(r_sim.theory) >= 1
        _assert_sampled_parity(r_sim, r_loc)

    def test_more_workers(self):
        ds, config = _sampled_dataset()
        args = (ds.kb, ds.pos, ds.neg, ds.modes, config)
        r_sim = run_p2mdie(*args, p=4, seed=0)
        r_loc = run_p2mdie(
            *args, p=4, seed=0, backend=LocalProcessBackend(timeout=LOCAL_TIMEOUT)
        )
        _assert_sampled_parity(r_sim, r_loc)

    def test_per_rank_strata_recorded(self):
        ds, config = _sampled_dataset()
        res = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, config, p=2, seed=0)
        labels = [row[0] for row in res.certificate.strata]
        assert labels == ["pos@r1", "neg@r1", "pos@r2", "neg@r2"]


class TestThreadedSPMDParity:
    """Every MPI rank is a thread over a ClusterComm view, making the
    identical ``run_p2mdie`` call — the full SPMD protocol without an
    MPI runtime (idiom of test_mpi_fault.TestThreadedSPMDParity)."""

    def _spmd(self, ds, config, n_ranks, p):
        cluster = ClusterComm(n_ranks)
        results = {}
        errors = {}

        def rank_main(r):
            try:
                bk = MPIBackend(comm=cluster.view(r))
                results[r] = run_p2mdie(
                    ds.kb, ds.pos, ds.neg, ds.modes, config,
                    p=p, seed=0, backend=bk,
                )
            except BaseException as exc:  # surface in the test, not a hang
                errors[r] = exc

        threads = [
            threading.Thread(target=rank_main, args=(r,)) for r in range(n_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not any(t.is_alive() for t in threads), "SPMD run deadlocked"
        assert not errors, f"rank failures: {errors}"
        return results

    def test_mpi_matches_sim(self, fake_mpi):
        ds, config = _sampled_dataset()
        base = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, config, p=2, seed=0)
        results = self._spmd(ds, config, n_ranks=3, p=2)
        _assert_sampled_parity(base, results[0])
        # every rank's front-end returns the rank-0 artifacts
        _assert_sampled_parity(base, results[2])


class TestSamplerMaskRegression:
    """Golden masks: the labelled RNG stream behind every sampler.

    These values were produced by ``make_rng(seed, "coverage_sample",
    *labels)`` at the PR that introduced sampling; they must never change
    — adopted spare workers *re-derive* their shard's masks instead of
    receiving them, so a drift here breaks fault-recovery determinism
    silently everywhere else.
    """

    KW = dict(fraction=0.25, delta=0.05, min_stratum=4)

    def test_fixed_seed_masks_are_stable(self):
        s = make_sampler(32, 24, 7, **self.KW)
        assert (s.pos_mask, s.neg_mask) == (436210195, 274600)
        assert (s.pos_n, s.neg_n) == (8, 6)

    def test_worker_labelled_masks_are_stable(self):
        per_rank = [
            make_sampler(16, 16, 0, labels=("worker", r), **self.KW)
            for r in (1, 2, 3)
        ]
        assert [(s.pos_mask, s.neg_mask) for s in per_rank] == [
            (17280, 417),
            (36932, 33036),
            (912, 1793),
        ]

    def test_redraw_equals_first_draw(self):
        # The property the adoption path relies on, stated directly.
        for r in (1, 2):
            a = make_sampler(40, 30, 3, labels=("worker", r), **self.KW)
            b = make_sampler(40, 30, 3, labels=("worker", r), **self.KW)
            assert a == b

"""Protocol-level unit tests for P2Worker: drive the generator by hand and
inspect every syscall it emits — the Fig. 6/7 semantics in isolation.

A tiny harness stands in for the scheduler: it feeds messages and records
Send/Bcast/Compute operations, letting tests assert exact message routing
(ring order, stage counting, master hand-off) without virtual time.
"""

import pytest

from repro.cluster.message import Message, Tag, payload_nbytes
from repro.cluster.process import BcastOp, ComputeOp, ProcContext, RecvOp, SendOp
from repro.ilp.config import ILPConfig
from repro.ilp.modes import ModeSet
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_term
from repro.parallel.messages import (
    EvaluateRequest,
    EvaluateResult,
    LoadExamples,
    MarkCovered,
    PipelineRules,
    PipelineTask,
    StartPipeline,
    Stop,
)
from repro.parallel.p2mdie import SharedProblem
from repro.parallel.partition import partition_examples
from repro.parallel.worker import MASTER_RANK, P2Worker
from repro.util.rng import make_rng


class FakeCluster:
    """Just enough of the scheduler surface for ProcContext."""

    def __init__(self, n_procs):
        self.n_procs = n_procs

    def clock_of(self, rank):
        return 0.0


class WorkerHarness:
    """Runs a worker generator, buffering its outbound operations."""

    def __init__(self, worker: P2Worker, n_procs: int):
        self.worker = worker
        ctx = ProcContext(worker.rank, FakeCluster(n_procs))
        self.gen = worker.run(ctx)
        self.sent: list[SendOp] = []
        self.computed: list[ComputeOp] = []
        self._advance(None)  # prime to first recv

    def _advance(self, value):
        try:
            op = self.gen.send(value)
        except StopIteration:
            self.stopped = True
            return
        self.stopped = False
        while True:
            if isinstance(op, RecvOp):
                self.waiting = op
                return
            if isinstance(op, SendOp):
                self.sent.append(op)
            elif isinstance(op, BcastOp):
                for dst in op.dsts:
                    self.sent.append(SendOp(dst, op.payload, op.tag))
            elif isinstance(op, ComputeOp):
                self.computed.append(op)
            else:  # pragma: no cover
                raise TypeError(op)
            try:
                op = self.gen.send(None)
            except StopIteration:
                self.stopped = True
                return

    def deliver(self, payload, src=0, tag="t"):
        msg = Message(
            src=src,
            dst=self.worker.rank,
            tag=tag,
            payload=payload,
            nbytes=payload_nbytes(payload),
            send_time=0.0,
            arrival_time=0.0,
            seq=0,
        )
        self._advance(msg)

    def take_sent(self):
        out, self.sent = self.sent, []
        return out


@pytest.fixture
def problem():
    kb = KnowledgeBase()
    kb.add_program(
        "parent(ann, mary). parent(tom, eve). parent(bob, joan)."
        "parent(eve, kim). parent(mary, liz). parent(liz, pat)."
        "female(mary). female(eve). female(joan). female(kim). female(liz). female(pat)."
    )
    pos = [
        parse_term(s)
        for s in (
            "daughter(mary, ann)",
            "daughter(eve, tom)",
            "daughter(joan, bob)",
            "daughter(kim, eve)",
            "daughter(liz, mary)",
            "daughter(pat, liz)",
        )
    ]
    neg = [parse_term("daughter(ann, mary)"), parse_term("daughter(tom, eve)")]
    modes = ModeSet(
        [
            "modeh(1, daughter(+person, +person))",
            "modeb(*, parent(-person, +person))",
            "modeb(1, female(+person))",
        ]
    )
    config = ILPConfig(min_pos=1, max_clause_length=2, var_depth=2, max_nodes=200)
    parts = partition_examples(pos, neg, 3, make_rng(0))
    return SharedProblem(kb, parts, modes, config)


def make_loaded_worker(problem, rank=1, n=3):
    h = WorkerHarness(P2Worker(rank, problem, n, seed=0), n_procs=n + 1)
    h.deliver(LoadExamples(partition_id=rank), src=0, tag=Tag.LOAD_EXAMPLES)
    h.take_sent()
    return h


class TestLoad:
    def test_loads_own_partition(self, problem):
        h = make_loaded_worker(problem, rank=2)
        assert h.worker.store.n_pos == len(problem.partitions[1].pos)
        assert any(c.label == "load" for c in h.computed)


class TestStartPipeline:
    def test_first_stage_forwards_to_next_worker(self, problem):
        h = make_loaded_worker(problem, rank=1)
        h.deliver(StartPipeline(width=5), src=0, tag=Tag.START_PIPELINE)
        sent = h.take_sent()
        assert len(sent) == 1
        op = sent[0]
        assert op.dst == 2  # ring successor
        assert op.tag == Tag.LEARN_RULE
        task: PipelineTask = op.payload
        assert task.step == 2
        assert task.origin == 1
        assert task.bottom is not None

    def test_saturation_charged(self, problem):
        h = make_loaded_worker(problem, rank=1)
        h.deliver(StartPipeline(width=5), src=0, tag=Tag.START_PIPELINE)
        labels = [c.label for c in h.computed]
        assert "saturate" in labels
        assert any(l.startswith("search(s1)") for l in labels)


class TestPipelineStage:
    def test_last_stage_reports_to_master(self, problem):
        h = make_loaded_worker(problem, rank=3, n=3)
        # a stage-3 task arriving at worker 3 of 3 must go to the master
        h2 = make_loaded_worker(problem, rank=1)
        h2.deliver(StartPipeline(width=5), src=0, tag=Tag.START_PIPELINE)
        task = h2.take_sent()[0].payload
        task3 = PipelineTask(
            bottom=task.bottom, step=3, width=task.width, rules=task.rules, origin=1
        )
        h.deliver(task3, src=2, tag=Tag.LEARN_RULE)
        sent = h.take_sent()
        assert len(sent) == 1
        assert sent[0].dst == MASTER_RANK
        assert sent[0].tag == Tag.RULES
        assert isinstance(sent[0].payload, PipelineRules)
        assert sent[0].payload.origin == 1

    def test_empty_bottom_passes_through(self, problem):
        h = make_loaded_worker(problem, rank=2)
        task = PipelineTask(bottom=None, step=2, width=5, rules=(), origin=1)
        h.deliver(task, src=1, tag=Tag.LEARN_RULE)
        sent = h.take_sent()
        assert sent[0].dst == 3
        assert sent[0].payload.rules == ()

    def test_width_caps_forwarded_rules(self, problem):
        h = make_loaded_worker(problem, rank=1)
        h.deliver(StartPipeline(width=1), src=0, tag=Tag.START_PIPELINE)
        task = h.take_sent()[0].payload
        assert len(task.rules) <= 1


class TestEvaluateAndMark:
    def test_evaluate_replies_in_order(self, problem):
        from repro.logic.parser import parse_clause

        h = make_loaded_worker(problem, rank=1)
        rules = (
            parse_clause("daughter(A, B) :- parent(B, A), female(A)."),
            parse_clause("daughter(A, B) :- parent(B, A)."),
        )
        h.deliver(EvaluateRequest(rules=rules), src=0, tag=Tag.EVALUATE)
        sent = h.take_sent()
        assert len(sent) == 1
        res: EvaluateResult = sent[0].payload
        assert sent[0].dst == MASTER_RANK
        assert len(res.stats) == 2
        # the stricter rule covers no more positives than the general one
        assert res.stats[0].pos <= res.stats[1].pos

    def test_mark_covered_shrinks_alive(self, problem):
        from repro.logic.parser import parse_clause

        h = make_loaded_worker(problem, rank=1)
        before = h.worker.store.remaining
        rule = parse_clause("daughter(A, B) :- parent(B, A), female(A).")
        h.deliver(MarkCovered(rule=rule), src=0, tag=Tag.MARK_COVERED)
        assert h.worker.store.remaining < before
        assert h.take_sent() == []  # no reply expected


class TestStop:
    def test_stop_terminates(self, problem):
        h = make_loaded_worker(problem, rank=1)
        h.deliver(Stop(), src=0, tag=Tag.STOP)
        assert h.stopped

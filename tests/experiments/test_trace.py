"""Tests for the pipeline trace rendering (Figs. 3-4 reproduction)."""

import pytest

from repro.cluster.process import ComputeInterval as CI
from repro.experiments.trace import _char_for, occupancy, render_gantt, stage_summary


class TestRenderGantt:
    def test_empty(self):
        assert render_gantt([]) == "(empty trace)"

    def test_single_interval(self):
        out = render_gantt([CI(1, 0.0, 1.0, "search(s1)")], width=10)
        assert out == "rank 1 |1111111111|"

    def test_stage_chars(self):
        out = render_gantt(
            [CI(1, 0.0, 0.5, "search(s2)"), CI(1, 0.5, 1.0, "evaluate")], width=10
        )
        assert "2" in out and "e" in out

    def test_idle_shown_as_dots(self):
        out = render_gantt([CI(1, 0.5, 1.0, "saturate")], width=10)
        row = out.split("|")[1]
        assert row.startswith(".")
        assert row.endswith("s")

    def test_multiple_ranks_sorted(self):
        out = render_gantt([CI(2, 0, 1, "evaluate"), CI(0, 0, 1, "aggregate")], width=4)
        lines = out.splitlines()
        assert lines[0].startswith("rank 0")
        assert lines[1].startswith("rank 2")

    def test_fixed_t_end(self):
        out = render_gantt([CI(1, 0.0, 1.0, "evaluate")], width=10, t_end=2.0)
        row = out.split("|")[1]
        assert row == "eeeee....."


class TestCharFor:
    def test_digits_one_through_nine(self):
        for k in range(1, 10):
            assert _char_for(f"search(s{k})") == str(k)

    def test_deep_stages_use_base36_letters(self):
        # Regression: stages past s9 used to collapse onto the *last*
        # digit of the label ("search(s10)" -> "0", same as "s20", "s30").
        assert _char_for("search(s10)") == "A"
        assert _char_for("search(s35)") == "Z"

    def test_stages_stay_distinct_through_s35(self):
        chars = [_char_for(f"search(s{k})") for k in range(1, 36)]
        assert len(set(chars)) == 35

    def test_overflow_past_s35(self):
        assert _char_for("search(s36)") == "+"
        assert _char_for("search(s100)") == "+"

    def test_malformed_search_label_falls_back(self):
        assert _char_for("search(sX)") == "c"

    def test_named_stages(self):
        assert _char_for("gather") == "g"
        assert _char_for("recover") == "r"
        assert _char_for("local_mdie") == "w"
        assert _char_for("totally_unknown") == "c"

    def test_deep_stage_renders_distinctly(self):
        out = render_gantt(
            [CI(1, 0.0, 0.5, "search(s10)"), CI(1, 0.5, 1.0, "search(s20)")],
            width=10,
        )
        row = out.split("|")[1]
        assert "A" in row and "K" in row and "0" not in row


class TestOccupancy:
    def test_fractions(self):
        occ = occupancy([CI(1, 0, 2, "a"), CI(2, 0, 1, "b")], makespan=2.0)
        assert occ == {1: 1.0, 2: 0.5}

    def test_invalid_makespan(self):
        with pytest.raises(ValueError):
            occupancy([], makespan=0.0)


class TestStageSummary:
    def test_aggregation(self):
        trace = [
            CI(1, 0, 1, "search(s1)"),
            CI(2, 1, 3, "search(s1)"),
            CI(1, 3, 4, "evaluate"),
        ]
        stats = {s.label: s for s in stage_summary(trace)}
        assert stats["search(s1)"].count == 2
        assert stats["search(s1)"].total_seconds == 3.0
        assert stats["evaluate"].count == 1


class TestOnRealRun:
    def test_p2mdie_trace_renders(self):
        from repro.datasets import make_dataset
        from repro.parallel.p2mdie import run_p2mdie

        ds = make_dataset("trains", seed=4, scale="small")
        res = run_p2mdie(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=3, seed=4, record_trace=True, max_epochs=1
        )
        out = render_gantt(res.trace, width=60)
        assert "rank 1" in out and "rank 3" in out
        occ = occupancy(res.trace, res.seconds)
        assert all(0 <= v <= 1.0 for v in occ.values())
        # pipeline stages 1..3 all appear somewhere in the trace
        labels = {iv.label for iv in res.trace}
        assert {"search(s1)", "search(s2)", "search(s3)"} <= labels

    def test_local_backend_occupancy_and_stage_summary(self):
        # Spans recorded by real child *processes* must survive the wire
        # trip home (SpanBatch, code 28) and feed the same analysis the
        # sim backend gets.
        from repro.datasets import make_dataset
        from repro.parallel.p2mdie import run_p2mdie

        ds = make_dataset("trains", seed=1, scale="small")
        res = run_p2mdie(
            ds.kb,
            ds.pos,
            ds.neg,
            ds.modes,
            ds.config,
            p=2,
            seed=1,
            backend="local",
            record_trace=True,
            max_epochs=1,
        )
        assert res.trace, "local backend shipped no spans to rank 0"
        assert {iv.rank for iv in res.trace} == {0, 1, 2}

        makespan = max(iv.end for iv in res.trace)
        occ = occupancy(res.trace, makespan)
        assert set(occ) == {0, 1, 2}
        assert all(0.0 <= v <= 1.0 for v in occ.values())

        stats = {s.label: s for s in stage_summary(res.trace)}
        assert "search(s1)" in stats and "evaluate" in stats
        for s in stats.values():
            assert s.count >= 1
            assert s.total_seconds >= 0.0
        # Per-rank busy time can never exceed the run's makespan.
        busy_total = sum(s.total_seconds for s in stats.values())
        assert busy_total <= makespan * len(occ) + 1e-9

"""Unit + property tests for unification and matching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.terms import Const, Struct, Var, atom
from repro.logic.unify import (
    match,
    occurs_in,
    rename_apart,
    resolve,
    undo_trail,
    unify,
    unify_trail,
    walk,
)


class TestWalk:
    def test_unbound(self):
        assert walk(Var("X"), {}) == Var("X")

    def test_chain(self):
        s = {Var("X"): Var("Y"), Var("Y"): Const("a")}
        assert walk(Var("X"), s) == Const("a")

    def test_self_binding_terminates(self):
        s = {Var("X"): Var("X")}
        assert walk(Var("X"), s) == Var("X")

    def test_nonvar_passthrough(self):
        assert walk(Const("a"), {Var("X"): Const("b")}) == Const("a")


class TestUnify:
    def test_var_const(self):
        s = unify(Var("X"), Const("a"))
        assert s == {Var("X"): Const("a")}

    def test_symmetric(self):
        s = unify(Const("a"), Var("X"))
        assert s == {Var("X"): Const("a")}

    def test_const_mismatch(self):
        assert unify(Const("a"), Const("b")) is None

    def test_functor_mismatch(self):
        assert unify(atom("p", "a"), atom("q", "a")) is None

    def test_arity_mismatch(self):
        assert unify(atom("p", "a"), atom("p", "a", "b")) is None

    def test_deep(self):
        s = unify(atom("p", "X", "a"), atom("p", "b", "Y"))
        assert resolve(atom("p", "X", "a"), s) == atom("p", "b", "a")

    def test_shared_var(self):
        # p(X, X) with p(a, b) must fail
        assert unify(atom("p", "X", "X"), atom("p", "a", "b")) is None
        assert unify(atom("p", "X", "X"), atom("p", "a", "a")) is not None

    def test_var_var_then_bind(self):
        s = unify(atom("p", "X", "X"), atom("p", "Y", "a"))
        assert resolve(Var("Y"), s) == Const("a")

    def test_occurs_check(self):
        x = Var("X")
        t = Struct("f", (x,))
        assert unify(x, t, occurs_check=True) is None
        # without occurs check it binds (standard Prolog behaviour)
        assert unify(x, t) is not None

    def test_does_not_mutate_input(self):
        base = {Var("Z"): Const("c")}
        s = unify(Var("X"), Const("a"), base)
        assert base == {Var("Z"): Const("c")}
        assert s[Var("X")] == Const("a")


class TestUnifyTrail:
    def test_undo_restores(self):
        subst, trail = {}, []
        ok = unify_trail(atom("p", "X", "Y"), atom("p", "a", "b"), subst, trail)
        assert ok and len(subst) == 2
        undo_trail(subst, trail, 0)
        assert subst == {}

    def test_partial_undo(self):
        subst, trail = {}, []
        assert unify_trail(Var("X"), Const("a"), subst, trail)
        mark = len(trail)
        assert unify_trail(Var("Y"), Const("b"), subst, trail)
        undo_trail(subst, trail, mark)
        assert subst == {Var("X"): Const("a")}


class TestMatch:
    def test_one_way(self):
        # match binds pattern vars only
        s = match(atom("p", "X"), atom("p", "a"))
        assert s[Var("X")] == Const("a")

    def test_ground_target_var_fails(self):
        # pattern constant cannot match different ground value
        assert match(atom("p", "a"), atom("p", "b")) is None

    def test_consistent_repeat(self):
        assert match(atom("p", "X", "X"), atom("p", "a", "b")) is None
        assert match(atom("p", "X", "X"), atom("p", "a", "a")) is not None

    def test_match_against_var_target(self):
        # target vars are treated as opaque constants
        s = match(atom("p", "X"), atom("p", "Y"))
        assert s[Var("X")] == Var("Y")


class TestRenameApart:
    def test_shared_mapping(self):
        m = {}
        a = rename_apart(atom("p", "X", "Y"), m)
        b = rename_apart(atom("q", "X"), m)
        assert a.args[0] == b.args[0]  # X renamed consistently
        assert a.args[0] != Var("X")

    def test_ground_unchanged(self):
        t = atom("p", "a", 1)
        assert rename_apart(t) == t


class TestOccursIn:
    def test_direct(self):
        assert occurs_in(Var("X"), Struct("f", (Var("X"),)), {})

    def test_through_binding(self):
        s = {Var("Y"): Struct("f", (Var("X"),))}
        assert occurs_in(Var("X"), Var("Y"), s)

    def test_absent(self):
        assert not occurs_in(Var("X"), atom("f", "a"), {})


# ---- property-based tests -------------------------------------------------

_consts = st.sampled_from([Const("a"), Const("b"), Const(0), Const(1)])
_vars = st.sampled_from([Var("X"), Var("Y"), Var("Z")])


def _terms(depth: int = 2):
    base = st.one_of(_consts, _vars)
    return st.recursive(
        base,
        lambda kids: st.builds(
            lambda args: Struct("f", tuple(args)), st.lists(kids, min_size=1, max_size=3)
        ),
        max_leaves=8,
    )


@given(_terms())
@settings(max_examples=200, deadline=None)
def test_unify_reflexive(t):
    """Every term unifies with itself."""
    assert unify(t, t) is not None


@given(_terms(), _terms())
@settings(max_examples=200, deadline=None)
def test_unify_symmetric_success(t1, t2):
    """unify(a,b) succeeds iff unify(b,a) succeeds."""
    assert (unify(t1, t2) is None) == (unify(t2, t1) is None)


@given(_terms(), _terms())
@settings(max_examples=200, deadline=None)
def test_unifier_is_a_solution(t1, t2):
    """Applying the returned substitution makes both terms syntactically
    equal — for occurs-check unification (without the check, a cyclic
    binding like X = f(X) has no finite solved form to compare)."""
    s = unify(t1, t2, occurs_check=True)
    if s is not None:
        assert resolve(t1, s) == resolve(t2, s)


@given(_terms(), _terms())
@settings(max_examples=200, deadline=None)
def test_occurs_check_only_restricts(t1, t2):
    """Whenever occurs-check unification succeeds, plain unification does."""
    if unify(t1, t2, occurs_check=True) is not None:
        assert unify(t1, t2) is not None


@given(_terms())
@settings(max_examples=200, deadline=None)
def test_rename_apart_preserves_shape(t):
    """Renaming preserves structure and ground subterms."""
    r = rename_apart(t)
    assert unify(t, r) is not None

"""Rule coverage evaluation (the paper's ``evalOnExamples``).

A rule ``h :- b1, ..., bn`` covers a ground example ``e`` iff ``e`` unifies
with ``h`` and the instantiated body is provable from the background
knowledge (within the engine's resource bounds — budget-exhausted proofs
count as *not covered*, the standard resource-bounded semantics).

Coverage over an example list is returned as an **integer bitset** (bit i
set ⇔ example i covered).  Bitsets make the parallel algorithm's bag
re-evaluation, global aggregation and ``mark_covered`` steps cheap and
exact, and they serialize compactly between simulated cluster nodes.

**Coverage inheritance.**  Specialisation is monotone: a refinement
``R' = R + literal`` can only cover a subset of what ``R`` covers, so a
candidate mask restricts which examples need testing at all
(:func:`coverage_eval`'s ``candidates``).  Resource-bounded semantics adds
one wrinkle: an example the parent failed on *because the query budget ran
out* is not proven uncovered, so :func:`coverage_eval` also returns an
``exhausted`` bitset and a sound candidate mask for refinements is
``covered | exhausted``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.logic.clause import Clause
from repro.logic.engine import Engine
from repro.logic.terms import Term
from repro.logic.unify import match, resolve, unify

__all__ = [
    "covers",
    "coverage_bitset",
    "coverage_eval",
    "theory_covered_bits",
    "CoverageStats",
    "popcount",
    "bitset_from_indices",
    "indices_from_bitset",
]


def popcount(bits: int) -> int:
    """Number of set bits (examples covered)."""
    return bits.bit_count()


def bitset_from_indices(indices) -> int:
    out = 0
    for i in indices:
        out |= 1 << i
    return out


def indices_from_bitset(bits: int):
    """Iterate the set-bit positions of ``bits``, ascending.

    Extracts the lowest set bit with ``bits & -bits`` each step, so the
    cost is proportional to the popcount, not the bit length.
    """
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def covers(engine: Engine, rule: Clause, example: Term) -> bool:
    """True iff ``rule`` covers ``example`` given ``engine.kb``.

    >>> from repro.logic import KnowledgeBase, Engine, parse_clause, parse_term
    >>> kb = KnowledgeBase(); kb.add_program("q(a).")
    >>> covers(Engine(kb), parse_clause("p(X) :- q(X)."), parse_term("p(a)"))
    True
    """
    r = rule.rename_apart()
    subst = unify(r.head, example)
    if subst is None:
        return False
    if not r.body:
        return True
    goals = tuple(resolve(b, subst) for b in r.body)
    return engine.prove(goals)


def coverage_eval(
    engine: Engine, rule: Clause, examples: Sequence[Term], candidates: Optional[int] = None
) -> tuple[int, int]:
    """(covered bitset, exhausted bitset) of ``rule`` over ``examples``.

    ``candidates`` restricts which examples are tested: bits outside it are
    assumed (and must be provably) uncovered — callers pass a parent rule's
    ``covered | exhausted`` mask.  The returned bitsets are always over the
    full example list.
    """
    bits = 0
    exh = 0
    # One renaming serves every example: examples are ground, so distinct
    # examples can never entangle the rule's (fresh) variables.
    r = rule.rename_apart()
    head, body = r.head, r.body
    if candidates is None:
        indices = range(len(examples))
    else:
        indices = indices_from_bitset(candidates)
    for i in indices:
        if i >= len(examples):
            break
        # Examples are ground, so one-way matching of the head suffices and
        # the resulting bindings seed the body proof directly.
        subst = match(head, examples[i])
        if subst is None:
            continue
        if not body:
            bits |= 1 << i
            continue
        if engine.prove_body(body, subst):
            bits |= 1 << i
        elif engine.last_exhausted:
            exh |= 1 << i
    return bits, exh


def coverage_bitset(
    engine: Engine, rule: Clause, examples: Sequence[Term], candidates: Optional[int] = None
) -> int:
    """Bitset of examples covered by ``rule``."""
    return coverage_eval(engine, rule, examples, candidates)[0]


def theory_covered_bits(
    engine: Engine,
    clauses: Sequence[Clause],
    examples: Sequence[Term],
    micro_batch: int = 1024,
) -> int:
    """Bitset of examples covered by *any* clause of a theory.

    First-match semantics: later clauses only test the examples no
    earlier clause covered, which is sound because theory coverage is
    the union of clause coverages (monotone — covered stays covered).
    ``micro_batch`` bounds the slice evaluated per clause pass (it caps
    transient bitset width on very large batches); the returned bitset
    is independent of its value, and of how callers split ``examples``
    into spans — each example's decision depends only on the clause
    list, the KB and the engine budget.  This is the shared evaluation
    kernel of the query tier: the sequential
    :class:`repro.service.query.PreparedTheory` path and every shard of
    the parallel path call it over their slice, so sharded merges are
    bit-identical to the sequential answer by construction.
    """
    covered = 0
    for lo in range(0, len(examples), micro_batch):
        chunk = examples[lo : lo + micro_batch]
        remaining = (1 << len(chunk)) - 1
        chunk_bits = 0
        for clause in clauses:
            bits, _ = coverage_eval(engine, clause, chunk, candidates=remaining)
            chunk_bits |= bits
            remaining &= ~bits
            if not remaining:
                break
        covered |= chunk_bits << lo
    return covered


@dataclass(frozen=True)
class CoverageStats:
    """Aggregated evaluation result for one rule.

    ``pos``/``neg`` are *counts*; ``pos_bits`` is the positive-coverage
    bitset (needed by ``mark_covered``), ``neg_bits`` the negative one.
    In the parallel algorithm these are summed/OR-ed across subsets.
    """

    pos: int
    neg: int
    pos_bits: int = 0
    neg_bits: int = 0

    def merged(self, other: "CoverageStats", pos_shift: int = 0, neg_shift: int = 0) -> "CoverageStats":
        """Combine stats from two disjoint example subsets.

        ``pos_shift``/``neg_shift`` position the other subset's bits within
        a global numbering (used by the master to aggregate worker
        results).
        """
        return CoverageStats(
            pos=self.pos + other.pos,
            neg=self.neg + other.neg,
            pos_bits=self.pos_bits | (other.pos_bits << pos_shift),
            neg_bits=self.neg_bits | (other.neg_bits << neg_shift),
        )

    @staticmethod
    def of(engine: Engine, rule: Clause, pos: Sequence[Term], neg: Sequence[Term]) -> "CoverageStats":
        pb = coverage_bitset(engine, rule, pos)
        nb = coverage_bitset(engine, rule, neg)
        return CoverageStats(pos=popcount(pb), neg=popcount(nb), pos_bits=pb, neg_bits=nb)

"""Horn clauses and theories.

A :class:`Clause` is a definite Horn clause ``head :- body``.  ILP rules,
background-knowledge rules, and bottom clauses are all ``Clause`` values.
A :class:`Theory` is an ordered set of clauses (order matters for
first-match prediction semantics, as in Prolog-based ILP systems).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.logic.terms import (
    Const,
    Struct,
    Term,
    Var,
    is_ground,
    variables_of,
)
from repro.logic.unify import Subst, rename_apart, resolve

__all__ = ["Clause", "Theory", "head_indicator"]


def _as_atom(t: Term) -> Term:
    if isinstance(t, Var):
        raise TypeError("a clause literal cannot be a variable")
    return t


class Clause:
    """A definite Horn clause ``head :- b1, ..., bn`` (facts have n = 0)."""

    __slots__ = ("head", "body", "_hash")

    def __init__(self, head: Term, body: Iterable[Term] = ()):
        self.head = _as_atom(head)
        self.body = tuple(_as_atom(b) for b in body)
        self._hash = hash((self.head, self.body))

    # -- basic protocol --------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Clause)
            and other.head == self.head
            and other.body == self.body
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clause({self})"

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body = ", ".join(str(b) for b in self.body)
        return f"{self.head} :- {body}."

    def __len__(self) -> int:
        """Number of literals (head + body), the paper's clause length."""
        return 1 + len(self.body)

    # -- accessors --------------------------------------------------------------
    @property
    def indicator(self) -> tuple[str, int]:
        return head_indicator(self.head)

    @property
    def is_fact(self) -> bool:
        return not self.body and is_ground(self.head)

    def literals(self) -> Iterator[Term]:
        yield self.head
        yield from self.body

    def variables(self) -> list[Var]:
        """Distinct variables in order of first occurrence."""
        seen: dict[Var, None] = {}
        for lit in self.literals():
            for v in variables_of(lit):
                seen.setdefault(v)
        return list(seen)

    def is_ground_clause(self) -> bool:
        return all(is_ground(l) for l in self.literals())

    # -- transforms --------------------------------------------------------------
    def rename_apart(self, prefix: str = "_R") -> "Clause":
        """Fresh-variable variant (standardising apart before resolution)."""
        mapping: dict = {}
        head = rename_apart(self.head, mapping, prefix)
        body = tuple(rename_apart(b, mapping, prefix) for b in self.body)
        return Clause(head, body)

    def substitute(self, subst: Subst) -> "Clause":
        """Apply a substitution to every literal."""
        return Clause(resolve(self.head, subst), tuple(resolve(b, subst) for b in self.body))

    def with_extra_literal(self, lit: Term) -> "Clause":
        """Refinement step: append one body literal."""
        return Clause(self.head, self.body + (_as_atom(lit),))


def head_indicator(head: Term) -> tuple[str, int]:
    if isinstance(head, Struct):
        return head.indicator
    if isinstance(head, Const) and isinstance(head.value, str):
        return (head.value, 0)
    raise TypeError(f"invalid clause head: {head!r}")


class Theory:
    """An ordered collection of learned clauses."""

    __slots__ = ("clauses",)

    def __init__(self, clauses: Iterable[Clause] = ()):
        self.clauses: list[Clause] = list(clauses)

    def add(self, clause: Clause) -> None:
        self.clauses.append(clause)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def __getitem__(self, i: int) -> Clause:
        return self.clauses[i]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Theory) and other.clauses == self.clauses

    def __str__(self) -> str:
        return "\n".join(str(c) for c in self.clauses)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Theory({len(self.clauses)} clauses)"

    def total_literals(self) -> int:
        return sum(len(c) for c in self.clauses)

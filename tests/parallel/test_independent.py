"""Tests for the independent-learning baseline (Matsui-style, §6)."""

import pytest

from repro.cluster.message import Tag
from repro.ilp.theory import accuracy, confusion
from repro.logic.engine import Engine
from repro.parallel.independent import run_independent
from repro.parallel.p2mdie import run_p2mdie


class TestIndependentLearning:
    def test_learns_with_enough_local_data(self):
        # Independent learning needs partitions large enough that local
        # consistency approximates global consistency; the trains problem
        # at p=2 qualifies.
        from repro.datasets import make_dataset

        ds = make_dataset("trains", seed=5, scale="small")
        res = run_independent(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=2, seed=5)
        eng = Engine(ds.kb, ds.config.engine_budget())
        majority = 100.0 * max(ds.n_pos, ds.n_neg) / (ds.n_pos + ds.n_neg)
        assert accuracy(eng, res.theory, ds.pos, ds.neg) >= majority
        assert len(res.theory) >= 1

    def test_tiny_partitions_expose_quality_problem(self, kb, pos, neg, modes, config):
        """The paper's §1 motivation for pipelining: 'training on small
        subsets of the whole data might reduce the quality of learning'.
        With 3 positives per worker, locally-consistent rules are globally
        inconsistent and the merge filter (rightly) rejects them — so
        independent learning covers strictly less than P²-MDIE."""
        ind = run_independent(kb, pos, neg, modes, config, p=3, seed=3)
        p2 = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3)
        assert p2.uncovered < max(ind.uncovered, 1) or len(p2.theory) > len(ind.theory)

    def test_single_epoch(self, kb, pos, neg, modes, config):
        res = run_independent(kb, pos, neg, modes, config, p=3, seed=3)
        assert res.epochs == 1

    def test_deterministic(self, kb, pos, neg, modes, config):
        a = run_independent(kb, pos, neg, modes, config, p=3, seed=3)
        b = run_independent(kb, pos, neg, modes, config, p=3, seed=3)
        assert list(a.theory) == list(b.theory)
        assert a.seconds == b.seconds

    def test_consistency_enforced_globally(self, kb, pos, neg, modes, config):
        # local rules may cover remote negatives; the global filter must
        # keep the final theory consistent within the noise allowance
        res = run_independent(kb, pos, neg, modes, config, p=3, seed=3)
        eng = Engine(kb, config.engine_budget())
        rep = confusion(eng, res.theory, pos, neg)
        assert rep.fp <= config.noise

    def test_no_pipeline_messages(self, kb, pos, neg, modes, config):
        res = run_independent(kb, pos, neg, modes, config, p=3, seed=3)
        assert Tag.LEARN_RULE not in res.comm.bytes_by_tag


class TestVersusP2:
    def test_less_learning_communication(self, kb, pos, neg, modes, config):
        """Independent learning never streams rules between workers."""
        ind = run_independent(kb, pos, neg, modes, config, p=3, seed=3)
        p2 = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3)
        ind_stream = ind.comm.bytes_by_tag.get(Tag.LEARN_RULE, 0)
        p2_stream = p2.comm.bytes_by_tag.get(Tag.LEARN_RULE, 0)
        assert ind_stream == 0 and p2_stream > 0

    def test_p2_covers_at_least_as_much(self, kb, pos, neg, modes, config):
        """The pipeline's cross-subset validation should not cover fewer
        positives than purely local learning."""
        ind = run_independent(kb, pos, neg, modes, config, p=3, seed=3)
        p2 = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3)
        assert p2.uncovered <= ind.uncovered + 2

"""Baseline: independent data-parallel learning (no pipelining).

The third strategy in the design space the paper situates itself in
(§6, Matsui et al.'s "data parallelism"): partition the examples, let
every worker run the *full sequential* covering algorithm on its own
subset with no communication at all, then merge.  The master unions the
local theories, evaluates them globally once, discards rules that are not
globally good, and greedily consumes the rest exactly like P²-MDIE's bag
consumption.

This isolates the value of the *pipeline*: independent learning has the
same data distribution and even less communication, but each rule only
ever saw one subset during search — the quality problem the paper's
rule-streaming is designed to fix ("training on small subsets of the
whole data might reduce the quality of learning").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.backend import Backend, resolve_backend
from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.message import Tag
from repro.cluster.network import FAST_ETHERNET, NetworkModel
from repro.cluster.process import ProcContext, SimProcess
from repro.ilp.bottom import SaturationError, build_bottom, build_bottom_cached
from repro.ilp.config import ILPConfig
from repro.ilp.heuristics import is_good, score_rule
from repro.ilp.modes import ModeSet
from repro.ilp.prune import ClauseBag
from repro.ilp.search import learn_rule
from repro.logic.clause import Clause, Theory
from repro.logic.knowledge import KnowledgeBase
from repro.logic.terms import Term
from repro.parallel.master import EpochLog
from repro.parallel.messages import (
    EvaluateRequest,
    EvaluateResult,
    LoadExamples,
    MarkCovered,
    PipelineRules,
    StartPipeline,
    Stop,
)
from repro.parallel import wire
from repro.parallel.p2mdie import P2Result, SharedProblem
from repro.parallel.partition import partition_examples
from repro.parallel.worker import P2Worker
from repro.util.rng import make_rng

__all__ = ["IndependentWorker", "IndependentMaster", "run_independent"]


class IndependentWorker(P2Worker):
    """A worker whose 'pipeline' never leaves the node.

    Reuses every P2Worker task handler; only ``start_pipeline`` changes —
    instead of one stage of one pipeline, it runs a complete local
    covering loop (sequential MDIE on the local subset) and ships the
    resulting theory to the master.
    """

    def _start_pipeline(self, ctx: ProcContext, width: Optional[int]):
        ops0 = self.engine.total_ops
        local_rules = []
        # Local covering loop (Fig. 1 semantics on the local store).
        failed = 0
        while True:
            candidates = self.store.alive & ~failed
            idxs = [i for i in range(self.store.n_pos) if (candidates >> i) & 1]
            if not idxs:
                break
            i = self._rng.choice(idxs) if self.config.select_seed_randomly else idxs[0]
            saturate = build_bottom_cached if self.config.saturation_cache else build_bottom
            try:
                bottom = saturate(self.store.pos[i], self.engine, self.modes, self.config)
            except SaturationError:
                failed |= 1 << i
                continue
            result = learn_rule(self.engine, bottom, self.store, self.config, width=1)
            if result.best is None:
                failed |= 1 << i
                continue
            local_rules.append(result.best.rule)
            self.store.kill(result.best.stats.pos_bits)
        # Local kills are provisional — restore liveness so the master's
        # global mark_covered drives the authoritative state.
        self.store.alive = (1 << self.store.n_pos) - 1
        if width is not None:
            local_rules = local_rules[:width]
        yield ctx.compute(self._ops_since(ops0), label="local_mdie")
        yield ctx.send(
            0, PipelineRules(origin=self.rank, rules=tuple(local_rules)), tag=Tag.RULES
        )


class IndependentMaster(SimProcess):
    """Union local theories, filter globally, consume greedily."""

    def __init__(self, n_workers: int, total_pos: int, config: ILPConfig, width=None):
        super().__init__(0)
        self.n_workers = n_workers
        self.total_pos = total_pos
        self.config = config
        self.width = width
        self.theory = Theory()
        self.epoch_logs: list[EpochLog] = []
        self.remaining = total_pos

    @property
    def epochs(self) -> int:
        return len(self.epoch_logs)

    def _workers(self):
        return list(range(1, self.n_workers + 1))

    def _global_eval(self, ctx, clauses):
        yield ctx.bcast(EvaluateRequest(rules=tuple(clauses)), tag=Tag.EVALUATE, dsts=self._workers())
        totals = [[0, 0] for _ in clauses]
        for _ in self._workers():
            msg = yield ctx.recv(tag=Tag.RESULT)
            res: EvaluateResult = msg.payload
            for i, rs in enumerate(res.stats):
                totals[i][0] += rs.pos
                totals[i][1] += rs.neg
        yield ctx.compute(len(clauses) + 1, label="aggregate")
        return totals

    def run(self, ctx: ProcContext):
        for k in self._workers():
            yield ctx.send(k, LoadExamples(partition_id=k), tag=Tag.LOAD_EXAMPLES)
        for k in self._workers():
            yield ctx.send(k, StartPipeline(width=self.width), tag=Tag.START_PIPELINE)
        bag = ClauseBag(self.config.clause_fingerprints)
        for _ in self._workers():
            msg = yield ctx.recv(tag=Tag.RULES)
            for sr in msg.payload.rules:
                bag.add(sr.clause)
        log = EpochLog(epoch=1, bag_size=bag.reported_size)

        if bag:
            clauses = bag.clauses()
            totals = yield from self._global_eval(ctx, clauses)
            stats = dict(zip(clauses, totals))
            for c in bag:
                p, n = stats[c]
                if not is_good(p, n, self.config):
                    bag.discard(c)
            while bag:
                best = min(
                    bag,
                    key=lambda c: (
                        -score_rule(stats[c][0], stats[c][1], len(c.body) + 1, self.config),
                        len(c.body),
                        str(c),
                    ),
                )
                bag.discard(best)
                self.theory.add(best)
                log.accepted.append(best)
                covered = stats[best][0]
                log.pos_covered += covered
                self.remaining -= covered
                yield ctx.bcast(MarkCovered(rule=best), tag=Tag.MARK_COVERED, dsts=self._workers())
                if not bag:
                    break
                clauses = bag.clauses()
                totals = yield from self._global_eval(ctx, clauses)
                stats = dict(zip(clauses, totals))
                for c in bag:
                    p, n = stats[c]
                    if not is_good(p, n, self.config):
                        bag.discard(c)
        self.epoch_logs.append(log)
        yield ctx.bcast(Stop(), tag=Tag.STOP, dsts=self._workers())


def run_independent(
    kb: KnowledgeBase,
    pos: Sequence[Term],
    neg: Sequence[Term],
    modes: ModeSet,
    config: ILPConfig,
    p: int,
    width: Optional[int] = None,
    seed: int = 0,
    network: NetworkModel = FAST_ETHERNET,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    backend: Union[Backend, str, None] = None,
) -> P2Result:
    """Run the independent-learning baseline; same artifact type as
    :func:`repro.parallel.p2mdie.run_p2mdie` for direct comparison."""
    rng = make_rng(seed, "partition")
    partitions = partition_examples(pos, neg, p, rng)
    shared = SharedProblem(kb, partitions, modes, config)
    master = IndependentMaster(n_workers=p, total_pos=len(pos), config=config, width=width)
    workers = [IndependentWorker(rank, shared, p, seed=seed) for rank in range(1, p + 1)]
    bk = resolve_backend(backend, network=network, cost_model=cost_model)
    with wire.configured(config.wire_codec):
        run = bk.run([master, *workers])
    final = run.proc(0)
    return P2Result(
        theory=final.theory,
        epochs=final.epochs,
        seconds=run.seconds,
        comm=run.comm,
        uncovered=max(final.remaining, 0),
        epoch_logs=final.epoch_logs,
        clocks=run.clocks,
        trace=run.trace,
    )

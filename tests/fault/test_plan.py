"""FaultPlan: validation, JSON round-trip, emptiness semantics."""

import pytest

from repro.fault.plan import (
    FaultPlan,
    MessageLoss,
    Straggler,
    WorkerCrash,
    WorkerJoin,
    normalize_plan,
)


class TestEvents:
    def test_crash_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            WorkerCrash(rank=1)
        with pytest.raises(ValueError):
            WorkerCrash(rank=1, on_recv=2, at_time=1.0)
        WorkerCrash(rank=1, on_recv=2)
        WorkerCrash(rank=1, at_time=0.5)

    def test_master_cannot_crash(self):
        with pytest.raises(ValueError):
            WorkerCrash(rank=0, on_recv=1)

    def test_on_recv_one_based(self):
        with pytest.raises(ValueError):
            WorkerCrash(rank=1, on_recv=0)

    def test_straggler_factor_bound(self):
        with pytest.raises(ValueError):
            Straggler(rank=1, factor=0.5)

    def test_loss_nth_one_based(self):
        with pytest.raises(ValueError):
            MessageLoss(src=0, dst=1, nth=0)

    def test_join_epoch_one_based(self):
        with pytest.raises(ValueError):
            WorkerJoin(rank=4, epoch=0)


class TestEmptiness:
    def test_empty_plan_normalizes_to_none(self):
        assert FaultPlan().empty
        assert normalize_plan(FaultPlan()) is None
        assert normalize_plan(None) is None

    def test_supervise_makes_plan_non_empty(self):
        plan = FaultPlan(supervise=True)
        assert not plan.empty
        assert normalize_plan(plan) is plan

    def test_any_event_makes_plan_non_empty(self):
        assert not FaultPlan(crashes=(WorkerCrash(rank=1, on_recv=1),)).empty
        assert not FaultPlan(stragglers=(Straggler(rank=1, factor=2.0),)).empty
        assert not FaultPlan(losses=(MessageLoss(src=0, dst=1),)).empty
        assert not FaultPlan(joins=(WorkerJoin(rank=4, epoch=2),)).empty


FULL = FaultPlan(
    crashes=(
        WorkerCrash(rank=2, on_recv=3, tag="start_pipeline"),
        WorkerCrash(rank=3, at_time=1.25),
    ),
    stragglers=(Straggler(rank=1, factor=4.0, after_time=0.5),),
    losses=(MessageLoss(src=0, dst=2, nth=2),),
    joins=(WorkerJoin(rank=5, epoch=2),),
    timeout=3.5,
    supervise=True,
)


class TestSerialization:
    def test_json_round_trip(self):
        assert FaultPlan.from_json(FULL.to_json()) == FULL

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "plan.json")
        FULL.save(path)
        assert FaultPlan.load(path) == FULL

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_json('{"events": [{"kind": "meteor", "rank": 1}]}')

    def test_defaults(self):
        plan = FaultPlan.from_json("{}")
        assert plan == FaultPlan()
        assert plan.timeout == 10.0


class TestViews:
    def test_per_rank_views(self):
        assert FULL.crash_for(2).on_recv == 3
        assert FULL.crash_for(9) is None
        assert FULL.straggler_for(1).factor == 4.0
        assert FULL.straggler_for(2) is None
        assert FULL.losses_for(0) == {2: frozenset({2})}
        assert FULL.losses_for(1) == {}
        assert FULL.joins_at(2) == (WorkerJoin(rank=5, epoch=2),)
        assert FULL.joins_at(3) == ()

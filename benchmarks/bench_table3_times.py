"""Table 3 — average execution time (virtual seconds) incl. sequential.

Virtual times shrink monotonically as processors are added (the paper's
Table 3 pattern), with the p=1 column being the sequential MDIE run.
Benchmarks the sequential algorithm per dataset (host time).
"""

import pytest

from conftest import DATASET_NAMES, PS, SEED, one_shot
from repro.datasets import make_dataset
from repro.experiments.tables import table3_times
from repro.ilp import mdie


def test_table3(benchmark, matrix, table_sink):
    table_sink("table3_times", one_shot(benchmark, table3_times, matrix, ps=PS))
    for ds in {r.dataset for r in matrix.records}:
        seq = matrix.mean("seconds", ds, None, 1)
        t8 = matrix.mean("seconds", ds, 10, 8)
        assert t8 < seq, f"{ds}: p=8 not faster than sequential"


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_bench_sequential(benchmark, name, scale):
    ds = make_dataset(name, seed=SEED, scale=scale)
    res = one_shot(benchmark, mdie, ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=SEED)
    assert res.epochs >= 1

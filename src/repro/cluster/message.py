"""Messages exchanged between simulated cluster nodes.

Payloads are arbitrary picklable Python objects; the *marshalled size* of
each payload is what the network model charges for and what the Table 4
communication-volume accounting sums.  Task payloads known to the compact
wire codec (:mod:`repro.parallel.wire`, when enabled) are sized by their
wire encoding — the bytes the real backends actually ship; anything else
falls back to pickle, mirroring LAM/MPI's pickle-like marshalling of
Prolog terms in the paper's implementation.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Message", "payload_nbytes", "marshal_payload", "Tag"]


class Tag:
    """Well-known message tags (the paper's task names, §4.1/Fig. 6)."""

    LOAD_EXAMPLES = "load_examples"
    START_PIPELINE = "start_pipeline"
    LEARN_RULE = "learn_rule'"
    RULES = "rules"
    EVALUATE = "evaluate"
    RESULT = "result"
    MARK_COVERED = "mark_covered"
    STOP = "stop"
    # fault-tolerance protocol (repro.fault); only used when a FaultPlan
    # activates it, so fault-free tag statistics are unchanged.
    PING = "ping"
    PONG = "pong"
    ROUTING = "routing"


_wire_encode = None


def marshal_payload(payload: object) -> Optional[bytes]:
    """Wire-codec encoding of ``payload``, or None (disabled/unsupported).

    Imported lazily: the cluster layer must stay importable without the
    parallel package, and the codec module itself imports message types.
    """
    global _wire_encode
    if _wire_encode is None:
        from repro.parallel.wire import encode

        _wire_encode = encode
    return _wire_encode(payload)


def payload_nbytes(payload: object) -> int:
    """Marshalled size of a payload, in bytes (wire codec, else pickle)."""
    data = marshal_payload(payload)
    if data is not None:
        return len(data)
    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


@dataclass(frozen=True)
class Message:
    """One point-to-point message in the simulated cluster."""

    src: int
    dst: int
    tag: str
    payload: object
    nbytes: int
    send_time: float
    arrival_time: float
    seq: int

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Message({self.src}->{self.dst} tag={self.tag} {self.nbytes}B "
            f"t={self.send_time:.6f}->{self.arrival_time:.6f})"
        )

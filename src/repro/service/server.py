"""The service front door: an async socket tier (stdlib only).

Protocol
--------
The default transport is JSON-lines — one request per line, one response
per line, both JSON objects over plain TCP (``nc localhost 7341``
works).  Every response has ``"ok"``; failures carry ``"error"`` instead
of payload fields::

    → {"op": "submit", "spec": {"dataset": "trains", "algo": "p2mdie", "p": 2}}
    ← {"ok": true, "job": "job-0001"}
    → {"op": "query", "theory": "trains-demo", "examples": ["eastbound(t1)"]}
    ← {"ok": true, "n": 1, "n_covered": 1, "covered": [true]}

Operations: ``ping``, ``hello``, ``submit``, ``jobs``, ``status``,
``wait``, ``cancel``, ``query``, ``registry`` (actions ``list`` /
``versions`` / ``show`` / ``diff`` / ``promote``), ``gc`` (targets
``jobs`` / ``registry``), ``stats``, ``shutdown``.

**Hello, auth and transport negotiation.**  ``hello`` is the optional
handshake: it authenticates the connection (when the server was started
with ``--auth-token``, every other op except ``ping`` is rejected until
a hello carries the right token) and negotiates the transport.  A client
asking for ``"transport": "wire"`` gets the hello response on JSON-lines
and then the connection switches to the compact binary framing of
:mod:`repro.service.wiremsg` (4-byte length prefix + wire-codec
message); servers without the hello op reject it, so clients fall back
to JSON-lines automatically.

**Streaming queries.**  ``{"op": "query", ..., "stream": true,
"shards": k}`` shards the batch over the query engine's worker pool and
streams one response *per shard* as it completes (ascending spans:
``"frame": "shard"`` with span-local ``covered``), then an end-of-batch
summary (``"frame": "end"`` with the merged result) — so first results
arrive after ~1/k of the batch work.  The merged answer is bit-identical
to the sequential path.  If the client disconnects mid-stream the server
cancels the remaining shard work.

Architecture
------------
:class:`Service` is the transport-free core — a request dict in, a
response dict out — so the protocol is unit-testable without sockets and
reusable behind any other transport.  :class:`ServiceServer` wraps it in
an **asyncio event loop**: one task per connection (thousands of idle
connections cost no threads), with blocking operations (``wait`` can
legitimately block for minutes; queries hold a CPU) dispatched to a
bounded thread pool so the loop itself never stalls.  Learning jobs run
in the scheduler's own slot threads, so slow jobs never block queries.
:class:`ServiceClient` is the matching blocking client used by the
``repro jobs`` / ``repro serve``-side CLI verbs and the tests.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.logic import ParseError, parse_term
from repro.parallel.wire import WireError
from repro.service import wiremsg
from repro.service.jobs import JobSpec
from repro.service.query import QueryEngine, QueryResult, QueryStream
from repro.service.registry import RegistryError, TheoryRegistry
from repro.service.scheduler import JobScheduler, SchedulerError

__all__ = ["Service", "ServiceServer", "ServiceClient", "ClientContext", "serve"]

#: transports a server can negotiate in the hello op.
TRANSPORTS = ("json", "wire")


@dataclass
class ClientContext:
    """Per-connection state threaded through :meth:`Service.handle`.

    ``client_id`` keys the per-client job quota (the peer address by
    default; a hello may override it with a self-reported name, which is
    fine — quotas are a fairness knob, not a security boundary; the
    security boundary is the token).
    """

    client_id: str = "local"
    authenticated: bool = False
    transport: str = "json"
    #: bytes read ahead of the current parse point (pipelined requests
    #: surfaced by the mid-stream disconnect watch).
    pushback: bytes = b""


class Service:
    """Transport-free request handler bundling the three subsystems.

    Owns a :class:`JobScheduler` (learning), a :class:`TheoryRegistry`
    (artifacts) and a :class:`QueryEngine` (application).  All handlers
    are thread-safe: the scheduler and registry lock internally, and
    handler dispatch itself is stateless.

    ``auth_token`` gates every op except ``ping``/``hello`` behind a
    shared-secret hello.  ``max_jobs_per_client`` bounds each client's
    *active* (queued or running) jobs — over-quota submits are rejected
    with a friendly error instead of silently queueing forever.
    ``query_shards`` is the server-side default shard count for queries
    that don't pick their own.
    """

    def __init__(
        self,
        slots: int = 2,
        state_dir: Optional[str] = None,
        registry_dir: Optional[str] = None,
        chunk_epochs: int = 1,
        auth_token: Optional[str] = None,
        max_jobs_per_client: int = 0,
        query_shards: int = 0,
        shard_workers: Optional[int] = None,
    ):
        self.registry = TheoryRegistry(registry_dir) if registry_dir else None
        self.scheduler = JobScheduler(
            slots=slots, state_dir=state_dir, registry=self.registry,
            chunk_epochs=chunk_epochs,
        )
        self.query_engine = QueryEngine(
            registry=self.registry, shard_workers=shard_workers
        )
        self.auth_token = auth_token
        self.max_jobs_per_client = max_jobs_per_client
        self.query_shards = query_shards
        self._quota_lock = threading.Lock()
        self._client_jobs: dict[str, list[str]] = {}
        if state_dir:
            self.scheduler.recover_jobs()

    def close(self, drain: bool = False) -> None:
        self.scheduler.close(drain=drain)

    # -- dispatch ----------------------------------------------------------------

    def handle(self, request: dict, ctx: Optional[ClientContext] = None) -> dict:
        """Answer one request dict; never raises (errors become fields)."""
        if ctx is None:
            # Direct (in-process) callers are implicitly trusted — the
            # token protects the socket boundary, not the library API.
            ctx = ClientContext(client_id="local", authenticated=True)
        try:
            op = request.get("op")
            handler = getattr(self, f"_op_{op}", None)
            if not isinstance(op, str) or handler is None:
                return {"ok": False, "error": f"unknown op {op!r}"}
            if (
                self.auth_token is not None
                and not ctx.authenticated
                and op not in ("ping", "hello")
            ):
                return {
                    "ok": False,
                    "error": 'authentication required: send {"op": "hello", '
                    '"token": "..."} first',
                }
            return {"ok": True, **handler(request, ctx)}
        except (SchedulerError, RegistryError, ParseError, ValueError, KeyError, TypeError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    # -- operations --------------------------------------------------------------

    def _op_ping(self, request: dict, ctx: ClientContext) -> dict:
        return {"pong": True}

    def _op_hello(self, request: dict, ctx: ClientContext) -> dict:
        if self.auth_token is not None:
            token = request.get("token")
            if token != self.auth_token:
                raise ValueError("bad or missing token")
        ctx.authenticated = True
        if isinstance(request.get("client"), str) and request["client"]:
            ctx.client_id = request["client"]
        requested = request.get("transport", "json")
        granted = requested if requested in TRANSPORTS else "json"
        return {
            "server": "repro-service",
            "transports": list(TRANSPORTS),
            "transport": granted,
            "auth": self.auth_token is not None,
            "client": ctx.client_id,
        }

    def _op_submit(self, request: dict, ctx: ClientContext) -> dict:
        spec = JobSpec.from_dict(request["spec"])
        if spec.register_as and self.registry is None:
            raise ValueError("register_as needs the server started with a registry dir")
        if not self.max_jobs_per_client:
            return {"job": self.scheduler.submit(spec)}
        with self._quota_lock:
            active = [
                j
                for j in self._client_jobs.get(ctx.client_id, [])
                if self.scheduler.status(j)["state"] in ("queued", "running")
            ]
            if len(active) >= self.max_jobs_per_client:
                raise ValueError(
                    f"quota exceeded: client {ctx.client_id!r} already has "
                    f"{len(active)} active job(s) of {self.max_jobs_per_client} "
                    "allowed; wait for one to finish or cancel it"
                )
            job = self.scheduler.submit(spec)
            self._client_jobs[ctx.client_id] = active + [job]
            return {"job": job}

    def _op_jobs(self, request: dict, ctx: ClientContext) -> dict:
        return {"jobs": self.scheduler.jobs()}

    def _op_status(self, request: dict, ctx: ClientContext) -> dict:
        return self.scheduler.status(request["job"])

    def _op_wait(self, request: dict, ctx: ClientContext) -> dict:
        return self.scheduler.wait(request["job"], timeout=request.get("timeout"))

    def _op_cancel(self, request: dict, ctx: ClientContext) -> dict:
        return {"cancelled": self.scheduler.cancel(request["job"])}

    # -- queries -----------------------------------------------------------------

    def _resolve_shards(self, requested) -> Optional[int]:
        shards = int(requested or 0) or self.query_shards
        return shards if shards and shards > 1 else None

    def query_result(
        self,
        name: str,
        examples,
        version: Optional[int] = None,
        micro_batch: int = 1024,
        shards=None,
    ) -> QueryResult:
        """One batched query over already-parsed example terms."""
        if self.registry is None:
            raise ValueError("query needs the server started with a registry dir")
        return self.query_engine.query(
            name,
            examples,
            version=version,
            micro_batch=micro_batch or 1024,
            shards=self._resolve_shards(shards),
        )

    def open_query_stream(self, request: dict) -> QueryStream:
        """Open the sharded stream behind a ``"stream": true`` query.

        The transport layer owns the returned stream: it must drain
        every frame or :meth:`~repro.service.query.QueryStream.cancel`
        it (it cancels on client disconnect).
        """
        if self.registry is None:
            raise ValueError("query needs the server started with a registry dir")
        examples = [parse_term(s) for s in request["examples"]]
        return self.query_engine.query_stream(
            request["theory"],
            examples,
            version=request.get("version"),
            micro_batch=int(request.get("micro_batch") or 1024),
            shards=self._resolve_shards(request.get("shards")) or 1,
        )

    def _op_query(self, request: dict, ctx: ClientContext) -> dict:
        examples = [parse_term(s) for s in request["examples"]]
        result = self.query_result(
            request["theory"],
            examples,
            version=request.get("version"),
            micro_batch=int(request.get("micro_batch") or 1024),
            shards=request.get("shards"),
        )
        return {
            "n": result.n,
            "n_covered": result.n_covered,
            "ops": result.ops,
            "shards": result.shards,
            "covered": result.decisions(),
        }

    # -- registry / retention ----------------------------------------------------

    def _op_registry(self, request: dict, ctx: ClientContext) -> dict:
        if self.registry is None:
            raise ValueError("server started without a registry dir")
        reg = self.registry
        action = request.get("action", "list")
        if action == "list":
            return {
                "theories": [
                    {
                        "name": n,
                        "versions": reg.versions(n),
                        "promoted": reg.promoted_version(n),
                    }
                    for n in reg.names()
                ]
            }
        if action == "versions":
            return {"versions": reg.versions(request["name"])}
        if action == "show":
            record = reg.get(request["name"], request.get("version"))
            return {"record": record.to_dict()}
        if action == "diff":
            diff = reg.diff(request["name"], request["old"], request["new"])
            return {k: [str(c) for c in v] for k, v in diff.items()}
        if action == "promote":
            return {"promoted": reg.promote(request["name"], request["version"])}
        raise ValueError(f"unknown registry action {action!r}")

    def _op_gc(self, request: dict, ctx: ClientContext) -> dict:
        target = request.get("target", "jobs")
        if target == "jobs":
            removed = self.scheduler.gc(keep=int(request.get("keep", 0)))
            return {"target": "jobs", "removed": removed}
        if target == "registry":
            if self.registry is None:
                raise ValueError("server started without a registry dir")
            removed = self.registry.gc(
                request["name"], keep=int(request.get("keep", 1))
            )
            return {"target": "registry", "removed": removed}
        raise ValueError(f"unknown gc target {target!r}")

    def _op_stats(self, request: dict, ctx: ClientContext) -> dict:
        jobs = self.scheduler.jobs()
        by_state: dict[str, int] = {}
        for j in jobs:
            by_state[j["state"]] = by_state.get(j["state"], 0) + 1
        return {
            "slots": self.scheduler.slots,
            "jobs": by_state,
            "query": self.query_engine.stats(),
        }

    def _op_shutdown(self, request: dict, ctx: ClientContext) -> dict:
        # The transport layer watches for this marker and stops accepting.
        return {"shutdown": True}


def _query_frames(stream: QueryStream) -> Iterator[dict]:
    """Render a drained stream's frames as protocol dicts (shared by tests)."""
    for frame in stream.frames():
        yield {
            "ok": True,
            "frame": "shard",
            "shard": frame.shard,
            "lo": frame.lo,
            "n": frame.n,
            "ops": frame.ops,
            "covered": frame.decisions(),
        }
    result = stream.result()
    yield {
        "ok": True,
        "frame": "end",
        "n": result.n,
        "n_covered": result.n_covered,
        "ops": result.ops,
        "shards": result.shards,
        "covered": result.decisions(),
    }


class ServiceServer:
    """Asyncio front end multiplexing many connections over one loop.

    Connections cost one task each, not one thread; blocking service
    operations run on ``self._ops`` (sized generously because ``wait``
    parks a worker for the duration of a learning job).  Use
    :func:`serve` for the blocking entry point; tests reach the bound
    port through the ``ready`` callback.
    """

    #: executor headroom beyond scheduler slots: concurrent waits + queries.
    OPS_WORKERS = 32

    def __init__(self, service: Service):
        self.service = service
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._ops = ThreadPoolExecutor(
            max_workers=max(self.OPS_WORKERS, service.scheduler.slots * 4),
            thread_name_prefix="repro-svc-op",
        )

    async def start(self, host: str, port: int) -> None:
        self._shutdown = asyncio.Event()
        # The reader limit bounds one JSON line; large query batches are
        # legitimate, so allow what the wire framing allows.
        self._server = await asyncio.start_server(
            self._on_client, host, port, limit=wiremsg.MAX_FRAME
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def initiate_shutdown(self) -> None:
        """Stop accepting and unwind :meth:`run_until_shutdown` (loop-thread)."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def run_until_shutdown(self) -> None:
        await self._shutdown.wait()
        self._server.close()
        await self._server.wait_closed()
        # Blocked waits are unstuck by Service.close cancelling their jobs
        # (the caller's `finally`), so don't join the worker threads here.
        self._ops.shutdown(wait=False, cancel_futures=True)

    # -- per-connection protocol loop --------------------------------------------

    async def _on_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        ctx = ClientContext(client_id=peer[0] if peer else "unknown")
        try:
            while not self._shutdown.is_set():
                if ctx.transport == "wire":
                    alive = await self._serve_wire_once(reader, writer, ctx)
                else:
                    alive = await self._serve_json_once(reader, writer, ctx)
                if not alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_json_once(self, reader, writer, ctx) -> bool:
        line = await self._readline(reader, ctx)
        if not line:
            return False
        line = line.strip()
        if not line:
            return True
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            await self._send_json(writer, {"ok": False, "error": f"bad request: {exc}"})
            return True
        if request.get("op") == "query" and request.get("stream"):
            return await self._stream_query(
                request, ctx, reader, writer,
                send=lambda resp: self._send_json(writer, resp),
            )
        response = await self._run_op(request, ctx)
        await self._send_json(writer, response)
        if response.get("ok") and request.get("op") == "hello":
            # Switch only after the acknowledgement went out on JSON-lines.
            if response.get("transport") == "wire":
                ctx.transport = "wire"
        if response.get("shutdown"):
            self.initiate_shutdown()
            return False
        return True

    async def _serve_wire_once(self, reader, writer, ctx) -> bool:
        msg = await self._read_frame(reader, ctx)
        if msg is None:
            return False
        if isinstance(msg, wiremsg.WireQuery):
            return await self._wire_query(msg, ctx, reader, writer)
        if not isinstance(msg, wiremsg.WireJson):
            await self._send_frame(
                writer,
                wiremsg.WireJson({"ok": False, "error": f"unexpected {type(msg).__name__}"}),
            )
            return True
        request = msg.payload
        if not isinstance(request, dict):
            await self._send_frame(
                writer, wiremsg.WireJson({"ok": False, "error": "request must be a JSON object"})
            )
            return True
        if request.get("op") == "query" and request.get("stream"):
            return await self._stream_query(
                request, ctx, reader, writer,
                send=lambda resp: self._send_frame(writer, _frame_to_wire(resp)),
            )
        response = await self._run_op(request, ctx)
        await self._send_frame(writer, wiremsg.WireJson(response))
        if response.get("shutdown"):
            self.initiate_shutdown()
            return False
        return True

    async def _wire_query(self, msg: wiremsg.WireQuery, ctx, reader, writer) -> bool:
        """A native wire query: terms arrive parsed, bitsets leave packed."""
        svc = self.service
        if svc.auth_token is not None and not ctx.authenticated:
            await self._send_frame(
                writer, wiremsg.WireJson({"ok": False, "error": "authentication required"})
            )
            return True
        loop = asyncio.get_running_loop()
        if msg.stream:
            def opener():
                return svc.query_engine.query_stream(
                    msg.name,
                    msg.examples,
                    version=msg.version,
                    micro_batch=msg.micro_batch,
                    shards=svc._resolve_shards(msg.shards) or 1,
                )

            return await self._stream_query(
                None, ctx, reader, writer,
                send=lambda m: self._send_frame(writer, m),
                opener=opener, wire=True,
            )
        try:
            result = await loop.run_in_executor(
                self._ops,
                lambda: svc.query_result(
                    msg.name, msg.examples, version=msg.version,
                    micro_batch=msg.micro_batch, shards=msg.shards,
                ),
            )
        except (SchedulerError, RegistryError, ParseError, ValueError, KeyError) as exc:
            await self._send_frame(
                writer, wiremsg.WireJson({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
            )
            return True
        await self._send_frame(
            writer,
            wiremsg.WireQueryEnd(
                covered=result.covered, n=result.n, ops=result.ops, shards=result.shards
            ),
        )
        return True

    async def _stream_query(
        self, request, ctx, reader, writer,
        send: Callable, opener: Optional[Callable] = None, wire: bool = False,
    ) -> bool:
        """Stream one sharded query; True iff the connection stays usable.

        The disconnect watch races every frame against a read on the
        client socket: an EOF there means the client is gone, so the
        stream is cancelled and its not-yet-started shard tasks never
        run (the leak the streaming tests pin).  Data that arrives
        instead of EOF is a pipelined request — pushed back for the main
        loop, never dropped.
        """
        loop = asyncio.get_running_loop()
        try:
            stream = await loop.run_in_executor(
                self._ops, opener or (lambda: self.service.open_query_stream(request))
            )
        except (SchedulerError, RegistryError, ParseError, ValueError, KeyError) as exc:
            err = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            await send(wiremsg.WireJson(err) if wire else err)
            return True
        eof_watch = asyncio.ensure_future(reader.read(4096))
        frame_task = None
        alive = True
        try:
            while True:
                if frame_task is None:
                    frame_task = loop.run_in_executor(self._ops, stream.next_frame)
                done, _ = await asyncio.wait(
                    {frame_task, eof_watch}, return_when=asyncio.FIRST_COMPLETED
                )
                if eof_watch in done:
                    data = eof_watch.result()
                    if not data:  # client disconnected mid-stream
                        stream.cancel()
                        alive = False
                        break
                    ctx.pushback += data
                    eof_watch = asyncio.ensure_future(reader.read(4096))
                    continue
                frame = frame_task.result()
                frame_task = None
                if frame is None:
                    break
                if wire:
                    await send(
                        wiremsg.WireShard(
                            shard=frame.shard, lo=frame.lo, n=frame.n,
                            covered=frame.covered, ops=frame.ops,
                        )
                    )
                else:
                    await send(
                        {
                            "ok": True, "frame": "shard", "shard": frame.shard,
                            "lo": frame.lo, "n": frame.n, "ops": frame.ops,
                            "covered": frame.decisions(),
                        }
                    )
            if alive and stream.done:
                result = stream.result()
                if wire:
                    await send(
                        wiremsg.WireQueryEnd(
                            covered=result.covered, n=result.n,
                            ops=result.ops, shards=result.shards,
                        )
                    )
                else:
                    await send(
                        {
                            "ok": True, "frame": "end", "n": result.n,
                            "n_covered": result.n_covered, "ops": result.ops,
                            "shards": result.shards, "covered": result.decisions(),
                        }
                    )
        except ConnectionError:
            stream.cancel()
            alive = False
        finally:
            if frame_task is not None:
                # Let the in-flight next_frame call retire before returning
                # the connection to the main loop (or closing it).
                stream.cancel()
                try:
                    await frame_task
                except Exception:
                    pass
            if not eof_watch.done():
                # Must settle before the main loop reads again: two
                # coroutines waiting on one StreamReader is an error, and
                # cancellation only lands at the next loop step.
                eof_watch.cancel()
                try:
                    await eof_watch
                except asyncio.CancelledError:
                    pass
            if eof_watch.done() and not eof_watch.cancelled():
                data = eof_watch.result()
                if data:
                    ctx.pushback += data
                else:
                    alive = False
        return alive

    # -- plumbing ----------------------------------------------------------------

    async def _run_op(self, request: dict, ctx: ClientContext) -> dict:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._ops, self.service.handle, request, ctx)

    @staticmethod
    async def _send_json(writer, response: dict) -> None:
        writer.write((json.dumps(response) + "\n").encode("utf-8"))
        await writer.drain()

    @staticmethod
    async def _send_frame(writer, message) -> None:
        writer.write(wiremsg.pack_frame(message))
        await writer.drain()

    @staticmethod
    async def _readline(reader, ctx: ClientContext) -> bytes:
        if ctx.pushback:
            head, sep, rest = ctx.pushback.partition(b"\n")
            if sep:
                ctx.pushback = rest
                return head + sep
            ctx.pushback = b""
            return head + await reader.readline()
        return await reader.readline()

    async def _read_exact(self, reader, ctx: ClientContext, n: int) -> Optional[bytes]:
        buf = ctx.pushback[:n]
        ctx.pushback = ctx.pushback[n:]
        while len(buf) < n:
            chunk = await reader.read(n - len(buf))
            if not chunk:
                return None
            buf += chunk
        return bytes(buf)

    async def _read_frame(self, reader, ctx: ClientContext):
        header = await self._read_exact(reader, ctx, wiremsg.FRAME_HEADER.size)
        if header is None:
            return None
        (length,) = wiremsg.FRAME_HEADER.unpack(header)
        if length > wiremsg.MAX_FRAME:
            raise WireError(f"wire frame too large ({length} bytes)")
        data = await self._read_exact(reader, ctx, length)
        if data is None:
            return None
        from repro.parallel import wire

        return wire.decode(data)


def _frame_to_wire(resp: dict):
    """Map a streaming-protocol dict onto its wire message."""
    if resp.get("frame") == "shard":
        covered = 0
        for i, bit in enumerate(resp["covered"]):
            if bit:
                covered |= 1 << i
        return wiremsg.WireShard(
            shard=resp["shard"], lo=resp["lo"], n=resp["n"],
            covered=covered, ops=resp["ops"],
        )
    if resp.get("frame") == "end":
        covered = 0
        for i, bit in enumerate(resp["covered"]):
            if bit:
                covered |= 1 << i
        return wiremsg.WireQueryEnd(
            covered=covered, n=resp["n"], ops=resp["ops"], shards=resp["shards"]
        )
    return wiremsg.WireJson(resp)


def serve(
    host: str = "127.0.0.1",
    port: int = 7341,
    slots: int = 2,
    state_dir: Optional[str] = None,
    registry_dir: Optional[str] = None,
    chunk_epochs: int = 1,
    ready=None,
    auth_token: Optional[str] = None,
    max_jobs_per_client: int = 0,
    query_shards: int = 0,
    shard_workers: Optional[int] = None,
) -> None:
    """Run the service until a ``shutdown`` request (blocking).

    ``port=0`` binds an ephemeral port.  ``ready``, when given, is
    called with the listening :class:`ServiceServer` once the socket is
    bound (tests use it to learn the port; the CLI prints it).
    """
    service = Service(
        slots=slots, state_dir=state_dir, registry_dir=registry_dir,
        chunk_epochs=chunk_epochs, auth_token=auth_token,
        max_jobs_per_client=max_jobs_per_client, query_shards=query_shards,
        shard_workers=shard_workers,
    )

    async def main():
        server = ServiceServer(service)
        await server.start(host, port)
        if ready is not None:
            ready(server)
        await server.run_until_shutdown()

    try:
        asyncio.run(main())
    finally:
        service.close(drain=False)


class ServiceClient:
    """Blocking client for :func:`serve` endpoints.

    Speaks JSON-lines by default; ``transport="wire"`` negotiates the
    compact binary framing via a hello (falling back to JSON-lines
    against servers that predate it), and ``token`` authenticates the
    connection the same way.  ``bytes_sent`` / ``bytes_received`` count
    transport bytes, so transports can be compared on real workloads.

    ``timeout`` (seconds) bounds *connection setup*; established
    connections block indefinitely by default — ``wait`` requests
    legitimately outlast any fixed socket timeout (learning jobs run for
    minutes), and the server answers every request eventually.  Pass
    ``read_timeout`` to bound individual responses instead.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7341,
        timeout: float = 60.0,
        read_timeout: Optional[float] = None,
        token: Optional[str] = None,
        transport: str = "json",
    ):
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}")
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.settimeout(read_timeout)
        self._file = self.sock.makefile("rwb")
        self.transport = "json"
        self.bytes_sent = 0
        self.bytes_received = 0
        if token is not None or transport != "json":
            self.hello(token=token, transport=transport)

    # -- transport ---------------------------------------------------------------

    def _request_json(self, payload: dict) -> dict:
        data = (json.dumps(payload) + "\n").encode("utf-8")
        self._file.write(data)
        self._file.flush()
        self.bytes_sent += len(data)
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        self.bytes_received += len(line)
        return json.loads(line)

    def _send_msg(self, message) -> None:
        self.bytes_sent += wiremsg.write_frame_to(self._file, message)

    def _recv_msg(self):
        message, n = wiremsg.read_frame_from(self._file)
        self.bytes_received += n
        if message is None:
            raise ConnectionError("server closed the connection")
        return message

    def hello(
        self, token: Optional[str] = None, transport: str = "json", client: Optional[str] = None
    ) -> dict:
        """Authenticate and/or negotiate the transport for this connection."""
        req = {"op": "hello", "transport": transport}
        if token is not None:
            req["token"] = token
        if client is not None:
            req["client"] = client
        resp = self._request_json(req)
        if not resp.get("ok"):
            if token is None and "unknown op" in resp.get("error", ""):
                return resp  # legacy server: stay on JSON-lines
            raise RuntimeError(resp.get("error", "hello failed"))
        if resp.get("transport") == "wire":
            self.transport = "wire"
        return resp

    def request(self, payload: dict) -> dict:
        """Send one request; return the decoded response dict."""
        if self.transport == "json":
            return self._request_json(payload)
        self._send_msg(wiremsg.WireJson(payload))
        message = self._recv_msg()
        if not isinstance(message, wiremsg.WireJson):
            raise ConnectionError(f"unexpected wire message {type(message).__name__}")
        return message.payload

    def close(self) -> None:
        self._file.close()
        self.sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- convenience wrappers ----------------------------------------------------

    def submit(self, spec: JobSpec) -> str:
        resp = self.request({"op": "submit", "spec": spec.to_dict()})
        if not resp.get("ok"):
            raise RuntimeError(resp.get("error", "submit failed"))
        return resp["job"]

    def wait(self, job_id: str, timeout: Optional[float] = None) -> dict:
        return self.request({"op": "wait", "job": job_id, "timeout": timeout})

    def query(
        self,
        theory: str,
        examples: list[str],
        version: Optional[int] = None,
        shards: Optional[int] = None,
    ) -> dict:
        """One batched query; response dict is transport-independent."""
        if self.transport == "json":
            return self._request_json(
                {
                    "op": "query", "theory": theory, "examples": examples,
                    "version": version, "shards": shards,
                }
            )
        self._send_msg(
            wiremsg.WireQuery(
                name=theory,
                examples=tuple(parse_term(s) for s in examples),
                version=version,
                shards=shards or 0,
            )
        )
        return self._query_end_dict(self._recv_msg())

    def query_stream(
        self,
        theory: str,
        examples: list[str],
        version: Optional[int] = None,
        shards: Optional[int] = None,
    ) -> Iterator[dict]:
        """Stream a sharded query; yields shard frames, then the end frame.

        Every yielded dict has ``"frame"`` (``"shard"`` or ``"end"``);
        shard frames carry span-local ``covered`` at offset ``lo``, the
        end frame the merged batch result.
        """
        if self.transport == "json":
            req = {
                "op": "query", "theory": theory, "examples": examples,
                "version": version, "shards": shards, "stream": True,
            }
            data = (json.dumps(req) + "\n").encode("utf-8")
            self._file.write(data)
            self._file.flush()
            self.bytes_sent += len(data)
            while True:
                line = self._file.readline()
                if not line:
                    raise ConnectionError("server closed the connection mid-stream")
                self.bytes_received += len(line)
                resp = json.loads(line)
                if not resp.get("ok"):
                    raise RuntimeError(resp.get("error", "query failed"))
                yield resp
                if resp.get("frame") == "end":
                    return
        else:
            self._send_msg(
                wiremsg.WireQuery(
                    name=theory,
                    examples=tuple(parse_term(s) for s in examples),
                    version=version,
                    shards=shards or 0,
                    stream=True,
                )
            )
            while True:
                message = self._recv_msg()
                if isinstance(message, wiremsg.WireShard):
                    yield {
                        "ok": True, "frame": "shard", "shard": message.shard,
                        "lo": message.lo, "n": message.n, "ops": message.ops,
                        "covered": [
                            bool((message.covered >> i) & 1) for i in range(message.n)
                        ],
                    }
                    continue
                if isinstance(message, wiremsg.WireQueryEnd):
                    yield self._query_end_dict(message)
                    return
                if isinstance(message, wiremsg.WireJson):
                    raise RuntimeError(message.payload.get("error", "query failed"))
                raise ConnectionError(
                    f"unexpected wire message {type(message).__name__}"
                )

    def _query_end_dict(self, message) -> dict:
        if isinstance(message, wiremsg.WireJson):
            return message.payload  # an error response
        if not isinstance(message, wiremsg.WireQueryEnd):
            raise ConnectionError(f"unexpected wire message {type(message).__name__}")
        return {
            "ok": True,
            "frame": "end",
            "n": message.n,
            "n_covered": message.covered.bit_count(),
            "ops": message.ops,
            "shards": message.shards,
            "covered": [bool((message.covered >> i) & 1) for i in range(message.n)],
        }

"""Table 2 — average speedup for p ∈ {2, 4, 8}, width ∈ {nolimit, 10}.

The paper's headline result: speedups grow with p, approach or exceed
linear at p=8, and constraining the pipeline width helps on the
communication-heavy datasets.  Also benchmarks one representative
P²-MDIE run per processor count.
"""

import pytest

from conftest import PS, SEED, one_shot
from repro.datasets import make_dataset
from repro.experiments.tables import table2_speedup
from repro.parallel import run_p2mdie


def test_table2(benchmark, matrix, table_sink):
    table_sink("table2_speedup", one_shot(benchmark, table2_speedup, matrix, ps=PS))
    # Shape assertions (paper §5.3): parallel execution is profitable at
    # every p, and adding processors beyond 2 helps (at small scale the
    # p=8 point may saturate — tiny per-worker subsets — so the growth
    # check accepts the best of p ∈ {4, 8}).
    for ds in {r.dataset for r in matrix.records}:
        seq = matrix.mean("seconds", ds, None, 1)
        s2 = seq / matrix.mean("seconds", ds, 10, 2)
        s4 = seq / matrix.mean("seconds", ds, 10, 4)
        s8 = seq / matrix.mean("seconds", ds, 10, 8)
        assert s2 > 1.0, f"{ds}: no speedup at p=2"
        assert s8 > 1.0, f"{ds}: no speedup at p=8"
        assert max(s4, s8) >= s2, f"{ds}: speedup did not grow beyond p=2"


@pytest.mark.parametrize("p", PS)
def test_bench_p2mdie(benchmark, p, scale):
    ds = make_dataset("carcinogenesis", seed=SEED, scale=scale)
    res = one_shot(
        benchmark, run_p2mdie, ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=p, width=10, seed=SEED
    )
    assert res.epochs >= 1

"""Tests for the pipeline trace rendering (Figs. 3-4 reproduction)."""

import pytest

from repro.cluster.process import ComputeInterval as CI
from repro.experiments.trace import occupancy, render_gantt, stage_summary


class TestRenderGantt:
    def test_empty(self):
        assert render_gantt([]) == "(empty trace)"

    def test_single_interval(self):
        out = render_gantt([CI(1, 0.0, 1.0, "search(s1)")], width=10)
        assert out == "rank 1 |1111111111|"

    def test_stage_chars(self):
        out = render_gantt(
            [CI(1, 0.0, 0.5, "search(s2)"), CI(1, 0.5, 1.0, "evaluate")], width=10
        )
        assert "2" in out and "e" in out

    def test_idle_shown_as_dots(self):
        out = render_gantt([CI(1, 0.5, 1.0, "saturate")], width=10)
        row = out.split("|")[1]
        assert row.startswith(".")
        assert row.endswith("s")

    def test_multiple_ranks_sorted(self):
        out = render_gantt([CI(2, 0, 1, "evaluate"), CI(0, 0, 1, "aggregate")], width=4)
        lines = out.splitlines()
        assert lines[0].startswith("rank 0")
        assert lines[1].startswith("rank 2")

    def test_fixed_t_end(self):
        out = render_gantt([CI(1, 0.0, 1.0, "evaluate")], width=10, t_end=2.0)
        row = out.split("|")[1]
        assert row == "eeeee....."


class TestOccupancy:
    def test_fractions(self):
        occ = occupancy([CI(1, 0, 2, "a"), CI(2, 0, 1, "b")], makespan=2.0)
        assert occ == {1: 1.0, 2: 0.5}

    def test_invalid_makespan(self):
        with pytest.raises(ValueError):
            occupancy([], makespan=0.0)


class TestStageSummary:
    def test_aggregation(self):
        trace = [
            CI(1, 0, 1, "search(s1)"),
            CI(2, 1, 3, "search(s1)"),
            CI(1, 3, 4, "evaluate"),
        ]
        stats = {s.label: s for s in stage_summary(trace)}
        assert stats["search(s1)"].count == 2
        assert stats["search(s1)"].total_seconds == 3.0
        assert stats["evaluate"].count == 1


class TestOnRealRun:
    def test_p2mdie_trace_renders(self):
        from repro.datasets import make_dataset
        from repro.parallel.p2mdie import run_p2mdie

        ds = make_dataset("trains", seed=4, scale="small")
        res = run_p2mdie(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=3, seed=4, record_trace=True, max_epochs=1
        )
        out = render_gantt(res.trace, width=60)
        assert "rank 1" in out and "rank 3" in out
        occ = occupancy(res.trace, res.seconds)
        assert all(0 <= v <= 1.0 for v in occ.values())
        # pipeline stages 1..3 all appear somewhere in the trace
        labels = {iv.label for iv in res.trace}
        assert {"search(s1)", "search(s2)", "search(s3)"} <= labels

"""Body-literal reordering: a query transformation for cheaper coverage.

The paper cites work on "efficiently testing candidate rules" (Costa,
Srinivasan & Camacho's simple transformations; Blockeel et al.'s query
packs) as the orthogonal, sequential route to ILP performance — and notes
such speedups "are still usable in a parallel setting".  This module
implements the classic instance: reorder a rule's body so that literals
whose input variables are already bound (and whose predicates have the
fewest candidate facts) run first, maximising early failure and indexed
lookup.

Semantics are unchanged — conjunction is commutative for the pure
database predicates ILP bodies use — only the engine's operation count
drops.  Enabled via ``ILPConfig(reorder_body=True)`` or applied manually
with :func:`optimize_clause_order`.
"""

from __future__ import annotations

from typing import Optional

from repro.logic.clause import Clause
from repro.logic.knowledge import KnowledgeBase
from repro.logic.terms import Const, Struct, Term, Var, variables_of

__all__ = ["optimize_clause_order", "literal_cost_estimate"]

#: literals of these indicators are impure/meta and must keep their
#: relative position after every variable they mention is bound.
_GUARDED = {"\\+", "not", "is", "<", ">", "=<", ">=", "==", "\\==", "=", "\\="}


def literal_cost_estimate(kb: KnowledgeBase, lit: Term, bound: set) -> tuple:
    """Sort key: (unbound inputs, first-arg-unindexed, candidate count).

    Lower is cheaper to run next.  ``bound`` is the set of variables bound
    so far (head inputs plus outputs of already-scheduled literals).
    """
    if not isinstance(lit, Struct):
        return (0, 0, 0)
    lit_vars = set(variables_of(lit))
    unbound = len(lit_vars - bound)
    first = lit.args[0]
    indexed = isinstance(first, Const) or (isinstance(first, Var) and first in bound)
    store = kb.facts_for(lit.indicator)
    return (unbound, 0 if indexed else 1, len(store))


def optimize_clause_order(kb: KnowledgeBase, clause: Clause) -> Clause:
    """Greedily reorder ``clause``'s body for evaluation.

    Executability is preserved: a literal is schedulable only when
    guarded/builtin literals have all their variables bound; database
    literals are always schedulable (the engine enumerates candidates),
    but the cost estimate strongly prefers bound, indexed, small ones.

    >>> from repro.logic import KnowledgeBase, parse_clause
    >>> kb = KnowledgeBase(); kb.add_program("big(a). big(b). big(c). tiny(a).")
    >>> c = parse_clause("p(X) :- big(X), tiny(X).")
    >>> str(optimize_clause_order(kb, c))
    'p(X) :- tiny(X), big(X).'
    """
    bound = set(variables_of(clause.head))
    remaining = list(clause.body)
    ordered: list[Term] = []
    while remaining:
        schedulable = []
        for lit in remaining:
            if isinstance(lit, Struct) and lit.functor in _GUARDED:
                if not (set(variables_of(lit)) <= bound):
                    continue
            schedulable.append(lit)
        if not schedulable:
            # Guarded literals still waiting on outputs — schedule the
            # cheapest database literal to make progress.
            schedulable = [
                l for l in remaining
                if not (isinstance(l, Struct) and l.functor in _GUARDED)
            ]
            if not schedulable:  # pragma: no cover - ill-formed clause
                schedulable = remaining
        best = min(
            schedulable,
            key=lambda l: (literal_cost_estimate(kb, l, bound), remaining.index(l)),
        )
        remaining.remove(best)
        ordered.append(best)
        bound |= set(variables_of(best))
    return Clause(clause.head, tuple(ordered))

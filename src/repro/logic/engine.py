"""Resource-bounded SLD-resolution engine.

This is the theorem prover that ILP coverage testing runs on (the paper's
``evalOnExamples``).  It is a depth-bounded, operation-bounded Prolog-style
engine over a :class:`~repro.logic.knowledge.KnowledgeBase`:

* **depth bound** — limits rule expansions, guaranteeing termination on
  recursive background knowledge;
* **operation bound** — caps unification attempts per query.  A query that
  exhausts its budget *fails* (the example counts as not covered), mirroring
  the resource-bounded "h-easy" semantics of Progol/Aleph/April;
* **operation counter** — ``total_ops`` accumulates across queries and is
  the compute-cost proxy consumed by the simulated cluster's
  :class:`~repro.cluster.costmodel.CostModel`.  One op ≈ one candidate
  clause/fact unification attempt (plus one per builtin call), which tracks
  the work a WAM-based Prolog performs closely enough for relative timing.

The engine treats negation-as-failure (``\\+``/``not``) soundly for ground
sub-goals (the only use ILP coverage makes of it).

Two resolution machines are provided:

* ``iterative`` (default) — an explicit goal-stack/choice-point machine.
  Continuations are shared cons cells, choice points are flat list frames,
  and backtracking is a loop — no nested-generator resumption on every
  unification.  It optionally memoizes ground goals over *deterministic*
  predicates (rule predicates whose dependency closure is negation-free):
  success observed at remaining depth ``d`` is valid at any depth ``>= d``,
  failure at depth ``d`` at any depth ``<= d``, so memo answers are exactly
  what re-running the machine would compute.  The memo is invalidated
  whenever the knowledge base's ``version`` stamp changes.
* ``recursive`` — the original nested-generator interpreter, kept as the
  measurable baseline (``REPRO_COVERAGE_KERNEL=legacy`` or
  ``Engine(..., kernel="legacy")``) and as the parity oracle for tests.

Solution order, bindings and resource semantics of the iterative machine
(with memoization disabled) are bit-identical to the recursive machine,
including the exact sequence of ``total_ops`` charges.  Memoization and
multi-argument indexing reduce the op count; they never change the set of
solutions, but — like body reordering — a query that only failed because it
ran out of budget may now succeed within it.  One further nuance: the
recursive interpreter lets a subgoal's rule expansions tighten the depth
budget of the goals *after* it (its own comment calls the tightening
benign); a memoized ground subgoal consumes no depth from its
continuation, i.e. the memo restores branch-local depth accounting.  The
two treatments only differ where the depth bound binds mid-conjunction.
"""

from __future__ import annotations

import os
from typing import Iterator, Optional, Sequence

from repro.logic.builtins import ArithmeticError_, eval_arith, is_builtin
from repro.logic.clause import Clause
from repro.logic.knowledge import KnowledgeBase
from repro.logic.terms import Const, Struct, Term, Var, fresh_var, is_ground
from repro.logic.unify import Subst, resolve, undo_trail, unify_trail, walk

__all__ = ["Engine", "QueryBudget", "BudgetExceeded", "resolve_kernel"]

#: Environment switch for the default coverage kernel: ``new`` (iterative
#: machine, memo table, multi-argument indexing) or ``legacy`` (the seed
#: recursive interpreter with first-argument indexing) — the before/after
#: flag the kernel benchmark flips.
KERNEL_ENV = "REPRO_COVERAGE_KERNEL"


class BudgetExceeded(Exception):
    """Internal signal: per-query operation budget exhausted."""


def _flatten_conj(term: Term) -> tuple[Term, ...]:
    if isinstance(term, Struct) and term.functor == "," and term.arity == 2:
        return _flatten_conj(term.args[0]) + _flatten_conj(term.args[1])
    return (term,)


def resolve_kernel(kernel: Optional[str]) -> str:
    """Resolve a kernel name: explicit > ``REPRO_COVERAGE_KERNEL`` > new."""
    k = kernel or os.environ.get(KERNEL_ENV) or "new"
    if k not in ("new", "legacy"):
        raise ValueError(f"unknown coverage kernel {k!r} (expected 'new' or 'legacy')")
    return k


class QueryBudget:
    """Per-query resource limits.

    ``max_depth`` bounds the number of *rule* expansions along any
    derivation branch (facts and builtins are free).  ``max_ops`` bounds
    total unification attempts for one query.
    """

    __slots__ = ("max_depth", "max_ops")

    def __init__(self, max_depth: int = 12, max_ops: int = 200_000):
        if max_depth < 1 or max_ops < 1:
            raise ValueError("budgets must be positive")
        self.max_depth = max_depth
        self.max_ops = max_ops

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"QueryBudget(max_depth={self.max_depth}, max_ops={self.max_ops})"


class Engine:
    """SLD resolution over a knowledge base, with resource accounting.

    Parameters
    ----------
    kernel:
        ``"new"`` / ``"legacy"`` / None (None resolves via the
        ``REPRO_COVERAGE_KERNEL`` environment variable, defaulting to new).
        The kernel only sets defaults for the three fine-grained knobs:
    machine:
        ``"iterative"`` or ``"recursive"`` resolution core.
    memo:
        Enable the ground-goal memo table (iterative machine only).
    index:
        ``"multi"`` (any-bound-argument / composite indexing) or
        ``"first"`` (seed first-argument indexing).
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        budget: Optional[QueryBudget] = None,
        kernel: Optional[str] = None,
        machine: Optional[str] = None,
        memo: Optional[bool] = None,
        index: Optional[str] = None,
    ):
        kernel = resolve_kernel(kernel)
        legacy = kernel == "legacy"
        self.kernel = kernel
        self.machine = machine or ("recursive" if legacy else "iterative")
        if self.machine not in ("iterative", "recursive"):
            raise ValueError(f"unknown machine {self.machine!r}")
        self.memo_enabled = (self.machine == "iterative" and not legacy) if memo is None else memo
        self.index = index or ("first" if legacy else "multi")
        if self.index not in ("multi", "first"):
            raise ValueError(f"unknown index mode {self.index!r}")
        self.kb = kb
        self.budget = budget or QueryBudget()
        #: unification attempts since engine construction (monotonic).
        self.total_ops: int = 0
        #: True iff the most recent query hit its operation budget.
        self.last_exhausted: bool = False
        # goal -> [min depth success was observed at | None,
        #          max depth failure was observed at | None]
        self._memo: dict[Term, list] = {}
        # goals whose memo proof is currently running: re-dispatches of the
        # same ground goal inside it must explore normally (recursive
        # predicates), not re-enter the memo.
        self._memo_active: set = set()
        # indicator -> is the predicate's dependency closure negation-free?
        self._memoizable: dict[tuple, bool] = {}
        # indicator -> (FactStore, rules) dispatch cache; (None, None) for
        # builtins.  Cleared with the memo when the KB version moves.
        self._preds: dict[tuple, tuple] = {}
        self._kb_version = kb.version
        self.memo_hits = 0
        self.memo_misses = 0

    # -- public query API ----------------------------------------------------
    def solve(self, goals: Term | Sequence[Term], limit: Optional[int] = None) -> Iterator[Term | tuple]:
        """Yield solutions as resolved instances of the goal (tuple).

        ``goals`` may be a single goal term or a sequence (conjunction).
        Each solution is the goal conjunction with the answer substitution
        applied.  Stops silently if the operation budget is exhausted
        (check :attr:`last_exhausted`).
        """
        goal_tuple = tuple(goals) if isinstance(goals, (list, tuple)) else (goals,)
        # Flatten ','/2 conjunction terms so `parse_term("p(X), q(X)")`
        # queries work directly.
        flat: list[Term] = []
        for g in goal_tuple:
            flat.extend(_flatten_conj(g))
        goal_tuple = tuple(flat)
        subst: dict = {}
        trail: list = []
        gen = self._start_query(goal_tuple, subst, trail)
        n = 0
        try:
            for _ in gen:
                if len(goal_tuple) == 1:
                    yield resolve(goal_tuple[0], subst)
                else:
                    yield tuple(resolve(g, subst) for g in goal_tuple)
                n += 1
                if limit is not None and n >= limit:
                    return
        except BudgetExceeded:
            self.last_exhausted = True

    def prove(self, goals: Term | Sequence[Term]) -> bool:
        """True iff at least one solution exists within budget."""
        for _ in self.solve(goals, limit=1):
            return True
        return False

    def prove_body(self, goals: tuple, subst: dict) -> bool:
        """Existence of a solution for ``goals`` under initial bindings.

        The coverage hot path: the caller hands over the head-matching
        substitution instead of pre-resolving every body literal (the
        machine resolves each goal at dispatch anyway).  Takes ownership
        of ``subst``.  Same budget/exhaustion semantics as :meth:`prove`.
        """
        try:
            for _ in self._start_query(goals, subst, []):
                return True
        except BudgetExceeded:
            self.last_exhausted = True
        return False

    def _start_query(self, goals: tuple, subst: dict, trail: list):
        """Reset per-query state, refresh version-stamped caches, and
        return the resolution generator for ``goals``."""
        self.last_exhausted = False
        self._query_ops = 0
        if self._kb_version != self.kb.version:
            self._preds.clear()
            self._memo.clear()
            self._memoizable.clear()
            self._kb_version = self.kb.version
        if self.machine == "recursive":
            return self._solve(goals, 0, self.budget.max_depth, subst, trail)
        cont = None
        for g in reversed(goals):
            cont = (g, cont)
        return self._machine(cont, self.budget.max_depth, subst, trail)

    def count_solutions(self, goals: Term | Sequence[Term], limit: Optional[int] = None) -> int:
        """Count distinct solution instances (up to ``limit``)."""
        seen = set()
        for sol in self.solve(goals):
            seen.add(sol)
            if limit is not None and len(seen) >= limit:
                break
        return len(seen)

    # -- shared plumbing -------------------------------------------------------
    def _charge(self, n: int = 1) -> None:
        self.total_ops += n
        self._query_ops += n
        if self._query_ops > self.budget.max_ops:
            raise BudgetExceeded

    def _candidates(self, store, goal: Term) -> list[Term]:
        if self.index == "multi":
            return store.candidates(goal)
        return store.candidates_first(goal)

    # -- iterative machine -------------------------------------------------------
    #
    # A continuation is a cons list ``(goal, rest)`` / None; sharing tails
    # makes saving it in a choice point O(1).  A choice point is a flat
    # list frame; index 0 is the kind tag:
    #
    #   _F_PRED    [tag, trail_mark, cont_rest, depth, goal, facts, fi,
    #               rules, ri, walked_args]
    #   _F_BETWEEN [tag, trail_mark, cont_rest, depth, x, hi, next_v]
    #
    # The main loop alternates between running the current continuation
    # forward and pulling the next alternative off the top frame.  A new
    # frame is entered through the same backtracking code that resumes it
    # (its first "undo" is a no-op at its own trail mark).

    _F_PRED = 0
    _F_BETWEEN = 1

    def _machine(self, cont, depth: int, subst: dict, trail: list):
        """Iterative SLD core; yields once per solution (bindings live in
        ``subst``).

        Engine substitutions never contain self-bindings (neither
        ``unify_trail`` nor ``match`` creates them), so variable chains are
        walked with identity checks only.
        """
        frames: list[list] = []
        backtrack = False
        max_ops = self.budget.max_ops
        preds = self._preds
        subst_get = subst.get
        trail_append = trail.append
        while True:
            if backtrack:
                if not frames:
                    return
                f = frames[-1]
                mark = f[1]
                if len(trail) > mark:
                    undo_trail(subst, trail, mark)
                if f[0] == Engine._F_PRED:
                    goal, facts = f[4], f[5]
                    gargs = f[9]
                    nargs = len(gargs)
                    advanced = False
                    fi = f[6]
                    nfacts = len(facts)
                    while fi < nfacts:
                        fact = facts[fi]
                        fi += 1
                        self.total_ops += 1
                        qo = self._query_ops + 1
                        self._query_ops = qo
                        if qo > max_ops:
                            f[6] = fi
                            raise BudgetExceeded
                        # Specialized goal-vs-ground-fact unification: the
                        # goal's arguments were walked at dispatch, so each
                        # is an unbound var (modulo bindings made by this
                        # very loop for repeated vars) or ground.
                        fargs = fact.args
                        ok = True
                        for k in range(nargs):
                            a = gargs[k]
                            if type(a) is Var:
                                nxt = subst_get(a)
                                while nxt is not None:
                                    a = nxt
                                    nxt = subst_get(a) if type(a) is Var else None
                                if type(a) is Var:
                                    subst[a] = fargs[k]
                                    trail_append(a)
                                    continue
                            b = fargs[k]
                            if a is b or a == b:
                                continue
                            if type(a) is Struct and unify_trail(a, b, subst, trail):
                                continue
                            ok = False
                            break
                        if ok:
                            cont, depth = f[2], f[3]
                            advanced = True
                            break
                        if len(trail) > mark:
                            undo_trail(subst, trail, mark)
                    f[6] = fi
                    if advanced:
                        backtrack = False
                        continue
                    rules = f[7]
                    if not rules or f[3] <= 0:
                        # depth bound: silently fail further rule expansion
                        frames.pop()
                        continue
                    while f[8] < len(rules):
                        rule = rules[f[8]]
                        f[8] += 1
                        self._charge()
                        r = rule.rename_apart()
                        if unify_trail(goal, r.head, subst, trail):
                            c = f[2]
                            for lit in reversed(r.body):
                                c = (lit, c)
                            cont, depth = c, f[3] - 1
                            advanced = True
                            break
                        if len(trail) > mark:
                            undo_trail(subst, trail, mark)
                    if advanced:
                        backtrack = False
                        continue
                    frames.pop()
                    continue
                else:  # _F_BETWEEN
                    advanced = False
                    while f[6] <= f[5]:
                        v = f[6]
                        f[6] += 1
                        self._charge()
                        if unify_trail(f[4], Const(v), subst, trail):
                            cont, depth = f[2], f[3]
                            advanced = True
                            break
                        if len(trail) > mark:
                            undo_trail(subst, trail, mark)
                    if advanced:
                        backtrack = False
                        continue
                    frames.pop()
                    continue

            if cont is None:
                yield None
                backtrack = True
                continue
            goal, rest = cont
            while type(goal) is Var:
                nxt = subst_get(goal)
                if nxt is None or nxt == goal:
                    raise TypeError("unbound variable as goal")
                goal = nxt
            if type(goal) is Const:
                ind = (str(goal), 0)
                gargs: list = []
                bound: list[int] = []
                ground = True
                changed = False
            else:
                ind = goal.indicator
                gargs = bound = None  # type: ignore[assignment]
            entry = preds.get(ind)
            if entry is None:
                if is_builtin(ind):
                    entry = preds[ind] = (None, None)
                else:
                    entry = preds[ind] = (self.kb.facts_for(ind), self.kb.rules_for(ind))
            store, rules = entry
            if store is None:
                # Builtins are substitution-aware; the goal's arguments
                # are handed over unresolved.
                outcome = self._builtin_step(goal, ind, rest, depth, subst, trail, frames)
                if outcome is _FAIL:
                    backtrack = True
                elif outcome is _ENTER_FRAME:
                    backtrack = True  # pull the first alternative off the new frame
                else:
                    cont = outcome
                continue

            if gargs is None:
                # Walk each argument once, in place of materializing a
                # resolved copy of the goal: ``gargs`` are the effective
                # argument values (unbound Var | ground term | partial
                # struct), ``bound`` the positions usable as index keys.
                args = goal.args
                gargs = list(args)
                bound = []
                ground = True
                changed = False
                for k in range(len(args)):
                    a = args[k]
                    ta = type(a)
                    if ta is Const:
                        bound.append(k)
                        continue
                    if ta is Var:
                        nxt = subst_get(a)
                        while nxt is not None:
                            a = nxt
                            nxt = subst_get(a) if type(a) is Var else None
                        if type(a) is Var:
                            ground = False
                            gargs[k] = a
                            continue
                    if type(a) is Struct:
                        a = resolve(a, subst)
                        if not a.ground:
                            ground = False
                            gargs[k] = a
                            if a is not args[k]:
                                changed = True
                            continue
                    gargs[k] = a
                    if a is not args[k]:
                        changed = True
                    bound.append(k)

            if ground:
                key = Struct(goal.functor, tuple(gargs)) if changed else goal
                if not rules:
                    # Ground fast path: a ground goal over a fact-only
                    # predicate is a set-membership test.
                    self.total_ops += 1
                    qo = self._query_ops + 1
                    self._query_ops = qo
                    if qo > max_ops:
                        raise BudgetExceeded
                    if key in store.fact_set:
                        cont = rest
                    else:
                        backtrack = True
                    continue
                if self.memo_enabled and key not in self._memo_active and self._is_memoizable(ind):
                    if self._memo_prove(key, depth, subst, trail):
                        cont = rest
                    else:
                        backtrack = True
                    continue
            if type(goal) is not Struct:
                facts = store.facts
            elif self.index == "multi":
                facts = store.candidates_bound(gargs, bound)
            else:
                facts = store.candidates_first_walked(gargs)
            frames.append([Engine._F_PRED, len(trail), rest, depth, goal, facts, 0, rules, 0, gargs])
            backtrack = True

    def _builtin_step(self, goal, ind, rest, depth, subst, trail, frames):
        """One deterministic builtin step.

        Returns the next continuation, ``_FAIL``, or ``_ENTER_FRAME`` after
        pushing a choice point (``between/3`` with an unbound variable).
        """
        self._charge()
        name = ind[0]
        if name == "true":
            return rest
        if name in ("fail", "false"):
            return _FAIL
        args = goal.args if isinstance(goal, Struct) else ()
        if name == "=":
            if unify_trail(args[0], args[1], subst, trail):
                return rest
            return _FAIL
        if name == "\\=":
            mark = len(trail)
            ok = unify_trail(args[0], args[1], subst, trail)
            undo_trail(subst, trail, mark)
            return _FAIL if ok else rest
        if name in ("==", "\\=="):
            same = resolve(args[0], subst) == resolve(args[1], subst)
            return rest if same == (name == "==") else _FAIL
        if name in ("<", ">", "=<", ">="):
            try:
                a = eval_arith(args[0], subst)
                b = eval_arith(args[1], subst)
            except ArithmeticError_:
                return _FAIL
            ok = {"<": a < b, ">": a > b, "=<": a <= b, ">=": a >= b}[name]
            return rest if ok else _FAIL
        if name == "is":
            try:
                value = eval_arith(args[1], subst)
            except ArithmeticError_:
                return _FAIL
            if unify_trail(args[0], Const(value), subst, trail):
                return rest
            return _FAIL
        if name in ("\\+", "not"):
            mark = len(trail)
            found = self._prove_once((args[0], None), depth, subst, trail)
            undo_trail(subst, trail, mark)
            return _FAIL if found else rest
        if name == "between":
            try:
                lo = int(eval_arith(args[0], subst))
                hi = int(eval_arith(args[1], subst))
            except ArithmeticError_:
                return _FAIL
            x = walk(args[2], subst)
            if isinstance(x, Const):
                if isinstance(x.value, int) and lo <= x.value <= hi:
                    return rest
                return _FAIL
            frames.append([Engine._F_BETWEEN, len(trail), rest, depth, x, hi, lo])
            return _ENTER_FRAME
        if name == "dif_const":
            # Succeeds iff both args are (bound to) distinct constants.
            a = walk(args[0], subst)
            b = walk(args[1], subst)
            if isinstance(a, Const) and isinstance(b, Const) and a != b:
                return rest
            return _FAIL
        raise NotImplementedError(f"builtin {ind} not implemented")  # pragma: no cover

    def _prove_once(self, cont, depth: int, subst: dict, trail: list) -> bool:
        """Run a nested machine to its first solution (shared budget/trail)."""
        for _ in self._machine(cont, depth, subst, trail):
            return True
        return False

    # -- ground-goal memo table ---------------------------------------------------
    def _is_memoizable(self, ind: tuple) -> bool:
        """True iff every predicate reachable from ``ind``'s rules is pure
        and negation-free (negation makes provability non-monotone in the
        remaining depth, which would break the memo's depth generalisation)."""
        cached = self._memoizable.get(ind)
        if cached is not None:
            return cached
        ok = True
        seen: set = set()
        stack = [ind]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            if cur[0] in ("\\+", "not"):
                ok = False
                break
            if is_builtin(cur):
                continue
            for rule in self.kb.rules_for(cur):
                for lit in rule.body:
                    stack.append(lit.indicator if isinstance(lit, Struct) else (str(lit), 0))
        self._memoizable[ind] = ok
        return ok

    def _memo_prove(self, goal: Term, depth: int, subst: dict, trail: list) -> bool:
        """Provability of a ground goal, memoized with depth validity.

        Success observed with ``depth`` remaining holds for any remaining
        depth >= that; a completed failure holds for any depth <= it.
        Entries between the two bounds are re-proved.
        """
        entry = self._memo.get(goal)
        if entry is not None:
            s, f = entry
            if s is not None and depth >= s:
                self.memo_hits += 1
                self._charge()
                return True
            if f is not None and depth <= f:
                self.memo_hits += 1
                self._charge()
                return False
        self.memo_misses += 1
        mark = len(trail)
        self._memo_active.add(goal)
        try:
            found = self._prove_once((goal, None), depth, subst, trail)
        finally:
            self._memo_active.discard(goal)
            undo_trail(subst, trail, mark)
        if entry is None:
            entry = self._memo[goal] = [None, None]
        if found:
            entry[0] = depth if entry[0] is None else min(entry[0], depth)
        else:
            entry[1] = depth if entry[1] is None else max(entry[1], depth)
        return found

    # -- recursive resolution core (legacy kernel) --------------------------------
    def _solve(self, goals: tuple, i: int, depth: int, subst: dict, trail: list):
        """Solve ``goals[i:]``; yields once per solution (bindings live in
        ``subst``)."""
        if i >= len(goals):
            yield None
            return
        # Resolve the whole goal up front: argument variables bound earlier
        # in the derivation must be visible to the argument index
        # (otherwise e.g. elem(G, cl) with G bound would scan every fact).
        goal = resolve(goals[i], subst)
        if isinstance(goal, Var):
            raise TypeError("unbound variable as goal")

        ind = goal.indicator if isinstance(goal, Struct) else (str(goal), 0)
        if is_builtin(ind):
            yield from self._solve_builtin(goal, ind, goals, i, depth, subst, trail)
            return

        # Facts first (indexed), then rules.
        store = self.kb.facts_for(ind)
        rules = self.kb.rules_for(ind)
        if not rules and is_ground(goal):
            # Ground fast path: a ground goal over a fact-only predicate is
            # a set-membership test.
            self._charge()
            if goal in store.fact_set:
                yield from self._solve(goals, i + 1, depth, subst, trail)
            return
        for fact in self._candidates(store, goal):
            self._charge()
            mark = len(trail)
            if unify_trail(goal, fact, subst, trail):
                yield from self._solve(goals, i + 1, depth, subst, trail)
            undo_trail(subst, trail, mark)

        if rules and depth <= 0:
            return  # depth bound: silently fail on further rule expansion
        for rule in rules:
            self._charge()
            r = rule.rename_apart()
            mark = len(trail)
            if unify_trail(goal, r.head, subst, trail):
                yield from self._solve(r.body + goals[i + 1 :], 0, depth - 1, subst, trail)
                # note: the continuation goals are re-entered inside; to keep
                # the remaining goals at the *old* depth we rely on depth only
                # gating rule expansion, so the slight tightening is benign
                # and keeps derivations finite.
            undo_trail(subst, trail, mark)

    def _solve_builtin(self, goal: Term, ind: tuple, goals: tuple, i: int, depth: int, subst: dict, trail: list):
        self._charge()
        name = ind[0]
        if name == "true":
            yield from self._solve(goals, i + 1, depth, subst, trail)
            return
        if name in ("fail", "false"):
            return
        args = goal.args if isinstance(goal, Struct) else ()
        if name == "=":
            mark = len(trail)
            if unify_trail(args[0], args[1], subst, trail):
                yield from self._solve(goals, i + 1, depth, subst, trail)
            undo_trail(subst, trail, mark)
            return
        if name == "\\=":
            mark = len(trail)
            ok = unify_trail(args[0], args[1], subst, trail)
            undo_trail(subst, trail, mark)
            if not ok:
                yield from self._solve(goals, i + 1, depth, subst, trail)
            return
        if name in ("==", "\\=="):
            same = resolve(args[0], subst) == resolve(args[1], subst)
            if same == (name == "=="):
                yield from self._solve(goals, i + 1, depth, subst, trail)
            return
        if name in ("<", ">", "=<", ">="):
            try:
                a = eval_arith(args[0], subst)
                b = eval_arith(args[1], subst)
            except ArithmeticError_:
                return
            ok = {"<": a < b, ">": a > b, "=<": a <= b, ">=": a >= b}[name]
            if ok:
                yield from self._solve(goals, i + 1, depth, subst, trail)
            return
        if name == "is":
            try:
                value = eval_arith(args[1], subst)
            except ArithmeticError_:
                return
            mark = len(trail)
            if unify_trail(args[0], Const(value), subst, trail):
                yield from self._solve(goals, i + 1, depth, subst, trail)
            undo_trail(subst, trail, mark)
            return
        if name in ("\\+", "not"):
            sub = (args[0],)
            mark = len(trail)
            found = False
            for _ in self._solve(sub, 0, depth, subst, trail):
                found = True
                break
            undo_trail(subst, trail, mark)
            if not found:
                yield from self._solve(goals, i + 1, depth, subst, trail)
            return
        if name == "between":
            try:
                lo = int(eval_arith(args[0], subst))
                hi = int(eval_arith(args[1], subst))
            except ArithmeticError_:
                return
            x = walk(args[2], subst)
            if isinstance(x, Const):
                if isinstance(x.value, int) and lo <= x.value <= hi:
                    yield from self._solve(goals, i + 1, depth, subst, trail)
                return
            for v in range(lo, hi + 1):
                self._charge()
                mark = len(trail)
                if unify_trail(x, Const(v), subst, trail):
                    yield from self._solve(goals, i + 1, depth, subst, trail)
                undo_trail(subst, trail, mark)
            return
        if name == "dif_const":
            # Succeeds iff both args are (bound to) distinct constants.
            a = walk(args[0], subst)
            b = walk(args[1], subst)
            if isinstance(a, Const) and isinstance(b, Const) and a != b:
                yield from self._solve(goals, i + 1, depth, subst, trail)
            return
        raise NotImplementedError(f"builtin {ind} not implemented")  # pragma: no cover


#: sentinels returned by :meth:`Engine._builtin_step`.
_FAIL = object()
_ENTER_FRAME = object()

"""Chaos acceptance: the full plan survives with answers bit-identical.

This is the issue's acceptance scenario end to end: a served instance
under connection resets, engine-lease failures, a scheduler-worker
crash and a torn durable write, drained with the graceful path at the
tail — zero duplicated jobs, zero corrupted records after restart, and
coverage bitsets identical to the fault-free leg.  Plus the real-signal
variant: ``repro serve`` in a subprocess, SIGTERM, clean exit.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

from repro.experiments.chaos import chaos_passed, run_chaos
from repro.fault.service import ServiceFaultPlan

REPO = pathlib.Path(__file__).resolve().parents[2]
PLAN = REPO / "examples" / "faultplans" / "service_chaos.json"


class TestChaosAcceptance:
    def test_repo_plan_all_invariants_hold(self, tmp_path):
        plan = ServiceFaultPlan.load(str(PLAN))
        report = run_chaos(
            plan, requests=10, batch=30, rate=60.0, n_jobs=2,
            root=str(tmp_path),
        )
        inv = report["invariants"]
        assert inv["parity"], "chaos changed a coverage bitset"
        assert inv["duplicated_jobs"] == 0, "a retried submit duplicated a job"
        assert inv["corrupt_records"] == 0, "a torn write corrupted a record"
        assert inv["load_errors"] == 0, "client retries did not absorb the chaos"
        assert inv["jobs_done"], "a job was lost to the injected faults"
        assert chaos_passed(report)
        # The plan really fired: every event class shows up in the log.
        kinds = {line.split("] ", 1)[1].split(" ", 1)[0] for line in report["injected"]}
        assert kinds == {"reset", "lease", "slot_crash", "persist"}


class TestSigtermDrain:
    def test_serve_subprocess_drains_on_sigterm(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--slots", "1",
                "--state-dir", str(tmp_path / "jobs"),
                "--registry-dir", str(tmp_path / "registry"),
            ],
            env=env, cwd=str(REPO),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            line = proc.stdout.readline()
            assert "% serving on" in line, line
            port = int(line.split(":")[1].split()[0])
            from repro.service import JobSpec
            from repro.service.server import ServiceClient

            with ServiceClient(port=port) as c:
                job = c.submit(JobSpec(dataset="trains", algo="mdie"))
                c.wait(job, timeout=120)
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=60)
            assert rc == 0, proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        # The drained state survives: a fresh service sees the job done.
        from repro.service import Service

        svc = Service(slots=1, state_dir=str(tmp_path / "jobs"))
        try:
            jobs = svc.handle({"op": "jobs"})["jobs"]
            assert [j["state"] for j in jobs] == ["done"]
        finally:
            svc.close()

    def test_drain_parks_preemptible_running_job(self, tmp_path):
        """A slow preemptible job at SIGTERM time parks, and is recoverable."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--slots", "1", "--chunk-epochs", "1",
                "--state-dir", str(tmp_path / "jobs"),
                "--registry-dir", str(tmp_path / "registry"),
            ],
            env=env, cwd=str(REPO),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            line = proc.stdout.readline()
            port = int(line.split(":")[1].split()[0])
            from repro.service import JobSpec
            from repro.service.server import ServiceClient

            with ServiceClient(port=port) as c:
                c.submit(
                    JobSpec(dataset="krki", algo="mdie", preemptible=True)
                )
                # Give the slot a moment to pick the job up, then drain
                # mid-run: the job must park, not finish and not vanish.
                time.sleep(0.5)
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=60)
            assert rc == 0, proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        from repro.service import Service

        svc = Service(slots=1, state_dir=str(tmp_path / "jobs"))
        try:
            job = svc.handle({"op": "jobs"})["jobs"][0]["job"]
            final = svc.handle({"op": "wait", "job": job, "timeout": 180})
            assert final["ok"] and final["state"] == "done"
        finally:
            svc.close()

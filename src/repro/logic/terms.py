"""First-order logic terms.

Three immutable term kinds, as in a standard Prolog core:

* :class:`Var` — a logic variable (``X``, ``_G12``).
* :class:`Const` — an atomic constant: a symbol (``ethyl``), an ``int`` or a
  ``float``.
* :class:`Struct` — a compound term ``f(t1, ..., tn)``.  Predicates/atoms are
  represented as structs too (an atom is simply a term in predicate
  position).

Terms are immutable, hashable and compare structurally, so they can be used
as dict keys (substitutions, indices) and set members (coverage caches).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Union

__all__ = [
    "Term",
    "Var",
    "Const",
    "Struct",
    "atom",
    "mk_term",
    "fresh_var",
    "variables_of",
    "constants_of",
    "term_size",
    "term_depth",
    "is_ground",
]

_fresh_counter = itertools.count()


class Var:
    """A logic variable, identified by name.

    Two ``Var`` objects with the same name are the same variable.  Fresh
    (globally unique) variables are produced by :func:`fresh_var`.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        self.name = name
        self._hash = hash(("V", name))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Var({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash


class Const:
    """An atomic constant: symbol, integer or float."""

    __slots__ = ("value", "_hash")

    def __init__(self, value: Union[str, int, float]):
        self.value = value
        self._hash = hash(("C", value))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Const({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Const)
            and other.value == self.value
            # 1 == 1.0 in Python; keep int/float constants distinct.
            and type(other.value) is type(self.value)
        )

    def __hash__(self) -> int:
        return self._hash


class Struct:
    """A compound term ``functor(arg1, ..., argN)`` (N >= 1).

    Zero-arity atoms are represented as :class:`Const`; the parser and
    :func:`atom` enforce this normal form.
    """

    __slots__ = ("functor", "args", "indicator", "_hash")

    def __init__(self, functor: str, args: tuple):
        self.functor = functor
        self.args = args
        #: the predicate indicator ``(name, arity)`` — precomputed, it is
        #: read on every engine goal dispatch.
        self.indicator = (functor, len(args))
        self._hash = hash(("S", functor, args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Struct({self.functor!r}, {self.args!r})"

    def __str__(self) -> str:
        return f"{self.functor}({', '.join(map(str, self.args))})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Struct)
            and other._hash == self._hash
            and other.functor == self.functor
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return self._hash


Term = Union[Var, Const, Struct]


def mk_term(value: object) -> Term:
    """Coerce a Python value into a term.

    Strings starting with an uppercase letter or ``_`` become variables,
    other strings become symbol constants; ints/floats become numeric
    constants; terms pass through unchanged.
    """
    if isinstance(value, (Var, Const, Struct)):
        return value
    if isinstance(value, bool):
        return Const("true" if value else "false")
    if isinstance(value, (int, float)):
        return Const(value)
    if isinstance(value, str):
        if value and (value[0].isupper() or value[0] == "_"):
            return Var(value)
        return Const(value)
    raise TypeError(f"cannot convert {value!r} to a term")


def atom(functor: str, *args: object) -> Term:
    """Build an atom/compound term, coercing Python args via :func:`mk_term`.

    >>> str(atom("bond", "m1", 3, "X"))
    'bond(m1, 3, X)'
    """
    if not args:
        return Const(functor)
    return Struct(functor, tuple(mk_term(a) for a in args))


def fresh_var(prefix: str = "_G") -> Var:
    """Return a globally fresh variable."""
    return Var(f"{prefix}{next(_fresh_counter)}")


def variables_of(term: Term) -> Iterator[Var]:
    """Iterate variables in ``term``, left-to-right, with repeats."""
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, Var):
            yield t
        elif isinstance(t, Struct):
            stack.extend(reversed(t.args))


def constants_of(term: Term) -> Iterator[Const]:
    """Iterate constants in ``term``, left-to-right, with repeats."""
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, Const):
            yield t
        elif isinstance(t, Struct):
            stack.extend(reversed(t.args))


def term_size(term: Term) -> int:
    """Number of symbol occurrences in ``term`` (vars and consts count 1)."""
    if isinstance(term, Struct):
        return 1 + sum(term_size(a) for a in term.args)
    return 1


def term_depth(term: Term) -> int:
    """Nesting depth; constants and variables have depth 0."""
    if isinstance(term, Struct):
        return 1 + max((term_depth(a) for a in term.args), default=0)
    return 0


def is_ground(term: Term) -> bool:
    """True iff ``term`` contains no variables.

    Iterative and generator-free — this sits on the engine's per-goal
    dispatch path.
    """
    if isinstance(term, Const):
        return True
    if isinstance(term, Var):
        return False
    stack = [term]
    while stack:
        for a in stack.pop().args:
            if isinstance(a, Var):
                return False
            if isinstance(a, Struct):
                stack.append(a)
    return True

"""Unit tests for the knowledge base and fact indexing."""

import pytest

from repro.logic.knowledge import FactStore, KnowledgeBase
from repro.logic.parser import parse_clause
from repro.logic.terms import atom


class TestFactStore:
    def test_add_dedup(self):
        fs = FactStore(("p", 2))
        assert fs.add(atom("p", "a", "b"))
        assert not fs.add(atom("p", "a", "b"))
        assert len(fs) == 1

    def test_first_arg_index(self):
        fs = FactStore(("p", 2))
        fs.add(atom("p", "a", 1))
        fs.add(atom("p", "a", 2))
        fs.add(atom("p", "b", 3))
        assert len(fs.candidates(atom("p", "a", "X"))) == 2
        assert len(fs.candidates(atom("p", "X", "Y"))) == 3

    def test_candidates_unknown_key_empty(self):
        fs = FactStore(("p", 1))
        fs.add(atom("p", "a"))
        assert fs.candidates(atom("p", "zzz")) == []

    def test_contains(self):
        fs = FactStore(("p", 1))
        fs.add(atom("p", "a"))
        assert atom("p", "a") in fs
        assert atom("p", "b") not in fs


class TestKnowledgeBase:
    def test_add_program_splits_facts_and_rules(self):
        kb = KnowledgeBase()
        kb.add_program("p(a). p(b). q(X) :- p(X).")
        assert len(kb.facts_for(("p", 1))) == 2
        assert len(kb.rules_for(("q", 1))) == 1
        assert kb.n_facts == 2

    def test_nonground_fact_rejected(self):
        kb = KnowledgeBase()
        with pytest.raises(ValueError):
            kb.add_fact(atom("p", "X"))

    def test_nonground_unit_clause_becomes_rule(self):
        kb = KnowledgeBase()
        kb.add_clause(parse_clause("p(X)."))
        assert len(kb.rules_for(("p", 1))) == 1

    def test_predicates_sorted(self):
        kb = KnowledgeBase()
        kb.add_program("b(1). a(2). c(X) :- a(X).")
        assert kb.predicates() == [("a", 1), ("b", 1), ("c", 1)]

    def test_len_counts_facts_and_rules(self):
        kb = KnowledgeBase()
        kb.add_program("p(a). q(X) :- p(X).")
        assert len(kb) == 2

    def test_copy_independent(self):
        kb = KnowledgeBase()
        kb.add_program("p(a).")
        kb2 = kb.copy()
        kb2.add_fact(atom("p", "b"))
        assert len(kb.facts_for(("p", 1))) == 1
        assert len(kb2.facts_for(("p", 1))) == 2

    def test_stats(self):
        kb = KnowledgeBase()
        kb.add_program("p(a). p(b). q(X) :- p(X).")
        assert kb.stats() == {"predicates": 2, "facts": 2, "rules": 1}

    def test_remove_rule(self):
        kb = KnowledgeBase()
        r = parse_clause("q(X) :- p(X).")
        kb.add_clause(r)
        kb.remove_rule(r)
        assert kb.rules_for(("q", 1)) == []

    def test_fact_dedup_counts(self):
        kb = KnowledgeBase()
        assert kb.add_fact(atom("p", "a"))
        assert not kb.add_fact(atom("p", "a"))
        assert kb.n_facts == 1

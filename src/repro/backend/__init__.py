"""Pluggable execution backends for the parallel strategies.

The master/worker generators in :mod:`repro.parallel` yield syscalls to
whichever :class:`~repro.backend.base.Backend` drives them:

=========  ===============================================  ==============
name       substrate                                        ``seconds``
=========  ===============================================  ==============
``sim``    discrete-event VirtualCluster (deterministic)    virtual time
``local``  real ``multiprocessing`` processes over pipes    wall clock
``mpi``    real MPI communicator via mpi4py                 wall clock
=========  ===============================================  ==============

Use :func:`make_backend` to build one by name, or
:func:`resolve_backend` when accepting either a name or a ready instance
(the pattern every ``run_*`` front-end uses).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Union

from repro.backend.base import (
    Backend,
    BackendError,
    BackendRun,
    BackendTimeoutError,
    BackendUnavailableError,
    ExecutionContext,
    drive,
)
from repro.backend.local import LocalContext, LocalProcessBackend
from repro.backend.sim import SimBackend

__all__ = [
    "Backend",
    "BackendError",
    "BackendRun",
    "BackendTimeoutError",
    "BackendUnavailableError",
    "ExecutionContext",
    "drive",
    "SimBackend",
    "LocalContext",
    "LocalProcessBackend",
    "BACKEND_NAMES",
    "make_backend",
    "resolve_backend",
    "fault_injection_scope",
    "fault_capable_backends",
]

#: names accepted by :func:`make_backend` (and the CLI's ``--backend``).
BACKEND_NAMES = ("sim", "local", "mpi")


def _backend_class(name: str):
    """Registry name -> class, importing lazily (mpi4py stays optional)."""
    if name == "sim":
        return SimBackend
    if name == "local":
        return LocalProcessBackend
    if name == "mpi":
        from repro.backend.mpi import MPIBackend

        return MPIBackend
    raise ValueError(f"unknown backend {name!r}; known: {BACKEND_NAMES}")


def fault_capable_backends() -> tuple[str, ...]:
    """Registry names whose backend class supports fault injection.

    Capability is the class's ``supports_fault_injection`` attribute —
    no name-string matching — so new backends advertise themselves.
    """
    return tuple(
        name for name in BACKEND_NAMES if _backend_class(name).supports_fault_injection
    )


def _require_fault_support(backend: Backend) -> None:
    if not getattr(backend, "supports_fault_injection", False):
        raise BackendUnavailableError(
            f"backend {backend.name!r} does not support fault injection; "
            f"fault-capable backends: {', '.join(fault_capable_backends())}"
        )


def make_backend(
    name: str,
    *,
    network=None,
    cost_model=None,
    record_trace: bool = False,
    timeout: Optional[float] = None,
    start_method: Optional[str] = None,
    fault_plan=None,
) -> Backend:
    """Build a backend by registry name.

    Substrate-specific options are applied where they make sense and
    ignored elsewhere (``network``/``cost_model`` only shape the sim;
    ``timeout``/``start_method`` only the local backend).  A non-empty
    ``fault_plan`` arms fault injection; every current backend supports
    it (a backend advertising ``supports_fault_injection = False`` would
    refuse with an error listing the capable ones).
    """
    if fault_plan is not None and not _backend_class(name).supports_fault_injection:
        raise BackendUnavailableError(
            f"backend {name!r} does not support fault injection; "
            f"fault-capable backends: {', '.join(fault_capable_backends())}"
        )
    if name == "sim":
        from repro.cluster.costmodel import DEFAULT_COST_MODEL
        from repro.cluster.network import FAST_ETHERNET

        return SimBackend(
            network=network if network is not None else FAST_ETHERNET,
            cost_model=cost_model if cost_model is not None else DEFAULT_COST_MODEL,
            record_trace=record_trace,
            fault_plan=fault_plan,
        )
    if name == "local":
        return LocalProcessBackend(
            record_trace=record_trace,
            timeout=timeout,
            start_method=start_method,
            fault_plan=fault_plan,
        )
    if name == "mpi":
        from repro.backend.mpi import MPIBackend

        return MPIBackend(record_trace=record_trace, fault_plan=fault_plan)
    raise ValueError(f"unknown backend {name!r}; known: {BACKEND_NAMES}")


def resolve_backend(
    backend: Union[Backend, str, None],
    *,
    network=None,
    cost_model=None,
    record_trace: bool = False,
    timeout: Optional[float] = None,
    fault_plan=None,
) -> Backend:
    """Accept a Backend instance, a registry name, or None (→ sim)."""
    if backend is None:
        backend = "sim"
    if isinstance(backend, Backend):
        # Caller-owned instances are not mutated here: the run front-ends
        # arm them for the duration of one run via fault_injection_scope.
        return backend
    return make_backend(
        backend,
        network=network,
        cost_model=cost_model,
        record_trace=record_trace,
        timeout=timeout,
        fault_plan=fault_plan,
    )


@contextmanager
def fault_injection_scope(backend: Backend, fault_plan):
    """Arm a backend's fault injection for the duration of one run.

    Backends constructed by name already carry the plan; a caller-owned
    instance is armed here and restored afterwards, so the same instance
    can serve later runs with a different plan (or none).  Conflicting
    plans (instance already armed with a different one) are an error, as
    is a substrate advertising no injection support.
    """
    if fault_plan is None:
        yield backend
        return
    _require_fault_support(backend)
    prev = backend.fault_plan
    if prev is not None and prev != fault_plan:
        raise ValueError(
            "backend instance is already armed with a different fault plan"
        )
    backend.fault_plan = fault_plan
    try:
        yield backend
    finally:
        backend.fault_plan = prev

"""Table 5 — average number of epochs.

"In all cases there is a significant reduction in epochs as we increase
the number of processors" (§5.3): more pipelines per epoch ⇒ more rules
accepted per epoch ⇒ fewer epochs.  Benchmarks a p=8 run (the most
concurrent pipelines).
"""

import pytest

from conftest import PS, SEED, one_shot
from repro.datasets import make_dataset
from repro.experiments.tables import table5_epochs
from repro.parallel import run_p2mdie


def test_table5(benchmark, matrix, table_sink):
    table_sink("table5_epochs", one_shot(benchmark, table5_epochs, matrix, ps=PS))
    for ds in {r.dataset for r in matrix.records}:
        seq_epochs = matrix.mean("epochs", ds, None, 1)
        for width in (None, 10):
            e2 = matrix.mean("epochs", ds, width, 2)
            e8 = matrix.mean("epochs", ds, width, 8)
            assert e8 <= e2, f"{ds} w={width}: epochs grew with p"
            assert e8 < seq_epochs, f"{ds} w={width}: no epoch reduction vs sequential"


def test_bench_p8_run(benchmark, scale):
    ds = make_dataset("pyrimidines", seed=SEED, scale=scale)
    res = one_shot(
        benchmark, run_p2mdie, ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=8, width=10, seed=SEED
    )
    assert res.epochs >= 1

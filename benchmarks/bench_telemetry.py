"""Telemetry overhead benchmark: tracing must be (nearly) free.

The unified telemetry layer promises "off-by-default-cheap, on-by-
default-useful": a disabled tracer is a no-op, and an *enabled* activity
trace may not perturb learning.  This benchmark runs P²-MDIE on the
local multiprocessing backend twice — telemetry off, telemetry on — and
checks both halves of that promise:

* **parity** (always asserted): theories and per-epoch logs are
  bit-identical with tracing on vs off, and the traced run actually
  produced spans;
* **overhead** (gated only outside smoke mode): the traced run's best
  wall-clock is within 5% of the untraced run's.

Knobs:

* ``REPRO_TELEMETRY_DATASET`` — dataset name (default ``carcinogenesis``);
* ``REPRO_SCALE``             — ``small`` (default) or ``paper``;
* ``REPRO_SEED``              — RNG seed (default 0);
* ``REPRO_BENCH_SMOKE=1``     — CI smoke mode: reduced example counts,
  single repetition, overhead reported but not gated.

Writes ``BENCH_telemetry.json`` at the **repo root** (all ``BENCH_*``
artifacts live there so the perf trajectory is trackable PR-over-PR).

Standalone: ``PYTHONPATH=src python benchmarks/bench_telemetry.py``.
Under the bench suite it runs as an ordinary test.
"""

from __future__ import annotations

import os
import pathlib
import time

DATASET = os.environ.get("REPRO_TELEMETRY_DATASET", "carcinogenesis")
SCALE = os.environ.get("REPRO_SCALE", "small")
SEED = int(os.environ.get("REPRO_SEED", "0"))
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = ROOT / "BENCH_telemetry.json"

P = 4
REPS = 1 if SMOKE else 3
MAX_OVERHEAD = 0.05  # traced wall-clock may exceed untraced by at most 5%


def _dataset_kwargs() -> dict:
    if SMOKE:
        if DATASET == "carcinogenesis":
            return dict(seed=SEED, n_pos=24, n_neg=20)
        return dict(seed=SEED, n_pos=24, n_neg=24)
    return dict(seed=SEED, scale=SCALE)


def _run_once(ds, record_trace: bool) -> dict:
    from repro.parallel import run_p2mdie

    t0 = time.perf_counter()
    res = run_p2mdie(
        ds.kb,
        ds.pos,
        ds.neg,
        ds.modes,
        ds.config,
        p=P,
        seed=SEED,
        backend="local",
        record_trace=record_trace,
    )
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "theory": sorted(str(c) for c in res.theory),
        "log": [
            (e.epoch, e.bag_size, sorted(str(c) for c in e.accepted), e.pos_covered)
            for e in res.epoch_logs
        ],
        "epochs": res.epochs,
        "uncovered": res.uncovered,
        "trace_intervals": len(res.trace),
    }


def run_benchmark() -> dict:
    from repro.datasets import make_dataset

    ds = make_dataset(DATASET, **_dataset_kwargs())
    runs = {"off": [], "on": []}
    # Interleave repetitions so machine drift hits both variants alike.
    for _ in range(REPS):
        runs["off"].append(_run_once(ds, record_trace=False))
        runs["on"].append(_run_once(ds, record_trace=True))
    off, on = runs["off"][0], runs["on"][0]
    best_off = min(r["wall_s"] for r in runs["off"])
    best_on = min(r["wall_s"] for r in runs["on"])
    report = {
        "dataset": DATASET,
        "scale": SCALE,
        "seed": SEED,
        "smoke": SMOKE,
        "p": P,
        "reps": REPS,
        "n_pos": len(ds.pos),
        "n_neg": len(ds.neg),
        "wall_s": {
            "off": round(best_off, 4),
            "on": round(best_on, 4),
            "off_all": [round(r["wall_s"], 4) for r in runs["off"]],
            "on_all": [round(r["wall_s"], 4) for r in runs["on"]],
        },
        "overhead": round(best_on / best_off - 1.0, 4) if best_off else 0.0,
        "trace_intervals": on["trace_intervals"],
        "epochs": on["epochs"],
        "theory_size": len(on["theory"]),
        "parity": all(
            a["theory"] == off["theory"]
            and a["log"] == off["log"]
            and a["epochs"] == off["epochs"]
            and a["uncovered"] == off["uncovered"]
            for a in runs["off"] + runs["on"]
        ),
    }
    return report


def render(report: dict) -> str:
    w = report["wall_s"]
    return "\n".join(
        [
            f"Telemetry overhead — P²-MDIE on {report['dataset']} "
            f"({report['n_pos']}+/{report['n_neg']}-, p={report['p']}, local backend, "
            f"seed {report['seed']}{', smoke' if report['smoke'] else ''})",
            f"  tracing off: {w['off']:.3f}s   tracing on: {w['on']:.3f}s "
            f"(best of {report['reps']})",
            f"  overhead: {100 * report['overhead']:+.2f}%   "
            f"spans recorded: {report['trace_intervals']}",
            f"  parity: {'identical theories+logs' if report['parity'] else 'MISMATCH'}",
        ]
    )


def write_report(report: dict, duration_s: float) -> pathlib.Path:
    from bench_meta import write_bench_json

    return write_bench_json(OUT_PATH, report, SMOKE, duration_s=duration_s)


def check(report: dict) -> None:
    assert report["parity"], "telemetry changed learning results: theories/logs differ"
    assert report["trace_intervals"] > 0, "traced run produced no activity intervals"
    if not SMOKE:
        assert report["overhead"] <= MAX_OVERHEAD, (
            f"tracing overhead {100 * report['overhead']:.2f}% exceeds "
            f"{100 * MAX_OVERHEAD:.0f}% budget: {report['wall_s']}"
        )


def test_telemetry_overhead():
    t0 = time.perf_counter()
    report = run_benchmark()
    print("\n" + render(report) + "\n")
    write_report(report, time.perf_counter() - t0)
    check(report)


if __name__ == "__main__":
    t0 = time.perf_counter()
    report = run_benchmark()
    print(render(report))
    path = write_report(report, time.perf_counter() - t0)
    print(f"wrote {path}")
    check(report)

"""Deterministic discrete-event scheduler for the virtual cluster.

Conservative PDES over generator processes.  Invariants:

* Every process owns a virtual clock that only moves forward.
* A message sent when the sender's clock is ``t`` arrives at
  ``t + busy(nbytes) + latency`` — strictly after ``t``.
* The scheduler always advances the process with the globally smallest
  *next-action time*: its clock if runnable, or the earliest matching
  mailbox arrival if blocked on a receive.  Since any not-yet-sent message
  must be sent at or after its sender's current clock (and hence arrive
  strictly later), delivering the currently-earliest matching message to
  the globally minimal process can never violate causality.

Determinism: ties break on (time, rank, mailbox sequence number); no host
clocks or hash-order iteration are involved anywhere.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.message import Message, payload_nbytes
from repro.cluster.network import FAST_ETHERNET, NetworkModel
from repro.cluster.process import (
    BcastOp,
    ComputeInterval,
    ComputeOp,
    ProcContext,
    RecvOp,
    SendOp,
    SimProcess,
)
from repro.fault.plan import FaultPlan, FaultRecord

__all__ = ["Scheduler", "DeadlockError", "CommStats"]


class DeadlockError(RuntimeError):
    """All processes blocked on receive with no messages in flight."""


@dataclass
class CommStats:
    """Aggregate communication accounting for one run (feeds Table 4)."""

    messages: int = 0
    bytes_total: int = 0
    bytes_by_tag: dict = field(default_factory=dict)
    bytes_by_link: dict = field(default_factory=dict)  # (src, dst) -> bytes

    def record(self, msg: Message) -> None:
        self.messages += 1
        self.bytes_total += msg.nbytes
        self.bytes_by_tag[msg.tag] = self.bytes_by_tag.get(msg.tag, 0) + msg.nbytes
        key = (msg.src, msg.dst)
        self.bytes_by_link[key] = self.bytes_by_link.get(key, 0) + msg.nbytes

    def merge(self, other: "CommStats") -> None:
        """Fold another rank's accounting into this one (real backends
        collect per-rank stats and merge them into the global view)."""
        self.messages += other.messages
        self.bytes_total += other.bytes_total
        for tag, b in other.bytes_by_tag.items():
            self.bytes_by_tag[tag] = self.bytes_by_tag.get(tag, 0) + b
        for link, b in other.bytes_by_link.items():
            self.bytes_by_link[link] = self.bytes_by_link.get(link, 0) + b

    @property
    def mbytes_total(self) -> float:
        return self.bytes_total / (1024.0 * 1024.0)


class _ProcState:
    __slots__ = (
        "proc",
        "gen",
        "clock",
        "blocked_on",
        "deadline",
        "done",
        "crashed",
        "mailbox",
        "recv_count",
        "sent_count",
    )

    def __init__(self, proc: SimProcess, gen):
        self.proc = proc
        self.gen = gen
        self.clock = 0.0
        self.blocked_on: Optional[RecvOp] = None
        #: absolute virtual deadline of a pending timed receive.
        self.deadline: Optional[float] = None
        self.done = False
        self.crashed = False
        # heap of (arrival_time, seq, Message)
        self.mailbox: list = []
        #: messages delivered to the generator, for crash triggers.
        self.recv_count = 0
        #: per-destination send counter, for message-loss triggers.
        self.sent_count: dict[int, int] = {}


class Scheduler:
    """Runs a set of :class:`SimProcess` instances to completion."""

    def __init__(
        self,
        procs: list[SimProcess],
        network: NetworkModel = FAST_ETHERNET,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        record_trace: bool = False,
        max_events: int = 50_000_000,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if len({p.rank for p in procs}) != len(procs):
            raise ValueError("duplicate ranks")
        self.network = network
        self.cost_model = cost_model
        self.stats = CommStats()
        self.trace: list[ComputeInterval] = []
        self.record_trace = record_trace
        self.max_events = max_events
        self.fault_plan = fault_plan
        #: injected events as they fire (crash/straggle/drop), in time order.
        self.fault_log: list[FaultRecord] = []
        self._crash = {}  # rank -> WorkerCrash (not yet fired)
        self._straggle = {}  # rank -> Straggler
        self._loss = {}  # src -> {dst -> frozenset of 1-based drop indices}
        if fault_plan is not None:
            self._crash = {ev.rank: ev for ev in fault_plan.crashes}
            self._straggle = {ev.rank: ev for ev in fault_plan.stragglers}
            self._loss = {
                src: fault_plan.losses_for(src)
                for src in {ev.src for ev in fault_plan.losses}
            }
        self._seq = 0
        self._states: dict[int, _ProcState] = {}
        self.n_procs = len(procs)
        for p in sorted(procs, key=lambda p: p.rank):
            ctx = ProcContext(p.rank, self)
            self._states[p.rank] = _ProcState(p, p.run(ctx))

    # -- introspection used by ProcContext --------------------------------------
    def clock_of(self, rank: int) -> float:
        return self._states[rank].clock

    @property
    def makespan(self) -> float:
        """Completion time of the whole run (max clock)."""
        return max(s.clock for s in self._states.values())

    def crashed_ranks(self) -> list[int]:
        """Ranks killed by injected crashes (their final state is stale)."""
        return sorted(r for r, st in self._states.items() if st.crashed)

    # -- core loop -----------------------------------------------------------------
    def run(self) -> float:
        """Execute all processes; returns the makespan in virtual seconds."""
        events = 0
        # Prime every generator to its first yield.
        for rank in sorted(self._states):
            self._step(rank, first=True)
        while True:
            rank, when = self._pick_next()
            if rank is None:
                break
            events += 1
            if events > self.max_events:  # pragma: no cover - runaway guard
                raise RuntimeError("scheduler exceeded max_events; runaway simulation?")
            self._step(rank, wake_time=when)
        return self.makespan

    def _pick_next(self) -> tuple[Optional[int], float]:
        """Next process to advance: smallest next-action time, tie on rank.

        A blocked process's next action is the earliest of: its earliest
        matching arrival, its receive deadline (timed receives resume
        with ``None``), and its pending ``at_time`` crash.
        """
        best_rank: Optional[int] = None
        best_time = float("inf")
        any_alive = False
        for rank in sorted(self._states):
            st = self._states[rank]
            if st.done:
                continue
            any_alive = True
            t: Optional[float] = None
            if st.blocked_on is None:
                t = st.clock  # runnable (shouldn't happen between steps)
            else:
                arr = self._earliest_match(st)
                if arr is not None:
                    t = max(st.clock, arr)
                if st.deadline is not None:
                    t = st.deadline if t is None else min(t, st.deadline)
            crash = self._crash.get(rank)
            if crash is not None and crash.at_time is not None:
                tc = max(st.clock, crash.at_time)
                t = tc if t is None else min(t, tc)
            if t is None:
                continue
            if t < best_time:
                best_time = t
                best_rank = rank
        if best_rank is None:
            if any_alive:
                raise DeadlockError(
                    "all live processes blocked on receive with empty mailboxes"
                )
            return None, 0.0
        return best_rank, best_time

    def _earliest_match(self, st: _ProcState) -> Optional[float]:
        spec = st.blocked_on
        best = None
        for arrival, seq, msg in st.mailbox:
            if spec.matches(msg) and (best is None or (arrival, seq) < best[:2]):
                best = (arrival, seq, msg)
        return best[0] if best else None

    def _pop_match(self, st: _ProcState) -> Message:
        spec = st.blocked_on
        best_i = -1
        best_key = None
        for i, (arrival, seq, msg) in enumerate(st.mailbox):
            if spec.matches(msg) and (best_key is None or (arrival, seq) < best_key):
                best_key = (arrival, seq)
                best_i = i
        assert best_i >= 0
        return st.mailbox.pop(best_i)[2]

    def _kill(self, st: _ProcState, when: float, reason: str) -> None:
        """Crash one process: close its generator, drop its mailbox."""
        st.clock = max(st.clock, when)
        st.done = True
        st.crashed = True
        st.blocked_on = None
        st.deadline = None
        st.mailbox.clear()
        st.gen.close()
        self._crash.pop(st.proc.rank, None)
        self.fault_log.append(
            FaultRecord(kind="crash", rank=st.proc.rank, time=st.clock, detail=reason)
        )

    def _crash_time(self, rank: int) -> Optional[float]:
        crash = self._crash.get(rank)
        if crash is not None and crash.at_time is not None:
            return crash.at_time
        return None

    def _step(self, rank: int, first: bool = False, wake_time: Optional[float] = None) -> None:
        """Advance one process until it blocks on recv, finishes or dies."""
        st = self._states[rank]
        send_value = None
        if not first and st.blocked_on is not None:
            # Woken while blocked: an at_time crash, a matching message,
            # or a receive deadline — in that priority order at the wake
            # instant.
            tc = self._crash_time(rank)
            arr = self._earliest_match(st)
            if tc is not None and (arr is None or tc <= max(st.clock, arr)) and (
                st.deadline is None or tc <= st.deadline
            ):
                self._kill(st, tc, "at_time (blocked)")
                return
            if arr is not None and (st.deadline is None or max(st.clock, arr) <= st.deadline):
                msg = self._pop_match(st)
                st.clock = max(st.clock, msg.arrival_time)
                st.blocked_on = None
                st.deadline = None
                crash = self._crash.get(rank)
                if crash is not None and crash.on_recv is not None and (
                    crash.tag is None or crash.tag == msg.tag
                ):
                    st.recv_count += 1
                    if st.recv_count >= crash.on_recv:
                        self._kill(st, st.clock, f"on_recv={crash.on_recv} tag={crash.tag}")
                        return
                send_value = msg
            else:
                # Timed receive expired with no matching message.
                st.clock = max(st.clock, st.deadline)
                st.blocked_on = None
                st.deadline = None
                send_value = None
        straggler = self._straggle.get(rank)
        while True:
            tc = self._crash_time(rank)
            if tc is not None and st.clock >= tc:
                self._kill(st, tc, "at_time")
                return
            try:
                op = st.gen.send(send_value)
            except StopIteration:
                st.done = True
                return
            send_value = None
            if isinstance(op, ComputeOp):
                dt = self.cost_model.seconds_for_ops_at(rank, op.ops)
                if straggler is not None and st.clock >= straggler.after_time:
                    dt *= straggler.factor
                if tc is not None and st.clock + dt >= tc:
                    # The crash interrupts the compute interval.
                    if self.record_trace:
                        self.trace.append(ComputeInterval(rank, st.clock, tc, op.label))
                    self._kill(st, tc, "at_time (mid-compute)")
                    return
                if self.record_trace:
                    self.trace.append(
                        ComputeInterval(rank, st.clock, st.clock + dt, op.label)
                    )
                st.clock += dt
            elif isinstance(op, SendOp):
                self._send(st, op.dst, op.payload, op.tag)
            elif isinstance(op, BcastOp):
                for dst in op.dsts:
                    self._send(st, dst, op.payload, op.tag)
            elif isinstance(op, RecvOp):
                st.blocked_on = op
                st.deadline = None if op.timeout is None else st.clock + op.timeout
                return
            else:  # pragma: no cover - defensive
                raise TypeError(f"process {rank} yielded non-syscall {op!r}")

    def _send(self, st: _ProcState, dst: int, payload: object, tag: str) -> None:
        if dst not in self._states:
            raise ValueError(f"send to unknown rank {dst}")
        nbytes = payload_nbytes(payload)
        busy = self.network.sender_busy_time(nbytes)
        st.clock += busy
        arrival = st.clock + self.network.arrival_delay()
        self._seq += 1
        msg = Message(
            src=st.proc.rank,
            dst=dst,
            tag=tag,
            payload=payload,
            nbytes=nbytes,
            send_time=st.clock,
            arrival_time=arrival,
            seq=self._seq,
        )
        # The sender is always charged (it cannot know the network will
        # drop the message); injected losses only suppress delivery.
        self.stats.record(msg)
        src_rank = st.proc.rank
        drops = self._loss.get(src_rank)
        if drops is not None:
            n = st.sent_count.get(dst, 0) + 1
            st.sent_count[dst] = n
            if n in drops.get(dst, ()):
                self.fault_log.append(
                    FaultRecord(kind="drop", rank=src_rank, time=st.clock, detail=f"->{dst} #{n} tag={tag}")
                )
                return
        if self._states[dst].done:
            # Messages to a crashed rank silently vanish.
            return
        self._states[dst].mailbox.append((arrival, self._seq, msg))

"""Open-loop load generation against a live service endpoint.

The service benchmarks measure *capability* (how fast can a batch go);
this module measures *behaviour under traffic*: requests are fired on a
precomputed arrival schedule — independent of how fast responses come
back — and per-request latency is taken from the **scheduled** send
time, so a server that falls behind accumulates visible queueing delay
instead of silently slowing the generator down (the classic coordinated-
omission trap in closed-loop load tests).

Three arrival patterns, all deterministic given the seed:

* ``uniform`` — constant gaps at the target rate (the baseline).
* ``burst`` — the same average rate delivered in back-to-back groups
  with idle gaps between them: how flash crowds actually arrive.
* ``heavytail`` — Pareto inter-arrival gaps (finite mean, unbounded
  tail) scaled to the target rate: long quiet stretches punctuated by
  pile-ups, the shape real query traffic takes.

Reported latencies are percentile-based (p50/p95/p99) because service
latency distributions are skewed — a mean hides exactly the tail the
north star ("serve the millions") cares about.  Streamed queries report
two distributions: time to *first* shard frame and time to the *end*
frame, which is the streaming tier's headline trade visible per request.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional, Sequence

# The shared telemetry histogram is the one percentile implementation in
# the repo; sample-tracking mode keeps the reported numbers exact (the
# bucket bounds only matter for Prometheus exposition).
from repro.obs.metrics import Histogram, percentile

__all__ = [
    "arrival_schedule",
    "latency_stats",
    "percentile",
    "run_loadgen",
    "PATTERNS",
]

PATTERNS = ("uniform", "burst", "heavytail")


def latency_stats(samples: Sequence[float]) -> dict:
    """p50/p95/p99 + bounds of a latency sample, in milliseconds.

    Computed through :class:`repro.obs.metrics.Histogram` in exact
    (sample-tracking) mode — the same type the service tier exposes over
    ``--metrics-port`` — so loadgen, chaos and server dashboards can
    never disagree about what a percentile means.
    """
    hist = Histogram(track_samples=True)
    hist.observe_many(1e3 * s for s in samples)
    if hist.count == 0:
        raise ValueError("no samples")
    return {
        "n": hist.count,
        "p50_ms": round(hist.percentile(50), 3),
        "p95_ms": round(hist.percentile(95), 3),
        "p99_ms": round(hist.percentile(99), 3),
        "mean_ms": round(hist.mean, 3),
        "max_ms": round(hist.max, 3),
    }


def arrival_schedule(
    n: int,
    rate: float,
    pattern: str = "uniform",
    seed: int = 0,
    burst_size: int = 8,
    pareto_alpha: float = 1.5,
) -> list[float]:
    """``n`` send offsets (seconds from start), averaging ``rate`` req/s.

    Deterministic given ``seed``.  ``burst`` delivers ``burst_size``
    requests back-to-back, then stays idle until the next group keeps
    the long-run average at ``rate``; ``heavytail`` draws Pareto gaps
    with shape ``pareto_alpha`` (the smaller, the heavier the tail)
    rescaled so the mean gap is exactly ``1 / rate``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if rate <= 0:
        raise ValueError("rate must be > 0")
    if pattern not in PATTERNS:
        raise ValueError(f"unknown pattern {pattern!r}; known: {PATTERNS}")
    gap = 1.0 / rate
    if pattern == "uniform":
        return [i * gap for i in range(n)]
    if pattern == "burst":
        if burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        return [(i // burst_size) * (gap * burst_size) for i in range(n)]
    # heavytail: Pareto(alpha) has mean alpha/(alpha-1) (for alpha > 1);
    # dividing it out makes the schedule's average rate match `rate`
    # exactly in expectation whatever the shape parameter.
    rng = random.Random(seed)
    mean = pareto_alpha / (pareto_alpha - 1.0) if pareto_alpha > 1.0 else None
    offsets = []
    t = 0.0
    for _ in range(n):
        offsets.append(t)
        draw = rng.paretovariate(pareto_alpha)
        t += gap * (draw / mean if mean is not None else draw)
    return offsets


def run_loadgen(
    make_client: Callable[[], object],
    theory: str,
    examples: Sequence[str],
    n_requests: int = 50,
    rate: float = 20.0,
    pattern: str = "uniform",
    seed: int = 0,
    shards: Optional[int] = None,
    stream: bool = False,
    concurrency: int = 8,
    burst_size: int = 8,
    deadline_ms: Optional[float] = None,
) -> dict:
    """Drive ``n_requests`` queries on an arrival schedule; report percentiles.

    ``make_client`` builds one connected client per worker (sockets are
    not shareable across threads); each request is a full batched query
    of ``examples`` against ``theory``.  With ``stream=True`` requests
    use the streaming protocol and the report carries both first-frame
    and end-frame latency distributions.  ``deadline_ms`` attaches a
    per-request deadline the server enforces end-to-end; requests the
    server rejects (``deadline_exceeded``, shed load the client's
    retries did not absorb) count as errors in the report.

    Latency is measured from each request's *scheduled* send time — a
    backlogged server (or exhausted worker pool) shows up as tail
    latency, never as a quietly stretched test.
    """
    schedule = arrival_schedule(
        n_requests, rate, pattern, seed=seed, burst_size=burst_size
    )
    local = threading.local()
    lock = threading.Lock()
    totals: list[float] = []
    firsts: list[float] = []
    errors: list[str] = []
    clients: list = []

    def client():
        if not hasattr(local, "client"):
            local.client = make_client()
            with lock:
                clients.append(local.client)
        return local.client

    t0 = time.perf_counter() + 0.05  # grace for worker startup

    def fire(offset: float) -> None:
        delay = (t0 + offset) - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        start = t0 + offset  # scheduled time: queueing delay counts
        # Only attached when set, so client objects without deadline
        # support (fakes, older servers' clients) keep working.
        deadline_kw = {} if deadline_ms is None else {"deadline_ms": deadline_ms}
        try:
            c = client()
            if stream:
                first = None
                for frame in c.query_stream(
                    theory, list(examples), shards=shards, **deadline_kw
                ):
                    if first is None:
                        first = time.perf_counter() - start
                with lock:
                    firsts.append(first)
                    totals.append(time.perf_counter() - start)
            else:
                resp = c.query(
                    theory, list(examples), shards=shards, **deadline_kw
                )
                if not resp.get("ok", True):
                    raise RuntimeError(
                        f"{resp.get('code', 'error')}: {resp.get('error')}"
                    )
                with lock:
                    totals.append(time.perf_counter() - start)
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            with lock:
                errors.append(f"{type(exc).__name__}: {exc}")

    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(
        max_workers=max(1, concurrency), thread_name_prefix="repro-loadgen"
    ) as pool:
        futures = [pool.submit(fire, off) for off in schedule]
        for f in futures:
            f.result()
    for c in clients:
        try:
            c.close()
        except Exception:  # noqa: BLE001 - best-effort cleanup
            pass
    wall = time.perf_counter() - t0
    report = {
        "pattern": pattern,
        "rate": rate,
        "n_requests": n_requests,
        "batch": len(examples),
        "stream": stream,
        "shards": shards or 0,
        "wall_s": round(wall, 4),
        "achieved_rps": round(len(totals) / wall, 3) if wall > 0 else 0.0,
        "errors": len(errors),
        "error_samples": errors[:3],
    }
    if totals:
        report["latency"] = latency_stats(totals)
    if firsts:
        report["first_frame"] = latency_stats(firsts)
    return report

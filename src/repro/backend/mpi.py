"""MPIBackend: run the generators on a real MPI communicator (mpi4py).

Rebases :class:`~repro.cluster.mpi_backend.MPIContext` onto the backend
protocol.  MPI execution is SPMD: *every* rank of an ``mpiexec`` launch
calls :meth:`MPIBackend.run` with the same process list; each rank drives
only its own generator, then final process states and communication
statistics are gathered to rank 0, which assembles the complete
:class:`~repro.backend.base.BackendRun`.  Non-root ranks receive a run
carrying only their own artifacts (``procs`` empty) — harness code should
act on the result only where ``backend.is_root`` is true.

mpi4py is imported lazily; constructing the backend on a host without it
raises :class:`~repro.backend.base.BackendUnavailableError` so callers can
fall back cleanly.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.backend.base import Backend, BackendRun, BackendUnavailableError
from repro.cluster.message import Message, payload_nbytes
from repro.cluster.process import BcastOp, ComputeInterval, ComputeOp, RecvOp, SendOp, SimProcess
from repro.cluster.scheduler import CommStats

__all__ = ["MPIBackend"]


class _AccountingMPIContext:
    """Wrap MPIContext.execute with CommStats accounting and wall timing."""

    def __init__(self, inner, record_trace: bool):
        self._inner = inner
        self.rank = inner.rank
        self.n_procs = inner.n_procs
        self.record_trace = record_trace
        self.stats = CommStats()
        self.trace: list[ComputeInterval] = []
        self._seq = 0
        self._t0 = time.perf_counter()
        self._last_mark = 0.0

    # syscall constructors delegate to the rebased MPIContext
    def send(self, dst, payload, tag):
        return self._inner.send(dst, payload, tag)

    def bcast(self, payload, tag, dsts=None):
        return self._inner.bcast(payload, tag, dsts)

    def recv(self, src=None, tag=None):
        return self._inner.recv(src, tag)

    def compute(self, ops, label="compute"):
        return self._inner.compute(ops, label)

    @property
    def clock(self) -> float:
        return time.perf_counter() - self._t0

    def _account(self, dst: int, payload: object, tag: str) -> None:
        self._seq += 1
        now = self.clock
        self.stats.record(
            Message(
                src=self.rank,
                dst=dst,
                tag=tag,
                payload=payload,
                nbytes=payload_nbytes(payload),
                send_time=now,
                arrival_time=now,
                seq=self._seq,
            )
        )

    def execute(self, op):
        if isinstance(op, SendOp):
            self._account(op.dst, op.payload, op.tag)
        elif isinstance(op, BcastOp):
            for dst in op.dsts:
                self._account(dst, op.payload, op.tag)
        elif isinstance(op, ComputeOp):
            now = self.clock
            if self.record_trace:
                self.trace.append(ComputeInterval(self.rank, self._last_mark, now, op.label))
            self._last_mark = now
        return self._inner.execute(op)


class MPIBackend(Backend):
    """Real distributed-memory execution through mpi4py."""

    name = "mpi"

    def __init__(self, comm=None, record_trace: bool = False):
        from repro.cluster.mpi_backend import mpi_available

        if comm is None and not mpi_available():
            raise BackendUnavailableError(
                "mpi4py is not installed; install it (and launch under mpiexec) "
                "to use the 'mpi' backend, or use 'sim'/'local'"
            )
        self._comm = comm
        self.record_trace = record_trace

    @property
    def is_root(self) -> bool:
        return self._resolved_comm().Get_rank() == 0

    def _resolved_comm(self):
        if self._comm is None:
            from mpi4py import MPI

            self._comm = MPI.COMM_WORLD
        return self._comm

    def run(self, procs: Sequence[SimProcess]) -> BackendRun:
        from repro.backend.base import drive
        from repro.cluster.mpi_backend import MPIContext

        comm = self._resolved_comm()
        ordered = sorted(procs, key=lambda p: p.rank)
        if [p.rank for p in ordered] != list(range(len(ordered))):
            raise ValueError(
                f"ranks must be contiguous 0..{len(ordered) - 1}, "
                f"got {[p.rank for p in ordered]}"
            )
        if len(ordered) != comm.Get_size():
            raise ValueError(
                f"{len(ordered)} ranks requested but communicator has size "
                f"{comm.Get_size()}; launch with a matching -n"
            )
        ctx = _AccountingMPIContext(MPIContext(comm), record_trace=self.record_trace)
        proc = ordered[ctx.rank]
        t0 = time.perf_counter()
        drive(proc, ctx)
        elapsed = time.perf_counter() - t0

        gathered = comm.gather((proc, ctx.stats, elapsed, ctx.trace), root=0)
        # Every SPMD rank returns through the same front-end code, which
        # reads run artifacts from the rank-0 process — so broadcast rank
        # 0's final state to everyone.
        root_proc = comm.bcast(gathered[0][0] if ctx.rank == 0 else None, root=0)
        if ctx.rank != 0:
            return BackendRun(
                seconds=elapsed,
                comm=ctx.stats,
                clocks=[elapsed],
                trace=ctx.trace,
                procs=[root_proc],
            )
        comm_stats = CommStats()
        clocks: list[float] = []
        trace: list[ComputeInterval] = []
        final_procs: list[SimProcess] = []
        for p, stats, dt, rtrace in gathered:
            final_procs.append(p)
            clocks.append(dt)
            trace.extend(rtrace)
            comm_stats.merge(stats)
        trace.sort(key=lambda iv: (iv.start, iv.rank))
        return BackendRun(
            seconds=max(clocks) if clocks else 0.0,
            comm=comm_stats,
            clocks=clocks,
            trace=trace,
            procs=final_procs,
        )

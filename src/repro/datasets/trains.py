"""Michalski's east/west trains — the classic ILP toy problem.

Used by the related work the paper compares against (Matsui et al. evaluate
on "the trains dataset [21]") and as this library's quickstart example.
Each train has 2-5 cars with shape/length/roof/wheels/load attributes; a
train is eastbound iff it has a short closed car (the classic target), with
optional label noise.
"""

from __future__ import annotations

from repro.datasets.base import Dataset, register_dataset
from repro.ilp.config import ILPConfig
from repro.ilp.modes import ModeSet
from repro.logic.knowledge import KnowledgeBase
from repro.logic.terms import atom
from repro.util.rng import make_rng

__all__ = ["make_trains"]

_CAR_SHAPES = ("rectangle", "bucket", "ellipse", "hexagon", "u_shaped")
_LOAD_SHAPES = ("circle", "triangle", "rectangle", "diamond")
_ROOFS = ("none", "flat", "peaked", "jagged")


@register_dataset("trains")
def make_trains(seed: int = 0, scale: str = "small", n_trains: int | None = None, label_noise: float = 0.0) -> Dataset:
    """Generate an east/west trains problem.

    ``scale="small"`` ⇒ 24 trains, ``"paper"`` ⇒ 120 (the trains problem is
    not in Table 1; "paper" just means a bigger instance).
    """
    if n_trains is None:
        n_trains = 24 if scale == "small" else 120
    rng = make_rng(seed, "trains")
    kb = KnowledgeBase()
    pos, neg = [], []

    for t in range(n_trains):
        train = f"t{t}"
        n_cars = rng.randint(2, 5)
        eastbound = False
        for c in range(n_cars):
            car = f"c{t}_{c}"
            kb.add_fact(atom("has_car", train, car))
            shape = rng.choice(_CAR_SHAPES)
            length = rng.choice(("short", "long"))
            roof = rng.choice(_ROOFS)
            wheels = rng.choice((2, 3))
            load_shape = rng.choice(_LOAD_SHAPES)
            load_count = rng.randint(0, 3)
            kb.add_fact(atom("shape", car, shape))
            kb.add_fact(atom(length, car))
            kb.add_fact(atom("roof", car, roof))
            kb.add_fact(atom("open_car" if roof == "none" else "closed", car))
            kb.add_fact(atom("wheels", car, wheels))
            kb.add_fact(atom("load", car, load_shape, load_count))
            if length == "short" and roof != "none":
                eastbound = True
        if label_noise > 0 and rng.random() < label_noise:
            eastbound = not eastbound
        (pos if eastbound else neg).append(atom("eastbound", train))

    modes = ModeSet(
        [
            "modeh(1, eastbound(+train))",
            "modeb(*, has_car(+train, -car))",
            "modeb(1, short(+car))",
            "modeb(1, long(+car))",
            "modeb(1, closed(+car))",
            "modeb(1, open_car(+car))",
            "modeb(1, shape(+car, #carshape))",
            "modeb(1, roof(+car, #rooftype))",
            "modeb(1, wheels(+car, #int))",
            "modeb(1, load(+car, #loadshape, #int))",
        ]
    )
    config = ILPConfig(
        max_clause_length=3,
        var_depth=2,
        recall=10,
        noise=max(0, int(label_noise * n_trains * 0.5)),
        min_pos=2,
        max_nodes=300,
        pipeline_width=10,
    )
    return Dataset(
        name="trains",
        kb=kb,
        pos=pos,
        neg=neg,
        modes=modes,
        config=config,
        target_description="eastbound(T) :- has_car(T, C), short(C), closed(C).",
    )

"""Ablation — search strategy and query-transformation knobs.

Two sequential-efficiency levers the paper's introduction cites as
orthogonal, composable improvements ("the speedup techniques proposed for
sequential execution are still usable in a parallel setting"):

* the ``learn_rule`` queue discipline (April's breadth-first default vs
  best-first vs beam);
* body-literal reordering before coverage testing (the "simple
  transformations" line of work, refs [2, 8]).

Both are measured inside full P²-MDIE runs, demonstrating that the
sequential levers indeed compose with the parallel algorithm.
"""

import pytest

from conftest import SEED, one_shot
from repro.datasets import make_dataset
from repro.ilp import accuracy, mdie
from repro.logic import Engine
from repro.parallel import run_p2mdie
from repro.util.fmt import fmt_float, fmt_int, render_table

STRATEGIES = ("bfs", "best_first", "beam")


@pytest.fixture(scope="module")
def runs(scale):
    ds = make_dataset("carcinogenesis", seed=SEED, scale=scale)
    eng = Engine(ds.kb, ds.config.engine_budget())
    out = {}
    for strat in STRATEGIES:
        cfg = ds.config.replace(search_strategy=strat)
        seq = mdie(ds.kb, ds.pos, ds.neg, ds.modes, cfg, seed=SEED)
        par = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, cfg, p=4, width=10, seed=SEED)
        out[(strat, False)] = (seq, par, accuracy(eng, par.theory, ds.pos, ds.neg))
    cfg = ds.config.replace(reorder_body=True)
    seq = mdie(ds.kb, ds.pos, ds.neg, ds.modes, cfg, seed=SEED)
    par = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, cfg, p=4, width=10, seed=SEED)
    out[("bfs", True)] = (seq, par, accuracy(eng, par.theory, ds.pos, ds.neg))
    return out


def test_ablation_search(benchmark, runs, table_sink):
    one_shot(benchmark, lambda: None)  # timing lives in the module fixture
    rows = []
    for (strat, reorder), (seq, par, acc) in runs.items():
        rows.append(
            [
                strat + (" +reorder" if reorder else ""),
                fmt_int(seq.ops),
                fmt_float(par.seconds, 1),
                par.epochs,
                len(par.theory),
                fmt_float(acc, 1),
            ]
        )
    table_sink(
        "ablation_search",
        render_table(
            ["strategy", "seq engine-ops", "p2 vtime(s)", "epochs", "rules", "train acc %"],
            rows,
            title="Ablation: search strategy / literal reordering inside p2-mdie (p=4, W=10)",
        ),
    )
    # Reordering must not change learning outcomes, only reduce work.
    base_seq, base_par, base_acc = runs[("bfs", False)]
    re_seq, re_par, re_acc = runs[("bfs", True)]
    assert list(re_par.theory) == list(base_par.theory)
    assert re_seq.ops <= base_seq.ops
    # Every strategy must produce a usable model.
    for (_, _), (_, par, acc) in runs.items():
        assert len(par.theory) >= 1
        assert acc > 60.0


def test_bench_best_first_run(benchmark, scale):
    ds = make_dataset("carcinogenesis", seed=SEED, scale=scale)
    cfg = ds.config.replace(search_strategy="best_first")
    res = one_shot(
        benchmark, run_p2mdie, ds.kb, ds.pos, ds.neg, ds.modes, cfg, p=4, width=10, seed=SEED
    )
    assert res.epochs >= 1

"""Checkpoint format: wire round-trip, file I/O, guards."""

import os
import random
import subprocess
import sys

import pytest

from repro.fault.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointState,
    EpochRecord,
    checkpoint_path,
    epoch_logs_from_records,
    load_checkpoint,
    records_from_epoch_logs,
    save_checkpoint,
    verify_config,
)
from repro.logic.parser import parse_clause, parse_term
from repro.parallel import wire
from repro.parallel.master import EpochLog

RULE = parse_clause("daughter(A, B) :- parent(B, A), female(A).")
UNIT = parse_clause("daughter(mary, ann).")


def make_state(**kw) -> CheckpointState:
    rng = random.Random(42)
    rng.gauss(0, 1)  # populate gauss_next so the optional float is exercised
    defaults = dict(
        version=CHECKPOINT_VERSION,
        algo="mdie",
        seed=-7,
        n_workers=4,
        total_pos=60,
        epoch=3,
        remaining=12,
        stall=1,
        theory=(RULE, UNIT),
        epoch_logs=(
            EpochRecord(epoch=1, bag_size=9, accepted=(RULE,), pos_covered=20),
            EpochRecord(epoch=2, bag_size=4, accepted=(), pos_covered=0),
        ),
        alive_mask=(1 << 60) - 1 - 0b1011,
        failed_mask=0b100,
        ops=123456789,
        rng_state=rng.getstate(),
        mdie_log=(
            (parse_term("daughter(mary, ann)"), RULE, 20, 5000),
            (parse_term("daughter(eve, tom)"), None, 0, 777),
        ),
        config_sig="ILPConfig(...)",
        meta=(("dataset", "krki"), ("scale", "small")),
    )
    defaults.update(kw)
    return CheckpointState(**defaults)


class TestWireRoundTrip:
    def test_full_state(self):
        st = make_state()
        data = wire.encode_always(st)
        assert data is not None
        assert wire.decode(data) == st

    def test_minimal_state(self):
        st = make_state(
            theory=(), epoch_logs=(), rng_state=None, mdie_log=(), meta=(), config_sig=""
        )
        assert wire.decode(wire.encode_always(st)) == st

    def test_rng_state_restores_generator(self):
        st = make_state()
        restored = wire.decode(wire.encode_always(st))
        a, b = random.Random(), random.Random()
        a.setstate(st.rng_state)
        b.setstate(restored.rng_state)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_encoding_ignores_transport_gate(self):
        with wire.configured(False):
            assert wire.encode(make_state()) is None  # transport gate off
            assert wire.encode_always(make_state()) is not None  # files always on

    def test_bytes_stable_across_hash_seeds(self):
        prog = (
            "from tests.fault.test_checkpoint import make_state\n"
            "from repro.parallel import wire\n"
            "print(wire.encode_always(make_state()).hex())\n"
        )
        here = wire.encode_always(make_state()).hex()
        root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        for seed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.path.join(root, "src") + os.pathsep + root + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            out = subprocess.run(
                [sys.executable, "-c", prog], capture_output=True, text=True, env=env, cwd=root
            )
            assert out.returncode == 0, out.stderr
            assert out.stdout.strip() == here


class TestFileIO:
    def test_save_load(self, tmp_path):
        st = make_state()
        path = checkpoint_path(str(tmp_path), st.epoch)
        assert path.endswith("epoch_0003.ckpt")
        save_checkpoint(path, st)
        assert load_checkpoint(path) == st

    def test_load_garbage_raises(self, tmp_path):
        path = str(tmp_path / "bad.ckpt")
        with open(path, "wb") as fh:
            fh.write(b"not a checkpoint at all")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_load_non_checkpoint_payload_raises(self, tmp_path):
        from repro.parallel.messages import Stop

        path = str(tmp_path / "stop.ckpt")
        with open(path, "wb") as fh:
            fh.write(wire.encode_always(Stop()))
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            load_checkpoint(path)


class TestGuards:
    def test_verify_config_mismatch(self):
        st = make_state()
        verify_config(st, st.config_sig)  # identical: fine
        verify_config(make_state(config_sig=""), "whatever")  # unknown: fine
        with pytest.raises(CheckpointError, match="different ILP configuration"):
            verify_config(st, "ILPConfig(other)")


class TestEpochLogConversion:
    def test_round_trip(self):
        logs = [
            EpochLog(epoch=1, bag_size=5, accepted=[RULE], pos_covered=7),
            EpochLog(epoch=2, bag_size=0, accepted=[], pos_covered=0),
        ]
        back = epoch_logs_from_records(records_from_epoch_logs(logs))
        assert [(l.epoch, l.bag_size, l.accepted, l.pos_covered) for l in back] == [
            (l.epoch, l.bag_size, l.accepted, l.pos_covered) for l in logs
        ]

"""Self-healing protocol: logical workers, failure detection, replay.

The key idea that makes recovery *exact* (the healed run learns the very
same theory as the fault-free run) is the split between **logical
workers** and **physical hosts**:

* a *logical worker* ``1..p`` owns an example partition, a seeded RNG
  stream, a tried-seed mask and an evaluation-cache/liveness store — all
  of it a deterministic function of ``(partition, seed, accepted-rule
  history)``;
* a *physical host* is an OS process / simulated rank that *hosts* one
  or more logical workers (a :class:`WorkerShard` each).

When a host dies, the master rebuilds its logical workers on surviving
hosts by shipping the accepted-rule history (:class:`AdoptWorker`) and
letting the adopter **replay** it against the shared-filesystem
partition: one seed draw per epoch, then the kills of that epoch's
accepted rules.  Because every draw and kill is replayed in the original
order, the rebuilt shard is bit-identical to the lost state — pipelines
restarted on it produce the same rules, and evaluation rounds produce
the same global totals, so the learned theory cannot change.

Failure detection is timeout + heartbeat: the master's collective waits
use timed receives; on expiry it pings every host still owing a reply
and declares silent ones dead.  A false positive (a straggler declared
dead) is safe: its logical workers are rebuilt elsewhere with identical
state, its late messages are discarded as stale, and the learned theory
is unchanged — only time and communication are wasted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.cluster.message import Tag
from repro.ilp.bottom import SaturationError, build_bottom, build_bottom_cached
from repro.ilp.store import ExampleStore
from repro.util.rng import make_rng

# The message classes are imported lazily (inside the methods that build
# or match them): importing them at module level would re-enter the
# repro.parallel package while it is initializing — that package's
# strategy modules import this one.

__all__ = [
    "RecoveryError",
    "WorkerShard",
    "draw_seed",
    "rebuild_shard",
    "PoolSupervisor",
    "FTMasterMixin",
]


class RecoveryError(RuntimeError):
    """The pool cannot make progress (no live hosts / detection diverged)."""


# -- logical worker state ----------------------------------------------------------


@dataclass
class WorkerShard:
    """One logical worker's complete learning state, hosted anywhere."""

    virtual_rank: int
    store: ExampleStore
    rng: random.Random
    tried_mask: int = 0
    #: epoch whose pipeline seed has been drawn (FT pipeline bookkeeping).
    pending_epoch: Optional[int] = None
    pending_seed: Optional[int] = None
    pending_bottom: object = None
    bottom_ready: bool = False
    #: lazily drawn stratified sampler (sampled-coverage mode); derived
    #: deterministically from (run seed, virtual rank), so an adopting
    #: host redraws the lost host's exact masks.
    sampler: object = None


def draw_seed(shard: WorkerShard, config) -> Optional[int]:
    """Draw (and mark tried) the next pipeline seed for one shard.

    Exactly the historical worker policy: prefer alive-and-untried seeds;
    when every alive seed has been tried, allow a fresh pass (global
    coverage changed since), bounded by the master's stall detector.
    """
    store = shard.store
    candidates = store.alive & ~shard.tried_mask
    if not candidates and store.alive:
        shard.tried_mask = 0
        candidates = store.alive
    idxs = [i for i in range(store.n_pos) if (candidates >> i) & 1]
    if not idxs:
        return None
    i = shard.rng.choice(idxs) if config.select_seed_randomly else idxs[0]
    shard.tried_mask |= 1 << i
    return i


def saturate_seed(shard: WorkerShard, engine, modes, config):
    """Build (once) the bottom clause of the shard's pending seed."""
    if shard.bottom_ready:
        return shard.pending_bottom
    bottom = None
    if shard.pending_seed is not None:
        saturate = build_bottom_cached if config.saturation_cache else build_bottom
        try:
            bottom = saturate(shard.store.pos[shard.pending_seed], engine, modes, config)
        except SaturationError:
            bottom = None
    shard.pending_bottom = bottom
    shard.bottom_ready = True
    return bottom


def rebuild_shard(msg, partition, engine, config, seed: int) -> WorkerShard:
    """Reconstruct a logical worker from an :class:`AdoptWorker` payload
    (shared data + accepted history).

    Replays, in order: for each completed epoch one seed draw (when the
    strategy draws seeds) and that epoch's kills; then — mid-epoch
    adoption — the in-progress epoch's draw and its kills so far.  The
    result is bit-identical to the lost worker's state at the current
    protocol point (modulo the evaluation cache, which restarts cold —
    a cost, never a semantic difference).
    """
    store = ExampleStore(
        partition.pos,
        partition.neg,
        reorder_body=config.reorder_body,
        inherit=config.coverage_inheritance,
        fingerprints=config.clause_fingerprints,
    )
    shard = WorkerShard(
        virtual_rank=msg.virtual_rank,
        store=store,
        rng=make_rng(seed, "worker", msg.virtual_rank),
    )

    def kill(clauses) -> None:
        for clause in clauses:
            cs = store.evaluate(engine, clause)
            store.kill(cs.pos_bits)
            shard.tried_mask &= store.alive

    for epoch_rules in msg.completed:
        if msg.draw_seeds:
            draw_seed(shard, config)
        kill(epoch_rules)
    if msg.draw_seeds and msg.draw_current:
        shard.pending_epoch = msg.epoch
        shard.pending_seed = draw_seed(shard, config)
        shard.bottom_ready = False
    kill(msg.current)
    return shard


# -- master-side pool bookkeeping --------------------------------------------------


class PoolSupervisor:
    """Liveness, routing and adoption policy over the physical pool.

    ``hosts`` are the physical worker ranks (primaries ``1..p`` plus any
    provisioned spares ``p+1..p+s``); logical workers are always
    ``1..p``.  Spares idle until they adopt a dead host's shards or are
    admitted by an elastic-join event.
    """

    def __init__(self, n_logical: int, spares: int = 0, timeout: float = 10.0):
        self.n = n_logical
        self.timeout = timeout
        self.hosts: list[int] = list(range(1, n_logical + spares + 1))
        self.routing: dict[int, int] = {l: l for l in range(1, n_logical + 1)}
        self.dead: set[int] = set()
        #: hosts admitted to active duty (primaries now, spares on join/adopt).
        self.active: set[int] = set(range(1, n_logical + 1))

    # -- queries ----------------------------------------------------------------
    def live_hosts(self) -> list[int]:
        return [h for h in self.hosts if h not in self.dead]

    def serving_hosts(self) -> list[int]:
        """Hosts currently hosting at least one logical worker."""
        return sorted({h for h in self.routing.values() if h not in self.dead})

    def idle_spares(self) -> list[int]:
        serving = set(self.routing.values())
        return [h for h in self.hosts if h not in self.dead and h not in serving]

    def logicals_on(self, host: int) -> list[int]:
        return sorted(l for l, h in self.routing.items() if h == host)

    def host_of(self, logical: int) -> int:
        return self.routing[logical]

    def routing_table(self) -> tuple[tuple[int, int], ...]:
        return tuple(sorted(self.routing.items()))

    # -- mutations --------------------------------------------------------------
    def declare_dead(self, host: int) -> None:
        self.dead.add(host)
        self.active.discard(host)

    def reassign(self, dead_hosts) -> list[tuple[int, int]]:
        """Move every logical worker off the named dead hosts.

        Deterministic policy: idle live spares first (standby
        replacement), then live serving hosts, round-robin in rank
        order.  Returns ``(logical, new_host)`` moves.
        """
        dead_hosts = set(dead_hosts)
        orphans = sorted(l for l, h in self.routing.items() if h in dead_hosts)
        if not orphans:
            return []
        targets = self.idle_spares() + self.serving_hosts()
        targets = [h for h in targets if h not in self.dead]
        if not targets:
            raise RecoveryError("no live hosts left to adopt orphaned workers")
        moves = []
        for i, l in enumerate(orphans):
            h = targets[i % len(targets)]
            self.routing[l] = h
            self.active.add(h)
            moves.append((l, h))
        return moves

    def admit(self, host: int) -> list[tuple[int, int]]:
        """Elastic grow: activate a spare and rebalance round-robin.

        Returns the ``(logical, new_host)`` moves (only changed slots).
        """
        if host in self.dead or host not in self.hosts:
            return []
        self.active.add(host)
        pool = sorted(self.active - self.dead)
        moves = []
        for i, l in enumerate(sorted(self.routing)):
            h = pool[i % len(pool)]
            if self.routing[l] != h:
                self.routing[l] = h
                moves.append((l, h))
        return moves


# -- master-side protocol ----------------------------------------------------------


class FTMasterMixin:
    """Generator helpers every fault-tolerant master shares.

    Expects the concrete master to provide:

    * ``self.ft`` — a :class:`PoolSupervisor` (or None: protocol off);
    * ``self.fault_plan`` — the active :class:`FaultPlan` (joins);
    * ``self.fault_events`` — a list collecting human-readable events;
    * ``self._ft_history()`` — ``(completed, current, draw_seeds,
      draw_current, epoch)`` describing the deterministic replay payload
      at the current protocol point.
    """

    #: consecutive empty detection rounds before giving up.
    MAX_RECOVERY_ROUNDS = 25
    #: consecutive silent probes before a host is declared dead — a
    #: single lost/late heartbeat exchange must not kill a live host
    #: (fatal when it is the last one standing).
    SUSPECT_ROUNDS = 2

    def _ft_init(self) -> None:
        self._ft_stash: list = []
        self._ft_token = 0
        self._ft_round = 0
        self._ft_suspect: dict[int, int] = {}

    def _ft_note(self, text: str) -> None:
        self.fault_events.append(text)

    def _ft_logicals(self) -> set[int]:
        return set(range(1, self.ft.n + 1))

    # -- adoption ---------------------------------------------------------------
    def _ft_adopt_payload(self, logical: int):
        from repro.parallel.messages import AdoptWorker

        completed, current, draw_seeds, draw_current, epoch = self._ft_history()
        return AdoptWorker(
            virtual_rank=logical,
            partition_id=logical,
            epoch=epoch,
            completed=completed,
            current=current,
            draw_seeds=draw_seeds,
            draw_current=draw_current,
        )

    def _ft_recover(self, ctx, dead_hosts):
        """Declare hosts dead, rebuild their logical workers elsewhere."""
        from repro.parallel.messages import UpdateRouting

        for h in sorted(dead_hosts):
            self.ft.declare_dead(h)
            self._ft_note(f"epoch {self.epochs + 1}: host {h} declared dead")
        moves = self.ft.reassign(dead_hosts)
        for logical, new_host in moves:
            yield ctx.send(new_host, self._ft_adopt_payload(logical), tag=Tag.LOAD_EXAMPLES)
            self._ft_note(f"worker {logical} adopted by host {new_host}")
        if moves:
            yield ctx.bcast(
                UpdateRouting(routing=self.ft.routing_table()),
                tag=Tag.ROUTING,
                dsts=self.ft.serving_hosts(),
            )
            # Zero-cost marker (0 ops = 0 virtual seconds): stamps the
            # recovery event into the activity trace so `repro trace`
            # shows *when* the master rebuilt workers, on every backend.
            yield ctx.compute(0, label="recover")

    def _ft_admit_joins(self, ctx, epoch: int):
        """Elastic grow: activate spare hosts scheduled to join now."""
        from repro.parallel.messages import UpdateRouting

        if self.fault_plan is None:
            return
        all_moves: list[tuple[int, int]] = []
        for ev in self.fault_plan.joins_at(epoch):
            if ev.rank in self.ft.dead or ev.rank not in self.ft.hosts:
                continue
            moves = self.ft.admit(ev.rank)
            self._ft_note(f"epoch {epoch}: host {ev.rank} joined the pool")
            for logical, new_host in moves:
                yield ctx.send(
                    new_host, self._ft_adopt_payload(logical), tag=Tag.LOAD_EXAMPLES
                )
                self._ft_note(f"worker {logical} migrated to host {new_host}")
            all_moves.extend(moves)
        if all_moves:
            yield ctx.bcast(
                UpdateRouting(routing=self.ft.routing_table()),
                tag=Tag.ROUTING,
                dsts=self.ft.serving_hosts(),
            )

    def _ft_reinforce(self, ctx, missing_logicals):
        """Re-send adoption + routing state for stalled reassigned workers.

        The one-shot AdoptWorker/UpdateRouting control messages are
        themselves subject to injected message loss; when a collective
        keeps missing replies for a logical worker that lives away from
        its home rank, the master re-ships the (idempotent) adoption
        payload and the routing table before re-requesting the work.
        """
        from repro.parallel.messages import UpdateRouting

        moved = [
            l
            for l in missing_logicals
            if l in self.ft.routing and self.ft.host_of(l) != l
        ]
        if not moved:
            return
        for l in moved:
            yield ctx.send(self.ft.host_of(l), self._ft_adopt_payload(l), tag=Tag.LOAD_EXAMPLES)
        yield ctx.bcast(
            UpdateRouting(routing=self.ft.routing_table()),
            tag=Tag.ROUTING,
            dsts=self.ft.serving_hosts(),
        )

    # -- detection --------------------------------------------------------------
    def _ft_probe(self, ctx):
        """Ping every serving host; declare silent ones dead and recover.

        Any message received from a host during the probe window counts
        as proof of life; non-Pong messages are stashed for the outer
        gather, so nothing is lost.
        """
        from repro.parallel.messages import Ping, Pong

        targets = set(self.ft.serving_hosts())
        if not targets:
            raise RecoveryError("no live hosts to probe")
        self._ft_token += 1
        token = self._ft_token
        yield ctx.bcast(Ping(token=token), tag=Tag.PING, dsts=sorted(targets))
        seen: set[int] = set()
        while not targets <= seen:
            msg = yield ctx.recv(timeout=self.ft.timeout)
            if msg is None:
                break
            if msg.src in self.ft.dead:
                continue
            seen.add(msg.src)
            if not isinstance(msg.payload, Pong):
                self._ft_stash.append(msg)
        for h in targets & seen:
            self._ft_suspect.pop(h, None)
        dead = set()
        for h in sorted(targets - seen):
            self._ft_suspect[h] = self._ft_suspect.get(h, 0) + 1
            if self._ft_suspect[h] >= self.SUSPECT_ROUNDS:
                dead.add(h)
                self._ft_suspect.pop(h, None)
        if dead:
            yield from self._ft_recover(ctx, dead)

    # -- generic collective gather ----------------------------------------------
    def _ft_gather(self, ctx, expected, classify, reissue, prune=None, logical_keys=True):
        """Collect one classified payload per expected key, healing holes.

        ``classify(msg) -> (key, value) | None``; unclassified messages
        from live hosts are dropped (stale protocol traffic).  On a
        receive timeout the pool is probed, dead hosts recovered, and
        ``reissue(missing_keys)`` (a generator) re-requests the holes —
        requests and replies are idempotent/deduplicated by key.
        ``prune(missing_keys)`` names keys that stopped being expected
        (host-keyed collectives drop hosts that died mid-gather;
        logical-keyed ones never shrink, their workers are reassigned and
        — via ``logical_keys`` — their adoption state reinforced against
        lost control messages).
        """
        expected = set(expected)
        got: dict = {}
        dry = 0
        while set(got) < expected:
            if self._ft_stash:
                msg = self._ft_stash.pop(0)
            else:
                msg = yield ctx.recv(timeout=self.ft.timeout)
            if msg is None:
                dry += 1
                if dry > self.MAX_RECOVERY_ROUNDS:
                    raise RecoveryError(
                        f"collective never completed: missing {sorted(expected - set(got))}"
                    )
                yield from self._ft_probe(ctx)
                missing = expected - set(got)
                # Drain anything the probe stashed before re-requesting.
                stashed, self._ft_stash = self._ft_stash, []
                for m in stashed:
                    c = classify(m)
                    if c is not None and c[0] in missing and c[0] not in got:
                        got[c[0]] = c[1]
                missing = expected - set(got)
                if prune is not None and missing:
                    expected -= set(prune(sorted(missing)))
                    missing = expected - set(got)
                if missing:
                    self._ft_note(f"reissuing {sorted(missing)} after detection timeout")
                    if logical_keys:
                        yield from self._ft_reinforce(ctx, sorted(missing))
                    yield from reissue(sorted(missing))
                continue
            dry = 0
            if msg.src in self.ft.dead:
                continue
            c = classify(msg)
            if c is None:
                continue
            key, value = c
            if key in expected and key not in got:
                got[key] = value
        return got

    # -- shared collectives ------------------------------------------------------
    def _ft_pipeline_round(self, ctx, width, epoch: int):
        """Run all p pipelines for one epoch; returns {origin: rules}."""
        from repro.parallel.messages import FTPipelineRules, RestartPipeline

        def start(origins):
            for origin in origins:
                yield ctx.send(
                    self.ft.host_of(origin),
                    RestartPipeline(origin=origin, width=width, epoch=epoch),
                    tag=Tag.START_PIPELINE,
                )

        def classify(msg):
            p = msg.payload
            if isinstance(p, FTPipelineRules) and p.epoch == epoch:
                return (p.origin, p.rules)
            return None

        yield from start(sorted(self._ft_logicals()))
        return (yield from self._ft_gather(ctx, self._ft_logicals(), classify, start))

    def _ft_eval_round(self, ctx, clauses):
        """Globally evaluate ``clauses``; returns per-clause (pos, neg)."""
        from repro.parallel.messages import FTEvaluateRequest, FTEvaluateResult

        self._ft_round += 1
        rnd = self._ft_round
        request = FTEvaluateRequest(round=rnd, rules=tuple(clauses))

        def ask(logicals):
            for host in sorted({self.ft.host_of(l) for l in logicals}):
                yield ctx.send(host, request, tag=Tag.EVALUATE)

        def classify(msg):
            p = msg.payload
            if isinstance(p, FTEvaluateResult) and p.round == rnd:
                return (p.rank, p.stats)
            return None

        yield from ask(sorted(self._ft_logicals()))
        got = yield from self._ft_gather(ctx, self._ft_logicals(), classify, ask)
        totals = [[0, 0] for _ in clauses]
        for logical in sorted(got):
            for i, rs in enumerate(got[logical]):
                totals[i][0] += rs.pos
                totals[i][1] += rs.neg
        yield ctx.compute(len(clauses) + 1, label="aggregate")
        return [(p, n) for p, n in totals]

    def _ft_epoch_pulse(self, ctx, log):
        """End-of-epoch heartbeat: liveness + cache-counter collection."""
        from repro.parallel.messages import Ping, Pong

        self._ft_token += 1
        token = self._ft_token

        def ping(hosts):
            for h in sorted(hosts):
                yield ctx.send(h, Ping(token=token), tag=Tag.PING)

        def classify(msg):
            # Token-checked: a slow Pong answering an earlier liveness
            # probe must not stand in for this epoch's cache counters.
            if isinstance(msg.payload, Pong) and msg.payload.token == token:
                return (msg.src, (msg.payload.cache_hits, msg.payload.cache_misses))
            return None

        targets = set(self.ft.serving_hosts())
        yield from ping(targets)

        def reissue(missing):
            yield from ping([h for h in missing if h not in self.ft.dead])

        def prune(missing):
            return [h for h in missing if h in self.ft.dead]

        got = yield from self._ft_gather(
            ctx, targets, classify, reissue, prune=prune, logical_keys=False
        )
        live = {h: v for h, v in got.items() if h not in self.ft.dead}
        log.cache_hits = sum(v[0] for v in live.values())
        log.cache_misses = sum(v[1] for v in live.values())
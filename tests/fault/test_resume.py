"""Checkpoint → resume: the continued run reproduces the original exactly."""

import glob
import os

import pytest

from helpers_fault import log_tuples, run_args
from repro.fault.checkpoint import load_checkpoint
from repro.fault.plan import FaultPlan, WorkerCrash
from repro.ilp.mdie import mdie
from repro.parallel import run_coverage_parallel, run_p2mdie


def ckpts(directory):
    return sorted(glob.glob(os.path.join(str(directory), "*.ckpt")))


class TestSequentialResume:
    def test_every_checkpoint_resumes_bit_identically(self, krki, tmp_path):
        full = mdie(*run_args(krki), seed=0, checkpoint_dir=str(tmp_path))
        paths = ckpts(tmp_path)
        assert len(paths) == full.epochs
        full_rules = [(e, r, c) for e, r, c, _ in full.log]
        for path in paths[:-1]:
            res = mdie(*run_args(krki), seed=0, resume=load_checkpoint(path))
            assert res.theory == full.theory
            assert [(e, r, c) for e, r, c, _ in res.log] == full_rules
            assert res.epochs == full.epochs
            assert res.uncovered == full.uncovered

    def test_resume_guards(self, trains, tmp_path):
        mdie(*run_args(trains), seed=0, checkpoint_dir=str(tmp_path))
        state = load_checkpoint(ckpts(tmp_path)[0])
        with pytest.raises(ValueError, match="seed"):
            mdie(*run_args(trains), seed=99, resume=state)
        with pytest.raises(ValueError, match="not 'mdie'"):
            mdie(*run_args(trains), seed=0, resume=state.replace(algo="p2mdie"))
        bad_cfg = trains.config.replace(noise=3)
        with pytest.raises(ValueError, match="different ILP configuration"):
            mdie(trains.kb, trains.pos, trains.neg, trains.modes, bad_cfg, seed=0, resume=state)


class TestParallelResume:
    def test_p2mdie_every_checkpoint(self, krki, tmp_path):
        base = run_p2mdie(*run_args(krki), p=3, width=10, seed=0, checkpoint_dir=str(tmp_path))
        paths = ckpts(tmp_path)
        assert len(paths) == base.epochs
        for path in paths[:-1]:
            res = run_p2mdie(*run_args(krki), p=3, width=10, seed=0, resume=load_checkpoint(path))
            assert res.theory == base.theory
            assert log_tuples(res) == log_tuples(base)

    def test_covpar_resume(self, krki, tmp_path):
        base = run_coverage_parallel(
            *run_args(krki), p=3, batch_size=4, seed=0, max_epochs=4, checkpoint_dir=str(tmp_path)
        )
        paths = ckpts(tmp_path)
        res = run_coverage_parallel(
            *run_args(krki), p=3, batch_size=4, seed=0, max_epochs=4,
            resume=load_checkpoint(paths[0]),
        )
        assert res.theory == base.theory
        assert log_tuples(res) == log_tuples(base)

    def test_resume_rejects_different_p(self, krki, tmp_path):
        run_p2mdie(*run_args(krki), p=3, width=10, seed=0, checkpoint_dir=str(tmp_path))
        state = load_checkpoint(ckpts(tmp_path)[0])
        with pytest.raises(ValueError, match="partitions differ"):
            run_p2mdie(*run_args(krki), p=4, width=10, seed=0, resume=state)

    def test_resume_from_faulty_run_matches_fault_free(self, krki, tmp_path):
        """A crash mid-run does not poison the checkpoints: resuming one
        reproduces the fault-free tail."""
        base = run_p2mdie(*run_args(krki), p=3, width=10, seed=0)
        plan = FaultPlan(
            crashes=(WorkerCrash(rank=2, on_recv=2, tag="start_pipeline"),), timeout=2.0
        )
        run_p2mdie(
            *run_args(krki), p=3, width=10, seed=0, fault_plan=plan,
            checkpoint_dir=str(tmp_path),
        )
        state = load_checkpoint(ckpts(tmp_path)[0])
        res = run_p2mdie(*run_args(krki), p=3, width=10, seed=0, resume=state)
        assert res.theory == base.theory
        assert log_tuples(res) == log_tuples(base)

    def test_checkpoint_meta_round_trips(self, trains, tmp_path):
        run_p2mdie(
            *run_args(trains), p=2, width=10, seed=0, checkpoint_dir=str(tmp_path),
            checkpoint_meta=(("dataset", "trains"), ("scale", "small")),
        )
        state = load_checkpoint(ckpts(tmp_path)[-1])
        assert state.meta_dict()["dataset"] == "trains"
        assert state.algo == "p2mdie"
        assert state.n_workers == 2

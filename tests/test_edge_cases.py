"""Assorted edge-case tests across modules (failure paths and boundary
conditions not covered by the per-module suites)."""

import pytest

from repro.cluster.process import ComputeInterval as CI
from repro.experiments.trace import render_gantt
from repro.logic.engine import Engine
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_term


class TestEngineEdges:
    def test_between_reversed_bounds_fails(self):
        e = Engine(KnowledgeBase())
        assert not e.prove(parse_term("between(5, 1, X)"))

    def test_dif_const_unbound_fails(self):
        kb = KnowledgeBase()
        kb.add_program("p(a).")
        e = Engine(kb)
        # Y never bound to a constant -> dif_const cannot succeed
        assert not e.prove(parse_term("dif_const(a, Y)"))

    def test_empty_kb_queries(self):
        e = Engine(KnowledgeBase())
        assert not e.prove(parse_term("anything(X)"))
        assert e.count_solutions(parse_term("whatever(a, b)")) == 0

    def test_zero_arity_goal(self):
        kb = KnowledgeBase()
        kb.add_program("go. stop :- fail.")
        e = Engine(kb)
        assert e.prove(parse_term("go"))
        assert not e.prove(parse_term("stop"))

    def test_rule_only_predicate(self):
        kb = KnowledgeBase()
        kb.add_program("d(X) :- c(X). c(a).")
        e = Engine(kb)
        assert e.prove(parse_term("d(a)"))

    def test_deeply_nested_terms(self):
        kb = KnowledgeBase()
        kb.add_program("w(f(g(h(a)))).")
        e = Engine(kb)
        assert e.prove(parse_term("w(f(g(h(a))))"))
        assert e.prove(parse_term("w(f(G))"))
        assert not e.prove(parse_term("w(f(g(h(b))))"))


class TestTraceEdges:
    def test_interval_past_t_end_clipped(self):
        out = render_gantt([CI(1, 0.0, 5.0, "evaluate")], width=10, t_end=1.0)
        row = out.split("|")[1]
        assert row == "e" * 10  # fills but never overflows

    def test_zero_length_interval(self):
        out = render_gantt([CI(1, 0.5, 0.5, "evaluate"), CI(1, 0.0, 1.0, "saturate")], width=10)
        assert "rank 1" in out


class TestDatasetEdges:
    def test_trains_zero_noise_separable(self):
        from repro.datasets import make_dataset
        from repro.logic.engine import Engine
        from repro.logic.parser import parse_term as pt

        ds = make_dataset("trains", seed=2, scale="small", label_noise=0.0)
        eng = Engine(ds.kb, ds.config.engine_budget())
        # zero noise: the planted rule separates perfectly
        for e in ds.neg:
            t = e.args[0]
            assert not eng.prove(pt(f"has_car({t}, C), short(C), closed(C)"))

    def test_mesh_tiny_instance(self):
        from repro.datasets import make_dataset

        ds = make_dataset("mesh", seed=2, n_pos=20, n_neg=5)
        assert (ds.n_pos, ds.n_neg) == (20, 5)

    def test_krki_no_noise_by_default(self):
        from repro.datasets import make_dataset

        ds = make_dataset("krki", seed=2)
        assert ds.config.noise == 0


class TestConfigEdges:
    def test_replace_keeps_other_fields(self):
        from repro.ilp.config import ILPConfig

        cfg = ILPConfig(noise=3, min_pos=4)
        cfg2 = cfg.replace(noise=0)
        assert cfg2.min_pos == 4
        assert cfg.noise == 3  # frozen original untouched

    def test_width_sentinel_roundtrip(self):
        from repro.ilp.config import ILPConfig, NO_LIMIT

        cfg = ILPConfig(pipeline_width=NO_LIMIT)
        assert cfg.pipeline_width is None

"""Unit tests for mode declarations."""

import pytest

from repro.ilp.modes import ArgSpec, ModeDecl, ModeSet, parse_mode


class TestParseMode:
    def test_modeh(self):
        m = parse_mode("modeh(1, active(+mol))")
        assert m.is_head
        assert m.predicate == "active"
        assert m.recall == 1
        assert m.args == (ArgSpec("+", "mol"),)

    def test_modeb_star_recall(self):
        m = parse_mode("modeb(*, parent(+person, -person))")
        assert not m.is_head
        assert m.recall is None

    def test_placemarker_kinds(self):
        m = parse_mode("modeb(2, bond(+mol, -atom, #elem))")
        assert m.input_positions() == (0,)
        assert m.output_positions() == (1,)
        assert m.const_positions() == (2,)

    def test_bare_template(self):
        m = parse_mode("f(+a, -b)", default_head=True)
        assert m.is_head
        assert m.recall is None

    def test_invalid_placemarker(self):
        with pytest.raises(ValueError):
            parse_mode("modeb(1, p(a))")

    def test_atom_template_rejected(self):
        with pytest.raises(ValueError):
            parse_mode("modeb(1, nullary)")

    def test_str_roundtrip(self):
        m = parse_mode("modeb(2, bond(+mol, -atom, #elem))")
        assert str(m) == "modeb(2, bond(+mol, -atom, #elem))"
        assert parse_mode(str(m)) == m

    def test_indicator_and_arity(self):
        m = parse_mode("modeb(1, p(+a, -b, #c))")
        assert m.indicator == ("p", 3)
        assert m.arity == 3


class TestArgSpec:
    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            ArgSpec("?", "t")

    def test_str(self):
        assert str(ArgSpec("+", "mol")) == "+mol"


class TestModeSet:
    def test_routing(self):
        ms = ModeSet(["modeh(1, p(+t))", "modeb(1, q(+t))"])
        assert len(ms.head_modes) == 1
        assert len(ms.body_modes) == 1
        assert len(ms) == 2

    def test_head_mode_for(self):
        ms = ModeSet(["modeh(1, p(+t))"])
        assert ms.head_mode_for(("p", 1)) is not None
        assert ms.head_mode_for(("p", 2)) is None

    def test_types(self):
        ms = ModeSet(["modeh(1, p(+a))", "modeb(1, q(+a, -b))"])
        assert ms.types() == {"a", "b"}

    def test_validate_ok(self):
        ms = ModeSet(["modeh(1, p(+a))", "modeb(1, q(+a, -b))", "modeb(1, r(+b))"])
        ms.validate()

    def test_validate_requires_head(self):
        ms = ModeSet(["modeb(1, q(+a))"])
        with pytest.raises(ValueError, match="modeh"):
            ms.validate()

    def test_validate_unproducible_type(self):
        ms = ModeSet(["modeh(1, p(+a))", "modeb(1, q(+zz))"])
        with pytest.raises(ValueError, match="zz"):
            ms.validate()

    def test_accepts_mode_objects(self):
        m = parse_mode("modeb(1, q(+a))")
        ms = ModeSet([m])
        assert ms.body_modes == [m]

    def test_iteration_order(self):
        ms = ModeSet(["modeb(1, q(+a))", "modeh(1, p(+a))", "modeb(1, r(+a))"])
        names = [m.predicate for m in ms]
        assert names == ["p", "q", "r"]  # heads first, then bodies in order

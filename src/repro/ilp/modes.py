"""Mode declarations (MDIE language bias).

Mode-Directed Inverse Entailment constrains the hypothesis space through
*mode declarations* in the Progol tradition:

* ``modeh(recall, template)`` — how the head of a rule may look;
* ``modeb(recall, template)`` — which literals may appear in bodies.

Template arguments carry *placemarkers*:

* ``+type`` — input: must be bound to a variable already in scope (of that
  type) when the literal is called;
* ``-type`` — output: a variable that becomes available to later literals;
* ``#type`` — a constant of that type, kept ground in learned rules.

``recall`` bounds how many answers per input binding are added during
saturation (``'*'`` = use the config default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from repro.logic.parser import parse_term
from repro.logic.terms import Const, Struct, Term, Var

__all__ = ["ArgSpec", "ModeDecl", "ModeSet", "parse_mode"]

_PLACEMARKERS = ("+", "-", "#")


@dataclass(frozen=True)
class ArgSpec:
    """One template argument: placemarker kind and type name."""

    kind: str  # '+', '-', or '#'
    type: str

    def __post_init__(self):
        if self.kind not in _PLACEMARKERS:
            raise ValueError(f"invalid placemarker {self.kind!r}")

    def __str__(self) -> str:
        return f"{self.kind}{self.type}"


@dataclass(frozen=True)
class ModeDecl:
    """A single ``modeh``/``modeb`` declaration."""

    predicate: str
    args: tuple[ArgSpec, ...]
    recall: Optional[int] = None  # None = '*': use config default
    is_head: bool = False

    @property
    def indicator(self) -> tuple[str, int]:
        return (self.predicate, len(self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def input_positions(self) -> tuple[int, ...]:
        return tuple(i for i, a in enumerate(self.args) if a.kind == "+")

    def output_positions(self) -> tuple[int, ...]:
        return tuple(i for i, a in enumerate(self.args) if a.kind == "-")

    def const_positions(self) -> tuple[int, ...]:
        return tuple(i for i, a in enumerate(self.args) if a.kind == "#")

    def __str__(self) -> str:
        kind = "modeh" if self.is_head else "modeb"
        recall = "*" if self.recall is None else str(self.recall)
        args = ", ".join(str(a) for a in self.args)
        return f"{kind}({recall}, {self.predicate}({args}))"


def _spec_from_term(t: Term) -> ArgSpec:
    if isinstance(t, Struct) and t.functor in _PLACEMARKERS and t.arity == 1:
        ty = t.args[0]
        if isinstance(ty, Const) and isinstance(ty.value, str):
            return ArgSpec(t.functor, ty.value)
    raise ValueError(f"invalid mode placemarker: {t}")


def parse_mode(src: str, default_head: bool = False) -> ModeDecl:
    """Parse ``"modeh(1, active(+drug))"`` or a bare template
    ``"bond(+mol, -atom, -atom, #btype)"``.

    >>> m = parse_mode("modeb(2, bond(+mol, -atom, #elem))")
    >>> (m.predicate, m.recall, m.input_positions())
    ('bond', 2, (0,))
    """
    term = parse_term(src)
    is_head = default_head
    recall: Optional[int] = None
    if isinstance(term, Struct) and term.functor in ("modeh", "modeb") and term.arity == 2:
        is_head = term.functor == "modeh"
        r, template = term.args
        if isinstance(r, Const) and isinstance(r.value, int):
            recall = r.value
        elif isinstance(r, Const) and r.value == "*":
            recall = None
        elif isinstance(r, Var):  # '*' parses as... no; allow var as wildcard
            recall = None
        else:
            raise ValueError(f"invalid recall in mode: {src}")
    else:
        template = term
    if not isinstance(template, Struct):
        raise ValueError(f"mode template must be compound: {src}")
    specs = tuple(_spec_from_term(a) for a in template.args)
    return ModeDecl(template.functor, specs, recall=recall, is_head=is_head)


class ModeSet:
    """The complete language bias: one or more head modes + body modes."""

    def __init__(self, modes: Iterable[Union[ModeDecl, str]] = ()):
        self.head_modes: list[ModeDecl] = []
        self.body_modes: list[ModeDecl] = []
        for m in modes:
            self.add(m)

    def add(self, mode: Union[ModeDecl, str]) -> None:
        if isinstance(mode, str):
            mode = parse_mode(mode)
        if mode.is_head:
            self.head_modes.append(mode)
        else:
            self.body_modes.append(mode)

    def head_mode_for(self, indicator: tuple[str, int]) -> Optional[ModeDecl]:
        for m in self.head_modes:
            if m.indicator == indicator:
                return m
        return None

    def __iter__(self) -> Iterator[ModeDecl]:
        yield from self.head_modes
        yield from self.body_modes

    def __len__(self) -> int:
        return len(self.head_modes) + len(self.body_modes)

    def types(self) -> set[str]:
        return {a.type for m in self for a in m.args}

    def validate(self) -> None:
        """Sanity-check the bias: needs >= 1 head mode; every body-mode
        input type must be producible (appear as a head input or some
        output)."""
        if not self.head_modes:
            raise ValueError("ModeSet needs at least one modeh declaration")
        producible = {a.type for m in self.head_modes for a in m.args if a.kind == "+"}
        producible |= {a.type for m in self.body_modes for a in m.args if a.kind == "-"}
        for m in self.body_modes:
            for a in m.args:
                if a.kind == "+" and a.type not in producible:
                    raise ValueError(
                        f"body mode {m} consumes type {a.type!r} that no head input "
                        f"or body output produces"
                    )

"""Metrics: thread-safe counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per service (or one module-level default
for library code).  All three instrument types are cheap enough for hot
paths — a counter increment is one lock acquire + integer add — and the
registry renders both a plain-dict snapshot (for the ``metrics`` service
op and the ``stats`` section) and Prometheus text exposition (for the
``repro serve --metrics-port`` endpoint).

Histograms use fixed bucket upper bounds (Prometheus-style cumulative
``le`` buckets).  With ``track_samples=True`` they additionally keep the
raw observations so :meth:`Histogram.percentile` is exact — loadgen and
the chaos harness use that mode, keeping their reported p50/p95/p99
identical to the former private percentile code.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "percentile",
]

# Seconds; spans 0.5 ms .. 30 s, the range a query or job op can take.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100]) over raw samples."""
    if not samples:
        raise ValueError("no samples")
    xs = sorted(samples)
    if len(xs) == 1:
        return xs[0]
    pos = (len(xs) - 1) * (q / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self):
        return self._value


class Gauge:
    """A value that can go up and down (queue depth, busy slots)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, v: float) -> None:
        with self._lock:
            self._value = v

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self):
        return self._value


class Histogram:
    """Fixed-bucket histogram; optionally keeps raw samples for exact percentiles.

    ``observe`` is O(buckets) without samples, O(1) amortised append with.
    Bucket bounds are inclusive upper edges in ascending order; an
    implicit ``+Inf`` bucket catches the rest (Prometheus convention).
    """

    kind = "histogram"

    def __init__(
        self,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        track_samples: bool = False,
    ) -> None:
        self.buckets: Tuple[float, ...] = tuple(buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be ascending")
        self._counts = [0] * (len(self.buckets) + 1)  # +Inf bucket last
        self._sum = 0.0
        self._count = 0
        self._max = 0.0
        self._samples: Optional[list] = [] if track_samples else None
        self._lock = threading.Lock()

    def observe(self, v: float) -> None:
        with self._lock:
            i = 0
            for bound in self.buckets:
                if v <= bound:
                    break
                i += 1
            self._counts[i] += 1
            self._sum += v
            self._count += 1
            if v > self._max:
                self._max = v
            if self._samples is not None:
                self._samples.append(v)

    def observe_many(self, vs: Iterable[float]) -> None:
        for v in vs:
            self.observe(v)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def max(self) -> float:
        return self._max

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def samples(self) -> list:
        with self._lock:
            return list(self._samples) if self._samples is not None else []

    def percentile(self, q: float) -> float:
        """Exact (from samples) or bucket-interpolated percentile, q in [0,100]."""
        with self._lock:
            if self._count == 0:
                raise ValueError("percentile of empty histogram")
            if self._samples is not None:
                xs = list(self._samples)
        if self._samples is not None:
            return percentile(xs, q)
        # Bucket interpolation: find the bucket holding the target rank,
        # interpolate linearly inside it (Prometheus histogram_quantile).
        with self._lock:
            counts = list(self._counts)
            total = self._count
            hmax = self._max
        target = (q / 100.0) * total
        cum = 0.0
        lo_edge = 0.0
        for i, c in enumerate(counts):
            hi_edge = self.buckets[i] if i < len(self.buckets) else hmax
            if cum + c >= target and c > 0:
                frac = (target - cum) / c
                return lo_edge + (hi_edge - lo_edge) * frac
            cum += c
            lo_edge = hi_edge
        return hmax

    def cumulative_buckets(self) -> list:
        """[(upper_bound, cumulative_count)] including the +Inf bucket."""
        with self._lock:
            counts = list(self._counts)
        out = []
        cum = 0
        for i, bound in enumerate(self.buckets):
            cum += counts[i]
            out.append((bound, cum))
        out.append((float("inf"), cum + counts[-1]))
        return out

    def snapshot(self):
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "max": self._max,
                "mean": self._sum / self._count if self._count else 0.0,
                "buckets": {
                    ("+Inf" if b == float("inf") else repr(b)): c
                    for b, c in zip(
                        list(self.buckets) + [float("inf")],
                        _cumulate(self._counts),
                    )
                },
            }


def _cumulate(counts: Sequence[int]) -> list:
    out = []
    cum = 0
    for c in counts:
        cum += c
        out.append(cum)
    return out


class MetricsRegistry:
    """Named metrics with optional labels; thread-safe create-or-get access.

    ``registry.counter("repro_requests_total", op="query")`` returns the
    one counter for that (name, labels) pair, creating it on first use.
    Metric kind is pinned at first registration — re-registering the same
    name with a different kind raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[tuple, object] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: str, factory, help: str, labels: dict):
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is not None and existing_kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing_kind}, not {kind}"
                )
            m = self._metrics.get(key)
            if m is None:
                m = self._metrics[key] = factory()
                self._kinds[name] = kind
                if help:
                    self._help[name] = help
            return m

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(name, "counter", Counter, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(name, "gauge", Gauge, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        track_samples: bool = False,
        **labels,
    ) -> Histogram:
        return self._get(
            name,
            "histogram",
            lambda: Histogram(buckets=buckets, track_samples=track_samples),
            help,
            labels,
        )

    def snapshot(self) -> dict:
        """Plain-dict view for the ``metrics`` service op / stats section.

        ``{name: value}`` for label-less counters/gauges; labelled metrics
        nest as ``{name: {"label=value,...": value}}``; histograms nest
        their summary dict.
        """
        with self._lock:
            items = list(self._metrics.items())
        out: dict = {}
        for (name, labels), metric in sorted(items, key=lambda kv: kv[0]):
            value = metric.snapshot()
            if labels:
                out.setdefault(name, {})[
                    ",".join(f"{k}={v}" for k, v in labels)
                ] = value
            else:
                out[name] = value
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            items = list(self._metrics.items())
            kinds = dict(self._kinds)
            helps = dict(self._help)
        by_name: Dict[str, list] = {}
        for (name, labels), metric in items:
            by_name.setdefault(name, []).append((labels, metric))
        lines = []
        for name in sorted(by_name):
            if name in helps:
                lines.append(f"# HELP {name} {helps[name]}")
            lines.append(f"# TYPE {name} {kinds[name]}")
            for labels, metric in sorted(by_name[name], key=lambda lm: lm[0]):
                base = _label_str(labels)
                if kinds[name] == "histogram":
                    for bound, cum in metric.cumulative_buckets():
                        le = "+Inf" if bound == float("inf") else _fmt_float(bound)
                        lines.append(
                            f"{name}_bucket{_label_str(labels + (('le', le),))} {cum}"
                        )
                    lines.append(f"{name}_sum{base} {_fmt_float(metric.sum)}")
                    lines.append(f"{name}_count{base} {metric.count}")
                else:
                    lines.append(f"{name}{base} {_fmt_float(metric.value)}")
        return "\n".join(lines) + "\n"


def _fmt_float(v: float) -> str:
    if isinstance(v, int) or (isinstance(v, float) and v == int(v) and abs(v) < 1e15):
        return str(int(v))
    return repr(float(v))


def _label_str(labels: tuple) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape(str(v))}"' for k, v in labels)
    return "{" + body + "}"


def _escape(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")

"""Shared provenance stamping for every ``BENCH_*.json`` artifact.

Each benchmark merges :func:`bench_environment` into its report under the
``"meta"`` key (via :func:`write_bench_json`), so the perf trajectory
tracked PR-over-PR records *which* code and interpreter produced each
number and whether it ran in CI smoke mode (reduced inputs, no speedup
gates) — the three facts needed to decide if two JSONs are comparable.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import subprocess
import sys
from typing import Union

__all__ = ["bench_environment", "write_bench_json"]

_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=_ROOT,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def bench_environment(smoke: bool) -> dict:
    """Provenance block stamped into every benchmark JSON."""
    from repro.obs import tracing_enabled

    return {
        "git_sha": _git_sha(),
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": sys.platform,
        "cpu_count": os.cpu_count(),
        "smoke": bool(smoke),
        "telemetry": "on" if tracing_enabled() else "off",
    }


def write_bench_json(
    path: Union[str, pathlib.Path],
    report: dict,
    smoke: bool,
    duration_s: Union[float, None] = None,
) -> pathlib.Path:
    """Stamp ``report`` with the environment and write it to ``path``.

    ``duration_s`` (total wall-clock of the benchmark run, when the
    caller tracked it) lands in the meta block so trajectory tooling can
    spot runs that were squeezed by a noisy machine.
    """
    path = pathlib.Path(path)
    stamped = dict(report)
    meta = bench_environment(smoke)
    if duration_s is not None:
        meta["duration_s"] = round(float(duration_s), 3)
    stamped["meta"] = meta
    path.write_text(json.dumps(stamped, indent=2, sort_keys=True) + "\n")
    return path

#!/usr/bin/env python
"""Compare every parallel-ILP strategy in the paper's design space (§6) on
one problem — the KRK-illegal chess endgame task:

* sequential MDIE (the baseline),
* P²-MDIE, the paper's pipelined data-parallel algorithm,
* data-parallel coverage testing (Konstantopoulos fine-grained / Graham
  et al. batched),
* independent per-partition learning with global merge (Matsui-style).

Run:  python examples/strategies_comparison.py [--p 4]
"""

import argparse

from repro.datasets import make_dataset
from repro.ilp import accuracy, mdie
from repro.logic import Engine
from repro.parallel import (
    run_coverage_parallel,
    run_independent,
    run_p2mdie,
    sequential_seconds,
)
from repro.util.fmt import fmt_float, render_table


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--p", type=int, default=4)
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args()

    ds = make_dataset("krki", seed=args.seed, scale="small")
    print(f"dataset: {ds.name}  |E+|={ds.n_pos}  |E-|={ds.n_neg}  p={args.p}")
    print(f"hidden target: {ds.target_description}\n")
    engine = Engine(ds.kb, ds.config.engine_budget())

    seq = mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=args.seed)
    seq_t = sequential_seconds(seq)

    runs = {
        "p2-mdie (W=10)": run_p2mdie(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=args.p, width=10, seed=args.seed
        ),
        "cov-parallel b=1": run_coverage_parallel(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=args.p, batch_size=1, seed=args.seed
        ),
        "cov-parallel b=32": run_coverage_parallel(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=args.p, batch_size=32, seed=args.seed
        ),
        "independent": run_independent(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=args.p, seed=args.seed
        ),
    }

    rows = [
        [
            "sequential mdie",
            fmt_float(seq_t, 1),
            "1.00",
            "0.000",
            seq.epochs,
            len(seq.theory),
            fmt_float(accuracy(engine, seq.theory, ds.pos, ds.neg), 1),
        ]
    ]
    for name, r in runs.items():
        rows.append(
            [
                name,
                fmt_float(r.seconds, 1),
                fmt_float(seq_t / r.seconds, 2),
                fmt_float(r.mbytes, 3),
                r.epochs,
                len(r.theory),
                fmt_float(accuracy(engine, r.theory, ds.pos, ds.neg), 1),
            ]
        )
    print(
        render_table(
            ["strategy", "time(s)", "speedup", "MB", "epochs", "rules", "train acc %"],
            rows,
            title="Parallel ILP strategies on krki (virtual time, simulated cluster)",
        )
    )
    print("\nbest rules found by p2-mdie:")
    for c in runs["p2-mdie (W=10)"].theory:
        print(f"  {c}")


if __name__ == "__main__":
    main()

"""θ-subsumption: the generality order ILP search spaces are structured by.

Clause ``C`` θ-subsumes ``D`` (written ``C ⪰ D``) iff there is a
substitution θ with ``Cθ ⊆ D`` (literal sets).  θ-subsumption is the
ordering Plotkin defined and the one the paper's search (and virtually all
MDIE systems) uses: a rule is *more general* than another iff it subsumes
it.

Deciding θ-subsumption is NP-complete in general; the backtracking matcher
below is exact, with literal ordering by candidate count (fewest first) to
keep the search small on ILP-sized clauses.
"""

from __future__ import annotations

from typing import Optional

from repro.logic.clause import Clause
from repro.logic.terms import Struct, Term, Var
from repro.logic.unify import match, walk

__all__ = [
    "theta_subsumes",
    "subsume_equivalent",
    "strictly_more_general",
    "reduce_clause",
]


def _literal_candidates(lit: Term, targets: list[Term]) -> list[Term]:
    if isinstance(lit, Struct):
        return [
            t
            for t in targets
            if isinstance(t, Struct) and t.functor == lit.functor and len(t.args) == len(lit.args)
        ]
    return [t for t in targets if t == lit]


def theta_subsumes(c: Clause, d: Clause) -> bool:
    """True iff ``c`` θ-subsumes ``d`` (``c`` at least as general as ``d``).

    >>> from repro.logic.parser import parse_clause
    >>> g = parse_clause("p(X) :- q(X, Y).")
    >>> s = parse_clause("p(a) :- q(a, b), r(a).")
    >>> theta_subsumes(g, s)
    True
    >>> theta_subsumes(s, g)
    False
    """
    # Heads must match (we compare rules for one target predicate).
    subst = match(c.head, d.head)
    if subst is None:
        return False
    targets = list(d.body) + [d.head]
    # Candidate lists depend only on functor/arity — never on the evolving
    # substitution — so compute each literal's list exactly once (the seed
    # recomputed them inside every backtracking step) and order literals
    # by how constrained they are.
    pairs = sorted(
        ((lit, _literal_candidates(lit, targets)) for lit in c.body),
        key=lambda p: len(p[1]),
    )
    if pairs and not pairs[0][1]:
        # Some literal has no match target at all: no θ can exist.
        return False

    def backtrack(i: int, subst: dict) -> bool:
        if i == len(pairs):
            return True
        lit, cands = pairs[i]
        for cand in cands:
            s2 = match(lit, cand, subst)
            if s2 is not None and backtrack(i + 1, s2):
                return True
        return False

    return backtrack(0, subst)


def subsume_equivalent(c: Clause, d: Clause) -> bool:
    """Subsumption-equivalence: each clause subsumes the other.

    Equal canonical fingerprints short-circuit the NP-complete matcher:
    they guarantee the clauses are alphabetic variants, and variants are
    subsumption-equivalent by definition.
    """
    if c is d or c == d or c.fingerprint() == d.fingerprint():
        return True
    return theta_subsumes(c, d) and theta_subsumes(d, c)


def strictly_more_general(c: Clause, d: Clause) -> bool:
    """``c`` subsumes ``d`` but not vice versa."""
    return theta_subsumes(c, d) and not theta_subsumes(d, c)


# clause -> reduced clause.  Reduction is deterministic and depends only
# on the clause itself, so results are shared across theory post-processing
# runs (cross-validation folds re-reduce the same learned rules).
_reduce_cache: dict[Clause, Clause] = {}
_REDUCE_CACHE_MAX = 4096


def reduce_clause(c: Clause) -> Clause:
    """Plotkin reduction: drop body literals whose removal keeps the clause
    subsumption-equivalent.

    The result is a minimal (not necessarily unique) equivalent clause;
    useful for deduplicating rules exchanged along the pipeline.
    Memoized per clause (bounded cache).
    """
    hit = _reduce_cache.get(c)
    if hit is not None:
        return hit
    out = _reduce_clause(c)
    if len(_reduce_cache) >= _REDUCE_CACHE_MAX:
        _reduce_cache.clear()
    _reduce_cache[c] = out
    return out


def _reduce_clause(c: Clause) -> Clause:
    body = list(c.body)
    changed = True
    while changed:
        changed = False
        for i in range(len(body)):
            candidate = Clause(c.head, body[:i] + body[i + 1 :])
            if theta_subsumes(candidate, Clause(c.head, tuple(body))):
                # dropping literal i loses no generality constraint:
                # candidate is more general by construction; equivalence
                # requires the original to subsume the candidate too.
                if theta_subsumes(Clause(c.head, tuple(body)), candidate):
                    del body[i]
                    changed = True
                    break
    return Clause(c.head, tuple(body))

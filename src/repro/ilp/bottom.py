"""Bottom clause (most-specific clause ⊥e) construction.

``build_msh`` in the paper's Fig. 1: given a seed example ``e``, background
knowledge ``B`` and constraints ``C``, produce the most specific clause
that entails ``e`` within the language bias.  This is Muggleton's MDIE
saturation:

1. The head is the example with constants lifted to variables according to
   the matching ``modeh`` template (one variable per (constant, type)).
2. Body literals are added in ``var_depth`` layers.  A body mode's ``+``
   (input) arguments are instantiated with every combination of in-scope
   terms of the right type discovered in *earlier* layers; the engine
   retrieves up to ``recall`` answers per instantiation; each answer is
   variablized (outputs become variables, ``#`` arguments stay constant)
   and appended.

The resulting :class:`BottomClause` both *is* a clause (the most specific
rule) and *indexes* the refinement search: every learned rule is a
subsequence of its literals (see :mod:`repro.ilp.refinement`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.ilp.config import ILPConfig
from repro.ilp.modes import ModeDecl, ModeSet
from repro.logic.clause import Clause
from repro.logic.engine import Engine
from repro.logic.terms import Const, Struct, Term, Var, fresh_var

__all__ = ["BottomLiteral", "BottomClause", "build_bottom", "SaturationError"]


class SaturationError(ValueError):
    """No head mode matches the seed example."""


@dataclass(frozen=True)
class BottomLiteral:
    """A variablized body literal plus its dataflow metadata."""

    literal: Term
    input_vars: frozenset
    output_vars: frozenset

    def __str__(self) -> str:
        return str(self.literal)


@dataclass
class BottomClause:
    """The saturated most-specific clause for one seed example."""

    seed: Term
    head: Term
    literals: list[BottomLiteral]
    head_vars: frozenset

    def __len__(self) -> int:
        return len(self.literals)

    def as_clause(self) -> Clause:
        return Clause(self.head, tuple(bl.literal for bl in self.literals))

    def __str__(self) -> str:
        return str(self.as_clause())

    def most_general_rule(self) -> Clause:
        """The search's START_RULE: bare head, empty body."""
        return Clause(self.head, ())


class _VarNamer:
    """Deterministic readable variable names A, B, ..., Z, V26, V27, ..."""

    _LETTERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"

    def __init__(self):
        self.n = 0

    def next(self) -> Var:
        i = self.n
        self.n += 1
        if i < len(self._LETTERS):
            return Var(self._LETTERS[i])
        return Var(f"V{i}")


def _match_head_mode(example: Term, modes: ModeSet) -> ModeDecl:
    if not isinstance(example, Struct):
        raise SaturationError(f"example must be a compound term: {example}")
    mode = modes.head_mode_for(example.indicator)
    if mode is None:
        raise SaturationError(f"no modeh matches example {example}")
    return mode


def build_bottom(
    example: Term,
    engine: Engine,
    modes: ModeSet,
    config: ILPConfig,
    max_combos_per_mode: int = 2000,
) -> BottomClause:
    """Saturate ``example`` against ``engine.kb`` under the mode bias.

    Deterministic: iteration follows mode declaration order and
    first-discovery order of in-scope terms.
    """
    head_mode = _match_head_mode(example, modes)
    namer = _VarNamer()

    # (constant value, type) -> variable; shared across the whole clause.
    var_for: dict[tuple[object, str], Var] = {}
    # variable -> ground constant it stands for (for engine queries).
    ground_of: dict[Var, Const] = {}
    # type -> ordered list of in-scope variables of that type.
    by_type: dict[str, list[Var]] = {}

    def lift(const: Const, ty: str) -> Var:
        key = (const.value, ty)
        v = var_for.get(key)
        if v is None:
            v = namer.next()
            var_for[key] = v
            ground_of[v] = const
            by_type.setdefault(ty, []).append(v)
        return v

    # --- head -----------------------------------------------------------------
    head_args: list[Term] = []
    for arg, spec in zip(example.args, head_mode.args):
        if not isinstance(arg, Const):
            raise SaturationError(f"example arguments must be constants: {example}")
        if spec.kind == "#":
            head_args.append(arg)
        else:  # '+' and '-' head args both enter the body's scope
            head_args.append(lift(arg, spec.type))
    head = Struct(example.functor, tuple(head_args))
    head_vars = frozenset(v for v in head_args if isinstance(v, Var))

    # --- body layers ------------------------------------------------------------
    body: list[BottomLiteral] = []
    seen_literals: set[Term] = set()
    # Terms available for '+' slots: discovered strictly before this layer.
    available: dict[str, list[Var]] = {ty: list(vs) for ty, vs in by_type.items()}

    for _layer in range(config.var_depth):
        if len(body) >= config.max_bottom_literals:
            break
        new_this_layer: dict[str, list[Var]] = {}
        for mode in modes.body_modes:
            recall = mode.recall if mode.recall is not None else config.recall
            in_positions = mode.input_positions()
            pools = [available.get(mode.args[i].type, []) for i in in_positions]
            if any(not p for p in pools):
                continue
            combos = itertools.islice(itertools.product(*pools), max_combos_per_mode)
            for combo in combos:
                if len(body) >= config.max_bottom_literals:
                    break
                # Build the ground query: inputs grounded, rest free.
                qargs: list[Term] = []
                free_slots: list[int] = []
                it = iter(combo)
                for i, spec in enumerate(mode.args):
                    if spec.kind == "+":
                        qargs.append(ground_of[next(it)])
                    else:
                        qargs.append(fresh_var("_Q"))
                        free_slots.append(i)
                query = Struct(mode.predicate, tuple(qargs))
                for answer in engine.solve(query, limit=recall):
                    assert isinstance(answer, Struct)
                    largs: list[Term] = []
                    in_vars: set[Var] = set()
                    out_vars: set[Var] = set()
                    ok = True
                    it2 = iter(combo)
                    for i, spec in enumerate(mode.args):
                        a = answer.args[i]
                        if spec.kind == "+":
                            v = next(it2)
                            in_vars.add(v)
                            largs.append(v)
                        elif spec.kind == "#":
                            if not isinstance(a, Const):
                                ok = False
                                break
                            largs.append(a)
                        else:  # '-'
                            if not isinstance(a, Const):
                                ok = False
                                break
                            key = (a.value, spec.type)
                            if key in var_for:
                                v = var_for[key]
                            else:
                                v = namer.next()
                                var_for[key] = v
                                ground_of[v] = a
                                new_this_layer.setdefault(spec.type, []).append(v)
                            out_vars.add(v)
                            largs.append(v)
                    if not ok:
                        continue
                    lit = Struct(mode.predicate, tuple(largs))
                    if lit == head or lit in seen_literals:
                        continue
                    seen_literals.add(lit)
                    body.append(
                        BottomLiteral(lit, frozenset(in_vars), frozenset(out_vars))
                    )
                    if len(body) >= config.max_bottom_literals:
                        break
        # Promote this layer's new outputs into scope for the next layer.
        for ty, vs in new_this_layer.items():
            available.setdefault(ty, []).extend(vs)

    return BottomClause(seed=example, head=head, literals=body, head_vars=head_vars)

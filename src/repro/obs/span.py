"""Spans: wall-clock activity records shipped from every rank to rank 0.

A :class:`Span` is the telemetry-layer view of one stage execution —
``(rank, name, start, end, attrs)`` — the exact record behind the
paper's Figs. 3-4 activity analysis.  The cluster layer keeps emitting
:class:`repro.cluster.process.ComputeInterval` (virtual time on sim,
wall-clock on local/MPI); :func:`spans_from_intervals` /
:func:`intervals_from_spans` convert losslessly between the two, and
:class:`SpanBatch` is the wire-codec message (code 28) that carries a
rank's spans home at halt on the local and MPI backends.

The :class:`Tracer` is the recording front end.  A disabled tracer is
the shared :data:`NULL_TRACER` no-op object, so instrumented code pays
one attribute check when telemetry is off.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from repro.cluster.process import ComputeInterval
from repro.parallel import wire

__all__ = [
    "Span",
    "SpanBatch",
    "Tracer",
    "NULL_TRACER",
    "tracing_enabled",
    "set_tracing",
    "spans_from_intervals",
    "intervals_from_spans",
    "write_spans_jsonl",
    "read_spans_jsonl",
]


@dataclass(frozen=True)
class Span:
    """One traced activity: *rank* ran *name* from *start* to *end* seconds.

    ``attrs`` is a sorted tuple of ``(key, value)`` string pairs —
    hashable, deterministic, and cheap to wire-encode.
    """

    rank: int
    name: str
    start: float
    end: float
    attrs: tuple = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        d = {"rank": self.rank, "name": self.name, "start": self.start, "end": self.end}
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        attrs = tuple(sorted((str(k), str(v)) for k, v in d.get("attrs", {}).items()))
        return cls(
            rank=int(d["rank"]),
            name=str(d["name"]),
            start=float(d["start"]),
            end=float(d["end"]),
            attrs=attrs,
        )


@dataclass(frozen=True)
class SpanBatch:
    """All spans recorded by one rank, shipped to rank 0 at halt."""

    rank: int
    spans: tuple = ()


# -- wire codec (code 28) ---------------------------------------------------------


def _enc_span_batch(e, m: SpanBatch) -> None:
    e.u(m.rank)
    e.u(len(m.spans))
    for s in m.spans:
        e.u(s.rank)
        e.sym(s.name)
        e.f64(s.start)
        e.f64(s.end)
        e.u(len(s.attrs))
        for k, v in s.attrs:
            e.sym(k)
            e.sym(v)


def _dec_span_batch(d) -> SpanBatch:
    rank = d.u()
    n = d.u()
    spans = []
    for _ in range(n):
        srank = d.u()
        name = d.sym()
        start = d.f64()
        end = d.f64()
        attrs = tuple((d.sym(), d.sym()) for _ in range(d.u()))
        spans.append(Span(srank, name, start, end, attrs))
    return SpanBatch(rank=rank, spans=tuple(spans))


wire.register_codec(SpanBatch, 28, _enc_span_batch, _dec_span_batch)


def encode_batch(rank: int, trace: Sequence[ComputeInterval]) -> bytes:
    """Wire-encode a rank's ComputeInterval trace as a SpanBatch."""
    batch = SpanBatch(rank=rank, spans=tuple(spans_from_intervals(trace)))
    data = wire.encode_always(batch)
    assert data is not None  # codec registered at module import
    return data


def decode_batch(data: bytes) -> list:
    """Decode SpanBatch bytes back to a ComputeInterval list."""
    batch = wire.decode(data)
    if not isinstance(batch, SpanBatch):
        raise wire.WireError(f"expected SpanBatch, got {type(batch).__name__}")
    return intervals_from_spans(batch.spans)


# -- conversions ------------------------------------------------------------------


def spans_from_intervals(trace: Iterable[ComputeInterval]) -> list:
    """ComputeIntervals (cluster layer) -> Spans (telemetry layer)."""
    return [Span(iv.rank, iv.label, iv.start, iv.end) for iv in trace]


def intervals_from_spans(spans: Iterable[Span]) -> list:
    """Spans -> ComputeIntervals, dropping attrs (the cluster layer has none)."""
    return [ComputeInterval(s.rank, s.start, s.end, s.name) for s in spans]


# -- enable gate ------------------------------------------------------------------

_override: Optional[bool] = None


def tracing_enabled() -> bool:
    """True when span recording is on (REPRO_TRACE=1 or set_tracing(True))."""
    if _override is not None:
        return _override
    return os.environ.get("REPRO_TRACE", "").lower() in ("1", "true", "on", "yes")


def set_tracing(flag: Optional[bool]) -> None:
    """Force tracing on/off in-process; None restores the env default."""
    global _override
    _override = flag


# -- tracer -----------------------------------------------------------------------


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe span recorder with an optional JSONL write-through sink.

    ``tracer.span("saturate", epoch="3")`` times the enclosed block and
    records a :class:`Span` on exit.  ``record(...)`` takes explicit
    timestamps for activity already measured elsewhere.
    """

    enabled = True

    def __init__(self, rank: int = 0, clock=time.perf_counter, sink: Optional[str] = None):
        self.rank = rank
        self.clock = clock
        self._spans: list = []
        self._lock = threading.Lock()
        self._sink_path = sink
        self._sink_file = open(sink, "a", encoding="utf-8") if sink else None

    @contextmanager
    def span(self, name: str, **attrs: str) -> Iterator[None]:
        start = self.clock()
        try:
            yield
        finally:
            self.record(name, start, self.clock(), **attrs)

    def record(self, name: str, start: float, end: float, **attrs: str) -> None:
        s = Span(
            self.rank,
            name,
            start,
            end,
            tuple(sorted((k, str(v)) for k, v in attrs.items())),
        )
        with self._lock:
            self._spans.append(s)
            if self._sink_file is not None:
                self._sink_file.write(json.dumps(s.to_dict(), sort_keys=True) + "\n")
                self._sink_file.flush()

    def spans(self) -> list:
        with self._lock:
            return list(self._spans)

    def batch(self) -> SpanBatch:
        return SpanBatch(rank=self.rank, spans=tuple(self.spans()))

    def close(self) -> None:
        with self._lock:
            if self._sink_file is not None:
                self._sink_file.close()
                self._sink_file = None


class _NullTracer:
    """The disabled tracer: every operation is a no-op, span() allocates nothing."""

    enabled = False
    rank = 0

    def span(self, name: str, **attrs: str):
        return _NULL_SPAN

    def record(self, name: str, start: float, end: float, **attrs: str) -> None:
        pass

    def spans(self) -> list:
        return []

    def batch(self) -> SpanBatch:
        return SpanBatch(rank=0, spans=())

    def close(self) -> None:
        pass


NULL_TRACER = _NullTracer()


# -- JSONL export -----------------------------------------------------------------


def write_spans_jsonl(path: str, spans: Iterable[Span]) -> int:
    """Write spans one-JSON-object-per-line; returns the span count."""
    n = 0
    with open(path, "w", encoding="utf-8") as f:
        for s in spans:
            f.write(json.dumps(s.to_dict(), sort_keys=True) + "\n")
            n += 1
    return n


def read_spans_jsonl(path: str) -> list:
    """Read back a JSONL span file written by write_spans_jsonl or a sink."""
    out = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(Span.from_dict(json.loads(line)))
    return out

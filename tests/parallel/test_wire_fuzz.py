"""Wire-codec fuzzing: malformed bytes must fail structurally.

The decode contract, stated in ``wire.decode``'s error handling: whatever
bytes arrive — truncated at any offset, bit-flipped anywhere, garbage
behind a valid header — the decoder either returns a message object or
raises :class:`~repro.parallel.wire.WireError` (a ``ValueError``).  No
other exception type may escape: receivers catch ``WireError`` to
quarantine bad payloads (registry recovery, the service front door), and
an ``IndexError`` leaking from the varint reader would turn a corrupt
artifact into a crash.

Runs over *every* registered message type — including the sampled-
coverage additions (codes 30/31) and the out-of-package certificate
codec (code 29) — so a new message automatically inherits the fuzz
coverage through ``test_wire.MESSAGES``.
"""

import random

import pytest

from repro.ilp.sampling import (
    ClauseCertificate,
    CoverageCertificate,
    certificate_from_bytes,
    certificate_to_bytes,
    _ensure_codec,
)
from repro.parallel import wire

from test_wire import MESSAGES  # same directory; covers every type code

CERT = CoverageCertificate(
    seed=7,
    fraction=0.25,
    delta=0.05,
    min_stratum=16,
    strata=(("pos", 3, 5), ("neg", 2, 4)),
    entries=(
        ClauseCertificate(
            clause="daughter(A, B) :- parent(B, A), female(A).",
            est_pos=4,
            est_neg=0,
            sample_pos_n=3,
            sample_neg_n=2,
            exact_pos=5,
            exact_neg=0,
            exact_good=True,
        ),
        ClauseCertificate("p.", 0, 0, 0, 0, 1, 0, True, deferred=True),
    ),
)


def _payloads():
    _ensure_codec()
    out = [(type(m).__name__, wire.encode_always(m)) for m in MESSAGES]
    out.append(("CoverageCertificate", certificate_to_bytes(CERT)))
    return out


PAYLOADS = _payloads()


def _decode(data: bytes):
    """Decode under the fuzz contract: value or WireError, nothing else."""
    try:
        return wire.decode(data)
    except wire.WireError:
        return None
    # anything else propagates and fails the test


class TestTruncation:
    @pytest.mark.parametrize("name,data", PAYLOADS, ids=[n for n, _ in PAYLOADS])
    def test_every_prefix_fails_structurally(self, name, data):
        """No prefix of a valid message may crash — or decode to a full
        message (the trailing-bytes check has no bytes to object to, but
        a shorter body must hit a reader or come back as a WireError)."""
        for cut in range(len(data)):
            _decode(data[:cut])

    def test_truncated_certificate_never_roundtrips(self):
        data = certificate_to_bytes(CERT)
        for cut in range(3, len(data)):
            try:
                out = certificate_from_bytes(data[:cut])
            except (wire.WireError, ValueError):
                continue
            assert out != CERT, f"truncation at {cut} roundtripped"


class TestBitFlips:
    @pytest.mark.parametrize("name,data", PAYLOADS, ids=[n for n, _ in PAYLOADS])
    def test_single_byte_corruption_fails_structurally(self, name, data):
        rng = random.Random(hash(name) & 0xFFFF)
        for _ in range(64):
            pos = rng.randrange(len(data))
            flip = bytes([data[pos] ^ (1 << rng.randrange(8))])
            _decode(data[:pos] + flip + data[pos + 1 :])

    def test_flipped_certificate_fails_or_stays_typed(self):
        """A corrupted certificate either fails to decode or still comes
        back as a CoverageCertificate — never another object, never a
        non-Wire crash.  (Semantic equality is *not* asserted: a flip in
        a boolean flag byte decodes to the same truth value, which is a
        non-canonical but harmless encoding, not corruption.)"""
        data = certificate_to_bytes(CERT)
        rng = random.Random(29)
        for _ in range(128):
            pos = rng.randrange(3, len(data))  # keep the header valid
            flip = bytes([data[pos] ^ (1 << rng.randrange(8))])
            blob = data[:pos] + flip + data[pos + 1 :]
            try:
                out = certificate_from_bytes(blob)
            except (wire.WireError, ValueError):
                continue
            assert isinstance(out, CoverageCertificate)


class TestGarbage:
    def test_random_bytes_never_crash(self):
        rng = random.Random(0)
        for _ in range(256):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 128)))
            _decode(blob)

    def test_valid_header_garbage_body(self):
        """A well-formed magic/version/type prefix glued to noise must
        still fail structurally for every registered type code."""
        rng = random.Random(1)
        codes = {data[2] for _, data in PAYLOADS}
        for code in sorted(codes):
            for _ in range(32):
                body = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 96)))
                _decode(PAYLOADS[0][1][:2] + bytes([code]) + body)

    def test_unknown_type_code_rejected(self):
        header = PAYLOADS[0][1][:2]
        with pytest.raises(wire.WireError, match="unknown message type"):
            wire.decode(header + bytes([250]))

    def test_wrong_type_behind_certificate_reader(self):
        for name, data in PAYLOADS:
            if name == "CoverageCertificate":
                continue
            with pytest.raises((wire.WireError, ValueError)):
                certificate_from_bytes(data)

"""Deterministic fault plans for the *service* tier.

:class:`~repro.fault.plan.FaultPlan` describes what the learning
cluster must survive; :class:`ServiceFaultPlan` is its counterpart for
the serving path — the front door, the query engine and the job
scheduler.  The same design rules carry over:

* **Triggers are logical counts, not wall-clock instants**: "reset the
  connection handling the 3rd ``query`` request", "fail the 2nd engine
  lease", "crash the slot thread picking its 1st job".  Under
  concurrent traffic the *assignment* of faults to specific requests
  depends on arrival order, but the number and kind of injected faults
  is exact, so a chaos run's invariants (result parity, zero duplicated
  jobs, zero corrupt records) are checkable run after run.
* **JSON round-trip**: plans are files (``examples/faultplans/
  service_*.json``) shared by tests, the chaos benchmark leg and
  ``repro loadgen --chaos``.
* **Strictly opt-in**: a server started without a plan carries no
  injection state at all; an empty plan normalizes to ``None``.

Event types
-----------
:class:`ConnReset`
    Abort the TCP connection instead of (or after) answering the Nth
    matching request — ``when="before"`` models a request that never
    reached the handler, ``when="after"`` the nastier case where the
    server *did* the work but the response was lost (the case
    idempotency keys exist for).
:class:`LeaseFault`
    The Nth engine lease taken by sharded query evaluation either fails
    (``mode="fail"`` — the client sees a retryable ``unavailable``
    error) or stalls ``delay`` seconds (``mode="slow"`` — tail latency,
    results unchanged).
:class:`SlotCrash`
    The scheduler worker thread that picks the Nth job dies before
    executing it, exactly as if the thread was lost mid-run.  The
    scheduler's self-healing path re-queues the orphaned job under its
    original id (no duplication) and respawns the slot.
:class:`PersistFault`
    The Nth durable write of the matching ``target`` (``"job"`` records
    or ``"registry"`` artifacts) fails after the tmp file is written
    but before the atomic rename — the torn-write window
    :mod:`repro.util.atomicio` exists to make survivable.

The mutable, thread-safe counterpart is :class:`ServiceFaultInjector`:
one per server, consulted from the serving hot paths, recording every
injected event in :attr:`ServiceFaultInjector.log`.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, replace
from typing import Optional

from repro.fault.plan import FaultRecord

__all__ = [
    "ConnReset",
    "LeaseFault",
    "SlotCrash",
    "PersistFault",
    "ServiceFaultPlan",
    "ServiceFaultInjector",
    "InjectedFault",
    "normalize_service_plan",
]


class InjectedFault(RuntimeError):
    """Raised (or simulated) at an injection point; never a real bug."""


@dataclass(frozen=True)
class ConnReset:
    """Abort the connection serving the ``on_request``-th matching request.

    ``op`` restricts the counter to one operation (``None`` counts every
    request).  ``when="before"`` drops the request unprocessed;
    ``when="after"`` processes it, discards the response, then resets —
    the client cannot tell whether the work happened, which is exactly
    what retry + idempotency must make safe.
    """

    on_request: int
    op: Optional[str] = None
    when: str = "before"

    def __post_init__(self):
        if self.on_request < 1:
            raise ValueError("on_request is 1-based")
        if self.when not in ("before", "after"):
            raise ValueError("when must be 'before' or 'after'")


@dataclass(frozen=True)
class LeaseFault:
    """Fail or slow the ``on_lease``-th engine lease of the query tier."""

    on_lease: int
    mode: str = "fail"
    delay: float = 0.0

    def __post_init__(self):
        if self.on_lease < 1:
            raise ValueError("on_lease is 1-based")
        if self.mode not in ("fail", "slow"):
            raise ValueError("mode must be 'fail' or 'slow'")
        if self.mode == "slow" and self.delay <= 0:
            raise ValueError("slow leases need a positive delay")


@dataclass(frozen=True)
class SlotCrash:
    """Kill the scheduler slot thread picking the ``on_job``-th job."""

    on_job: int

    def __post_init__(self):
        if self.on_job < 1:
            raise ValueError("on_job is 1-based")


@dataclass(frozen=True)
class PersistFault:
    """Fail the ``on_write``-th durable write of ``target`` artifacts."""

    on_write: int
    target: str = "job"

    def __post_init__(self):
        if self.on_write < 1:
            raise ValueError("on_write is 1-based")
        if self.target not in ("job", "registry"):
            raise ValueError("target must be 'job' or 'registry'")


@dataclass(frozen=True)
class ServiceFaultPlan:
    """Everything injected into (and tolerated by) one served instance."""

    resets: tuple[ConnReset, ...] = ()
    leases: tuple[LeaseFault, ...] = ()
    crashes: tuple[SlotCrash, ...] = ()
    persist: tuple[PersistFault, ...] = ()

    @property
    def empty(self) -> bool:
        return not (self.resets or self.leases or self.crashes or self.persist)

    def replace(self, **kw) -> "ServiceFaultPlan":
        return replace(self, **kw)

    # -- (de)serialization --------------------------------------------------------

    def to_json(self) -> str:
        events: list[dict] = []
        for ev in self.resets:
            d: dict = {"kind": "reset", "on_request": ev.on_request, "when": ev.when}
            if ev.op is not None:
                d["op"] = ev.op
            events.append(d)
        for ev in self.leases:
            d = {"kind": "lease", "on_lease": ev.on_lease, "mode": ev.mode}
            if ev.mode == "slow":
                d["delay"] = ev.delay
            events.append(d)
        for ev in self.crashes:
            events.append({"kind": "slot_crash", "on_job": ev.on_job})
        for ev in self.persist:
            events.append(
                {"kind": "persist", "on_write": ev.on_write, "target": ev.target}
            )
        return json.dumps({"events": events}, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ServiceFaultPlan":
        doc = json.loads(text)
        resets: list[ConnReset] = []
        leases: list[LeaseFault] = []
        crashes: list[SlotCrash] = []
        persist: list[PersistFault] = []
        for ev in doc.get("events", ()):
            kind = ev.get("kind")
            if kind == "reset":
                resets.append(
                    ConnReset(
                        on_request=ev["on_request"],
                        op=ev.get("op"),
                        when=ev.get("when", "before"),
                    )
                )
            elif kind == "lease":
                leases.append(
                    LeaseFault(
                        on_lease=ev["on_lease"],
                        mode=ev.get("mode", "fail"),
                        delay=ev.get("delay", 0.0),
                    )
                )
            elif kind == "slot_crash":
                crashes.append(SlotCrash(on_job=ev["on_job"]))
            elif kind == "persist":
                persist.append(
                    PersistFault(
                        on_write=ev["on_write"], target=ev.get("target", "job")
                    )
                )
            else:
                raise ValueError(f"unknown service fault event kind {kind!r}")
        return cls(
            resets=tuple(resets),
            leases=tuple(leases),
            crashes=tuple(crashes),
            persist=tuple(persist),
        )

    @classmethod
    def load(cls, path: str) -> "ServiceFaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")


def normalize_service_plan(
    plan: Optional[ServiceFaultPlan],
) -> Optional[ServiceFaultPlan]:
    """None, or a plan that actually injects something."""
    if plan is None or plan.empty:
        return None
    return plan


class ServiceFaultInjector:
    """Thread-safe trigger state for one served instance.

    The serving layers consult it at four choke points; each consult
    advances the matching 1-based counter and answers "inject now?".
    All injected events are appended to :attr:`log` (as
    :class:`~repro.fault.plan.FaultRecord`, with the counter value in
    the ``time`` slot — service faults are count-triggered, not
    time-triggered).
    """

    def __init__(self, plan: ServiceFaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._requests = 0
        self._requests_by_op: dict[str, int] = {}
        self._leases = 0
        self._jobs_picked = 0
        self._writes: dict[str, int] = {}
        self.log: list[FaultRecord] = []

    def _record(self, kind: str, count: int, detail: str) -> None:
        self.log.append(FaultRecord(kind=kind, rank=0, time=float(count), detail=detail))

    # -- choke points ------------------------------------------------------------

    def on_request(self, op: Optional[str]) -> Optional[ConnReset]:
        """The reset to inject for this request, else None."""
        with self._lock:
            self._requests += 1
            if op is not None:
                self._requests_by_op[op] = self._requests_by_op.get(op, 0) + 1
            for ev in self.plan.resets:
                count = (
                    self._requests_by_op.get(ev.op, 0)
                    if ev.op is not None
                    else self._requests
                )
                if (ev.op is None or ev.op == op) and count == ev.on_request:
                    self._record(
                        "reset", count, f"op={op} when={ev.when}"
                    )
                    return ev
            return None

    def on_lease(self) -> Optional[LeaseFault]:
        """The lease fault to apply to this engine lease, else None."""
        with self._lock:
            self._leases += 1
            for ev in self.plan.leases:
                if self._leases == ev.on_lease:
                    self._record("lease", self._leases, f"mode={ev.mode}")
                    return ev
            return None

    def on_job_pick(self) -> bool:
        """True when the slot thread picking this job must crash."""
        with self._lock:
            self._jobs_picked += 1
            for ev in self.plan.crashes:
                if self._jobs_picked == ev.on_job:
                    self._record("slot_crash", self._jobs_picked, "")
                    return True
            return False

    def on_persist(self, target: str) -> bool:
        """True when this durable write must fail (pre-rename)."""
        with self._lock:
            count = self._writes.get(target, 0) + 1
            self._writes[target] = count
            for ev in self.plan.persist:
                if ev.target == target and count == ev.on_write:
                    self._record("persist", count, f"target={target}")
                    return True
            return False

    def persist_hook(self, target: str):
        """An :func:`repro.util.atomicio.atomic_write_bytes` ``fail_hook``.

        Returns a callable (or None when the plan has no matching
        events) that raises :class:`InjectedFault` inside the
        torn-write window of the ``on_write``-th matching write.
        """
        if not any(ev.target == target for ev in self.plan.persist):
            return None

        def hook(tmp_path: str) -> None:
            if self.on_persist(target):
                raise InjectedFault(
                    f"injected persistence failure ({target} write, {tmp_path})"
                )

        return hook

    def snapshot(self) -> dict:
        """Counters + injected-event log lines (for the stats op)."""
        with self._lock:
            return {
                "requests": self._requests,
                "leases": self._leases,
                "jobs_picked": self._jobs_picked,
                "writes": dict(self._writes),
                "injected": [str(rec) for rec in self.log],
            }

"""Protocol-level unit tests for P2Master, mirroring the worker harness:
drive the master generator by hand and check the Fig. 5 message sequence.
"""

import pytest

from repro.cluster.message import Message, Tag, payload_nbytes
from repro.cluster.process import BcastOp, ComputeOp, ProcContext, RecvOp, SendOp
from repro.ilp.config import ILPConfig
from repro.ilp.refinement import SearchRule
from repro.logic.parser import parse_clause
from repro.parallel.master import P2Master
from repro.parallel.messages import (
    EvaluateRequest,
    EvaluateResult,
    LoadExamples,
    MarkCovered,
    PipelineRules,
    RuleStats,
    StartPipeline,
    Stop,
)


class FakeCluster:
    def __init__(self, n_procs):
        self.n_procs = n_procs

    def clock_of(self, rank):
        return 0.0


class MasterHarness:
    def __init__(self, master: P2Master):
        self.master = master
        ctx = ProcContext(0, FakeCluster(master.n_workers + 1))
        self.gen = master.run(ctx)
        self.sent: list[SendOp] = []
        self.done = False
        self._advance(None)

    def _advance(self, value):
        try:
            op = self.gen.send(value)
        except StopIteration:
            self.done = True
            return
        while True:
            if isinstance(op, RecvOp):
                self.waiting = op
                return
            if isinstance(op, SendOp):
                self.sent.append(op)
            elif isinstance(op, BcastOp):
                for dst in op.dsts:
                    self.sent.append(SendOp(dst, op.payload, op.tag))
            elif not isinstance(op, ComputeOp):  # pragma: no cover
                raise TypeError(op)
            try:
                op = self.gen.send(None)
            except StopIteration:
                self.done = True
                return

    def deliver(self, payload, src, tag):
        msg = Message(
            src=src, dst=0, tag=tag, payload=payload,
            nbytes=payload_nbytes(payload), send_time=0.0, arrival_time=0.0, seq=0,
        )
        self._advance(msg)

    def take_sent(self):
        out, self.sent = self.sent, []
        return out


RULE = parse_clause("daughter(A, B) :- parent(B, A), female(A).")
BAD_RULE = parse_clause("daughter(A, B) :- parent(B, A).")


@pytest.fixture
def master():
    cfg = ILPConfig(min_pos=1, noise=0, max_clause_length=3)
    return P2Master(n_workers=2, total_pos=6, config=cfg, width=10)


class TestStartup:
    def test_load_then_start(self, master):
        h = MasterHarness(master)
        sent = h.take_sent()
        loads = [s for s in sent if isinstance(s.payload, LoadExamples)]
        starts = [s for s in sent if isinstance(s.payload, StartPipeline)]
        assert [s.dst for s in loads] == [1, 2]
        assert [s.dst for s in starts] == [1, 2]
        assert all(s.payload.width == 10 for s in starts)
        assert isinstance(h.waiting, RecvOp)
        assert h.waiting.tag == Tag.RULES


class TestEpoch:
    def _run_one_epoch(self, master, rules, local_stats):
        """Feed one epoch: two PipelineRules, then evaluate replies."""
        h = MasterHarness(master)
        h.take_sent()
        h.deliver(PipelineRules(origin=1, rules=rules), src=1, tag=Tag.RULES)
        h.deliver(PipelineRules(origin=2, rules=()), src=2, tag=Tag.RULES)
        # master broadcast evaluate; answer it
        sent = h.take_sent()
        evals = [s for s in sent if isinstance(s.payload, EvaluateRequest)]
        assert len(evals) == 2
        order = evals[0].payload.rules
        stats = tuple(RuleStats(*local_stats[c]) for c in order)
        h.deliver(EvaluateResult(rank=1, stats=stats), src=1, tag=Tag.RESULT)
        h.deliver(EvaluateResult(rank=2, stats=stats), src=2, tag=Tag.RESULT)
        return h

    def test_good_rule_accepted_and_marked(self, master):
        sr = SearchRule(RULE, 1)
        h = self._run_one_epoch(master, (sr,), {RULE: (3, 0)})
        sent = h.take_sent()
        marks = [s for s in sent if isinstance(s.payload, MarkCovered)]
        assert len(marks) == 2  # broadcast to both workers
        assert marks[0].payload.rule == RULE
        assert master.theory[0] == RULE
        assert master.remaining == 6 - 6  # 3 pos per worker, summed

    def test_bad_rule_dropped(self, master):
        sr = SearchRule(BAD_RULE, 0)
        h = self._run_one_epoch(master, (sr,), {BAD_RULE: (3, 5)})  # too many negs
        sent = h.take_sent()
        assert not [s for s in sent if isinstance(s.payload, MarkCovered)]
        assert len(master.theory) == 0

    def test_empty_bags_stall_then_stop(self, master):
        h = MasterHarness(master)
        h.take_sent()
        for _ in range(master.stall_limit):
            h.deliver(PipelineRules(origin=1, rules=()), src=1, tag=Tag.RULES)
            h.deliver(PipelineRules(origin=2, rules=()), src=2, tag=Tag.RULES)
        sent = h.take_sent()
        stops = [s for s in sent if isinstance(s.payload, Stop)]
        assert len(stops) == 2
        assert h.done
        assert master.epochs == master.stall_limit

"""Versioned on-disk registry of learned theories.

A registry is a directory tree::

    <root>/<name>/v0001.theory
    <root>/<name>/v0002.theory
    <root>/<name>/PROMOTED          # text file: the blessed version number

Each ``vNNNN.theory`` file is one :class:`RegistryRecord` serialized with
the compact wire codec of :mod:`repro.parallel.wire` (type code 22 —
the same append-only registry the checkpoint format uses, and the same
byte-exact, hash-seed-independent marshalling the cluster trusts for
clauses).  A record carries the theory itself plus everything needed to
trust and reproduce it:

* the ``repr`` of the :class:`~repro.ilp.config.ILPConfig` the run used
  (``config_sig`` — the guard ``repro resume`` also uses);
* free-form provenance pairs (dataset / seed / scale / algorithm /
  backend / git SHA / epochs / accuracy ...);
* the publishing epoch summary, when the producing run recorded one.

Versions are immutable and append-only; ``promote`` moves a pointer,
never rewrites an artifact.  Readers default to the promoted version,
falling back to the latest.
"""

from __future__ import annotations

import os
import re
import struct
import subprocess
from dataclasses import dataclass, replace
from typing import Optional

from repro.logic.clause import Clause, Theory
from repro.parallel import wire
from repro.util.atomicio import atomic_write_bytes, atomic_write_text

__all__ = [
    "RegistryRecord",
    "RegistryError",
    "TheoryRegistry",
    "theory_diff",
    "validate_name",
]

#: wire type code of a registry record (append-only; 21 = checkpoint,
#: 22 = registry record, 23 = job record).
_WIRE_CODE = 22

REGISTRY_VERSION = 1

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class RegistryError(ValueError):
    """Unknown name/version, corrupt artifact, or invalid operation."""


def validate_name(name: str) -> str:
    """Check a theory name against the registry's naming rule.

    Callers that *accept* names for later publication (job submission's
    ``register_as``) validate here up front, so an hours-long learning
    run never fails at publish time over a typo.
    """
    if not _NAME_RE.match(name):
        raise RegistryError(
            f"invalid theory name {name!r} (want letters/digits/._- "
            "starting with a letter or digit)"
        )
    return name


@dataclass(frozen=True)
class RegistryRecord:
    """One immutable published theory version."""

    format_version: int
    name: str
    version: int
    theory: tuple[Clause, ...]
    #: ``repr`` of the producing run's ILPConfig (resume-style guard).
    config_sig: str = ""
    #: free-form provenance (dataset, seed, algo, git SHA, ...).
    provenance: tuple[tuple[str, str], ...] = ()
    #: per-epoch (epoch, bag_size, pos_covered) summary, when known.
    epoch_summary: tuple[tuple[int, int, int], ...] = ()

    def replace(self, **kw) -> "RegistryRecord":
        return replace(self, **kw)

    def provenance_dict(self) -> dict[str, str]:
        return dict(self.provenance)

    def to_theory(self) -> Theory:
        return Theory(self.theory)

    def to_dict(self) -> dict:
        """Plain-data summary (theory as Prolog text) for JSON responses."""
        from repro.logic.io import theory_to_prolog

        return {
            "name": self.name,
            "version": self.version,
            "rules": len(self.theory),
            "config_sig": self.config_sig,
            "provenance": self.provenance_dict(),
            "theory": theory_to_prolog(self.to_theory()),
        }


def _enc_registry_record(e, r: RegistryRecord) -> None:
    e.u(r.format_version)
    e.sym(r.name)
    e.u(r.version)
    e.clauses(r.theory)
    e.sym(r.config_sig)
    e.u(len(r.provenance))
    for k, v in r.provenance:
        e.sym(k)
        e.sym(v)
    e.u(len(r.epoch_summary))
    for epoch, bag_size, pos_covered in r.epoch_summary:
        e.u(epoch)
        e.u(bag_size)
        e.u(pos_covered)


def _dec_registry_record(d) -> RegistryRecord:
    format_version = d.u()
    if format_version != REGISTRY_VERSION:
        raise RegistryError(f"unsupported registry record version {format_version}")
    return RegistryRecord(
        format_version=format_version,
        name=d.sym(),
        version=d.u(),
        theory=d.clauses(),
        config_sig=d.sym(),
        provenance=tuple((d.sym(), d.sym()) for _ in range(d.u())),
        epoch_summary=tuple((d.u(), d.u(), d.u()) for _ in range(d.u())),
    )


wire.register_codec(RegistryRecord, _WIRE_CODE, _enc_registry_record, _dec_registry_record)


def _git_sha() -> str:
    """Best-effort HEAD SHA of the *code* checkout producing the theory.

    Resolved from the installed package's own directory — never from the
    registry root, which routinely lives outside the repository (temp
    dirs, data volumes) or inside an unrelated one.  "unknown" when the
    code does not come from a git checkout.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True,
            cwd=os.path.dirname(os.path.abspath(__file__)), timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def theory_diff(old: Theory, new: Theory) -> dict[str, list[Clause]]:
    """Clause-level diff of two theories, keyed by canonical variant.

    Two clauses are "the same rule" when their
    :meth:`~repro.logic.clause.Clause.variant_key` match (renamed
    variants evaluate identically, so they are operationally one rule).
    Returns ``{"added": [...], "removed": [...], "unchanged": [...]}``
    in stable clause order.
    """
    old_keys = {c.variant_key(): c for c in old}
    new_keys = {c.variant_key(): c for c in new}
    return {
        "added": [c for k, c in new_keys.items() if k not in old_keys],
        "removed": [c for k, c in old_keys.items() if k not in new_keys],
        "unchanged": [c for k, c in new_keys.items() if k in old_keys],
    }


class TheoryRegistry:
    """Filesystem-backed registry of versioned learned theories.

    All operations are safe under concurrent publishers in one process
    (an internal lock serializes version allocation) and atomic on disk
    (tmp + fsync + rename via :mod:`repro.util.atomicio`), so a crashed
    publisher never leaves a torn artifact — at worst an unreferenced
    tmp file, which the atomic writer removes on failure anyway.

    ``fault_injector`` (chaos testing only) is a
    :class:`~repro.fault.service.ServiceFaultInjector` whose
    ``persist_hook("registry")`` fails selected writes inside the
    torn-write window.
    """

    def __init__(self, root: str, fault_injector=None):
        self.root = root
        self._injector = fault_injector
        os.makedirs(root, exist_ok=True)
        import threading

        self._lock = threading.Lock()
        #: ``"name/vNNNN"`` certificate artifacts quarantined by
        #: :meth:`recover` (renamed ``*.cert.corrupt``, never served).
        self.quarantined: list[str] = []

    def _fail_hook(self):
        if self._injector is None:
            return None
        return self._injector.persist_hook("registry")

    # -- paths -------------------------------------------------------------------

    def _dir(self, name: str) -> str:
        validate_name(name)
        return os.path.join(self.root, name)

    def _path(self, name: str, version: int) -> str:
        return os.path.join(self._dir(name), f"v{version:04d}.theory")

    def certificate_path(self, name: str, version: int) -> str:
        """Path of a version's coverage certificate (may not exist —
        only sampled runs produce one)."""
        return os.path.join(self._dir(name), f"v{version:04d}.cert")

    # -- read side ---------------------------------------------------------------

    def names(self) -> list[str]:
        """All registered theory names, sorted.

        Entries that are not theory directories — stray files, dirs with
        non-conforming names (``.git``, ``_backup``), dirs without
        version artifacts — are skipped, never errors: a listing must
        survive whatever else lives in the root.
        """
        return sorted(
            n for n in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, n))
            and _NAME_RE.match(n)
            and self.versions(n)
        )

    def versions(self, name: str) -> list[int]:
        """Published version numbers of ``name``, ascending."""
        d = self._dir(name)
        if not os.path.isdir(d):
            return []
        out = []
        for fn in os.listdir(d):
            # 4+ digits: v%04d pads to four but grows naturally past v9999,
            # and the listing must keep seeing every artifact it ever wrote.
            m = re.match(r"^v(\d{4,})\.theory$", fn)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def latest_version(self, name: str) -> int:
        versions = self.versions(name)
        if not versions:
            raise RegistryError(f"no theory registered under {name!r}")
        return versions[-1]

    def promoted_version(self, name: str) -> Optional[int]:
        """The promoted version of ``name``, or None if nothing promoted."""
        path = os.path.join(self._dir(name), "PROMOTED")
        if not os.path.isfile(path):
            return None
        with open(path, encoding="ascii") as fh:
            return int(fh.read().strip())

    def resolve_version(self, name: str, version: Optional[int] = None) -> int:
        """Explicit version, else the promoted one, else the latest."""
        if version is not None:
            if version not in self.versions(name):
                raise RegistryError(f"{name!r} has no version {version}")
            return version
        promoted = self.promoted_version(name)
        return promoted if promoted is not None else self.latest_version(name)

    def get(self, name: str, version: Optional[int] = None) -> RegistryRecord:
        """Load one record (default: promoted version, else latest)."""
        version = self.resolve_version(name, version)
        path = self._path(name, version)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise RegistryError(f"{name} v{version}: {exc}") from exc
        try:
            record = wire.decode(data)
        except (wire.WireError, IndexError, struct.error, UnicodeDecodeError) as exc:
            raise RegistryError(f"{path}: corrupt artifact ({exc})") from exc
        if not isinstance(record, RegistryRecord):
            raise RegistryError(f"{path}: not a registry record")
        return record

    def get_certificate(self, name: str, version: Optional[int] = None):
        """Load a version's :class:`~repro.ilp.sampling.CoverageCertificate`.

        Returns None when the version has no certificate (exact runs
        don't emit one); raises :class:`RegistryError` on a corrupt
        artifact — readers distinguish "absent" from "damaged".
        """
        from repro.ilp.sampling import certificate_from_bytes

        version = self.resolve_version(name, version)
        path = self.certificate_path(name, version)
        if not os.path.isfile(path):
            return None
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise RegistryError(f"{name} v{version} certificate: {exc}") from exc
        try:
            return certificate_from_bytes(data)
        except (wire.WireError, IndexError, struct.error, UnicodeDecodeError, ValueError) as exc:
            raise RegistryError(f"{path}: corrupt certificate ({exc})") from exc

    def recover(self) -> list[str]:
        """Quarantine corrupt certificate artifacts (startup hygiene).

        Mirrors the job scheduler's recovery policy: every ``.cert`` file
        that fails to decode is renamed ``.cert.corrupt`` (preserved for
        forensics, invisible to readers) and listed in
        :attr:`quarantined`; the theory artifact itself — the exact,
        separately-written record — stays served.  Never raises on a bad
        artifact: recovery must always complete.
        """
        from repro.ilp.sampling import certificate_from_bytes

        found: list[str] = []
        for name in self.names():
            for version in self.versions(name):
                path = self.certificate_path(name, version)
                if not os.path.isfile(path):
                    continue
                try:
                    with open(path, "rb") as fh:
                        certificate_from_bytes(fh.read())
                except Exception:
                    os.replace(path, path + ".corrupt")
                    tag = f"{name}/v{version:04d}"
                    self.quarantined.append(tag)
                    found.append(tag)
        return found

    def diff(self, name: str, old_version: int, new_version: int) -> dict[str, list[Clause]]:
        """Variant-key clause diff between two versions of ``name``."""
        old = self.get(name, old_version).to_theory()
        new = self.get(name, new_version).to_theory()
        return theory_diff(old, new)

    # -- write side --------------------------------------------------------------

    def publish(
        self,
        name: str,
        theory: Theory,
        *,
        config_sig: str = "",
        provenance: Optional[dict] = None,
        epoch_summary: tuple = (),
        certificate=None,
    ) -> RegistryRecord:
        """Append the next version of ``name``; returns the stored record.

        Provenance is augmented with the repository's git SHA when not
        already supplied (``"unknown"`` outside a git checkout).

        ``certificate`` (a sampled run's
        :class:`~repro.ilp.sampling.CoverageCertificate`) is persisted as
        a sibling ``vNNNN.cert`` artifact — written *before* the theory
        record, so the crash-retry contract ("a failed publish never
        wrote the version artifact") still holds: a version either
        doesn't exist yet, or exists with its certificate already on
        disk.  The ``.theory`` layout itself is frozen (format v1).
        """
        prov = dict(provenance or {})
        prov.setdefault("git_sha", _git_sha())
        with self._lock:
            version = (self.versions(name) or [0])[-1] + 1
            record = RegistryRecord(
                format_version=REGISTRY_VERSION,
                name=name,
                version=version,
                theory=tuple(theory),
                config_sig=config_sig,
                provenance=tuple(sorted((str(k), str(v)) for k, v in prov.items())),
                epoch_summary=tuple(epoch_summary),
            )
            data = wire.encode_always(record)
            assert data is not None
            d = self._dir(name)
            os.makedirs(d, exist_ok=True)
            if certificate is not None:
                from repro.ilp.sampling import certificate_to_bytes

                atomic_write_bytes(
                    self.certificate_path(name, version),
                    certificate_to_bytes(certificate),
                    fail_hook=self._fail_hook(),
                )
            path = self._path(name, version)
            atomic_write_bytes(path, data, fail_hook=self._fail_hook())
            return record

    def promote(self, name: str, version: int) -> int:
        """Bless ``version`` as the default served version of ``name``."""
        with self._lock:  # concurrent promotes share one PROMOTED.tmp path
            if version not in self.versions(name):
                raise RegistryError(f"{name!r} has no version {version}")
            path = os.path.join(self._dir(name), "PROMOTED")
            atomic_write_text(
                path, f"{version}\n", encoding="ascii",
                fail_hook=self._fail_hook(),
            )
            return version

    def gc(self, name: str, keep: int = 1) -> list[int]:
        """Drop old versions of ``name``, keeping the newest ``keep``.

        Retention for long-lived registries: version artifacts are
        removed oldest-first, always keeping the newest ``keep`` (≥ 1 —
        a registered name never loses its last version) **and** the
        promoted version, whatever its age: a gc must never pull the
        served theory out from under running queries.  Version numbers
        are never reused — :meth:`publish` continues from the highest
        version ever allocated, because the newest version always
        survives.  Returns the removed version numbers, ascending.
        """
        if keep < 1:
            raise ValueError("keep must be >= 1")
        with self._lock:
            versions = self.versions(name)
            if not versions:
                raise RegistryError(f"no theory registered under {name!r}")
            promoted = self.promoted_version(name)
            survivors = set(versions[-keep:])
            if promoted is not None:
                survivors.add(promoted)
            removed = []
            for v in versions:
                if v in survivors:
                    continue
                os.remove(self._path(name, v))
                cert = self.certificate_path(name, v)
                if os.path.isfile(cert):
                    os.remove(cert)
                removed.append(v)
            return removed

"""End-to-end telemetry through the live service: request ids stamped at
the transport, the ``metrics`` op, the Prometheus scrape endpoint, and
the per-request span sink behind ``repro serve --trace-out``."""

import socket
import threading

import pytest

from repro.obs import Tracer, read_spans_jsonl
from repro.service.server import ServiceClient, serve, stamp_request_id


def start_server(tmp_path, **kwargs):
    """serve() on an ephemeral port; returns (thread, server)."""
    ready = threading.Event()
    box = {}

    def on_ready(server):
        box["server"] = server
        ready.set()

    thread = threading.Thread(
        target=serve,
        kwargs=dict(
            port=0,
            slots=1,
            state_dir=str(tmp_path / "jobs"),
            registry_dir=str(tmp_path / "registry"),
            ready=on_ready,
            **kwargs,
        ),
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=10), "server did not come up"
    return thread, box["server"]


def shutdown(port, thread):
    with ServiceClient(port=port) as c:
        c.request({"op": "shutdown"})
    thread.join(timeout=15)


def http_get(port, path="/metrics", timeout=10.0):
    """Minimal HTTP/1.0 GET; returns (status_line, headers, body)."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.sendall(f"GET {path} HTTP/1.0\r\nHost: x\r\n\r\n".encode())
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    raw = b"".join(chunks).decode("utf-8")
    head, _, body = raw.partition("\r\n\r\n")
    status, *header_lines = head.split("\r\n")
    headers = dict(h.split(": ", 1) for h in header_lines if ": " in h)
    return status, headers, body


class TestStampRequestId:
    def test_generates_when_absent(self):
        req = {"op": "ping"}
        rid = stamp_request_id(req)
        assert req["request_id"] == rid
        assert rid.startswith("req-")

    def test_keeps_client_supplied_id(self):
        req = {"op": "ping", "request_id": "mine-42"}
        assert stamp_request_id(req) == "mine-42"
        assert req["request_id"] == "mine-42"

    def test_unique(self):
        assert stamp_request_id({}) != stamp_request_id({})


class TestLiveTelemetry:
    @pytest.fixture
    def server(self, tmp_path):
        trace_path = str(tmp_path / "serve-trace.jsonl")
        tracer = Tracer(rank=0, sink=trace_path)
        thread, srv = start_server(tmp_path, metrics_port=0, tracer=tracer)
        assert srv.metrics_bound_port, "metrics endpoint did not bind"
        yield srv, trace_path
        shutdown(srv.port, thread)

    def test_request_id_echoed_on_every_transport(self, server):
        srv, _ = server
        with ServiceClient(port=srv.port) as c:
            resp = c.request({"op": "ping"})
            assert resp["ok"]
            assert resp["request_id"].startswith("req-")
            echoed = c.request({"op": "ping", "request_id": "mine-1"})
            assert echoed["request_id"] == "mine-1"
        with ServiceClient(port=srv.port, transport="wire") as c:
            resp = c.request({"op": "ping"})
            assert resp["request_id"].startswith("req-")

    def test_metrics_op_counts_requests(self, server):
        srv, _ = server
        with ServiceClient(port=srv.port) as c:
            c.request({"op": "ping"})
            resp = c.request({"op": "metrics"})
        assert resp["ok"]
        assert resp["metrics"]["repro_requests_total"]["op=ping"] >= 1

    def test_prometheus_endpoint(self, server):
        srv, _ = server
        with ServiceClient(port=srv.port) as c:
            c.request({"op": "ping"})
        status, headers, body = http_get(srv.metrics_bound_port)
        assert " 200 " in status
        assert headers["Content-Type"].startswith("text/plain")
        assert int(headers["Content-Length"]) == len(body.encode("utf-8"))
        assert "# TYPE repro_requests_total counter" in body
        assert 'repro_requests_total{op="ping"}' in body
        assert "repro_request_latency_seconds_bucket" in body
        assert "repro_scheduler_slots" in body

    def test_trace_sink_records_request_spans(self, server):
        srv, trace_path = server
        with ServiceClient(port=srv.port) as c:
            c.request({"op": "ping"})
            c.request({"op": "stats"})
        spans = read_spans_jsonl(trace_path)
        names = {s.name for s in spans}
        assert "op:ping" in names and "op:stats" in names
        for s in spans:
            assert s.end >= s.start

"""Shared fixtures for the learning-as-a-service tests."""

import pytest

from repro.datasets import make_dataset


@pytest.fixture(scope="session")
def trains():
    return make_dataset("trains", seed=0)


@pytest.fixture(scope="session")
def krki():
    return make_dataset("krki", seed=0)


@pytest.fixture
def registry(tmp_path):
    from repro.service import TheoryRegistry

    return TheoryRegistry(str(tmp_path / "registry"))


@pytest.fixture(scope="session")
def trains_theory():
    """A learned trains theory (sequential mdie, seed 0) for registry/query tests."""
    from repro.service import JobSpec, run_job

    return run_job(JobSpec(dataset="trains", algo="mdie", seed=0))

"""Compute-cost models: engine operations → virtual seconds.

The logic engine counts *inference operations* (candidate unifications);
a :class:`CostModel` converts an operation delta into virtual CPU seconds
on a simulated node.  Using operation counts instead of host wall time
makes runs deterministic and host-independent while preserving relative
compute costs exactly (every coverage test costs what it costs *on the
data it runs on* — the basis of the paper's data-parallel speedup).

``sec_per_op`` is calibrated so that paper-scale sequential runs land in
the "thousands of seconds" regime the paper reports (§5.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["CostModel", "OpsCostModel", "WallClockCostModel", "DEFAULT_COST_MODEL"]


class CostModel:
    """Interface: convert work measures into virtual seconds."""

    def seconds_for_ops(self, ops: int) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def seconds_for_ops_at(self, rank: int, ops: int) -> float:
        """Per-node cost; uniform clusters ignore ``rank``."""
        return self.seconds_for_ops(ops)


@dataclass(frozen=True)
class OpsCostModel(CostModel):
    """Deterministic model: ``ops * sec_per_op``.

    The default ``sec_per_op`` of 40 µs corresponds to a 2005-era node
    resolving ~25k candidate unifications per second through a Prolog
    meta-level — deliberately coarse, since only *ratios* matter for
    speedup/crossover shapes.
    """

    sec_per_op: float = 40e-6

    def __post_init__(self):
        if self.sec_per_op <= 0:
            raise ValueError("sec_per_op must be positive")

    def seconds_for_ops(self, ops: int) -> float:
        return ops * self.sec_per_op


class WallClockCostModel(CostModel):
    """Host wall-clock model: virtual seconds = measured host seconds × scale.

    Non-deterministic across hosts; provided for sanity-checking the ops
    model (the shapes should agree).  Use :meth:`measure` around the
    computation and pass the result through ``seconds_for_ops``-compatible
    accounting via :class:`repro.cluster.process.ProcContext.compute`.
    """

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale

    def seconds_for_ops(self, ops: int) -> float:
        # Interpreted as pre-measured host seconds when ops carries time.
        return ops * self.scale

    @staticmethod
    def clock() -> float:
        return time.perf_counter()


class PerRankCostModel(CostModel):
    """Heterogeneous cluster: per-rank speed multipliers over a base model.

    A scale of 2.0 makes a node twice as *slow*.  The paper's pipeline
    assumes near-identical stage granularity ("balanced computations",
    §4.1); this model lets the ablation benches quantify how a straggler
    node erodes that assumption.
    """

    def __init__(self, base: CostModel | None = None, scales: dict | None = None):
        self.base = base or OpsCostModel()
        self.scales = dict(scales or {})
        for rank, s in self.scales.items():
            if s <= 0:
                raise ValueError(f"scale for rank {rank} must be positive")

    def seconds_for_ops(self, ops: int) -> float:
        return self.base.seconds_for_ops(ops)

    def seconds_for_ops_at(self, rank: int, ops: int) -> float:
        return self.base.seconds_for_ops(ops) * self.scales.get(rank, 1.0)


DEFAULT_COST_MODEL = OpsCostModel()

"""Table 6 — average predictive accuracy with paired t-test stars.

The paper's quality claim: partitioned, pipelined learning does not
significantly change predictive accuracy (98% confidence, paired t-test),
and the rare significant differences are *improvements*.  Benchmarks the
test-set evaluation step.
"""

import pytest

from conftest import FOLDS, PS, SEED, one_shot
from repro.datasets import make_dataset
from repro.experiments.crossval import kfold
from repro.experiments.stats import paired_ttest
from repro.experiments.tables import table6_accuracy
from repro.ilp import accuracy, mdie
from repro.logic import Engine


def test_table6(benchmark, matrix, table_sink):
    table_sink("table6_accuracy", one_shot(benchmark, table6_accuracy, matrix, ps=PS))
    # Quality-preservation check: where the t-test flags significance, the
    # change must not be a *degradation* large enough to matter; and most
    # cells must be statistically indistinguishable from sequential.
    n_cells = 0
    n_signif_decline = 0
    for ds in {r.dataset for r in matrix.records}:
        seq = matrix.fold_values("test_accuracy", ds, None, 1)
        for width in (None, 10):
            for p in PS:
                par = matrix.fold_values("test_accuracy", ds, width, p)
                if len(par) != len(seq) or len(seq) < 2:
                    continue
                n_cells += 1
                r = paired_ttest(seq, par)
                if r.significant and not r.improved:
                    n_signif_decline += 1
    assert n_cells > 0
    assert n_signif_decline <= max(1, n_cells // 6), (
        f"{n_signif_decline}/{n_cells} cells significantly WORSE than sequential "
        "— parallelism is not preserving model quality"
    )


def test_bench_fold_evaluation(benchmark, scale):
    ds = make_dataset("carcinogenesis", seed=SEED, scale=scale)
    fold = next(iter(kfold(ds.pos, ds.neg, k=FOLDS, seed=SEED)))
    res = mdie(ds.kb, list(fold.train_pos), list(fold.train_neg), ds.modes, ds.config, seed=SEED)
    eng = Engine(ds.kb, ds.config.engine_budget())
    acc = one_shot(benchmark, accuracy, eng, res.theory, list(fold.test_pos), list(fold.test_neg))
    assert 0.0 <= acc <= 100.0

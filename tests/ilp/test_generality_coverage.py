"""Cross-module property: θ-subsumption implies coverage containment.

The soundness bridge between the search's syntactic ordering and its
semantic pruning rule: if clause C θ-subsumes clause D, then every example
D covers, C covers too.  This is exactly why `learn_rule` may prune a
subtree when positive cover drops below `min_pos` — specialisation can
only shrink coverage.  Tested here with hypothesis over random refinement
chains evaluated on the family knowledge base.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp.bottom import build_bottom
from repro.ilp.coverage import coverage_bitset
from repro.ilp.refinement import refinements, start_rule
from repro.logic.subsumption import theta_subsumes

# fixtures from tests/ilp/conftest.py are function-scoped; hypothesis needs
# module-level setup instead.
from repro.ilp.config import ILPConfig
from repro.ilp.modes import ModeSet
from repro.logic.engine import Engine
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_term


def _setup():
    kb = KnowledgeBase()
    kb.add_program(
        """
        parent(ann, mary). parent(ann, tom). parent(tom, eve). parent(tom, ian).
        parent(sue, bob). parent(bob, joan). parent(eve, kim). parent(mary, liz).
        female(ann). female(mary). female(eve). female(sue). female(joan).
        female(kim). female(liz). male(tom). male(ian). male(bob).
        """
    )
    pos = [
        parse_term(s)
        for s in (
            "daughter(mary, ann)",
            "daughter(eve, tom)",
            "daughter(joan, bob)",
            "daughter(kim, eve)",
            "daughter(liz, mary)",
        )
    ]
    neg = [
        parse_term(s)
        for s in (
            "daughter(tom, ann)",
            "daughter(ian, tom)",
            "daughter(eve, ann)",
            "daughter(bob, sue)",
        )
    ]
    modes = ModeSet(
        [
            "modeh(1, daughter(+person, +person))",
            "modeb(*, parent(+person, -person))",
            "modeb(*, parent(-person, +person))",
            "modeb(1, female(+person))",
            "modeb(1, male(+person))",
        ]
    )
    config = ILPConfig(min_pos=1, max_clause_length=4, var_depth=2, max_nodes=500)
    engine = Engine(kb, config.engine_budget())
    bottoms = [build_bottom(e, engine, modes, config) for e in pos]
    return engine, config, pos, neg, bottoms


_ENGINE, _CONFIG, _POS, _NEG, _BOTTOMS = _setup()


@st.composite
def refinement_chain(draw):
    """A random (parent, child) pair along the refinement lattice."""
    bottom = draw(st.sampled_from(_BOTTOMS))
    rule = start_rule(bottom)
    depth = draw(st.integers(1, 3))
    child = None
    for _ in range(depth):
        kids = list(refinements(rule, bottom, _CONFIG))
        if not kids:
            break
        child = draw(st.sampled_from(kids))
        rule, child = child, None
        parent = rule
    # regenerate one more level for the (parent, child) pair
    kids = list(refinements(rule, bottom, _CONFIG))
    if not kids:
        return rule, rule
    return rule, draw(st.sampled_from(kids))


@given(refinement_chain())
@settings(max_examples=60, deadline=None)
def test_refinement_subsumes_child(pair):
    parent, child = pair
    assert theta_subsumes(parent.clause, child.clause)


@given(refinement_chain())
@settings(max_examples=60, deadline=None)
def test_coverage_monotone_under_refinement(pair):
    """child coverage ⊆ parent coverage, on positives and negatives."""
    parent, child = pair
    for examples in (_POS, _NEG):
        pb = coverage_bitset(_ENGINE, parent.clause, examples)
        cb = coverage_bitset(_ENGINE, child.clause, examples)
        assert cb & ~pb == 0, (
            f"specialisation gained coverage: {parent.clause} -> {child.clause}"
        )


@given(refinement_chain())
@settings(max_examples=40, deadline=None)
def test_subsumption_implies_coverage_containment(pair):
    """The general soundness property, checked on arbitrary lattice pairs."""
    a, b = pair
    if theta_subsumes(a.clause, b.clause):
        pa = coverage_bitset(_ENGINE, a.clause, _POS)
        pb = coverage_bitset(_ENGINE, b.clause, _POS)
        assert pb & ~pa == 0

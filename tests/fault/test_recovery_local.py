"""Self-healing on the real multiprocessing backend.

The same deterministic fault plans the simulator injects are injected
into real OS processes (hard ``os._exit`` kills, real sleeps), and the
recovered run must learn the identical theory.
"""

import pytest

from helpers_fault import log_tuples, run_args
from repro.backend import LocalProcessBackend
from repro.fault.plan import FaultPlan, Straggler, WorkerCrash
from repro.parallel import run_independent, run_p2mdie

TIMEOUT = 2.0


def local_backend(plan=None):
    return LocalProcessBackend(timeout=300.0, fault_plan=plan)


@pytest.fixture(scope="module")
def base(krki):
    return run_p2mdie(*run_args(krki), p=3, width=10, seed=0)


class TestLocalCrashRecovery:
    def test_pipeline_phase_crash(self, krki, base):
        plan = FaultPlan(
            crashes=(WorkerCrash(rank=2, on_recv=2, tag="start_pipeline"),), timeout=TIMEOUT
        )
        r = run_p2mdie(
            *run_args(krki), p=3, width=10, seed=0, fault_plan=plan, backend=local_backend()
        )
        assert r.theory == base.theory
        assert log_tuples(r) == log_tuples(base)
        assert any("declared dead" in ev for ev in r.fault_events)
        # The parent recorded the hard child death as an injected fault.
        assert any(f.kind == "crash" and f.rank == 2 for f in r.fault_log)

    def test_eval_phase_crash_with_standby(self, krki, base):
        plan = FaultPlan(crashes=(WorkerCrash(rank=3, on_recv=1, tag="evaluate"),), timeout=TIMEOUT)
        r = run_p2mdie(
            *run_args(krki), p=3, width=10, seed=0, fault_plan=plan, spares=1,
            backend=local_backend(),
        )
        assert r.theory == base.theory
        assert any("adopted by host 4" in ev for ev in r.fault_events)

    def test_independent_crash(self, krki):
        b = run_independent(*run_args(krki), p=3, seed=0)
        plan = FaultPlan(crashes=(WorkerCrash(rank=2, on_recv=2),), timeout=TIMEOUT)
        r = run_independent(
            *run_args(krki), p=3, seed=0, fault_plan=plan, backend=local_backend()
        )
        assert r.theory == b.theory


class TestLocalTimingFaults:
    def test_straggler_real_sleeps_preserve_theory(self, trains):
        b = run_p2mdie(*run_args(trains), p=2, width=10, seed=0)
        plan = FaultPlan(stragglers=(Straggler(rank=1, factor=3.0),), timeout=60.0)
        r = run_p2mdie(
            *run_args(trains), p=2, width=10, seed=0, fault_plan=plan, backend=local_backend()
        )
        assert r.theory == b.theory


class TestLocalDropLogging:
    def test_injected_drop_recorded_like_sim(self, trains):
        """Both substrates report the same injected-drop observability."""
        from repro.fault.plan import MessageLoss

        plan = FaultPlan(losses=(MessageLoss(src=0, dst=2, nth=2),), timeout=TIMEOUT)
        r = run_p2mdie(
            *run_args(trains), p=2, width=10, seed=0, fault_plan=plan, backend=local_backend()
        )
        assert any(f.kind == "drop" and f.rank == 0 for f in r.fault_log)


class TestCrossSubstrateParity:
    def test_sim_and_local_recover_to_same_theory(self, krki):
        """The acceptance property: the same crash plan on both substrates
        converges to the same learned theory as the fault-free run."""
        plan = FaultPlan(
            crashes=(WorkerCrash(rank=2, on_recv=2, tag="start_pipeline"),), timeout=TIMEOUT
        )
        sim = run_p2mdie(*run_args(krki), p=3, width=10, seed=0, fault_plan=plan)
        loc = run_p2mdie(
            *run_args(krki), p=3, width=10, seed=0, fault_plan=plan, backend=local_backend()
        )
        assert sim.theory == loc.theory
        assert log_tuples(sim) == log_tuples(loc)

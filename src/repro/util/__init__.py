"""Small shared utilities: seeded RNG, formatting, and structured logging."""

from repro.util.rng import RngStream, derive_seed, make_rng
from repro.util.fmt import fmt_float, fmt_int, fmt_mbytes, render_table
from repro.util.log import (
    StructuredLogger,
    get_logger,
    log_context,
    log_format,
    log_level,
    set_log_format,
    set_log_level,
)

__all__ = [
    "RngStream",
    "derive_seed",
    "make_rng",
    "fmt_float",
    "fmt_int",
    "fmt_mbytes",
    "render_table",
    "StructuredLogger",
    "get_logger",
    "log_context",
    "log_format",
    "log_level",
    "set_log_format",
    "set_log_level",
]

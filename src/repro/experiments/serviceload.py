"""Service workload generation and measurement.

The service benchmark (``benchmarks/bench_service.py``) and the
experiments layer share these helpers: build a fleet of learning-job
specs, drive a :class:`~repro.service.scheduler.JobScheduler` to
completion under wall-clock timing, and measure batched-query latency
scaling against the one-shot baseline.

Measurements are wall-clock by design — the service layer exists to
overlap real work (local-backend jobs are OS processes; queries run in
the serving process), so virtual time has no meaning here.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.datasets import make_dataset
from repro.ilp import predicts
from repro.logic.engine import Engine
from repro.service.jobs import JobOutcome, JobSpec, run_job
from repro.service.query import QueryEngine
from repro.service.registry import TheoryRegistry
from repro.service.scheduler import JobScheduler

__all__ = [
    "make_job_fleet",
    "run_job_fleet",
    "measure_query_scaling",
]


def make_job_fleet(
    n_jobs: int,
    dataset: str = "trains",
    algo: str = "p2mdie",
    p: int = 2,
    backend: str = "local",
    base_seed: int = 0,
) -> list[JobSpec]:
    """``n_jobs`` independent learning specs with distinct seeds.

    Distinct seeds make the fleet a realistic multi-tenant mix (each job
    learns on its own generated dataset instance) while staying fully
    deterministic.
    """
    return [
        JobSpec(dataset=dataset, algo=algo, p=p, backend=backend, seed=base_seed + i)
        for i in range(n_jobs)
    ]


def run_job_fleet(
    specs: Sequence[JobSpec],
    slots: int,
    state_dir: Optional[str] = None,
    verify_parity: bool = False,
    timeout: float = 1800.0,
) -> dict:
    """Run ``specs`` to completion over ``slots``; wall-clock throughput.

    With ``verify_parity`` every job outcome is additionally checked
    bit-identical against a direct in-process :func:`run_job` of the
    same spec — the service guarantee the benchmark gates on.
    """
    scheduler = JobScheduler(slots=slots, state_dir=state_dir)
    t0 = time.perf_counter()
    job_ids = [scheduler.submit(spec) for spec in specs]
    scheduler.wait_all(timeout=timeout)
    wall = time.perf_counter() - t0
    outcomes: list[JobOutcome] = [scheduler.result(j) for j in job_ids]
    scheduler.close()
    parity = True
    if verify_parity:
        for spec, outcome in zip(specs, outcomes):
            direct = run_job(spec.replace(backend="sim"))
            parity = parity and list(direct.theory) == list(outcome.theory)
    return {
        "n_jobs": len(specs),
        "slots": slots,
        "wall_s": round(wall, 4),
        "jobs_per_s": round(len(specs) / wall, 4) if wall else 0.0,
        "epochs": sum(o.epochs for o in outcomes),
        "parity": parity,
    }


def measure_query_scaling(
    batch_sizes: Sequence[int],
    dataset: str = "trains",
    seed: int = 0,
    scale: str = "small",
    registry_root: Optional[str] = None,
) -> dict:
    """Per-query latency of batched coverage vs the one-shot baseline.

    Learns one theory (sequential MDIE), registers it, then for each
    batch size measures (a) the batched
    :meth:`~repro.service.query.QueryEngine.query` path — prepared
    engine, one clause rename per batch, first-match candidate
    narrowing — and (b) the naive loop calling
    :func:`repro.ilp.theory.predicts` per example on the same warm
    engine.  Both must classify every example identically (gated).

    Batches cycle the dataset's pos+neg pool to the requested size, so
    large batches really answer thousands of ground queries.
    """
    import itertools
    import tempfile

    ds = make_dataset(dataset, seed=seed, scale=scale)
    learned = run_job(JobSpec(dataset=dataset, algo="mdie", seed=seed, scale=scale))
    own_tmp = None
    if registry_root is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="repro-queryreg-")
        registry_root = own_tmp.name
    try:
        registry = TheoryRegistry(registry_root)
        registry.publish(
            f"{dataset}-bench",
            learned.theory,
            config_sig=learned.config_sig,
            provenance={"dataset": dataset, "seed": str(seed), "scale": scale},
        )
        engine = QueryEngine(registry=registry)
        pool = ds.pos + ds.neg
        baseline_engine = Engine(
            ds.kb, ds.config.engine_budget(), kernel=ds.config.coverage_kernel
        )
        rows = []
        parity = True
        for size in batch_sizes:
            batch = list(itertools.islice(itertools.cycle(pool), size))
            t0 = time.perf_counter()
            result = engine.query(f"{dataset}-bench", batch)
            batched_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            oneshot = [predicts(baseline_engine, learned.theory, e) for e in batch]
            oneshot_s = time.perf_counter() - t0
            parity = parity and result.decisions() == oneshot
            rows.append(
                {
                    "batch": size,
                    "batched_s": round(batched_s, 6),
                    "oneshot_s": round(oneshot_s, 6),
                    "batched_us_per_query": round(1e6 * batched_s / size, 3),
                    "oneshot_us_per_query": round(1e6 * oneshot_s / size, 3),
                    "speedup": round(oneshot_s / batched_s, 3) if batched_s else 0.0,
                }
            )
        return {
            "dataset": dataset,
            "theory_size": len(learned.theory),
            "pool": len(pool),
            "rows": rows,
            "prepared": engine.stats(),
            "parity": parity,
        }
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()

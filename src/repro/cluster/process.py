"""Process abstraction for the simulated cluster.

A simulated node runs a :class:`SimProcess`: its :meth:`SimProcess.run`
method is a *generator* that yields communication/compute syscalls to the
scheduler and is resumed with their results — cooperative multitasking in
virtual time.  The paper's §2.2 model maps directly:

* ``send``      → non-blocking (sender charged marshalling time only);
* ``broadcast`` → non-blocking send to a set of ranks;
* ``receive``   → blocking (virtual clock jumps to message arrival).

Python work done between yields is free in virtual time; processes charge
for it explicitly with :meth:`ProcContext.compute`, passing the engine's
operation delta.  This is what makes a 1-core host able to time an 8-node
cluster faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["Syscall", "SendOp", "BcastOp", "RecvOp", "ComputeOp", "ProcContext", "SimProcess", "ComputeInterval"]


class Syscall:
    """Base class for values a process generator yields to the scheduler."""

    __slots__ = ()


@dataclass(frozen=True)
class SendOp(Syscall):
    dst: int
    payload: object
    tag: str


@dataclass(frozen=True)
class BcastOp(Syscall):
    dsts: tuple[int, ...]
    payload: object
    tag: str


@dataclass(frozen=True)
class RecvOp(Syscall):
    """Blocking receive; ``src``/``tag`` of None match anything.

    ``timeout`` (seconds — virtual under the sim backend, wall-clock under
    the real ones) bounds the wait: if no matching message arrives in
    time, the process is resumed with ``None`` instead of a message.  The
    fault-tolerant masters use this as their failure detector; ``None``
    (the default) waits forever, reproducing the original semantics.
    """

    src: Optional[int] = None
    tag: Optional[str] = None
    timeout: Optional[float] = None

    def matches(self, msg) -> bool:
        return (self.src is None or msg.src == self.src) and (
            self.tag is None or msg.tag == self.tag
        )


@dataclass(frozen=True)
class ComputeOp(Syscall):
    ops: int
    label: str = "compute"


@dataclass(frozen=True)
class ComputeInterval:
    """A labelled busy interval on one node (drives the Fig. 3/4 trace)."""

    rank: int
    start: float
    end: float
    label: str


class ProcContext:
    """Per-process façade handed to :meth:`SimProcess.run`.

    Provides syscall constructors (to be ``yield``-ed) plus read access to
    the process's virtual clock and rank.
    """

    def __init__(self, rank: int, cluster):
        self.rank = rank
        self._cluster = cluster

    # -- syscall constructors (yield these) ------------------------------------
    def send(self, dst: int, payload: object, tag: str) -> SendOp:
        return SendOp(dst, payload, tag)

    def bcast(self, payload: object, tag: str, dsts: Optional[Iterable[int]] = None) -> BcastOp:
        """Broadcast to ``dsts`` (default: every other rank)."""
        if dsts is None:
            dsts = [r for r in range(self._cluster.n_procs) if r != self.rank]
        return BcastOp(tuple(dsts), payload, tag)

    def recv(
        self,
        src: Optional[int] = None,
        tag: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> RecvOp:
        return RecvOp(src, tag, timeout)

    def compute(self, ops: int, label: str = "compute") -> ComputeOp:
        return ComputeOp(int(ops), label)

    # -- introspection -----------------------------------------------------------
    @property
    def clock(self) -> float:
        return self._cluster.clock_of(self.rank)

    @property
    def n_procs(self) -> int:
        return self._cluster.n_procs


class SimProcess:
    """Base class for simulated cluster node programs."""

    def __init__(self, rank: int):
        self.rank = rank

    def run(self, ctx: ProcContext):  # pragma: no cover - interface
        """Generator body: yield syscalls, receive results."""
        raise NotImplementedError
        yield  # makes this a generator even if not overridden

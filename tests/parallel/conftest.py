"""Shared fixtures for the parallel-algorithm tests: an extended family
problem large enough to partition over up to 4 workers."""

import pytest

from repro.ilp.config import ILPConfig
from repro.ilp.modes import ModeSet
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_term


@pytest.fixture
def kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.add_program(
        """
        parent(ann, mary). parent(ann, tom). parent(tom, eve). parent(tom, ian).
        parent(sue, bob). parent(bob, joan). parent(eve, kim). parent(mary, liz).
        parent(liz, pat). parent(pat, rob). parent(kim, amy). parent(amy, ben).
        parent(joan, cal). parent(cal, dee). parent(dee, eli). parent(ben, fay).
        female(ann). female(mary). female(eve). female(sue). female(joan).
        female(kim). female(liz). female(pat). female(amy). female(dee). female(fay).
        male(tom). male(ian). male(bob). male(rob). male(ben). male(cal). male(eli).
        """
    )
    return kb


@pytest.fixture
def pos():
    return [
        parse_term(s)
        for s in (
            "daughter(mary, ann)",
            "daughter(eve, tom)",
            "daughter(joan, bob)",
            "daughter(kim, eve)",
            "daughter(liz, mary)",
            "daughter(pat, liz)",
            "daughter(amy, kim)",
            "daughter(dee, cal)",
            "daughter(fay, ben)",
        )
    ]


@pytest.fixture
def neg():
    return [
        parse_term(s)
        for s in (
            "daughter(tom, ann)",
            "daughter(ian, tom)",
            "daughter(eve, ann)",
            "daughter(ann, mary)",
            "daughter(bob, sue)",
            "daughter(rob, pat)",
            "daughter(ben, amy)",
            "daughter(cal, joan)",
            "daughter(eli, dee)",
        )
    ]


@pytest.fixture
def modes() -> ModeSet:
    return ModeSet(
        [
            "modeh(1, daughter(+person, +person))",
            "modeb(*, parent(+person, -person))",
            "modeb(*, parent(-person, +person))",
            "modeb(1, female(+person))",
            "modeb(1, male(+person))",
        ]
    )


@pytest.fixture
def config() -> ILPConfig:
    return ILPConfig(min_pos=1, noise=0, max_clause_length=3, var_depth=2, max_nodes=400)

"""Synthetic relational dataset generators.

The paper evaluates on carcinogenesis, mesh and pyrimidines (Table 1);
those datasets are not redistributable, so this package generates seeded
synthetic equivalents with the same cardinalities, relational structure
and planted target theories (see DESIGN.md §1).  Michalski's trains is
included as the quickstart/tests problem (it is also the dataset used by
the related work of Matsui et al., §6).
"""

from repro.datasets.base import DATASETS, Dataset, SCALES, make_dataset, register_dataset
from repro.datasets.carcinogenesis import make_carcinogenesis
from repro.datasets.krki import make_krki
from repro.datasets.mesh import make_mesh
from repro.datasets.pyrimidines import make_pyrimidines
from repro.datasets.trains import make_trains

__all__ = [
    "DATASETS",
    "Dataset",
    "SCALES",
    "make_dataset",
    "register_dataset",
    "make_carcinogenesis",
    "make_krki",
    "make_mesh",
    "make_pyrimidines",
    "make_trains",
]

"""Tests for the structured logger (repro.util.log)."""

import io
import json

import pytest

from repro.util.log import (
    StructuredLogger,
    bound_context,
    get_logger,
    log_context,
    log_format,
    log_level,
    set_log_format,
    set_log_level,
)


@pytest.fixture(autouse=True)
def _reset_overrides():
    yield
    set_log_format(None)
    set_log_level(None)


class TestFormatGate:
    def test_default_text(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert log_format() == "text"

    def test_env_json(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "json")
        assert log_format() == "json"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "json")
        set_log_format("text")
        assert log_format() == "text"

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_log_format("xml")


class TestLevelGate:
    def test_default_info(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
        assert log_level() == "info"

    def test_debug_filtered_at_info(self):
        buf = io.StringIO()
        set_log_level("info")
        StructuredLogger("t", stream=buf).debug("hidden")
        assert buf.getvalue() == ""

    def test_warning_passes_at_info(self):
        buf = io.StringIO()
        set_log_level("info")
        StructuredLogger("t", stream=buf).warning("shown")
        assert "shown" in buf.getvalue()

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_log_level("loud")


class TestJsonOutput:
    def test_record_shape(self):
        buf = io.StringIO()
        set_log_format("json")
        log = StructuredLogger("repro.test", stream=buf, clock=lambda: 12.5)
        log.info("job_state", job_id="j1", state="running")
        rec = json.loads(buf.getvalue())
        assert rec == {
            "ts": 12.5,
            "level": "info",
            "logger": "repro.test",
            "event": "job_state",
            "job_id": "j1",
            "state": "running",
        }

    def test_context_fields_included(self):
        buf = io.StringIO()
        set_log_format("json")
        log = StructuredLogger("t", stream=buf)
        with log_context(request_id="req-1"):
            log.info("request")
        assert json.loads(buf.getvalue())["request_id"] == "req-1"


class TestTextOutput:
    def test_line_shape(self):
        buf = io.StringIO()
        set_log_format("text")
        StructuredLogger("repro.test", stream=buf).info("serving", port=9000)
        line = buf.getvalue().strip()
        assert line.startswith("INFO")
        assert "repro.test serving" in line
        assert "port=9000" in line

    def test_values_with_spaces_quoted(self):
        buf = io.StringIO()
        set_log_format("text")
        StructuredLogger("t", stream=buf).warning("fail", error="no such file")
        assert 'error="no such file"' in buf.getvalue()


class TestContext:
    def test_nested_binding_and_reset(self):
        assert bound_context() == {}
        with log_context(request_id="a"):
            with log_context(job_id="b"):
                assert bound_context() == {"request_id": "a", "job_id": "b"}
            assert bound_context() == {"request_id": "a"}
        assert bound_context() == {}


class TestRobustness:
    def test_closed_stream_swallowed(self):
        buf = io.StringIO()
        log = StructuredLogger("t", stream=buf)
        buf.close()
        log.info("after_close")  # must not raise

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            StructuredLogger("t", stream=io.StringIO()).log("silly", "x")


class TestGetLogger:
    def test_process_wide_cache(self):
        assert get_logger("repro.abc") is get_logger("repro.abc")

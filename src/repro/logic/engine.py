"""Resource-bounded SLD-resolution engine.

This is the theorem prover that ILP coverage testing runs on (the paper's
``evalOnExamples``).  It is a depth-bounded, operation-bounded Prolog-style
engine over a :class:`~repro.logic.knowledge.KnowledgeBase`:

* **depth bound** — limits rule expansions, guaranteeing termination on
  recursive background knowledge;
* **operation bound** — caps unification attempts per query.  A query that
  exhausts its budget *fails* (the example counts as not covered), mirroring
  the resource-bounded "h-easy" semantics of Progol/Aleph/April;
* **operation counter** — ``total_ops`` accumulates across queries and is
  the compute-cost proxy consumed by the simulated cluster's
  :class:`~repro.cluster.costmodel.CostModel`.  One op ≈ one candidate
  clause/fact unification attempt (plus one per builtin call), which tracks
  the work a WAM-based Prolog performs closely enough for relative timing.

The engine treats negation-as-failure (``\\+``/``not``) soundly for ground
sub-goals (the only use ILP coverage makes of it).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.logic.builtins import ArithmeticError_, eval_arith, is_builtin
from repro.logic.clause import Clause
from repro.logic.knowledge import KnowledgeBase
from repro.logic.terms import Const, Struct, Term, Var, fresh_var, is_ground
from repro.logic.unify import Subst, resolve, undo_trail, unify_trail, walk

__all__ = ["Engine", "QueryBudget", "BudgetExceeded"]


class BudgetExceeded(Exception):
    """Internal signal: per-query operation budget exhausted."""


def _flatten_conj(term: Term) -> tuple[Term, ...]:
    if isinstance(term, Struct) and term.functor == "," and term.arity == 2:
        return _flatten_conj(term.args[0]) + _flatten_conj(term.args[1])
    return (term,)


class QueryBudget:
    """Per-query resource limits.

    ``max_depth`` bounds the number of *rule* expansions along any
    derivation branch (facts and builtins are free).  ``max_ops`` bounds
    total unification attempts for one query.
    """

    __slots__ = ("max_depth", "max_ops")

    def __init__(self, max_depth: int = 12, max_ops: int = 200_000):
        if max_depth < 1 or max_ops < 1:
            raise ValueError("budgets must be positive")
        self.max_depth = max_depth
        self.max_ops = max_ops

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"QueryBudget(max_depth={self.max_depth}, max_ops={self.max_ops})"


class Engine:
    """SLD resolution over a knowledge base, with resource accounting."""

    def __init__(self, kb: KnowledgeBase, budget: Optional[QueryBudget] = None):
        self.kb = kb
        self.budget = budget or QueryBudget()
        #: unification attempts since engine construction (monotonic).
        self.total_ops: int = 0
        #: True iff the most recent query hit its operation budget.
        self.last_exhausted: bool = False

    # -- public query API ----------------------------------------------------
    def solve(self, goals: Term | Sequence[Term], limit: Optional[int] = None) -> Iterator[Term | tuple]:
        """Yield solutions as resolved instances of the goal (tuple).

        ``goals`` may be a single goal term or a sequence (conjunction).
        Each solution is the goal conjunction with the answer substitution
        applied.  Stops silently if the operation budget is exhausted
        (check :attr:`last_exhausted`).
        """
        goal_tuple = tuple(goals) if isinstance(goals, (list, tuple)) else (goals,)
        # Flatten ','/2 conjunction terms so `parse_term("p(X), q(X)")`
        # queries work directly.
        flat: list[Term] = []
        for g in goal_tuple:
            flat.extend(_flatten_conj(g))
        goal_tuple = tuple(flat)
        subst: dict = {}
        trail: list = []
        self.last_exhausted = False
        self._query_ops = 0
        n = 0
        try:
            for _ in self._solve(goal_tuple, 0, self.budget.max_depth, subst, trail):
                if len(goal_tuple) == 1:
                    yield resolve(goal_tuple[0], subst)
                else:
                    yield tuple(resolve(g, subst) for g in goal_tuple)
                n += 1
                if limit is not None and n >= limit:
                    return
        except BudgetExceeded:
            self.last_exhausted = True

    def prove(self, goals: Term | Sequence[Term]) -> bool:
        """True iff at least one solution exists within budget."""
        for _ in self.solve(goals, limit=1):
            return True
        return False

    def count_solutions(self, goals: Term | Sequence[Term], limit: Optional[int] = None) -> int:
        """Count distinct solution instances (up to ``limit``)."""
        seen = set()
        for sol in self.solve(goals):
            seen.add(sol)
            if limit is not None and len(seen) >= limit:
                break
        return len(seen)

    # -- resolution core -------------------------------------------------------
    def _charge(self, n: int = 1) -> None:
        self.total_ops += n
        self._query_ops += n
        if self._query_ops > self.budget.max_ops:
            raise BudgetExceeded

    def _solve(self, goals: tuple, i: int, depth: int, subst: dict, trail: list):
        """Solve ``goals[i:]``; yields once per solution (bindings live in
        ``subst``)."""
        if i >= len(goals):
            yield None
            return
        # Resolve the whole goal up front: argument variables bound earlier
        # in the derivation must be visible to the first-argument index
        # (otherwise e.g. elem(G, cl) with G bound would scan every fact).
        goal = resolve(goals[i], subst)
        if isinstance(goal, Var):
            raise TypeError("unbound variable as goal")

        ind = goal.indicator if isinstance(goal, Struct) else (str(goal), 0)
        if is_builtin(ind):
            yield from self._solve_builtin(goal, ind, goals, i, depth, subst, trail)
            return

        # Facts first (indexed), then rules.
        store = self.kb.facts_for(ind)
        rules = self.kb.rules_for(ind)
        if not rules and is_ground(goal):
            # Ground fast path: a ground goal over a fact-only predicate is
            # a set-membership test.
            self._charge()
            if goal in store.fact_set:
                yield from self._solve(goals, i + 1, depth, subst, trail)
            return
        for fact in store.candidates(goal):
            self._charge()
            mark = len(trail)
            if unify_trail(goal, fact, subst, trail):
                yield from self._solve(goals, i + 1, depth, subst, trail)
            undo_trail(subst, trail, mark)

        if rules and depth <= 0:
            return  # depth bound: silently fail on further rule expansion
        for rule in rules:
            self._charge()
            r = rule.rename_apart()
            mark = len(trail)
            if unify_trail(goal, r.head, subst, trail):
                yield from self._solve(r.body + goals[i + 1 :], 0, depth - 1, subst, trail)
                # note: the continuation goals are re-entered inside; to keep
                # the remaining goals at the *old* depth we rely on depth only
                # gating rule expansion, so the slight tightening is benign
                # and keeps derivations finite.
            undo_trail(subst, trail, mark)

    def _solve_builtin(self, goal: Term, ind: tuple, goals: tuple, i: int, depth: int, subst: dict, trail: list):
        self._charge()
        name = ind[0]
        if name == "true":
            yield from self._solve(goals, i + 1, depth, subst, trail)
            return
        if name in ("fail", "false"):
            return
        args = goal.args if isinstance(goal, Struct) else ()
        if name == "=":
            mark = len(trail)
            if unify_trail(args[0], args[1], subst, trail):
                yield from self._solve(goals, i + 1, depth, subst, trail)
            undo_trail(subst, trail, mark)
            return
        if name == "\\=":
            mark = len(trail)
            ok = unify_trail(args[0], args[1], subst, trail)
            undo_trail(subst, trail, mark)
            if not ok:
                yield from self._solve(goals, i + 1, depth, subst, trail)
            return
        if name in ("==", "\\=="):
            same = resolve(args[0], subst) == resolve(args[1], subst)
            if same == (name == "=="):
                yield from self._solve(goals, i + 1, depth, subst, trail)
            return
        if name in ("<", ">", "=<", ">="):
            try:
                a = eval_arith(args[0], subst)
                b = eval_arith(args[1], subst)
            except ArithmeticError_:
                return
            ok = {"<": a < b, ">": a > b, "=<": a <= b, ">=": a >= b}[name]
            if ok:
                yield from self._solve(goals, i + 1, depth, subst, trail)
            return
        if name == "is":
            try:
                value = eval_arith(args[1], subst)
            except ArithmeticError_:
                return
            mark = len(trail)
            if unify_trail(args[0], Const(value), subst, trail):
                yield from self._solve(goals, i + 1, depth, subst, trail)
            undo_trail(subst, trail, mark)
            return
        if name in ("\\+", "not"):
            sub = (args[0],)
            mark = len(trail)
            found = False
            for _ in self._solve(sub, 0, depth, subst, trail):
                found = True
                break
            undo_trail(subst, trail, mark)
            if not found:
                yield from self._solve(goals, i + 1, depth, subst, trail)
            return
        if name == "between":
            try:
                lo = int(eval_arith(args[0], subst))
                hi = int(eval_arith(args[1], subst))
            except ArithmeticError_:
                return
            x = walk(args[2], subst)
            if isinstance(x, Const):
                if isinstance(x.value, int) and lo <= x.value <= hi:
                    yield from self._solve(goals, i + 1, depth, subst, trail)
                return
            for v in range(lo, hi + 1):
                self._charge()
                mark = len(trail)
                if unify_trail(x, Const(v), subst, trail):
                    yield from self._solve(goals, i + 1, depth, subst, trail)
                undo_trail(subst, trail, mark)
            return
        if name == "dif_const":
            # Succeeds iff both args are (bound to) distinct constants.
            a = walk(args[0], subst)
            b = walk(args[1], subst)
            if isinstance(a, Const) and isinstance(b, Const) and a != b:
                yield from self._solve(goals, i + 1, depth, subst, trail)
            return
        raise NotImplementedError(f"builtin {ind} not implemented")  # pragma: no cover

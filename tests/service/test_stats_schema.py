"""Schema pin for the ``stats`` op: key names and value types.

Operators' dashboards, the chaos harness, and the CI smoke scrapes all
key off these names.  Renaming or retyping a stats field is a breaking
change for every consumer — this module is the tripwire that makes such
a change visible in review instead of in production.
"""

import pytest

from repro.fault.service import ServiceFaultPlan, SlotCrash
from repro.service import Service


@pytest.fixture
def service(tmp_path):
    svc = Service(
        slots=2,
        state_dir=str(tmp_path / "jobs"),
        registry_dir=str(tmp_path / "registry"),
    )
    yield svc
    svc.close()


def _stats(svc):
    resp = svc.handle({"op": "stats"})
    assert resp["ok"]
    return resp


class TestTopLevel:
    def test_sections_present(self, service):
        stats = _stats(service)
        assert {"ok", "slots", "jobs", "query", "resilience", "metrics"} <= set(stats)

    def test_no_faults_section_without_injector(self, service):
        assert "faults" not in _stats(service)

    def test_slots_and_jobs(self, service):
        stats = _stats(service)
        assert isinstance(stats["slots"], int)
        assert isinstance(stats["jobs"], dict)
        for state, n in stats["jobs"].items():
            assert isinstance(state, str)
            assert isinstance(n, int)


class TestQuerySection:
    #: name -> type of every pinned query-engine counter.
    PINNED = {
        "prepared_hits": int,
        "prepared_misses": int,
        "prepared_entries": int,
        "batches": int,
        "degraded": int,
        "streams_started": int,
        "streams_cancelled": int,
        "shard_tasks_started": int,
        "shard_tasks_active": int,
    }

    def test_keys_and_types(self, service):
        q = _stats(service)["query"]
        assert set(q) == set(self.PINNED)
        for key, typ in self.PINNED.items():
            assert isinstance(q[key], typ), f"query.{key} is {type(q[key]).__name__}"


class TestResilienceSection:
    PINNED = {
        "draining": bool,
        "persist_errors": int,
        "slot_crashes": int,
        "quarantined": list,
        "registry_quarantined": list,
        "queued": int,
    }

    def test_keys_and_types(self, service):
        r = _stats(service)["resilience"]
        assert set(r) == set(self.PINNED)
        for key, typ in self.PINNED.items():
            assert isinstance(r[key], typ), f"resilience.{key} is {type(r[key]).__name__}"


class TestFaultsSection:
    PINNED = {
        "requests": int,
        "leases": int,
        "jobs_picked": int,
        "writes": dict,
        "injected": list,
    }

    def test_keys_and_types(self, tmp_path):
        plan = ServiceFaultPlan(crashes=(SlotCrash(on_job=99),))
        svc = Service(slots=1, state_dir=str(tmp_path / "jobs"), fault_plan=plan)
        try:
            f = _stats(svc)["faults"]
        finally:
            svc.close()
        assert set(f) == set(self.PINNED)
        for key, typ in self.PINNED.items():
            assert isinstance(f[key], typ), f"faults.{key} is {type(f[key]).__name__}"


class TestMetricsSection:
    def test_shape(self, service):
        service.handle({"op": "ping"})
        m = _stats(service)["metrics"]
        assert isinstance(m, dict)
        # Gauges the scrape path always refreshes before snapshotting.
        for name in (
            "repro_scheduler_slots",
            "repro_scheduler_slots_busy",
            "repro_jobs_queued",
            "repro_draining",
            "repro_persist_errors",
            "repro_slot_crashes",
            "repro_quarantined_records",
        ):
            assert name in m, f"missing gauge {name}"
            assert isinstance(m[name], (int, float))
        # Request accounting pushed by handle(); labelled metrics nest.
        assert m["repro_requests_total"]["op=ping"] >= 1
        hist = m["repro_request_latency_seconds"]["op=ping"]
        assert set(hist) == {"count", "sum", "max", "mean", "buckets"}
        assert hist["count"] >= 1

    def test_metrics_op_matches_stats_section(self, service):
        service.handle({"op": "ping"})  # seed the request counters
        resp = service.handle({"op": "metrics"})
        assert resp["ok"]
        assert set(resp["metrics"]) == set(_stats(service)["metrics"])

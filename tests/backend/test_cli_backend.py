"""CLI `--backend` flag: acceptance check for the backend layer.

`repro learn <ds> --p 2 --backend local` must print the same learned
theory as `--backend sim` (only the timing lines may differ).
"""

import pytest

from repro.cli import build_parser, main


def _theory_lines(out: str) -> list[str]:
    """The printed Prolog clauses (every non-comment, non-blank line)."""
    return [ln for ln in out.splitlines() if ln.strip() and not ln.startswith("%")]


def _learn(capsys, dataset: str, backend: str) -> str:
    rc = main(["learn", dataset, "--p", "2", "--seed", "0", "--backend", backend])
    assert rc == 0
    return capsys.readouterr().out


@pytest.mark.parametrize("dataset", ["trains", "krki"])
def test_learn_local_matches_sim(capsys, dataset):
    sim_out = _learn(capsys, dataset, "sim")
    loc_out = _learn(capsys, dataset, "local")
    assert _theory_lines(sim_out) == _theory_lines(loc_out)
    assert _theory_lines(sim_out), "no theory printed"
    assert "wall-time" in loc_out and "virtual-time" in sim_out


def test_backend_flag_help_documented():
    subparsers = build_parser()._subparsers._group_actions[0].choices
    for name in ("learn", "tables", "trace"):
        text = subparsers[name].format_help()
        assert "--backend" in text
        assert "sim" in text and "local" in text and "mpi" in text


def test_backend_flag_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        main(["learn", "trains", "--p", "2", "--backend", "imaginary"])

"""Service-tier resilience: deadlines, idempotency, shedding, healing, drain.

Every scenario here injects a *deterministic* service fault (or none)
and asserts the two promises of the resilience work: **answers never
change** (coverage bitsets stay bit-identical, jobs never duplicate or
corrupt) and **failures surface structurally** (coded errors with
``retry_after`` hints, friendly client exceptions) instead of as hangs
or stack traces.
"""

import os
import threading
import time

import pytest

from repro.fault.service import (
    ConnReset,
    LeaseFault,
    PersistFault,
    ServiceFaultPlan,
    SlotCrash,
)
from repro.service import JobSpec, Service, TheoryRegistry
from repro.service.errors import RETRYABLE_CODES
from repro.service.server import ServiceClient, serve


def start_server(tmp_path, slots=2, publish=None, **kwargs):
    """serve() on an ephemeral port; returns (port, thread, server).

    ``publish`` is an optional ``(name, outcome)`` pair registered
    before the server starts, so query tests have a theory to hit.
    """
    if publish is not None:
        name, outcome = publish
        TheoryRegistry(str(tmp_path / "registry")).publish(
            name, outcome.theory, config_sig=outcome.config_sig,
            provenance={"dataset": "trains", "seed": "0", "scale": "small"},
        )
    ready = threading.Event()
    box = {}

    def on_ready(server):
        box["server"] = server
        ready.set()

    thread = threading.Thread(
        target=serve,
        kwargs=dict(
            port=0,
            slots=slots,
            state_dir=str(tmp_path / "jobs"),
            registry_dir=str(tmp_path / "registry"),
            ready=on_ready,
            **kwargs,
        ),
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=10), "server did not come up"
    return box["server"].port, thread, box["server"]


def shutdown(port, thread):
    with ServiceClient(port=port) as c:
        c.request({"op": "shutdown"})
    thread.join(timeout=15)


class TestDeadlines:
    def test_expired_deadline_rejected(self, tmp_path, trains, trains_theory):
        port, thread, _ = start_server(tmp_path, publish=("t", trains_theory))
        try:
            with ServiceClient(port=port) as c:
                resp = c.query("t", [str(trains.pos[0])], deadline_ms=0.0001)
                assert not resp["ok"]
                assert resp["code"] == "deadline_exceeded"
        finally:
            shutdown(port, thread)

    def test_invalid_deadline_is_bad_request(self, tmp_path):
        port, thread, _ = start_server(tmp_path)
        try:
            with ServiceClient(port=port) as c:
                resp = c.request({"op": "ping", "deadline_ms": "tomorrow"})
                assert not resp["ok"] and resp["code"] == "bad_request"
                resp = c.request({"op": "ping", "deadline_ms": -5})
                assert not resp["ok"] and resp["code"] == "bad_request"
        finally:
            shutdown(port, thread)

    def test_generous_deadline_changes_nothing(self, tmp_path, trains, trains_theory):
        port, thread, _ = start_server(tmp_path, publish=("t", trains_theory))
        examples = [str(e) for e in trains.pos + trains.neg]
        try:
            with ServiceClient(port=port) as c:
                plain = c.query("t", examples)
                dead = c.query("t", examples, deadline_ms=60_000)
                assert dead["ok"]
                assert dead["covered"] == plain["covered"]
                assert dead["n"] == plain["n"]
        finally:
            shutdown(port, thread)

    def test_deadline_cancels_mid_stream(self, tmp_path, trains, trains_theory):
        # Two slow leases (0.4 s each, one shard worker) guarantee the
        # 150 ms budget dies mid-stream; the error must be structured
        # and the connection must stay usable.
        plan = ServiceFaultPlan(
            leases=(
                LeaseFault(on_lease=1, mode="slow", delay=0.4),
                LeaseFault(on_lease=2, mode="slow", delay=0.4),
            )
        )
        port, thread, _ = start_server(
            tmp_path, publish=("t", trains_theory),
            fault_plan=plan, shard_workers=1,
        )
        examples = [str(e) for e in trains.pos + trains.neg]
        try:
            with ServiceClient(port=port) as c:
                with pytest.raises(RuntimeError, match="deadline"):
                    for _ in c.query_stream("t", examples, shards=2, deadline_ms=150):
                        pass
                assert c.request({"op": "ping"})["ok"]  # connection survived
        finally:
            shutdown(port, thread)


class TestIdempotency:
    def test_duplicate_submit_deduplicated(self, tmp_path):
        svc = Service(slots=1, state_dir=str(tmp_path / "jobs"))
        try:
            spec = {"dataset": "trains", "algo": "mdie"}
            first = svc.handle(
                {"op": "submit", "spec": spec, "idempotency_key": "k1"}
            )
            again = svc.handle(
                {"op": "submit", "spec": spec, "idempotency_key": "k1"}
            )
            other = svc.handle(
                {"op": "submit", "spec": spec, "idempotency_key": "k2"}
            )
            assert first["ok"] and again["ok"]
            assert again["job"] == first["job"]
            assert again.get("deduplicated") is True
            assert "deduplicated" not in first
            assert other["job"] != first["job"]
            assert len(svc.handle({"op": "jobs"})["jobs"]) == 2
        finally:
            svc.close()

    def test_bad_idempotency_key_rejected(self, tmp_path):
        svc = Service(slots=1)
        try:
            resp = svc.handle(
                {
                    "op": "submit",
                    "spec": {"dataset": "trains"},
                    "idempotency_key": 7,
                }
            )
            assert not resp["ok"] and resp["code"] == "bad_request"
        finally:
            svc.close()

    def test_dedup_survives_restart(self, tmp_path):
        state = str(tmp_path / "jobs")
        svc = Service(slots=1, state_dir=state)
        job = svc.handle(
            {
                "op": "submit",
                "spec": {"dataset": "trains", "algo": "mdie"},
                "idempotency_key": "sticky",
            }
        )["job"]
        svc.handle({"op": "wait", "job": job, "timeout": 120})
        svc.close()
        svc = Service(slots=1, state_dir=state)
        try:
            resp = svc.handle(
                {
                    "op": "submit",
                    "spec": {"dataset": "trains", "algo": "mdie"},
                    "idempotency_key": "sticky",
                }
            )
            assert resp["job"] == job and resp["deduplicated"] is True
            assert len(svc.handle({"op": "jobs"})["jobs"]) == 1
        finally:
            svc.close()


class TestAdmission:
    def test_queue_depth_shed(self, tmp_path):
        from repro.service.errors import Overloaded
        from repro.service.scheduler import JobScheduler

        sched = JobScheduler(
            slots=1, state_dir=str(tmp_path / "jobs"), max_queue=2, start=False
        )
        try:
            sched.submit(JobSpec(dataset="trains"))
            sched.submit(JobSpec(dataset="trains", seed=1))
            with pytest.raises(Overloaded) as err:
                sched.submit(JobSpec(dataset="trains", seed=2))
            assert err.value.retry_after > 0
        finally:
            sched.close(drain=False)

    def test_shed_submit_carries_code_and_hint(self, tmp_path):
        svc = Service(slots=1, state_dir=str(tmp_path / "jobs"), max_queue=1)
        svc.scheduler.close(drain=False)  # freeze the queue: nothing drains
        svc.scheduler._closed = False  # accept submits against the frozen queue
        try:
            svc.handle({"op": "submit", "spec": {"dataset": "trains"}})
            resp = svc.handle({"op": "submit", "spec": {"dataset": "trains", "seed": 1}})
            assert not resp["ok"]
            assert resp["code"] == "overloaded"
            assert resp["code"] in RETRYABLE_CODES
            assert resp["retry_after"] > 0
        finally:
            svc.scheduler._closed = True

    def test_inflight_cap_sheds_and_retry_absorbs(
        self, tmp_path, trains, trains_theory
    ):
        # One 0.6 s sharded query fills the single inflight slot; a bare
        # client gets shed with a structured hint, a retrying client gets
        # its answer once the slot frees up.
        plan = ServiceFaultPlan(
            leases=(LeaseFault(on_lease=1, mode="slow", delay=0.6),)
        )
        port, thread, _ = start_server(
            tmp_path, publish=("t", trains_theory),
            fault_plan=plan, max_inflight=1, shard_workers=1,
        )
        examples = [str(e) for e in trains.pos]
        shed, answered = {}, {}

        def slow_query():
            with ServiceClient(port=port) as c:
                answered["slow"] = c.query("t", examples, shards=2)

        try:
            t = threading.Thread(target=slow_query)
            t.start()
            time.sleep(0.2)  # let the slow query occupy the slot
            with ServiceClient(port=port) as c:
                shed["resp"] = c.request({"op": "ping"})
            with ServiceClient(port=port, retries=6, backoff=0.05) as c:
                answered["retry"] = c.request_with_retry({"op": "ping"})
                retried = c.retried
            t.join(timeout=30)
            assert not shed["resp"]["ok"]
            assert shed["resp"]["code"] == "overloaded"
            assert shed["resp"]["retry_after"] > 0
            assert answered["retry"]["ok"] and retried >= 1
            assert answered["slow"]["ok"]
        finally:
            shutdown(port, thread)


class TestDegradation:
    def test_overloaded_shard_pool_degrades_to_sequential(
        self, tmp_path, trains, trains_theory
    ):
        # A slow-leased stream pins the single shard worker; the next
        # sharded query must fall back to the sequential path (flagged
        # ``degraded``) and still return the identical bitset.  Leases
        # 1-2 belong to the baseline query below; 3-4 are the stream's.
        plan = ServiceFaultPlan(
            leases=(
                LeaseFault(on_lease=3, mode="slow", delay=0.8),
                LeaseFault(on_lease=4, mode="slow", delay=0.8),
            )
        )
        port, thread, _ = start_server(
            tmp_path, publish=("t", trains_theory),
            fault_plan=plan, shard_workers=1,
        )
        examples = [str(e) for e in trains.pos + trains.neg]
        frames = {}

        def pin_pool():
            with ServiceClient(port=port) as c:
                frames["stream"] = list(c.query_stream("t", examples, shards=2))

        try:
            with ServiceClient(port=port) as c:
                baseline = c.query("t", examples, shards=2)
                assert "degraded" not in baseline
            t = threading.Thread(target=pin_pool)
            t.start()
            time.sleep(0.2)
            with ServiceClient(port=port) as c:
                resp = c.query("t", examples, shards=2)
                stats = c.request({"op": "stats"})
            t.join(timeout=30)
            assert resp["ok"] and resp.get("degraded") is True
            assert resp["shards"] == 1
            assert resp["covered"] == baseline["covered"]
            assert stats["query"]["degraded"] >= 1
            assert frames["stream"][-1]["covered"] == baseline["covered"]
        finally:
            shutdown(port, thread)


class TestSelfHealing:
    def test_slot_crash_heals_without_duplication(self, tmp_path):
        plan = ServiceFaultPlan(crashes=(SlotCrash(on_job=1),))
        svc = Service(slots=1, state_dir=str(tmp_path / "jobs"), fault_plan=plan)
        try:
            resp = svc.handle(
                {"op": "submit", "spec": {"dataset": "trains", "algo": "mdie"}}
            )
            final = svc.handle({"op": "wait", "job": resp["job"], "timeout": 120})
            assert final["state"] == "done"
            stats = svc.handle({"op": "stats"})
            assert stats["resilience"]["slot_crashes"] == 1
            assert len(svc.handle({"op": "jobs"})["jobs"]) == 1
            assert stats["faults"]["jobs_picked"] >= 2  # crash pick + heal pick
        finally:
            svc.close()

    def test_torn_write_never_corrupts_the_record(self, tmp_path):
        plan = ServiceFaultPlan(persist=(PersistFault(on_write=1, target="job"),))
        state = str(tmp_path / "jobs")
        svc = Service(slots=1, state_dir=state, fault_plan=plan)
        job = svc.handle(
            {"op": "submit", "spec": {"dataset": "trains", "algo": "mdie"}}
        )["job"]
        svc.handle({"op": "wait", "job": job, "timeout": 120})
        stats = svc.handle({"op": "stats"})
        svc.close()
        assert stats["resilience"]["persist_errors"] >= 1
        # Recovery over the same dir: the record decodes (the torn write
        # hit only the tmp file) and nothing lands in quarantine.
        svc = Service(slots=1, state_dir=state)
        try:
            recovered = svc.handle({"op": "jobs"})["jobs"]
            assert [j["job"] for j in recovered] == [job]
            assert recovered[0]["state"] == "done"
            assert svc.handle({"op": "stats"})["resilience"]["quarantined"] == []
        finally:
            svc.close()

    def test_corrupt_record_quarantined_not_fatal(self, tmp_path):
        state = str(tmp_path / "jobs")
        svc = Service(slots=1, state_dir=state)
        job = svc.handle(
            {"op": "submit", "spec": {"dataset": "trains", "algo": "mdie"}}
        )["job"]
        svc.handle({"op": "wait", "job": job, "timeout": 120})
        svc.close()
        os.makedirs(os.path.join(state, "job-damaged"))
        with open(os.path.join(state, "job-damaged", "job.rec"), "wb") as fh:
            fh.write(b"\xde\xad\xbe\xef not a record")
        svc = Service(slots=1, state_dir=state)
        try:
            stats = svc.handle({"op": "stats"})
            assert stats["resilience"]["quarantined"] == ["job-damaged"]
            assert [j["job"] for j in svc.handle({"op": "jobs"})["jobs"]] == [job]
        finally:
            svc.close()
        assert os.path.exists(
            os.path.join(state, "job-damaged", "job.rec.corrupt")
        )


class TestClientRetry:
    def test_resets_absorbed_and_submits_never_duplicate(self, tmp_path):
        plan = ServiceFaultPlan(
            resets=(
                ConnReset(on_request=2, op="ping", when="before"),
                ConnReset(on_request=3, op="ping", when="after"),
                ConnReset(on_request=1, op="submit", when="after"),
            )
        )
        port, thread, _ = start_server(tmp_path, fault_plan=plan)
        try:
            with ServiceClient(port=port, retries=5, backoff=0.02) as c:
                assert c.request_with_retry({"op": "ping"})["ok"]  # request 1
                # Request 2 dies before the handler, its retry (request 3)
                # after it; both must be absorbed transparently.
                assert c.request_with_retry({"op": "ping"})["ok"]
                assert c.reconnects >= 2
                # The lost-response submit: work done, answer dropped.  The
                # generated idempotency key makes the resend safe.
                job = c.submit(JobSpec(dataset="trains", algo="mdie"))
                jobs = c.request({"op": "jobs"})["jobs"]
                assert [j["job"] for j in jobs] == [job]
        finally:
            shutdown(port, thread)

    def test_lost_response_without_key_is_not_resent(self, tmp_path):
        plan = ServiceFaultPlan(
            resets=(ConnReset(on_request=1, op="submit", when="after"),)
        )
        port, thread, _ = start_server(tmp_path, fault_plan=plan)
        try:
            with ServiceClient(port=port) as c:  # retries=0: keyless submit
                with pytest.raises(ConnectionError) as err:
                    c.submit(JobSpec(dataset="trains", algo="mdie"))
                assert "repro:" in str(err.value)
                assert "idempotent" in str(err.value)
        finally:
            shutdown(port, thread)

    def test_friendly_error_text(self):
        friendly = ServiceClient._friendly(ConnectionResetError(), "lost it")
        assert str(friendly).startswith("repro: lost it (connection reset)")
        friendly = ServiceClient._friendly(BrokenPipeError(), "lost it")
        assert "broken pipe" in str(friendly)

    def test_backoff_deterministic_capped_and_hinted(self, tmp_path):
        port, thread, _ = start_server(tmp_path)
        try:
            def mk():
                return ServiceClient(
                    port=port, retries=3, backoff=0.1, backoff_max=0.5, retry_seed=7
                )

            with mk() as a, mk() as b:
                seq_a = [a._backoff_delay(i) for i in range(6)]
                seq_b = [b._backoff_delay(i) for i in range(6)]
                assert seq_a == seq_b  # same seed, same jitter
                assert max(seq_a) <= 0.5 * 1.5  # cap * max jitter
                assert b._backoff_delay(0, hint=5.0) >= 5.0  # server hint wins
        finally:
            shutdown(port, thread)


class TestGracefulDrain:
    def test_drain_stops_listener_and_keeps_state(self, tmp_path):
        port, thread, server = start_server(tmp_path, slots=1)
        with ServiceClient(port=port) as c:
            job = c.submit(JobSpec(dataset="trains", algo="mdie"))
            c.wait(job, timeout=120)
        server.initiate_drain()
        thread.join(timeout=30)
        assert not thread.is_alive(), "drain did not stop the server"
        with pytest.raises(OSError):
            ServiceClient(port=port, timeout=2)  # listener is gone
        # The drained state dir recovers cleanly.
        svc = Service(slots=1, state_dir=str(tmp_path / "jobs"))
        try:
            jobs = svc.handle({"op": "jobs"})["jobs"]
            assert [j["job"] for j in jobs] == [job]
            assert jobs[0]["state"] == "done"
        finally:
            svc.close()

    def test_draining_service_rejects_submits(self, tmp_path):
        svc = Service(slots=1, state_dir=str(tmp_path / "jobs"))
        try:
            svc.draining = True
            resp = svc.handle({"op": "submit", "spec": {"dataset": "trains"}})
            assert not resp["ok"]
            assert resp["code"] == "shutting_down"
            assert resp["retry_after"] > 0
            assert svc.handle({"op": "ping"})["ok"]  # reads still served
        finally:
            svc.draining = False
            svc.close()

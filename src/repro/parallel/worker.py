"""P²-MDIE worker process (paper Fig. 6 + Fig. 7).

Each worker owns one example partition (read from the simulated shared
filesystem on ``load_examples``) and serves four tasks:

* ``start_pipeline(w)`` — select a local seed, saturate it into ⊥e, run
  the first pipeline stage (``learn_rule'`` with an empty seed set);
* ``learn_rule'(⊥e, step, w, S)`` — continue a pipeline started
  elsewhere: re-evaluate the received rules locally, search onward from
  them, forward the best ``w`` to the next stage (or the master);
* ``evaluate(Rules)`` — local coverage stats for the master's rule bag;
* ``mark_covered(R)`` — retract locally covered positives.

All engine work between messages is charged to the worker's virtual clock
via ``ctx.compute`` with the engine's operation delta.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.message import Tag
from repro.cluster.process import ProcContext, SimProcess
from repro.ilp.bottom import (
    BottomClause,
    SaturationError,
    build_bottom,
    build_bottom_cached,
)
from repro.ilp.config import ILPConfig
from repro.ilp.modes import ModeSet
from repro.ilp.search import learn_rule
from repro.ilp.store import ExampleStore
from repro.logic.engine import Engine
from repro.logic.knowledge import KnowledgeBase
from repro.parallel.messages import (
    EvaluateRequest,
    EvaluateResult,
    ExamplesReport,
    GatherExamples,
    LoadData,
    LoadExamples,
    MarkCovered,
    PipelineRules,
    PipelineTask,
    Repartition,
    RuleStats,
    StartPipeline,
    Stop,
)
from repro.util.rng import make_rng

__all__ = ["P2Worker", "MASTER_RANK"]

MASTER_RANK = 0


class P2Worker(SimProcess):
    """One pipeline stage owner.

    ``shared`` is the simulated distributed filesystem
    (:class:`repro.parallel.p2mdie.SharedProblem`); ``n_workers`` fixes the
    pipeline ring ``1 → 2 → ... → p → 1``.
    """

    def __init__(self, rank: int, shared, n_workers: int, seed: int = 0):
        super().__init__(rank)
        self.shared = shared
        self.n_workers = n_workers
        self.seed = seed
        # populated on load_examples:
        self.store: Optional[ExampleStore] = None
        self.engine: Optional[Engine] = None
        self.config: Optional[ILPConfig] = None
        self.modes: Optional[ModeSet] = None
        # seeds already tried as pipeline roots (and not since covered):
        self._tried_mask = 0

    # -- helpers -----------------------------------------------------------------
    def _next_worker(self) -> int:
        """Successor in the ring of workers (ranks 1..p)."""
        return self.rank % self.n_workers + 1

    def _select_seed(self) -> Optional[int]:
        candidates = self.store.alive & ~self._tried_mask
        if not candidates and self.store.alive:
            # Every alive seed has been tried without being covered.  Allow a
            # fresh pass: the global coverage state changed since those
            # pipelines ran (other rules were accepted), so a retried seed
            # can produce different surviving rules.  Termination stays
            # bounded by the master's stall detector.
            self._tried_mask = 0
            candidates = self.store.alive
        idxs = [i for i in range(self.store.n_pos) if (candidates >> i) & 1]
        if not idxs:
            return None
        if self.config.select_seed_randomly:
            return self._rng.choice(idxs)
        return idxs[0]

    def _ops_since(self, mark: int) -> int:
        return self.engine.total_ops - mark

    # -- process body ----------------------------------------------------------------
    def run(self, ctx: ProcContext):
        # Fig. 6 load_examples(): read the local subset + shared data, or
        # (no shared FS) receive everything in a LoadData message.
        msg = yield ctx.recv(tag=Tag.LOAD_EXAMPLES)
        if isinstance(msg.payload, LoadExamples):
            problem = self.shared.worker_problem(msg.payload.partition_id)
            kb = problem.kb
            pos, neg = problem.pos, problem.neg
            self.config = problem.config
            self.modes = problem.modes
            load_cost = len(pos) + len(neg)
        else:
            assert isinstance(msg.payload, LoadData)
            data: LoadData = msg.payload
            # Shared problem still supplies the (small) bias/config; the
            # bulky relational data came over the wire.
            self.config = self.shared.config
            self.modes = self.shared.modes
            kb = KnowledgeBase()
            for fact in data.facts:
                kb.add_fact(fact)
            for rule in data.rules:
                kb.add_rule(rule)
            pos, neg = data.pos, data.neg
            # Building the KB from terms costs real work: one op per clause.
            load_cost = len(data.facts) + len(data.rules) + len(pos) + len(neg)
        self.store = ExampleStore(
            pos,
            neg,
            reorder_body=self.config.reorder_body,
            inherit=self.config.coverage_inheritance,
            fingerprints=self.config.clause_fingerprints,
        )
        self.engine = Engine(kb, self.config.engine_budget(), kernel=self.config.coverage_kernel)
        self._rng = make_rng(self.seed, "worker", self.rank)
        yield ctx.compute(load_cost, label="load")

        while True:
            msg = yield ctx.recv()
            payload = msg.payload
            if isinstance(payload, Stop):
                return
            if isinstance(payload, StartPipeline):
                yield from self._start_pipeline(ctx, payload.width)
            elif isinstance(payload, PipelineTask):
                yield from self._pipeline_stage(ctx, payload)
            elif isinstance(payload, EvaluateRequest):
                yield from self._evaluate(ctx, payload)
            elif isinstance(payload, MarkCovered):
                yield from self._mark_covered(ctx, payload)
            elif isinstance(payload, GatherExamples):
                yield from self._gather_examples(ctx)
            elif isinstance(payload, Repartition):
                yield from self._repartition(ctx, payload)
            else:  # pragma: no cover - defensive
                raise TypeError(f"worker {self.rank}: unknown task {payload!r}")

    # -- tasks ----------------------------------------------------------------------
    def _start_pipeline(self, ctx: ProcContext, width: Optional[int]):
        """Fig. 6 start_pipeline: seed, saturate, first learn_rule' stage."""
        ops0 = self.engine.total_ops
        seed_i = self._select_seed()
        bottom: Optional[BottomClause] = None
        if seed_i is not None:
            self._tried_mask |= 1 << seed_i
            saturate = build_bottom_cached if self.config.saturation_cache else build_bottom
            try:
                bottom = saturate(
                    self.store.pos[seed_i], self.engine, self.modes, self.config
                )
            except SaturationError:
                bottom = None
        yield ctx.compute(self._ops_since(ops0), label="saturate")
        task = PipelineTask(bottom=bottom, step=1, width=width, rules=(), origin=self.rank)
        yield from self._pipeline_stage(ctx, task)

    def _pipeline_stage(self, ctx: ProcContext, task: PipelineTask):
        """Fig. 7 learn_rule': search locally, forward Good onward."""
        ops0 = self.engine.total_ops
        if task.bottom is None:
            good: tuple = task.rules
        else:
            result = learn_rule(
                self.engine,
                task.bottom,
                self.store,
                self.config,
                seeds=task.rules or None,
                width=task.width,
            )
            good = tuple(er.rule for er in result.good)
        yield ctx.compute(self._ops_since(ops0), label=f"search(s{task.step})")
        if task.step >= self.n_workers:
            # Last stage: ship the pipeline's rules to the master.
            yield ctx.send(
                MASTER_RANK,
                PipelineRules(origin=task.origin, rules=good),
                tag=Tag.RULES,
            )
        else:
            yield ctx.send(
                self._next_worker(),
                PipelineTask(
                    bottom=task.bottom,
                    step=task.step + 1,
                    width=task.width,
                    rules=good,
                    origin=task.origin,
                ),
                tag=Tag.LEARN_RULE,
            )

    def _evaluate(self, ctx: ProcContext, req: EvaluateRequest):
        """Fig. 6 evaluate_rules: local stats for each bag rule.

        Coverage inheritance narrows the work: the store derives each
        rule's lattice parent structurally (refinement appends literals),
        and master-echoed candidate masks narrow further when the local
        cache is cold — only examples the parent covered are re-tested.
        """
        ops0 = self.engine.total_ops
        inherit = self.config.coverage_inheritance
        stats = []
        for i, rule in enumerate(req.rules):
            cand = req.candidates[i] if (inherit and req.candidates) else None
            cs = self.store.evaluate(self.engine, rule, candidates=cand)
            if inherit:
                pc, nc = self.store.cand_masks(rule) or (0, 0)
                stats.append(RuleStats(pos=cs.pos, neg=cs.neg, pos_cand=pc, neg_cand=nc))
            else:
                # Seed-faithful accounting: no mask payload when off.
                stats.append(RuleStats(pos=cs.pos, neg=cs.neg))
        yield ctx.compute(self._ops_since(ops0), label="evaluate")
        yield ctx.send(
            MASTER_RANK,
            EvaluateResult(rank=self.rank, stats=tuple(stats)),
            tag=Tag.RESULT,
        )

    def _mark_covered(self, ctx: ProcContext, req: MarkCovered):
        """Fig. 6 mark_covered: retract positives the accepted rule covers."""
        ops0 = self.engine.total_ops
        cs = self.store.evaluate(self.engine, req.rule)
        self.store.kill(cs.pos_bits)
        # Seeds that were covered no longer need the tried-mark; keeping the
        # mask aligned with `alive` lets future epochs retry only genuinely
        # new ground.
        self._tried_mask &= self.store.alive
        yield ctx.compute(self._ops_since(ops0), label="mark_covered")

    def _gather_examples(self, ctx: ProcContext):
        """Repartitioning step 1: report remaining examples to the master."""
        report = ExamplesReport(
            rank=self.rank,
            pos=tuple(self.store.alive_examples()),
            neg=tuple(self.store.neg),
        )
        yield ctx.compute(self.store.remaining + self.store.n_neg, label="gather")
        yield ctx.send(MASTER_RANK, report, tag=Tag.LOAD_EXAMPLES)

    def _repartition(self, ctx: ProcContext, req: Repartition):
        """Repartitioning step 2: adopt a fresh subset.

        The evaluation cache dies with the old store — exactly the hidden
        cost (beyond message bytes) that makes repartitioning expensive.
        """
        self.store = ExampleStore(
            list(req.pos),
            list(req.neg),
            reorder_body=self.config.reorder_body,
            inherit=self.config.coverage_inheritance,
            fingerprints=self.config.clause_fingerprints,
        )
        self._tried_mask = 0
        yield ctx.compute(self.store.n_pos + self.store.n_neg, label="load")

"""Unit tests for the sequential MDIE covering loop (Fig. 1)."""

import pytest

from repro.ilp.mdie import mdie, select_seed
from repro.ilp.store import ExampleStore
from repro.ilp.theory import accuracy
from repro.logic.engine import Engine
from repro.logic.parser import parse_clause, parse_term
from repro.util.rng import make_rng


class TestMdie:
    def test_learns_family(self, family_kb, family_pos, family_neg, family_modes, family_config):
        res = mdie(family_kb, family_pos, family_neg, family_modes, family_config, seed=1)
        assert res.uncovered == 0
        assert len(res.theory) >= 1
        eng = Engine(family_kb, family_config.engine_budget())
        assert accuracy(eng, res.theory, family_pos, family_neg) == 100.0

    def test_deterministic_given_seed(self, family_kb, family_pos, family_neg, family_modes, family_config):
        a = mdie(family_kb, family_pos, family_neg, family_modes, family_config, seed=5)
        b = mdie(family_kb, family_pos, family_neg, family_modes, family_config, seed=5)
        assert list(a.theory) == list(b.theory)
        assert a.ops == b.ops

    def test_epochs_counted(self, family_kb, family_pos, family_neg, family_modes, family_config):
        res = mdie(family_kb, family_pos, family_neg, family_modes, family_config, seed=1)
        assert res.epochs == len([e for e in res.log])
        assert res.epochs >= 1

    def test_max_epochs_stops(self, family_kb, family_pos, family_neg, family_modes, family_config):
        res = mdie(family_kb, family_pos, family_neg, family_modes, family_config, seed=1, max_epochs=0)
        assert res.epochs == 0
        assert len(res.theory) == 0

    def test_covered_positives_removed(self, family_kb, family_pos, family_neg, family_modes, family_config):
        res = mdie(family_kb, family_pos, family_neg, family_modes, family_config, seed=1)
        total_covered = sum(entry[2] for entry in res.log)
        assert total_covered == len(family_pos) - res.uncovered

    def test_kb_not_mutated(self, family_kb, family_pos, family_neg, family_modes, family_config):
        before = len(family_kb)
        mdie(family_kb, family_pos, family_neg, family_modes, family_config, seed=1)
        assert len(family_kb) == before

    def test_memorize_mode_covers_everything(self, family_kb, family_pos, family_neg, family_modes, family_config):
        # noise=0 and min_pos high => no rule is learnable; memorize adds units
        cfg = family_config.replace(min_pos=len(family_pos) + 1, on_uncoverable="memorize")
        res = mdie(family_kb, family_pos, family_neg, family_modes, cfg, seed=1)
        assert res.uncovered == 0
        assert len(res.theory) == len(family_pos)
        assert all(c.is_fact for c in res.theory)

    def test_skip_mode_leaves_uncoverable(self, family_kb, family_pos, family_neg, family_modes, family_config):
        cfg = family_config.replace(min_pos=len(family_pos) + 1, on_uncoverable="skip")
        res = mdie(family_kb, family_pos, family_neg, family_modes, cfg, seed=1)
        assert res.uncovered == len(family_pos)
        assert len(res.theory) == 0

    def test_theory_consistent_with_noise_zero(self, family_kb, family_pos, family_neg, family_modes, family_config):
        res = mdie(family_kb, family_pos, family_neg, family_modes, family_config, seed=2)
        eng = Engine(family_kb, family_config.engine_budget())
        from repro.ilp.theory import confusion

        rep = confusion(eng, res.theory, family_pos, family_neg)
        assert rep.fp == 0  # noise=0: no negative may be covered


class TestSelectSeed:
    def test_none_when_empty(self):
        store = ExampleStore([], [])
        assert select_seed(store, 0, make_rng(0), True) is None

    def test_respects_mask(self):
        store = ExampleStore([parse_term("p(a)"), parse_term("p(b)")], [])
        assert select_seed(store, 0b10, make_rng(0), False) == 1

    def test_deterministic_first(self):
        store = ExampleStore([parse_term("p(a)"), parse_term("p(b)")], [])
        assert select_seed(store, 0b11, make_rng(0), False) == 0

"""SPMD driver for the MPI legs of the fault-tolerance parity tests.

Launched under mpiexec (``mpiexec -n <p+spares+1> python mpi_driver.py
--p 3 ...``) by tests/fault/test_ft_matrix.py and the CI mpi-smoke job;
every rank makes the same :func:`repro.parallel.run_p2mdie` call and
rank 0 writes a JSON report (theory, epoch log, fault observability) for
the launching test to compare against the fault-free sim baseline.
"""

import argparse
import json
import sys


def report(res) -> dict:
    return {
        "theory": [str(r) for r in res.theory],
        "log": [
            [log.epoch, log.bag_size, [str(c) for c in log.accepted], log.pos_covered]
            for log in res.epoch_logs
        ],
        "fault_events": list(res.fault_events),
        "fault_log": [[f.kind, f.rank] for f in res.fault_log],
    }


def main(argv=None) -> int:
    from repro.backend import make_backend
    from repro.datasets import make_dataset
    from repro.fault.plan import FaultPlan
    from repro.parallel import run_p2mdie

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--dataset", default="krki")
    ap.add_argument("--p", type=int, default=3)
    ap.add_argument("--width", type=int, default=10)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--spares", type=int, default=0)
    ap.add_argument("--plan", default=None, help="JSON fault-plan file")
    ap.add_argument("--checkpoint-dir", default=None)
    ap.add_argument("--resume-from", default=None, help=".ckpt file to resume from")
    ap.add_argument("--out", required=True)
    args = ap.parse_args(argv)

    ds = make_dataset(args.dataset, seed=0)
    plan = FaultPlan.load(args.plan, p=args.p, spares=args.spares) if args.plan else None
    backend = make_backend("mpi", fault_plan=plan)
    resume = None
    if args.resume_from:
        from repro.fault.checkpoint import load_checkpoint

        resume = load_checkpoint(args.resume_from)
    res = run_p2mdie(
        ds.kb, ds.pos, ds.neg, ds.modes, ds.config,
        p=args.p, width=args.width, seed=args.seed,
        backend=backend, fault_plan=plan, spares=args.spares,
        checkpoint_dir=args.checkpoint_dir, resume=resume,
    )
    if backend.is_root:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report(res), fh, indent=2)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_learn_defaults(self):
        args = build_parser().parse_args(["learn", "trains"])
        assert args.p == 1
        assert args.width == 10

    def test_width_nolimit(self):
        args = build_parser().parse_args(["learn", "trains", "--width", "nolimit"])
        assert args.width is None

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["learn", "nope"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestLearn:
    def test_sequential(self, capsys):
        assert main(["learn", "trains", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "eastbound" in out
        assert "training-accuracy" in out

    def test_parallel(self, capsys):
        assert main(["learn", "trains", "--p", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "p2-mdie" in out
        assert "comm=" in out


class TestTrace:
    def test_renders_gantt(self, capsys):
        assert main(["trace", "trains", "--p", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "rank 1" in out
        assert "busy fractions" in out


class TestTables:
    def test_table1_only(self, capsys):
        assert main(["tables", "--which", "1", "--datasets", "trains"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_small_matrix(self, capsys):
        rc = main(
            [
                "tables",
                "--which", "4,5",
                "--datasets", "trains",
                "--folds", "2",
                "--ps", "2",
                "--seed", "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 4" in out and "Table 5" in out


class TestExport:
    def test_writes_problem_files(self, tmp_path, capsys):
        assert main(["export", "trains", str(tmp_path / "out"), "--seed", "1"]) == 0
        assert (tmp_path / "out" / "bk.pl").exists()
        assert (tmp_path / "out" / "pos.f").exists()
        assert (tmp_path / "out" / "neg.n").exists()
        assert (tmp_path / "out" / "modes.pl").exists()
        # exported problem is re-loadable
        from repro.ilp.modes import ModeSet
        from repro.logic.io import load_problem

        kb, pos, neg, modes = load_problem(tmp_path / "out")
        assert pos and neg
        ModeSet(modes).validate()

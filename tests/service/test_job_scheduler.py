"""JobScheduler: queueing, priorities, cancellation, preemption, recovery."""

import time

import pytest

from repro.service import JobScheduler, JobSpec, SchedulerError, run_job


def wait_for(predicate, timeout=60.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestQueueing:
    def test_jobs_run_and_match_direct_execution(self, trains):
        with JobScheduler(slots=2) as sched:
            spec = JobSpec(dataset="trains", algo="p2mdie", p=2, seed=0)
            job = sched.submit(spec)
            status = sched.wait(job, timeout=120)
            assert status["state"] == "done"
            outcome = sched.result(job)
        direct = run_job(spec)
        assert list(outcome.theory) == list(direct.theory)
        assert outcome.epochs == direct.epochs

    def test_priority_order_with_fifo_ties(self):
        # One slot, staged start: submission order is b, c, a but priority
        # must run a first; b and c tie and stay FIFO.
        sched = JobScheduler(slots=1, start=False)
        order = []
        b = sched.submit(JobSpec(dataset="trains", algo="mdie", priority=0))
        c = sched.submit(JobSpec(dataset="trains", algo="mdie", priority=0))
        a = sched.submit(JobSpec(dataset="trains", algo="mdie", priority=5))
        orig = sched._execute

        def tracking_execute(job):
            order.append(job.record.job_id)
            return orig(job)

        sched._execute = tracking_execute
        sched.start()
        sched.wait_all(timeout=120)
        sched.close()
        assert order == [a, b, c]

    def test_unknown_job_raises(self):
        with JobScheduler(slots=1) as sched:
            with pytest.raises(SchedulerError, match="unknown job"):
                sched.status("job-9999")

    def test_failed_job_records_error(self, monkeypatch):
        import repro.service.scheduler as sched_mod

        def boom(spec, **kw):
            raise RuntimeError("synthetic job failure")

        monkeypatch.setattr(sched_mod, "run_job", boom)
        sched = JobScheduler(slots=1)
        job = sched.submit(JobSpec(dataset="trains"))
        status = sched.wait(job, timeout=60)
        assert status["state"] == "failed"
        assert "synthetic job failure" in status["error"]
        with pytest.raises(SchedulerError, match="failed"):
            sched.result(job)
        sched.close()

    def test_submit_after_close_raises(self):
        sched = JobScheduler(slots=1)
        sched.close()
        with pytest.raises(SchedulerError, match="closed"):
            sched.submit(JobSpec(dataset="trains"))

    def test_result_of_unfinished_job_raises(self):
        sched = JobScheduler(slots=1, start=False)
        job = sched.submit(JobSpec(dataset="trains"))
        with pytest.raises(SchedulerError, match="not done"):
            sched.result(job)
        sched.close(drain=False)


class TestCancellation:
    def test_cancel_queued_job(self):
        sched = JobScheduler(slots=1, start=False)
        job = sched.submit(JobSpec(dataset="trains"))
        assert sched.cancel(job) is True
        assert sched.status(job)["state"] == "cancelled"
        # A terminal job cannot be cancelled again.
        assert sched.cancel(job) is False
        sched.start()
        sched.close()

    def test_cancel_running_preemptible_job(self, tmp_path):
        sched = JobScheduler(slots=1, state_dir=str(tmp_path), chunk_epochs=1)
        job = sched.submit(JobSpec(dataset="krki", algo="mdie", seed=0, preemptible=True))
        assert wait_for(
            lambda: sched.status(job)["state"] == "running"
            and sched.status(job)["epochs_done"] >= 1
        )
        state = sched.status(job)["state"]
        if state == "running":  # not already finished under us
            assert sched.cancel(job) is True
            final = sched.wait(job, timeout=60)
            assert final["state"] in ("cancelled", "done")
        sched.close(drain=False)

    def test_cancel_running_non_preemptible_returns_false(self, krki):
        sched = JobScheduler(slots=1)
        job = sched.submit(JobSpec(dataset="krki", algo="mdie", seed=0))
        assert wait_for(lambda: sched.status(job)["state"] != "queued")
        if sched.status(job)["state"] == "running":
            assert sched.cancel(job) is False
        sched.wait(job, timeout=120)
        sched.close()


class TestPreemptionAndRecovery:
    def test_chunked_run_is_bit_identical(self, krki):
        spec = JobSpec(dataset="krki", algo="mdie", seed=1, preemptible=True)
        with JobScheduler(slots=1, chunk_epochs=1) as sched:
            job = sched.submit(spec)
            sched.wait(job, timeout=240)
            chunked = sched.result(job)
        direct = run_job(JobSpec(dataset="krki", algo="mdie", seed=1))
        assert list(chunked.theory) == list(direct.theory)
        assert chunked.uncovered == direct.uncovered

    def test_interrupt_and_recover_resumes_bit_identically(self, tmp_path):
        spec = JobSpec(dataset="krki", algo="p2mdie", p=2, seed=0, preemptible=True)
        sched = JobScheduler(slots=1, state_dir=str(tmp_path), chunk_epochs=1)
        job = sched.submit(spec)
        wait_for(lambda: sched.status(job)["epochs_done"] >= 1
                 or sched.status(job)["state"] in ("done", "failed"))
        sched.close(drain=False)  # hard stop: job parks at its chunk boundary
        parked = sched.status(job)
        assert parked["state"] in ("running", "queued", "done")
        if parked["state"] != "done":
            sched2 = JobScheduler(
                slots=1, state_dir=str(tmp_path), chunk_epochs=1, start=False
            )
            assert sched2.recover_jobs() == [job]
            sched2.start()
            final = sched2.wait(job, timeout=240)
            assert final["state"] == "done"
            resumed = sched2.result(job)
            direct = run_job(JobSpec(dataset="krki", algo="p2mdie", p=2, seed=0))
            assert list(resumed.theory) == list(direct.theory)
            sched2.close()

    def test_recovery_preserves_terminal_states(self, tmp_path):
        sched = JobScheduler(slots=1, state_dir=str(tmp_path), start=False)
        done = sched.submit(JobSpec(dataset="trains", algo="mdie"))
        cancelled = sched.submit(JobSpec(dataset="trains", algo="mdie", priority=-1))
        # Cancelled before the workers ever start: guaranteed still queued.
        sched.cancel(cancelled)
        sched.start()
        sched.wait(done, timeout=120)
        sched.close()
        sched2 = JobScheduler(slots=1, state_dir=str(tmp_path), start=False)
        assert sched2.recover_jobs() == []
        states = {j["job"]: j["state"] for j in sched2.jobs()}
        assert states == {done: "done", cancelled: "cancelled"}
        # Sequence numbers continue past recovered records.
        new = sched2.submit(JobSpec(dataset="trains"))
        assert int(new.split("-")[1]) > int(cancelled.split("-")[1])
        sched2.close(drain=False)


class TestRegistryIntegration:
    def test_register_as_publishes_with_provenance(self, registry):
        with JobScheduler(slots=1, registry=registry) as sched:
            spec = JobSpec(
                dataset="trains", algo="p2mdie", p=2, seed=0, register_as="trains-svc"
            )
            job = sched.submit(spec)
            sched.wait(job, timeout=120)
            outcome = sched.result(job)
        record = registry.get("trains-svc")
        assert record.version == 1
        assert record.to_theory() == outcome.theory
        prov = record.provenance_dict()
        assert prov["dataset"] == "trains"
        assert prov["algo"] == "p2mdie"
        assert prov["job"] == job
        assert record.config_sig == outcome.config_sig


class TestRetentionAndOutcomePersistence:
    def test_gc_keeps_newest_terminal_jobs(self, tmp_path):
        import os

        sched = JobScheduler(slots=1, state_dir=str(tmp_path), start=False)
        jobs = [sched.submit(JobSpec(dataset="trains", algo="mdie")) for _ in range(3)]
        # Cancel before start: three terminal jobs, oldest-first by seq.
        for j in jobs:
            sched.cancel(j)
        running = sched.submit(JobSpec(dataset="trains", algo="mdie"))
        assert sched.gc(keep=1) == jobs[:2]
        states = {j["job"] for j in sched.jobs()}
        assert states == {jobs[2], running}
        # The durable records went with them.
        on_disk = {n for n in os.listdir(str(tmp_path)) if n.startswith("job-")}
        assert on_disk == {jobs[2], running}
        sched.close(drain=False)

    def test_gc_zero_drops_all_terminal_never_active(self):
        sched = JobScheduler(slots=1, start=False)
        queued = sched.submit(JobSpec(dataset="trains", algo="mdie"))
        victim = sched.submit(JobSpec(dataset="trains", algo="mdie"))
        sched.cancel(victim)
        assert sched.gc(keep=0) == [victim]
        assert [j["job"] for j in sched.jobs()] == [queued]
        with pytest.raises(SchedulerError, match="unknown job"):
            sched.status(victim)
        sched.close(drain=False)

    def test_gc_rejects_negative_keep(self):
        with JobScheduler(slots=1, start=False) as sched:
            with pytest.raises(ValueError, match="keep"):
                sched.gc(keep=-1)

    def test_job_ids_never_reused_after_gc(self):
        sched = JobScheduler(slots=1, start=False)
        victim = sched.submit(JobSpec(dataset="trains", algo="mdie"))
        sched.cancel(victim)
        sched.gc(keep=0)
        fresh = sched.submit(JobSpec(dataset="trains", algo="mdie"))
        assert int(fresh.split("-")[1]) > int(victim.split("-")[1])
        sched.close(drain=False)

    def test_outcome_summary_survives_scheduler_restart(self, tmp_path):
        sched = JobScheduler(slots=1, state_dir=str(tmp_path))
        job = sched.submit(JobSpec(dataset="trains", algo="mdie", seed=0))
        before = sched.wait(job, timeout=120)
        assert before["state"] == "done"
        sched.close()

        sched2 = JobScheduler(slots=1, state_dir=str(tmp_path), start=False)
        sched2.recover_jobs()
        after = sched2.status(job)
        assert after["state"] == "done"
        # The summary (theory text included) rode along in the durable
        # job record; only the full in-memory JobOutcome is gone.
        assert after["outcome"] == before["outcome"]
        assert after["outcome"]["rules"] >= 1
        assert ":-" in after["outcome"]["theory"]
        with pytest.raises(SchedulerError, match="previous scheduler"):
            sched2.result(job)
        sched2.close(drain=False)

"""Smoke tests: every shipped example must run to completion and print the
artifacts it promises (theories, speedups, tables)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr}"
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "sequential theory:" in out
    assert "p2-mdie theory" in out
    assert "accuracy" in out


def test_custom_dataset():
    out = run_example("custom_dataset.py")
    assert "grandparent" in out
    assert "speedup" in out


def test_mesh_width_ablation():
    out = run_example("mesh_width_ablation.py", "--p", "2")
    assert "nolimit" in out
    assert "train acc" in out


def test_pyrimidines_crossval_small():
    out = run_example("pyrimidines_crossval.py", "--folds", "2", "--p", "2")
    assert "paired t-test" in out
    assert "sequential:" in out


@pytest.mark.slow
def test_carcinogenesis_speedup():
    out = run_example("carcinogenesis_speedup.py")
    assert "speedup" in out
    assert "pipeline activity" in out


def test_fault_tolerance():
    out = run_example("fault_tolerance.py", "--p", "2")
    assert "identical" in out
    assert "DIFFERENT" not in out
    assert "declared dead" in out
    assert "resume from" in out

"""Rule coverage evaluation (the paper's ``evalOnExamples``).

A rule ``h :- b1, ..., bn`` covers a ground example ``e`` iff ``e`` unifies
with ``h`` and the instantiated body is provable from the background
knowledge (within the engine's resource bounds — budget-exhausted proofs
count as *not covered*, the standard resource-bounded semantics).

Coverage over an example list is returned as an **integer bitset** (bit i
set ⇔ example i covered).  Bitsets make the parallel algorithm's bag
re-evaluation, global aggregation and ``mark_covered`` steps cheap and
exact, and they serialize compactly between simulated cluster nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.logic.clause import Clause
from repro.logic.engine import Engine
from repro.logic.terms import Term
from repro.logic.unify import resolve, unify

__all__ = ["covers", "coverage_bitset", "CoverageStats", "popcount", "bitset_from_indices", "indices_from_bitset"]


def popcount(bits: int) -> int:
    """Number of set bits (examples covered)."""
    return bits.bit_count()


def bitset_from_indices(indices, n: Optional[int] = None) -> int:
    out = 0
    for i in indices:
        out |= 1 << i
    return out


def indices_from_bitset(bits: int):
    i = 0
    while bits:
        if bits & 1:
            yield i
        bits >>= 1
        i += 1


def covers(engine: Engine, rule: Clause, example: Term) -> bool:
    """True iff ``rule`` covers ``example`` given ``engine.kb``.

    >>> from repro.logic import KnowledgeBase, Engine, parse_clause, parse_term
    >>> kb = KnowledgeBase(); kb.add_program("q(a).")
    >>> covers(Engine(kb), parse_clause("p(X) :- q(X)."), parse_term("p(a)"))
    True
    """
    r = rule.rename_apart()
    subst = unify(r.head, example)
    if subst is None:
        return False
    if not r.body:
        return True
    goals = tuple(resolve(b, subst) for b in r.body)
    return engine.prove(goals)


def coverage_bitset(engine: Engine, rule: Clause, examples: Sequence[Term]) -> int:
    """Bitset of examples covered by ``rule``."""
    bits = 0
    for i, e in enumerate(examples):
        if covers(engine, rule, e):
            bits |= 1 << i
    return bits


@dataclass(frozen=True)
class CoverageStats:
    """Aggregated evaluation result for one rule.

    ``pos``/``neg`` are *counts*; ``pos_bits`` is the positive-coverage
    bitset (needed by ``mark_covered``), ``neg_bits`` the negative one.
    In the parallel algorithm these are summed/OR-ed across subsets.
    """

    pos: int
    neg: int
    pos_bits: int = 0
    neg_bits: int = 0

    def merged(self, other: "CoverageStats", pos_shift: int = 0, neg_shift: int = 0) -> "CoverageStats":
        """Combine stats from two disjoint example subsets.

        ``pos_shift``/``neg_shift`` position the other subset's bits within
        a global numbering (used by the master to aggregate worker
        results).
        """
        return CoverageStats(
            pos=self.pos + other.pos,
            neg=self.neg + other.neg,
            pos_bits=self.pos_bits | (other.pos_bits << pos_shift),
            neg_bits=self.neg_bits | (other.neg_bits << neg_shift),
        )

    @staticmethod
    def of(engine: Engine, rule: Clause, pos: Sequence[Term], neg: Sequence[Term]) -> "CoverageStats":
        pb = coverage_bitset(engine, rule, pos)
        nb = coverage_bitset(engine, rule, neg)
        return CoverageStats(pos=popcount(pb), neg=popcount(nb), pos_bits=pb, neg_bits=nb)

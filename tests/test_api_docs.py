"""docs/api.md is generated — it must never drift from the code."""

import pytest

from repro.util import apidoc


def test_api_md_matches_generated_output():
    on_disk = apidoc.api_doc_path().read_text(encoding="utf-8")
    assert on_disk == apidoc.render_api_doc(), (
        "docs/api.md is stale — regenerate with "
        "`PYTHONPATH=src python -m repro.util.apidoc --write`"
    )


def test_check_mode_exit_codes(tmp_path, monkeypatch):
    assert apidoc.main(["--check"]) == 0
    stale = tmp_path / "api.md"
    stale.write_text("outdated\n", encoding="utf-8")
    monkeypatch.setattr(apidoc, "api_doc_path", lambda: stale)
    assert apidoc.main(["--check"]) == 1
    assert apidoc.main(["--write"]) == 0
    assert stale.read_text(encoding="utf-8") == apidoc.render_api_doc()
    assert apidoc.main(["--check"]) == 0


def test_every_cli_subcommand_documented():
    from repro.cli import build_parser

    doc = apidoc.render_api_doc()
    sub = next(
        a
        for a in build_parser()._subparsers._group_actions
        if hasattr(a, "choices")
    )
    for command in sub.choices:
        assert f"`{command}" in doc, f"CLI command {command!r} missing from api.md"

"""Structured service errors: machine-readable codes + retry semantics.

Every failure the service reports over the protocol carries, besides the
human-readable ``"error"`` string, a stable machine-readable ``"code"``
so clients can branch without parsing prose — and, where the right
reaction is "come back later", a ``"retry_after"`` hint in seconds.

The exception classes here are the *internal* counterparts: handlers
raise them, :meth:`repro.service.server.Service.handle` renders them
with :func:`error_response`.  They deliberately live in a leaf module
with no intra-package imports, so the scheduler, query engine and server
can all raise them without import cycles.

Codes
-----
``bad_request``        malformed/invalid request (not retryable as-is);
``unauthenticated``    missing/wrong token (send a hello first);
``deadline_exceeded``  the request's deadline passed before completion;
``overloaded``         load shed — honour ``retry_after`` and resend;
``unavailable``        transient server-side failure — safe to retry;
``shutting_down``      the server is draining; reconnect elsewhere/later;
``frame_too_large``    a wire frame exceeded the 64 MiB cap;
``not_found``          unknown job/theory/version.
"""

from __future__ import annotations

from typing import Optional

from repro.parallel.wire import WireError

__all__ = [
    "ServiceFault",
    "BadRequest",
    "DeadlineExceeded",
    "Overloaded",
    "Unavailable",
    "ShuttingDown",
    "FrameTooLarge",
    "error_response",
    "RETRYABLE_CODES",
]

#: codes a client may blindly retry (with backoff); everything else
#: needs the request changed first.
RETRYABLE_CODES = ("overloaded", "unavailable", "shutting_down")


class ServiceFault(Exception):
    """Base of all coded service failures.

    ``retry_after`` (seconds) is advisory: present on faults where
    retrying later is the expected reaction.
    """

    code = "error"

    def __init__(self, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class BadRequest(ServiceFault):
    code = "bad_request"


class DeadlineExceeded(ServiceFault):
    code = "deadline_exceeded"


class Overloaded(ServiceFault):
    """Load shed: admission control refused the work.  Retryable."""

    code = "overloaded"

    def __init__(self, message: str, retry_after: float = 0.1):
        super().__init__(message, retry_after=retry_after)


class Unavailable(ServiceFault):
    """Transient server-side failure (e.g. a faulted engine lease).

    The request itself was fine; a retry is expected to succeed.
    """

    code = "unavailable"

    def __init__(self, message: str, retry_after: float = 0.05):
        super().__init__(message, retry_after=retry_after)


class ShuttingDown(ServiceFault):
    code = "shutting_down"

    def __init__(self, message: str = "server is draining; no new work accepted"):
        super().__init__(message, retry_after=1.0)


class FrameTooLarge(ServiceFault, WireError):
    """Also a :class:`~repro.parallel.wire.WireError`: pre-existing
    transport code catching ``WireError`` around frame reads keeps
    catching the oversize case."""

    code = "frame_too_large"


def error_response(exc: Exception, code: Optional[str] = None) -> dict:
    """Render any exception as a protocol error dict.

    :class:`ServiceFault` subclasses carry their own code (and
    ``retry_after``); everything else defaults to ``bad_request`` —
    the pre-existing convention for ValueError-family handler errors —
    unless ``code`` overrides it.
    """
    if isinstance(exc, ServiceFault):
        out = {"ok": False, "error": str(exc), "code": exc.code}
        if exc.retry_after is not None:
            out["retry_after"] = exc.retry_after
        return out
    return {
        "ok": False,
        "error": f"{type(exc).__name__}: {exc}",
        "code": code or "bad_request",
    }

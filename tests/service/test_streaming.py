"""Streaming query tier: shard ordering, reassembly, cancellation, transports.

The invariant under test: a sharded/streamed query's covered bitset is
bit-identical to the sequential :class:`QueryEngine` path, whatever the
shard count, scheduling or transport — and a client that walks away
mid-stream leaks no shard work (watched through the engine's
leak-detection counters).
"""

import threading
import time

import pytest

from repro.parallel.partition import shard_spans
from repro.service import QueryEngine
from repro.service.server import ServiceClient, serve


@pytest.fixture
def published(registry, trains_theory):
    registry.publish(
        "trains-th",
        trains_theory.theory,
        config_sig=trains_theory.config_sig,
        provenance={"dataset": "trains", "seed": "0", "scale": "small"},
    )
    return registry


class TestQueryStreamInProcess:
    def test_frames_arrive_in_shard_order_with_contiguous_spans(
        self, published, trains
    ):
        examples = trains.pos + trains.neg
        qe = QueryEngine(registry=published)
        stream = qe.query_stream("trains-th", examples, shards=4)
        frames = list(stream.frames())
        assert [f.shard for f in frames] == [0, 1, 2, 3]
        assert [(f.lo, f.lo + f.n) for f in frames] == shard_spans(len(examples), 4)
        assert sum(f.n for f in frames) == len(examples)

    def test_reassembly_is_bit_identical_to_sequential(self, published, trains):
        examples = trains.pos + trains.neg
        qe = QueryEngine(registry=published)
        seq = qe.query("trains-th", examples)
        stream = qe.query_stream("trains-th", examples, shards=3)
        merged = 0
        for frame in stream.frames():
            merged |= frame.covered << frame.lo
        result = stream.result()
        assert merged == seq.covered
        assert result.covered == seq.covered
        assert result.n == seq.n and result.n_covered == seq.n_covered

    @pytest.mark.parametrize("shards", [2, 3, 7, 100])
    def test_parity_across_shard_counts(self, published, trains, shards):
        examples = trains.pos + trains.neg
        qe = QueryEngine(registry=published)
        seq = qe.query("trains-th", examples)
        res = qe.query("trains-th", examples, shards=shards)
        assert res.covered == seq.covered and res.n == seq.n

    def test_parity_with_odd_micro_batch(self, published, trains):
        examples = trains.pos + trains.neg
        qe = QueryEngine(registry=published)
        seq = qe.query("trains-th", examples)
        for micro in (1, 5):
            res = qe.query("trains-th", examples, shards=3, micro_batch=micro)
            assert res.covered == seq.covered

    def test_empty_batch_streams_one_empty_frame(self, published):
        qe = QueryEngine(registry=published)
        stream = qe.query_stream("trains-th", [], shards=4)
        frames = list(stream.frames())
        assert [(f.lo, f.n, f.covered) for f in frames] == [(0, 0, 0)]
        result = stream.result()
        assert result.covered == 0 and result.n == 0 and result.shards == 1

    def test_result_before_drain_raises(self, published, trains):
        qe = QueryEngine(registry=published)
        stream = qe.query_stream("trains-th", trains.pos, shards=2)
        with pytest.raises(RuntimeError, match="not fully consumed"):
            stream.result()
        list(stream.frames())
        assert stream.result().n == len(trains.pos)

    def test_cancel_releases_pending_shard_work(self, published, trains):
        # One worker thread serializes the shards, so after the first
        # frame the remaining tasks are still queued — cancel() must
        # drop them at the executor instead of letting them run.
        examples = (trains.pos + trains.neg) * 500
        qe = QueryEngine(registry=published, shard_workers=1)
        stream = qe.query_stream("trains-th", examples, shards=8)
        assert stream.next_frame(timeout=60) is not None
        stream.cancel()
        assert stream.next_frame() is None
        with pytest.raises(RuntimeError):
            stream.result()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            stats = qe.stats()
            if stats["shard_tasks_active"] == 0:
                break
            time.sleep(0.02)
        assert stats["shard_tasks_active"] == 0
        assert stats["streams_cancelled"] == 1
        assert stats["shard_tasks_started"] < 8, "cancelled shards still ran"

    def test_cancel_is_idempotent(self, published, trains):
        qe = QueryEngine(registry=published)
        stream = qe.query_stream("trains-th", trains.pos, shards=2)
        stream.cancel()
        stream.cancel()
        assert qe.stats()["streams_cancelled"] == 1


def start_server(tmp_path, registry, **kwargs):
    """Run serve() against a pre-populated registry; returns (port, thread)."""
    ready = threading.Event()
    box = {}

    def on_ready(server):
        box["server"] = server
        ready.set()

    thread = threading.Thread(
        target=serve,
        kwargs=dict(
            port=0,
            slots=1,
            state_dir=str(tmp_path / "jobs"),
            registry_dir=registry.root,
            ready=on_ready,
            **kwargs,
        ),
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=10), "server did not come up"
    return box["server"].port, thread


def shutdown(port, thread):
    with ServiceClient(port=port) as c:
        c.request({"op": "shutdown"})
    thread.join(timeout=10)


class TestStreamingOverSockets:
    def test_json_stream_frames_and_client_side_reassembly(
        self, tmp_path, published, trains
    ):
        examples = [str(e) for e in trains.pos + trains.neg]
        port, thread = start_server(tmp_path, published)
        try:
            with ServiceClient(port=port) as client:
                frames = list(client.query_stream("trains-th", examples, shards=4))
                plain = client.query("trains-th", examples, shards=4)
            shard_frames, end = frames[:-1], frames[-1]
            assert [f["shard"] for f in shard_frames] == [0, 1, 2, 3]
            assert [(f["lo"], f["lo"] + f["n"]) for f in shard_frames] == shard_spans(
                len(examples), 4
            )
            reassembled = []
            for f in shard_frames:
                assert f["lo"] == len(reassembled)
                reassembled.extend(f["covered"])
            assert end["frame"] == "end" and end["shards"] == 4
            assert reassembled == end["covered"]
            assert end["covered"] == plain["covered"]
            assert end["n_covered"] == sum(end["covered"])
        finally:
            shutdown(port, thread)

    def test_wire_stream_is_bit_identical_to_json_stream(
        self, tmp_path, published, trains
    ):
        examples = [str(e) for e in trains.pos + trains.neg]
        port, thread = start_server(tmp_path, published)
        try:
            with ServiceClient(port=port, transport="json") as jc:
                json_frames = list(jc.query_stream("trains-th", examples, shards=3))
            with ServiceClient(port=port, transport="wire") as wc:
                assert wc.transport == "wire"
                wire_frames = list(wc.query_stream("trains-th", examples, shards=3))
            strip = lambda f: {k: v for k, v in f.items() if k != "ops"}
            assert [strip(f) for f in wire_frames] == [strip(f) for f in json_frames]
            assert wire_frames[-1]["ops"] == json_frames[-1]["ops"]
        finally:
            shutdown(port, thread)

    def test_disconnect_mid_stream_cancels_pending_shards(
        self, tmp_path, published, trains
    ):
        examples = [str(e) for e in trains.pos + trains.neg] * 500
        port, thread = start_server(tmp_path, published, shard_workers=1)
        try:
            client = ServiceClient(port=port)
            stream = client.query_stream("trains-th", examples, shards=8)
            first = next(stream)
            assert first["frame"] == "shard" and first["shard"] == 0
            client.close()  # walk away mid-stream

            with ServiceClient(port=port) as watcher:
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    q = watcher.request({"op": "stats"})["query"]
                    if q["streams_cancelled"] >= 1 and q["shard_tasks_active"] == 0:
                        break
                    time.sleep(0.05)
            assert q["streams_cancelled"] == 1, "disconnect did not cancel the stream"
            assert q["shard_tasks_active"] == 0, "shard work leaked past the stream"
            assert q["shard_tasks_started"] < 8, "cancelled shards still ran"
        finally:
            shutdown(port, thread)

"""Versioned checkpoints of master learning state.

A checkpoint is one :class:`CheckpointState` payload serialized with the
compact wire codec of :mod:`repro.parallel.wire` (the codec is what the
cluster already trusts for byte-exact, hash-seed-independent marshalling
of clauses and terms).  Checkpoints are written at epoch boundaries —
the only points where the distributed learning state is fully described
by master-side data:

* the theory accepted so far and the per-epoch logs (from which every
  worker's example-liveness and seed-draw history is deterministically
  replayable, see :mod:`repro.fault.recovery`);
* the covering loop's counters (epoch, remaining positives, stall);
* for masters that own an RNG (sequential MDIE, the coverage-parallel
  baseline), the exact generator state.

``repro resume <ckpt>`` rebuilds the run mid-flight and continues it
bit-identically: the same rules are learned in the same order over the
remaining epochs.

File format::

    0xC3 | wire-version | type-code 21 | symbols | body   (see wire.py)

The payload is always encoded (never pickled) regardless of the
transport-codec gate, so any process can read any checkpoint.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.logic.clause import Clause, Theory
from repro.parallel import wire

__all__ = [
    "CHECKPOINT_VERSION",
    "EpochRecord",
    "CheckpointState",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_path",
    "records_from_epoch_logs",
    "epoch_logs_from_records",
    "theory_from_state",
    "verify_config",
    "CheckpointError",
]

CHECKPOINT_VERSION = 1

#: wire type code of the checkpoint payload (append-only registry).
_WIRE_CODE = 21


class CheckpointError(ValueError):
    """Unreadable, corrupt or incompatible checkpoint."""


@dataclass(frozen=True)
class EpochRecord:
    """One epoch's durable outcome (the replayable part of an EpochLog)."""

    epoch: int
    bag_size: int
    accepted: tuple[Clause, ...]
    pos_covered: int


@dataclass(frozen=True)
class CheckpointState:
    """Everything needed to continue a run from an epoch boundary."""

    version: int
    #: "mdie" | "p2mdie" | "covpar"
    algo: str
    seed: int
    n_workers: int
    total_pos: int
    #: completed epochs (== len(epoch_logs)).
    epoch: int
    remaining: int
    stall: int
    theory: tuple[Clause, ...]
    epoch_logs: tuple[EpochRecord, ...]
    #: master-side seed-pool masks (mdie / covpar; 0 elsewhere).
    alive_mask: int = 0
    failed_mask: int = 0
    #: engine operations consumed so far (sequential accounting).
    ops: int = 0
    #: ``random.Random.getstate()`` of the master's RNG, when it owns one.
    rng_state: Optional[tuple] = None
    #: sequential per-epoch log: (example, rule-or-None, covered, ops).
    mdie_log: tuple = ()
    #: guard against resuming under a different configuration.
    config_sig: str = ""
    #: free-form provenance (dataset, scale, width, backend, ...).
    meta: tuple[tuple[str, str], ...] = ()

    def replace(self, **kw) -> "CheckpointState":
        return replace(self, **kw)

    def meta_dict(self) -> dict[str, str]:
        return dict(self.meta)


def records_from_epoch_logs(logs: Sequence) -> tuple[EpochRecord, ...]:
    """EpochRecord views of master :class:`~repro.parallel.master.EpochLog` entries."""
    return tuple(
        EpochRecord(
            epoch=log.epoch,
            bag_size=log.bag_size,
            accepted=tuple(log.accepted),
            pos_covered=log.pos_covered,
        )
        for log in logs
    )


def epoch_logs_from_records(records: Sequence[EpochRecord]) -> list:
    # Imported here: the master module itself imports this one to write
    # checkpoints, so a top-level import would be circular.
    from repro.parallel.master import EpochLog

    return [
        EpochLog(
            epoch=r.epoch,
            bag_size=r.bag_size,
            accepted=list(r.accepted),
            pos_covered=r.pos_covered,
        )
        for r in records
    ]


def theory_from_state(state: CheckpointState) -> Theory:
    return Theory(state.theory)


# -- wire codec -------------------------------------------------------------------


def _enc_checkpoint(e, m: CheckpointState) -> None:
    e.u(m.version)
    e.sym(m.algo)
    e.z(m.seed)
    e.u(m.n_workers)
    e.u(m.total_pos)
    e.u(m.epoch)
    e.u(m.remaining)
    e.u(m.stall)
    e.clauses(m.theory)
    e.u(len(m.epoch_logs))
    for rec in m.epoch_logs:
        e.u(rec.epoch)
        e.u(rec.bag_size)
        e.clauses(rec.accepted)
        e.u(rec.pos_covered)
    e.bitset(m.alive_mask)
    e.bitset(m.failed_mask)
    e.u(m.ops)
    e.flag(m.rng_state is not None)
    if m.rng_state is not None:
        version, internal, gauss = m.rng_state
        e.u(version)
        e.u(len(internal))
        for v in internal:
            e.u(v)
        e.flag(gauss is not None)
        if gauss is not None:
            e.body += wire._pack_f64(gauss)
    e.u(len(m.mdie_log))
    for example, rule, covered, ops in m.mdie_log:
        e.term(example)
        e.flag(rule is not None)
        if rule is not None:
            e.clause(rule)
        e.u(covered)
        e.u(ops)
    e.sym(m.config_sig)
    e.u(len(m.meta))
    for k, v in m.meta:
        e.sym(k)
        e.sym(v)


def _dec_checkpoint(d) -> CheckpointState:
    version = d.u()
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(f"unsupported checkpoint version {version}")
    algo = d.sym()
    seed = d.z()
    n_workers = d.u()
    total_pos = d.u()
    epoch = d.u()
    remaining = d.u()
    stall = d.u()
    theory = d.clauses()
    epoch_logs = []
    for _ in range(d.u()):
        epoch_logs.append(
            EpochRecord(epoch=d.u(), bag_size=d.u(), accepted=d.clauses(), pos_covered=d.u())
        )
    alive_mask = d.bitset()
    failed_mask = d.bitset()
    ops = d.u()
    rng_state = None
    if d.flag():
        rng_version = d.u()
        internal = tuple(d.u() for _ in range(d.u()))
        gauss = None
        if d.flag():
            (gauss,) = wire._unpack_f64(d.data, d.pos)
            d.pos += 8
        rng_state = (rng_version, internal, gauss)
    mdie_log = []
    for _ in range(d.u()):
        example = d.term()
        rule = d.clause() if d.flag() else None
        mdie_log.append((example, rule, d.u(), d.u()))
    return CheckpointState(
        version=version,
        algo=algo,
        seed=seed,
        n_workers=n_workers,
        total_pos=total_pos,
        epoch=epoch,
        remaining=remaining,
        stall=stall,
        theory=theory,
        epoch_logs=tuple(epoch_logs),
        alive_mask=alive_mask,
        failed_mask=failed_mask,
        ops=ops,
        rng_state=rng_state,
        mdie_log=tuple(mdie_log),
        config_sig=d.sym(),
        meta=tuple((d.sym(), d.sym()) for _ in range(d.u())),
    )


wire.register_codec(CheckpointState, _WIRE_CODE, _enc_checkpoint, _dec_checkpoint)


# -- file I/O ---------------------------------------------------------------------


def save_checkpoint(path: str, state: CheckpointState) -> str:
    """Write one checkpoint file atomically; returns the path."""
    data = wire.encode_always(state)
    assert data is not None
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str) -> CheckpointState:
    """Read one ``.ckpt`` file back into a :class:`CheckpointState`.

    Raises :class:`CheckpointError` on truncated, corrupt or
    non-checkpoint payloads (decoder underruns included).
    """
    with open(path, "rb") as fh:
        data = fh.read()
    try:
        state = wire.decode(data)
    except (wire.WireError, IndexError, struct.error, UnicodeDecodeError) as exc:
        # Truncated/corrupt bodies surface as decoder underruns, not
        # WireError — all of them mean the same thing here.
        raise CheckpointError(f"{path}: {exc}") from exc
    if not isinstance(state, CheckpointState):
        raise CheckpointError(f"{path}: not a checkpoint (got {type(state).__name__})")
    return state


def checkpoint_path(directory: str, epoch: int) -> str:
    """The ``epoch_NNNN.ckpt`` naming rule for epoch-boundary checkpoints."""
    return os.path.join(directory, f"epoch_{epoch:04d}.ckpt")


def verify_config(state: CheckpointState, config_sig: str) -> None:
    """Raise when resuming under a configuration the run was not made with."""
    if state.config_sig and config_sig and state.config_sig != config_sig:
        raise CheckpointError(
            "checkpoint was written under a different ILP configuration; "
            "bit-identical resumption is impossible "
            f"(saved: {state.config_sig!r}, current: {config_sig!r})"
        )

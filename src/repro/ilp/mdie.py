"""Sequential MDIE covering algorithm (paper Fig. 1).

This is the baseline the parallel algorithm is measured against: learn one
rule at a time from a randomly selected uncovered seed example, accept the
best good rule found, remove the positives it covers, repeat.

The run log records, per iteration, the engine operations spent — the cost
proxy that the simulated cluster uses, so sequential and parallel runs are
timed on an identical scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.ilp.bottom import (
    BottomClause,
    SaturationError,
    build_bottom,
    build_bottom_cached,
)
from repro.ilp.config import ILPConfig
from repro.ilp.modes import ModeSet
from repro.ilp.search import learn_rule
from repro.ilp.store import ExampleStore
from repro.logic.clause import Clause, Theory
from repro.logic.engine import Engine
from repro.logic.knowledge import KnowledgeBase
from repro.logic.terms import Term
from repro.util.rng import make_rng

__all__ = ["MDIEResult", "mdie", "select_seed"]


@dataclass
class MDIEResult:
    """Sequential run outcome plus cost accounting."""

    theory: Theory
    #: iterations of the covering loop (one rule learned per epoch here).
    epochs: int
    #: engine operations consumed (bottom construction + search + eval).
    ops: int
    #: positives left uncovered (seed examples no good rule covered).
    uncovered: int
    #: per-epoch log entries: (seed, rule or None, pos_covered, ops).
    log: list = field(default_factory=list)
    #: ExampleStore evaluation-cache counters for the run.
    cache_hits: int = 0
    cache_misses: int = 0
    #: sampled-run exactness certificate (None on the reference path).
    #: Covers the clauses accepted by *this* process — a resumed run's
    #: certificate starts at the resume point.
    certificate: Optional[object] = None


def select_seed(store: ExampleStore, candidates_mask: int, rng: random.Random, randomly: bool) -> Optional[int]:
    """Pick an uncovered, not-yet-failed seed example index (or None)."""
    idxs = [i for i in range(store.n_pos) if (candidates_mask >> i) & 1]
    if not idxs:
        return None
    return rng.choice(idxs) if randomly else idxs[0]


def mdie(
    kb: KnowledgeBase,
    pos: Sequence[Term],
    neg: Sequence[Term],
    modes: ModeSet,
    config: ILPConfig,
    seed: int = 0,
    max_epochs: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_meta: tuple = (),
    resume=None,
) -> MDIEResult:
    """Run the sequential MDIE covering loop of Fig. 1.

    ``seed`` drives the random seed-example selection; ``max_epochs`` is an
    optional stopping condition (the paper's "some time limit").

    ``checkpoint_dir`` writes a resumable snapshot of the covering state
    (theory, liveness masks, RNG state, run log) after every epoch;
    ``resume`` (a loaded :class:`~repro.fault.checkpoint.CheckpointState`
    with ``algo == "mdie"``) continues such a run: the remaining epochs
    select the same seeds and learn the same rules as the uninterrupted
    run.  (Engine-operation counts of recomputed evaluations may differ —
    caches restart cold — but never the learned clauses.)
    """
    engine = Engine(kb, config.engine_budget(), kernel=config.coverage_kernel)
    store = ExampleStore(
        pos,
        neg,
        reorder_body=config.reorder_body,
        inherit=config.coverage_inheritance,
        fingerprints=config.clause_fingerprints,
    )
    rng = make_rng(seed, "mdie")
    sampler = None
    cert_entries: list = []
    if config.sampling_enabled():
        from repro.ilp.sampling import sampler_for

        sampler = sampler_for(config, store.n_pos, store.n_neg, seed, labels=("mdie",))
    theory = Theory()
    log: list = []
    # Seeds that produced no acceptable rule; excluded from re-selection.
    failed_mask = 0
    epochs = 0
    prior_ops = 0
    if resume is not None:
        from repro.fault.checkpoint import verify_config

        if resume.algo != "mdie":
            raise ValueError(f"checkpoint is for {resume.algo!r}, not 'mdie'")
        if resume.seed != seed:
            raise ValueError(f"checkpoint seed {resume.seed} != requested seed {seed}")
        verify_config(resume, repr(config))
        theory = Theory(resume.theory)
        log = list(resume.mdie_log)
        store.alive = resume.alive_mask
        failed_mask = resume.failed_mask
        epochs = resume.epoch
        prior_ops = resume.ops
        if resume.rng_state is not None:
            rng.setstate(resume.rng_state)
    ops0 = engine.total_ops

    def write_checkpoint() -> None:
        if checkpoint_dir is None:
            return
        import os

        from repro.fault.checkpoint import (
            CHECKPOINT_VERSION,
            CheckpointState,
            checkpoint_path,
            save_checkpoint,
        )

        os.makedirs(checkpoint_dir, exist_ok=True)
        state = CheckpointState(
            version=CHECKPOINT_VERSION,
            algo="mdie",
            seed=seed,
            n_workers=0,
            total_pos=len(pos),
            epoch=epochs,
            remaining=store.remaining,
            stall=0,
            theory=tuple(theory),
            epoch_logs=(),
            alive_mask=store.alive,
            failed_mask=failed_mask,
            ops=prior_ops + engine.total_ops - ops0,
            rng_state=rng.getstate(),
            mdie_log=tuple(log),
            config_sig=repr(config),
            meta=tuple(checkpoint_meta),
        )
        save_checkpoint(checkpoint_path(checkpoint_dir, epochs), state)

    while True:
        if max_epochs is not None and epochs >= max_epochs:
            break
        candidates = store.alive & ~failed_mask
        i = select_seed(store, candidates, rng, config.select_seed_randomly)
        if i is None:
            break
        example = store.pos[i]
        epoch_ops0 = engine.total_ops
        saturate = build_bottom_cached if config.saturation_cache else build_bottom
        try:
            bottom = saturate(example, engine, modes, config)
        except SaturationError:
            failed_mask |= 1 << i
            continue
        result = learn_rule(engine, bottom, store, config, seeds=None, width=1, sampler=sampler)
        epochs += 1
        best = result.best
        if best is None:
            if config.on_uncoverable == "memorize":
                unit = Clause(example, ())
                theory.add(unit)
                store.kill(1 << i)
                log.append((example, unit, 1, engine.total_ops - epoch_ops0))
            else:
                failed_mask |= 1 << i
                log.append((example, None, 0, engine.total_ops - epoch_ops0))
            write_checkpoint()
            continue
        rule = best.clause
        theory.add(rule)
        if sampler is not None:
            from repro.ilp.sampling import clause_certificate

            cert_entries.append(
                clause_certificate(rule, best.sampled, best.stats.pos, best.stats.neg, config)
            )
        covered = store.kill(best.stats.pos_bits)
        # Paper Fig. 6 adds the accepted rule to B.  Because learned targets
        # are non-recursive (no modeb mentions the target predicate), doing
        # so cannot change any coverage proof, so we keep B immutable and
        # track the theory separately — this also keeps the caller's KB
        # reusable across runs.
        log.append((example, rule, covered, engine.total_ops - epoch_ops0))
        write_checkpoint()

    certificate = None
    if sampler is not None:
        from repro.ilp.sampling import CoverageCertificate

        certificate = CoverageCertificate(
            seed=seed,
            fraction=config.sample_fraction,
            delta=config.sample_delta,
            min_stratum=config.sample_min,
            strata=sampler.strata(),
            entries=tuple(cert_entries),
        )
    return MDIEResult(
        theory=theory,
        epochs=epochs,
        ops=prior_ops + engine.total_ops - ops0,
        uncovered=store.remaining,
        log=log,
        cache_hits=store.cache_hits(),
        cache_misses=store.cache_misses(),
        certificate=certificate,
    )

"""Table 4 — average communication exchanged (MBytes).

The paper's key communication observation: the unconstrained pipeline
("nolimit") exchanges much more data than width 10, and volume grows
steeply with p.  Benchmarks an unconstrained-width run (the heaviest
communicator).
"""

import pytest

from conftest import PS, SEED, one_shot
from repro.datasets import make_dataset
from repro.experiments.tables import table4_communication
from repro.parallel import run_p2mdie


def test_table4(benchmark, matrix, table_sink):
    table_sink("table4_communication", one_shot(benchmark, table4_communication, matrix, ps=PS))
    for ds in {r.dataset for r in matrix.records}:
        # volume grows with p in both configurations
        for width in (None, 10):
            mb = [matrix.mean("mbytes", ds, width, p) for p in PS]
            assert mb[0] < mb[-1], f"{ds} w={width}: MBytes did not grow with p"
        # nolimit moves at least as much data as width-10 at p=8
        assert matrix.mean("mbytes", ds, None, 8) >= matrix.mean("mbytes", ds, 10, 8) * 0.9


def test_bench_nolimit_run(benchmark, scale):
    ds = make_dataset("mesh", seed=SEED, scale=scale)
    res = one_shot(
        benchmark, run_p2mdie, ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=4, width=None, seed=SEED
    )
    assert res.comm.bytes_total > 0

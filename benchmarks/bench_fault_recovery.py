"""Fault-recovery benchmark: overhead of surviving a worker crash.

For p ∈ {2, 4, 8} (sim backend, virtual time) this bench runs P²-MDIE:

* ``fault_free``  — no plan (the PR 3 fast path);
* ``supervised``  — fault-tolerance protocol on, nothing injected
  (heartbeat/timeout overhead in isolation);
* ``crash``       — one worker dies while processing its second
  ``start_pipeline`` task; the self-healing master detects it, rebuilds
  the lost logical worker by replay and reissues the lost pipelines;
* ``crash_standby`` — the same crash with one idle spare host that
  adopts the dead worker's shard.

Every scenario must learn the **identical theory** (asserted); the
report records the absolute and relative makespan overhead and the
communication volume.  One local-backend crash run (p=2, wall-clock)
additionally asserts cross-substrate recovery parity, and — where
mpi4py and ``mpiexec`` are available (the CI ``mpi-smoke`` job) — one
real MPI crash run (``mpiexec -n 4``, p=3) does the same over the wire;
without an MPI runtime that leg records itself as skipped.

Knobs:

* ``REPRO_FAULT_DATASET``  — dataset name (default ``krki``);
* ``REPRO_SCALE``          — ``small`` (default) or ``paper``;
* ``REPRO_SEED``           — RNG seed (default 0);
* ``REPRO_BENCH_SMOKE=1``  — CI smoke mode: trains dataset, p ∈ {2, 4},
  no local-backend leg skipping — parity is always asserted;
* ``REPRO_FAULT_TIMEOUT``  — detection timeout in (virtual) seconds
  (default 1.0).

Writes ``BENCH_fault_recovery.json`` at the repo root (all ``BENCH_*``
artifacts live there so the perf trajectory is trackable PR-over-PR).

Standalone: ``PYTHONPATH=src python benchmarks/bench_fault_recovery.py``.
Under the bench suite it runs as an ordinary test.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile
import time

from repro.backend import LocalProcessBackend
from repro.datasets import make_dataset
from repro.fault.plan import FaultPlan, WorkerCrash
from repro.parallel import run_p2mdie

DATASET = os.environ.get("REPRO_FAULT_DATASET", "krki")
SCALE = os.environ.get("REPRO_SCALE", "small")
SEED = int(os.environ.get("REPRO_SEED", "0"))
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
TIMEOUT = float(os.environ.get("REPRO_FAULT_TIMEOUT", "1.0"))
ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = ROOT / "BENCH_fault_recovery.json"

PS = (2, 4) if SMOKE else (2, 4, 8)


def _dataset():
    if SMOKE:
        return make_dataset("trains", seed=SEED)
    return make_dataset(DATASET, seed=SEED, scale=SCALE)


#: smoke runs single-epoch datasets, where only the first pipeline task
#: ever arrives; full runs crash mid-run (second epoch) instead.
CRASH_AT = 1 if SMOKE else 2


def _crash_plan(timeout: float = TIMEOUT) -> FaultPlan:
    """Worker 2 dies while processing its CRASH_AT-th start_pipeline."""
    return FaultPlan(
        crashes=(WorkerCrash(rank=2, on_recv=CRASH_AT, tag="start_pipeline"),), timeout=timeout
    )


def _summary(res) -> dict:
    return {
        "seconds": round(res.seconds, 6),
        "mbytes": round(res.mbytes, 6),
        "messages": res.comm.messages,
        "epochs": res.epochs,
        "theory_size": len(res.theory),
        "uncovered": res.uncovered,
        "recoveries": sum(1 for ev in res.fault_events if "declared dead" in ev),
        "cache_misses": res.cache_misses,
    }


def _mpi_leg() -> dict:
    """One real MPI crash-recovery run (mpiexec -n 4, p=3), or why not.

    Shells out to the same SPMD driver the FT matrix tests launch; on
    hosts without mpi4py/mpiexec the leg reports ``{"skipped": reason}``
    instead of failing, so the bench stays runnable everywhere.
    """
    from repro.cluster.mpi_backend import mpi_available

    if not mpi_available():
        return {"skipped": "mpi4py not importable"}
    if shutil.which("mpiexec") is None:
        return {"skipped": "mpiexec not on PATH"}

    name = "trains" if SMOKE else DATASET
    ds = make_dataset(name, seed=0)  # the driver builds datasets with seed=0
    base = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=3, width=10, seed=SEED)
    plan = _crash_plan(timeout=max(TIMEOUT, 2.0))
    driver = ROOT / "tests" / "fault" / "mpi_driver.py"
    with tempfile.TemporaryDirectory() as td:
        plan_path = pathlib.Path(td) / "plan.json"
        plan_path.write_text(plan.to_json())
        out = pathlib.Path(td) / "out.json"
        cmd = [
            "mpiexec", "-n", "4", sys.executable, str(driver),
            "--dataset", name, "--p", "3", "--seed", str(SEED),
            "--plan", str(plan_path), "--out", str(out),
        ]
        env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
        t0 = time.perf_counter()
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=900, env=env)
        wall = time.perf_counter() - t0
        if proc.returncode != 0:
            return {"skipped": f"mpiexec run failed: {proc.stderr[-500:]}"}
        got = json.loads(out.read_text())
    return {
        "wall_s": round(wall, 4),
        "parity": sorted(got["theory"]) == sorted(str(c) for c in base.theory),
        "recoveries": sum(1 for ev in got["fault_events"] if "declared dead" in ev),
        "n_ranks": 4,
    }


def run_benchmark() -> dict:
    ds = _dataset()
    args = (ds.kb, ds.pos, ds.neg, ds.modes, ds.config)
    per_p: dict = {}
    parity = True
    for p in PS:
        base = run_p2mdie(*args, p=p, width=10, seed=SEED)
        theory = sorted(str(c) for c in base.theory)
        scenarios = {
            "fault_free": base,
            "supervised": run_p2mdie(
                *args, p=p, width=10, seed=SEED,
                fault_plan=FaultPlan(supervise=True, timeout=TIMEOUT),
            ),
            "crash": run_p2mdie(*args, p=p, width=10, seed=SEED, fault_plan=_crash_plan()),
            "crash_standby": run_p2mdie(
                *args, p=p, width=10, seed=SEED, fault_plan=_crash_plan(), spares=1
            ),
        }
        row: dict = {}
        for name, res in scenarios.items():
            row[name] = _summary(res)
            same = sorted(str(c) for c in res.theory) == theory
            row[name]["parity"] = same
            parity = parity and same
            row[name]["overhead"] = (
                round(res.seconds / base.seconds - 1.0, 4) if base.seconds else 0.0
            )
        per_p[str(p)] = row

    # Cross-substrate: the local backend must recover to the same theory.
    ds_local = ds
    base2 = run_p2mdie(
        ds_local.kb, ds_local.pos, ds_local.neg, ds_local.modes, ds_local.config,
        p=2, width=10, seed=SEED,
    )
    local = run_p2mdie(
        ds_local.kb, ds_local.pos, ds_local.neg, ds_local.modes, ds_local.config,
        p=2, width=10, seed=SEED,
        fault_plan=_crash_plan(timeout=max(TIMEOUT, 2.0)),
        backend=LocalProcessBackend(timeout=600.0),
    )
    local_parity = sorted(str(c) for c in local.theory) == sorted(str(c) for c in base2.theory)
    parity = parity and local_parity

    # Real cluster substrate: skipped (with a reason) when no MPI runtime.
    mpi = _mpi_leg()
    if "skipped" not in mpi:
        parity = parity and mpi["parity"]

    return {
        "dataset": ds.name,
        "scale": SCALE,
        "seed": SEED,
        "timeout": TIMEOUT,
        "n_pos": len(ds.pos),
        "n_neg": len(ds.neg),
        "ps": list(PS),
        "sim": per_p,
        "local_crash_p2": {
            "wall_s": round(local.seconds, 4),
            "parity": local_parity,
            "recoveries": sum(1 for ev in local.fault_events if "declared dead" in ev),
        },
        "mpi_crash_p3": mpi,
        "parity": parity,
    }


def render(report: dict) -> str:
    lines = [
        f"Fault recovery — P²-MDIE on {report['dataset']} "
        f"({report['n_pos']}+/{report['n_neg']}-, seed {report['seed']}, "
        f"detect timeout {report['timeout']}s)",
        f"{'p':>3}  {'scenario':<14} {'virtual s':>10} {'overhead':>9} {'MB':>8} {'parity':>6}",
    ]
    for p in report["ps"]:
        for name, r in report["sim"][str(p)].items():
            lines.append(
                f"{p:>3}  {name:<14} {r['seconds']:>10.3f} {r['overhead']:>8.1%} "
                f"{r['mbytes']:>8.3f} {str(r['parity']):>6}"
            )
    lc = report["local_crash_p2"]
    lines.append(
        f"local backend crash (p=2): {lc['wall_s']:.2f}s wall, "
        f"{lc['recoveries']} recovery, parity {'ok' if lc['parity'] else 'MISMATCH'}"
    )
    mpi = report["mpi_crash_p3"]
    if "skipped" in mpi:
        lines.append(f"mpi backend crash (p=3): skipped — {mpi['skipped']}")
    else:
        lines.append(
            f"mpi backend crash (p=3, mpiexec -n {mpi['n_ranks']}): {mpi['wall_s']:.2f}s wall, "
            f"{mpi['recoveries']} recovery, parity {'ok' if mpi['parity'] else 'MISMATCH'}"
        )
    return "\n".join(lines)


def write_report(report: dict) -> pathlib.Path:
    from bench_meta import write_bench_json

    return write_bench_json(OUT_PATH, report, SMOKE)


def check(report: dict) -> None:
    assert report["parity"], "fault recovery changed the learned theory!"
    for p in report["ps"]:
        crash = report["sim"][str(p)]["crash"]
        assert crash["recoveries"] >= 1, f"p={p}: crash scenario recovered nothing"


def test_fault_recovery():
    report = run_benchmark()
    print("\n" + render(report) + "\n")
    write_report(report)
    check(report)


if __name__ == "__main__":
    report = run_benchmark()
    print(render(report))
    path = write_report(report)
    print(f"wrote {path}")
    check(report)

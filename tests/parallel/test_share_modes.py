"""Tests for the two data-distribution modes (§4.1): shared filesystem vs
shipping the data in messages."""

import pytest

from repro.cluster.message import Tag
from repro.ilp.theory import accuracy
from repro.logic.engine import Engine
from repro.parallel.p2mdie import run_p2mdie


class TestMessagesMode:
    def test_learns_identically(self, kb, pos, neg, modes, config):
        fs = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3, share_mode="shared_fs")
        msgs = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3, share_mode="messages")
        # same partitions, same searches → identical theories & epochs
        assert list(fs.theory) == list(msgs.theory)
        assert fs.epochs == msgs.epochs

    def test_ships_more_startup_bytes(self, kb, pos, neg, modes, config):
        fs = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3, share_mode="shared_fs")
        msgs = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3, share_mode="messages")
        fs_load = fs.comm.bytes_by_tag.get(Tag.LOAD_EXAMPLES, 0)
        msg_load = msgs.comm.bytes_by_tag.get(Tag.LOAD_EXAMPLES, 0)
        assert msg_load > 10 * fs_load  # whole KB + subsets vs tiny ids

    def test_startup_cost_slows_run(self, kb, pos, neg, modes, config):
        fs = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3, share_mode="shared_fs")
        msgs = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3, share_mode="messages")
        assert msgs.seconds >= fs.seconds

    def test_invalid_mode_rejected(self, kb, pos, neg, modes, config):
        with pytest.raises(ValueError, match="share_mode"):
            run_p2mdie(kb, pos, neg, modes, config, p=2, seed=3, share_mode="carrier_pigeon")

    def test_quality_preserved(self, kb, pos, neg, modes, config):
        res = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3, share_mode="messages")
        eng = Engine(kb, config.engine_budget())
        assert accuracy(eng, res.theory, pos, neg) == 100.0

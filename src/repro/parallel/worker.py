"""P²-MDIE worker process (paper Fig. 6 + Fig. 7).

Each worker owns one example partition (read from the simulated shared
filesystem on ``load_examples``) and serves four tasks:

* ``start_pipeline(w)`` — select a local seed, saturate it into ⊥e, run
  the first pipeline stage (``learn_rule'`` with an empty seed set);
* ``learn_rule'(⊥e, step, w, S)`` — continue a pipeline started
  elsewhere: re-evaluate the received rules locally, search onward from
  them, forward the best ``w`` to the next stage (or the master);
* ``evaluate(Rules)`` — local coverage stats for the master's rule bag;
* ``mark_covered(R)`` — retract locally covered positives.

All engine work between messages is charged to the worker's virtual clock
via ``ctx.compute`` with the engine's operation delta.

Fault tolerance (:mod:`repro.fault`) generalises "one worker = one
partition" to *hosting*: the per-partition learning state lives in a
:class:`~repro.fault.recovery.WorkerShard` (store, RNG stream, tried-seed
mask), and one physical worker process can host several shards — its own
plus any adopted from crashed peers, rebuilt deterministically by
replaying the master-shipped accepted-rule history.  Fault-free runs
host exactly one shard and take the exact historical code paths.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.message import Tag
from repro.cluster.process import ProcContext, SimProcess
from repro.fault.recovery import WorkerShard, draw_seed, rebuild_shard, saturate_seed
from repro.ilp.config import ILPConfig
from repro.ilp.modes import ModeSet
from repro.ilp.search import learn_rule
from repro.ilp.store import ExampleStore
from repro.logic.engine import Engine
from repro.logic.knowledge import KnowledgeBase
from repro.parallel.messages import (
    AdoptWorker,
    EvaluateRequest,
    EvaluateResult,
    ExamplesReport,
    FTEvaluateRequest,
    FTEvaluateResult,
    FTPipelineRules,
    FTPipelineTask,
    GatherExamples,
    LoadData,
    LoadExamples,
    MarkCovered,
    Ping,
    PipelineRules,
    PipelineTask,
    Pong,
    Repartition,
    RestartPipeline,
    RuleStats,
    SampledEvaluateRequest,
    SampledEvaluateResult,
    StartPipeline,
    Stop,
    UpdateRouting,
)
from repro.util.rng import make_rng

__all__ = ["P2Worker", "MASTER_RANK", "stage_logical"]

MASTER_RANK = 0


def stage_logical(origin: int, step: int, n_workers: int) -> int:
    """Logical worker serving stage ``step`` of the pipeline rooted at
    ``origin`` (the ring ``1 → 2 → ... → p → 1``)."""
    return (origin - 1 + step - 1) % n_workers + 1


class P2Worker(SimProcess):
    """One pipeline stage owner (physical host of one or more shards).

    ``shared`` is the simulated distributed filesystem
    (:class:`repro.parallel.p2mdie.SharedProblem`); ``n_workers`` fixes the
    pipeline ring ``1 → 2 → ... → p → 1``.  Ranks above ``n_workers`` are
    *spare hosts*: they idle until the fault-tolerant master assigns them
    work (adoption of a dead host's shards, or an elastic join).
    """

    def __init__(self, rank: int, shared, n_workers: int, seed: int = 0):
        super().__init__(rank)
        self.shared = shared
        self.n_workers = n_workers
        self.seed = seed
        # populated on load_examples / adoption:
        self.engine: Optional[Engine] = None
        self.config: Optional[ILPConfig] = None
        self.modes: Optional[ModeSet] = None
        #: hosted logical workers: virtual rank -> WorkerShard.
        self.shards: dict[int, WorkerShard] = {}
        #: logical -> physical routing table (identity unless the master
        #: rewires it after a recovery / elastic rebalance).
        self.routing: dict[int, int] = {}
        #: fault-protocol tasks that arrived before the shard they target
        #: was adopted here; drained after every adoption/rewiring.
        self._deferred: list = []

    # -- single-shard compatibility surface ---------------------------------------
    # The fault-free protocol (and the protocol-level unit tests) talk to
    # the worker as if it owned exactly one store; these proxies map that
    # surface onto the worker's own shard.
    @property
    def store(self) -> Optional[ExampleStore]:
        shard = self.shards.get(self.rank)
        return shard.store if shard is not None else None

    @store.setter
    def store(self, value: ExampleStore) -> None:
        self.shards[self.rank].store = value

    @property
    def _tried_mask(self) -> int:
        return self.shards[self.rank].tried_mask

    @_tried_mask.setter
    def _tried_mask(self, value: int) -> None:
        self.shards[self.rank].tried_mask = value

    @property
    def _rng(self):
        return self.shards[self.rank].rng

    # -- helpers -----------------------------------------------------------------
    def _next_worker(self) -> int:
        """Successor in the ring of workers (ranks 1..p)."""
        return self.rank % self.n_workers + 1

    def _host_of(self, logical: int) -> int:
        return self.routing.get(logical, logical)

    def _hosted(self) -> list[WorkerShard]:
        return [self.shards[vr] for vr in sorted(self.shards)]

    def _ops_since(self, mark: int) -> int:
        return self.engine.total_ops - mark

    def _ensure_engine(self) -> None:
        """Spare hosts build their engine lazily, from the shared FS."""
        if self.engine is None:
            self.config = self.shared.config
            self.modes = self.shared.modes
            self.engine = Engine(
                self.shared.kb, self.config.engine_budget(), kernel=self.config.coverage_kernel
            )

    def _sampler_for(self, shard: WorkerShard):
        """The shard's stratified sampler (lazily drawn, None when off).

        Labelled by the *virtual* rank, so an adopted shard redraws the
        exact masks its dead host used — sampled screening survives
        recovery without shipping a single mask over the wire.
        """
        if not self.config.sampling_enabled():
            return None
        if shard.sampler is None:
            from repro.ilp.sampling import make_sampler

            shard.sampler = make_sampler(
                shard.store.n_pos,
                shard.store.n_neg,
                self.seed,
                fraction=self.config.sample_fraction,
                delta=self.config.sample_delta,
                min_stratum=self.config.sample_min,
                labels=("worker", shard.virtual_rank),
            )
        return shard.sampler

    def _make_shard(self, virtual_rank: int, pos, neg) -> WorkerShard:
        store = ExampleStore(
            pos,
            neg,
            reorder_body=self.config.reorder_body,
            inherit=self.config.coverage_inheritance,
            fingerprints=self.config.clause_fingerprints,
        )
        return WorkerShard(
            virtual_rank=virtual_rank,
            store=store,
            rng=make_rng(self.seed, "worker", virtual_rank),
        )

    # -- process body ----------------------------------------------------------------
    def run(self, ctx: ProcContext):
        if self.rank <= self.n_workers:
            # Fig. 6 load_examples(): the first message is always the
            # initial state (LoadExamples / LoadData / AdoptWorker-resume)
            # — tag-filtered so in-flight peer traffic cannot overtake it
            # on real transports.
            msg = yield ctx.recv(tag=Tag.LOAD_EXAMPLES)
            yield from self._initial_load(ctx, msg.payload)
        # Spare hosts (rank > n_workers) go straight to the task loop and
        # acquire state through adoption.
        while True:
            msg = yield ctx.recv()
            payload = msg.payload
            if isinstance(payload, Stop):
                return
            yield from self._dispatch(ctx, payload)

    def _initial_load(self, ctx: ProcContext, payload):
        if isinstance(payload, AdoptWorker):
            # Checkpoint-resumed run: state is history + shared FS.
            self._ensure_engine()
            yield from self._adopt(ctx, payload)
            return
        if isinstance(payload, LoadExamples):
            problem = self.shared.worker_problem(payload.partition_id)
            kb = problem.kb
            pos, neg = problem.pos, problem.neg
            self.config = problem.config
            self.modes = problem.modes
            load_cost = len(pos) + len(neg)
        else:
            assert isinstance(payload, LoadData)
            data: LoadData = payload
            # Shared problem still supplies the (small) bias/config; the
            # bulky relational data came over the wire.
            self.config = self.shared.config
            self.modes = self.shared.modes
            kb = KnowledgeBase()
            for fact in data.facts:
                kb.add_fact(fact)
            for rule in data.rules:
                kb.add_rule(rule)
            pos, neg = data.pos, data.neg
            # Building the KB from terms costs real work: one op per clause.
            load_cost = len(data.facts) + len(data.rules) + len(pos) + len(neg)
        self.engine = Engine(kb, self.config.engine_budget(), kernel=self.config.coverage_kernel)
        self.shards[self.rank] = self._make_shard(self.rank, pos, neg)
        yield ctx.compute(load_cost, label="load")

    def _dispatch(self, ctx: ProcContext, payload):
        if isinstance(payload, StartPipeline):
            yield from self._start_pipeline(ctx, payload.width)
        elif isinstance(payload, PipelineTask):
            yield from self._pipeline_stage(ctx, payload)
        elif isinstance(payload, EvaluateRequest):
            yield from self._evaluate(ctx, payload)
        elif isinstance(payload, SampledEvaluateRequest):
            yield from self._sampled_evaluate(ctx, payload)
        elif isinstance(payload, MarkCovered):
            yield from self._mark_covered(ctx, payload)
        elif isinstance(payload, GatherExamples):
            yield from self._gather_examples(ctx)
        elif isinstance(payload, Repartition):
            yield from self._repartition(ctx, payload)
        # -- fault-tolerance protocol --------------------------------------
        elif isinstance(payload, Ping):
            yield from self._pong(ctx, payload)
        elif isinstance(payload, AdoptWorker):
            self._ensure_engine()
            yield from self._adopt(ctx, payload)
        elif isinstance(payload, UpdateRouting):
            yield from self._update_routing(ctx, payload)
        elif isinstance(payload, RestartPipeline):
            yield from self._ft_restart(ctx, payload)
        elif isinstance(payload, FTPipelineTask):
            yield from self._ft_stage(ctx, payload)
        elif isinstance(payload, FTEvaluateRequest):
            yield from self._ft_evaluate(ctx, payload)
        elif isinstance(payload, LoadExamples) or isinstance(payload, LoadData):
            yield from self._initial_load(ctx, payload)
        else:  # pragma: no cover - defensive
            raise TypeError(f"worker {self.rank}: unknown task {payload!r}")

    # -- paper tasks (fault-free protocol, single shard) ---------------------------
    def _select_seed(self) -> Optional[int]:
        """Pick (and mark) the next seed of this worker's own shard."""
        return draw_seed(self.shards[self.rank], self.config)

    def _start_pipeline(self, ctx: ProcContext, width: Optional[int]):
        """Fig. 6 start_pipeline: seed, saturate, first learn_rule' stage."""
        shard = self.shards[self.rank]
        ops0 = self.engine.total_ops
        shard.pending_seed = self._select_seed()
        shard.bottom_ready = False
        bottom = saturate_seed(shard, self.engine, self.modes, self.config)
        yield ctx.compute(self._ops_since(ops0), label="saturate")
        task = PipelineTask(bottom=bottom, step=1, width=width, rules=(), origin=self.rank)
        yield from self._pipeline_stage(ctx, task)

    def _pipeline_stage(self, ctx: ProcContext, task: PipelineTask):
        """Fig. 7 learn_rule': search locally, forward Good onward."""
        shard = self.shards[self.rank]
        ops0 = self.engine.total_ops
        if task.bottom is None:
            good: tuple = task.rules
        else:
            result = learn_rule(
                self.engine,
                task.bottom,
                shard.store,
                self.config,
                seeds=task.rules or None,
                width=task.width,
                sampler=self._sampler_for(shard),
            )
            good = tuple(er.rule for er in result.good)
        yield ctx.compute(self._ops_since(ops0), label=f"search(s{task.step})")
        if task.step >= self.n_workers:
            # Last stage: ship the pipeline's rules to the master.
            yield ctx.send(
                MASTER_RANK,
                PipelineRules(origin=task.origin, rules=good),
                tag=Tag.RULES,
            )
        else:
            yield ctx.send(
                self._next_worker(),
                PipelineTask(
                    bottom=task.bottom,
                    step=task.step + 1,
                    width=task.width,
                    rules=good,
                    origin=task.origin,
                ),
                tag=Tag.LEARN_RULE,
            )

    def _evaluate(self, ctx: ProcContext, req: EvaluateRequest):
        """Fig. 6 evaluate_rules: local stats for each bag rule.

        Coverage inheritance narrows the work: the store derives each
        rule's lattice parent structurally (refinement appends literals),
        and master-echoed candidate masks narrow further when the local
        cache is cold — only examples the parent covered are re-tested.
        """
        store = self.shards[self.rank].store
        ops0 = self.engine.total_ops
        inherit = self.config.coverage_inheritance
        stats = []
        for i, rule in enumerate(req.rules):
            cand = req.candidates[i] if (inherit and req.candidates) else None
            cs = store.evaluate(self.engine, rule, candidates=cand)
            if inherit:
                pc, nc = store.cand_masks(rule) or (0, 0)
                stats.append(RuleStats(pos=cs.pos, neg=cs.neg, pos_cand=pc, neg_cand=nc))
            else:
                # Seed-faithful accounting: no mask payload when off.
                stats.append(RuleStats(pos=cs.pos, neg=cs.neg))
        yield ctx.compute(self._ops_since(ops0), label="evaluate")
        yield ctx.send(
            MASTER_RANK,
            EvaluateResult(rank=self.rank, stats=tuple(stats)),
            tag=Tag.RESULT,
        )

    def _sampled_evaluate(self, ctx: ProcContext, req: SampledEvaluateRequest):
        """Sampled screening round: score the bag on the local strata.

        The engine only runs on sampled examples, so this is the cheap
        half of a sampled evaluation round; the master pools the replies
        and asks for exact stats on the plausibly-good survivors.
        """
        shard = self.shards[self.rank]
        sampler = self._sampler_for(shard)
        ops0 = self.engine.total_ops
        stats = tuple(
            shard.store.evaluate_sampled(self.engine, rule, sampler) for rule in req.rules
        )
        yield ctx.compute(self._ops_since(ops0), label="evaluate")
        yield ctx.send(
            MASTER_RANK,
            SampledEvaluateResult(rank=self.rank, stats=stats),
            tag=Tag.RESULT,
        )

    def _mark_covered(self, ctx: ProcContext, req: MarkCovered):
        """Fig. 6 mark_covered: retract positives the accepted rule covers
        (on every hosted shard)."""
        ops0 = self.engine.total_ops
        for shard in self._hosted():
            cs = shard.store.evaluate(self.engine, req.rule)
            shard.store.kill(cs.pos_bits)
            # Seeds that were covered no longer need the tried-mark;
            # keeping the mask aligned with `alive` lets future epochs
            # retry only genuinely new ground.
            shard.tried_mask &= shard.store.alive
        yield ctx.compute(self._ops_since(ops0), label="mark_covered")

    def _gather_examples(self, ctx: ProcContext):
        """Repartitioning step 1: report remaining examples to the master."""
        store = self.shards[self.rank].store
        report = ExamplesReport(
            rank=self.rank,
            pos=tuple(store.alive_examples()),
            neg=tuple(store.neg),
        )
        yield ctx.compute(store.remaining + store.n_neg, label="gather")
        yield ctx.send(MASTER_RANK, report, tag=Tag.LOAD_EXAMPLES)

    def _repartition(self, ctx: ProcContext, req: Repartition):
        """Repartitioning step 2: adopt a fresh subset.

        The evaluation cache dies with the old store — exactly the hidden
        cost (beyond message bytes) that makes repartitioning expensive.
        """
        shard = self.shards[self.rank]
        shard.store = ExampleStore(
            list(req.pos),
            list(req.neg),
            reorder_body=self.config.reorder_body,
            inherit=self.config.coverage_inheritance,
            fingerprints=self.config.clause_fingerprints,
        )
        shard.tried_mask = 0
        # The sample masks are over the old example numbering; redraw
        # lazily against the new store.
        shard.sampler = None
        yield ctx.compute(shard.store.n_pos + shard.store.n_neg, label="load")

    # -- fault-tolerance protocol ---------------------------------------------------
    def _pong(self, ctx: ProcContext, ping: Ping):
        """Heartbeat reply, carrying aggregate evaluation-cache counters."""
        hits = sum(s.store.cache_hits() for s in self._hosted())
        misses = sum(s.store.cache_misses() for s in self._hosted())
        yield ctx.send(
            MASTER_RANK,
            Pong(rank=self.rank, token=ping.token, cache_hits=hits, cache_misses=misses),
            tag=Tag.PONG,
        )

    def _adopt(self, ctx: ProcContext, msg: AdoptWorker):
        """Rebuild a logical worker here by deterministic replay.

        Idempotent: a duplicate request for an already-hosted shard (the
        master reinforces adoption state when collectives stall, e.g.
        after the original AdoptWorker was lost) is a no-op — the hosted
        shard is never behind the replayed state.
        """
        if msg.virtual_rank in self.shards:
            self.routing[msg.virtual_rank] = self.rank
            yield from self._drain_deferred(ctx)
            return
        part = self.shared.partitions[msg.partition_id - 1]
        ops0 = self.engine.total_ops
        shard = rebuild_shard(msg, part, self.engine, self.config, self.seed)
        self.shards[msg.virtual_rank] = shard
        self.routing[msg.virtual_rank] = self.rank
        yield ctx.compute(self._ops_since(ops0) + shard.store.n_pos + shard.store.n_neg, label="recover")
        yield from self._drain_deferred(ctx)

    def _update_routing(self, ctx: ProcContext, msg: UpdateRouting):
        self.routing = dict(msg.routing)
        # Elastic shrink of this host's share: drop shards routed away.
        for vr in list(self.shards):
            if self.routing.get(vr, vr) != self.rank:
                del self.shards[vr]
        yield from self._drain_deferred(ctx)

    def _drain_deferred(self, ctx: ProcContext):
        pending, self._deferred = self._deferred, []
        for payload in pending:
            yield from self._dispatch(ctx, payload)

    def _defer_or_forward(self, ctx: ProcContext, logical: int, payload, tag: str) -> bool:
        """Route a shard-addressed task we cannot serve.  Returns True if
        the payload was handled (forwarded or deferred)."""
        if logical in self.shards:
            return False
        dst = self._host_of(logical)
        if dst != self.rank:
            yield ctx.send(dst, payload, tag=tag)
        else:
            # Routed to us but not adopted yet: park until the
            # AdoptWorker (in flight behind us on the master link) lands.
            self._deferred.append(payload)
        return True

    def _ft_restart(self, ctx: ProcContext, req: RestartPipeline):
        """(Re)start the pipeline rooted at a hosted logical worker.

        Idempotent per epoch: the first request of an epoch draws the
        shard's seed; duplicates (recovery reissues) reuse the remembered
        draw and bottom clause, so the emitted stage-1 task is identical.
        """
        handled = yield from self._defer_or_forward(
            ctx, req.origin, req, Tag.START_PIPELINE
        )
        if handled:
            return
        shard = self.shards[req.origin]
        ops0 = self.engine.total_ops
        if shard.pending_epoch != req.epoch:
            shard.pending_epoch = req.epoch
            shard.pending_seed = draw_seed(shard, self.config)
            shard.bottom_ready = False
        bottom = saturate_seed(shard, self.engine, self.modes, self.config)
        yield ctx.compute(self._ops_since(ops0), label="saturate")
        task = FTPipelineTask(
            epoch=req.epoch, bottom=bottom, step=1, width=req.width, rules=(), origin=req.origin
        )
        yield from self._ft_stage(ctx, task)

    def _ft_stage(self, ctx: ProcContext, task: FTPipelineTask):
        """Fault-tolerant learn_rule' stage, executed by the logical
        stage owner wherever it is hosted."""
        logical = stage_logical(task.origin, task.step, self.n_workers)
        handled = yield from self._defer_or_forward(ctx, logical, task, Tag.LEARN_RULE)
        if handled:
            return
        shard = self.shards[logical]
        ops0 = self.engine.total_ops
        if task.bottom is None:
            good: tuple = task.rules
        else:
            result = learn_rule(
                self.engine,
                task.bottom,
                shard.store,
                self.config,
                seeds=task.rules or None,
                width=task.width,
                sampler=self._sampler_for(shard),
            )
            good = tuple(er.rule for er in result.good)
        yield ctx.compute(self._ops_since(ops0), label=f"search(s{task.step})")
        if task.step >= self.n_workers:
            yield ctx.send(
                MASTER_RANK,
                FTPipelineRules(epoch=task.epoch, origin=task.origin, rules=good),
                tag=Tag.RULES,
            )
        else:
            next_logical = logical % self.n_workers + 1
            next_task = FTPipelineTask(
                epoch=task.epoch,
                bottom=task.bottom,
                step=task.step + 1,
                width=task.width,
                rules=good,
                origin=task.origin,
            )
            dst = self._host_of(next_logical)
            if dst == self.rank:
                # Co-hosted successor stage: hand the token over in
                # memory — co-located logical workers don't pay (or get
                # charged for) the network.
                yield from self._ft_stage(ctx, next_task)
            else:
                yield ctx.send(dst, next_task, tag=Tag.LEARN_RULE)

    def _ft_evaluate(self, ctx: ProcContext, req: FTEvaluateRequest):
        """Evaluate the round's rules on every hosted shard.

        Candidate-mask echoing is off under fault tolerance (masks are in
        per-shard local numbering and migrate poorly); the store's
        structural parent inheritance still narrows the engine work.
        """
        ops0 = self.engine.total_ops
        results = []
        for shard in self._hosted():
            stats = tuple(
                RuleStats(pos=cs.pos, neg=cs.neg)
                for cs in (shard.store.evaluate(self.engine, rule) for rule in req.rules)
            )
            results.append((shard.virtual_rank, stats))
        yield ctx.compute(self._ops_since(ops0), label="evaluate")
        for virtual_rank, stats in results:
            yield ctx.send(
                MASTER_RANK,
                FTEvaluateResult(round=req.round, rank=virtual_rank, stats=stats),
                tag=Tag.RESULT,
            )

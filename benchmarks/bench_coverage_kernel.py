"""Coverage-kernel benchmark: seed (legacy) kernel vs the overhauled one.

Runs sequential MDIE twice on the same dataset and seed:

* ``legacy`` — the seed coverage path: recursive SLD interpreter,
  first-argument indexing, full-example-list evaluation
  (``coverage_kernel="legacy"``, ``coverage_inheritance=False``);
* ``new``    — the overhauled kernel: iterative goal-stack machine,
  ground-goal memo table, selectivity-chosen multi-argument indexing and
  coverage inheritance.

Both runs must learn the identical theory; the benchmark reports engine
operations and wall-clock seconds plus the speedups, and writes
``BENCH_coverage_kernel.json`` at the repo root (all ``BENCH_*`` artifacts
live there so the perf trajectory is trackable PR-over-PR).

Knobs:

* ``REPRO_KERNEL_DATASET``  — dataset name (default ``carcinogenesis``);
* ``REPRO_SCALE``           — ``small`` (default) or ``paper``;
* ``REPRO_SEED``            — RNG seed (default 0);
* ``REPRO_BENCH_SMOKE=1``   — CI smoke mode: reduced example counts, no
  speedup assertion (shared runners are too noisy for wall-clock gates);
* ``REPRO_COVERAGE_KERNEL`` — the same env switch the library honours, so
  the old path stays measurable in any other benchmark or run as well.

Standalone: ``PYTHONPATH=src python benchmarks/bench_coverage_kernel.py``.
Under the bench suite it runs as an ordinary test.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.datasets import make_dataset
from repro.ilp.mdie import mdie

DATASET = os.environ.get("REPRO_KERNEL_DATASET", "carcinogenesis")
SCALE = os.environ.get("REPRO_SCALE", "small")
SEED = int(os.environ.get("REPRO_SEED", "0"))
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
ROOT = pathlib.Path(__file__).resolve().parent.parent

VARIANTS = {
    "legacy": dict(coverage_kernel="legacy", coverage_inheritance=False),
    "new": dict(coverage_kernel="new", coverage_inheritance=True),
}


def _dataset():
    kw: dict = dict(seed=SEED, scale=SCALE)
    if SMOKE:
        kw = dict(seed=SEED, n_pos=24, n_neg=20) if DATASET == "carcinogenesis" else dict(seed=SEED, n_pos=24, n_neg=24)
    return make_dataset(DATASET, **kw)


def run_benchmark() -> dict:
    ds = _dataset()
    results = {}
    for name, overrides in VARIANTS.items():
        config = ds.config.replace(**overrides)
        t0 = time.perf_counter()
        res = mdie(ds.kb, ds.pos, ds.neg, ds.modes, config, seed=SEED)
        wall = time.perf_counter() - t0
        results[name] = {
            "wall_s": round(wall, 4),
            "ops": res.ops,
            "epochs": res.epochs,
            "uncovered": res.uncovered,
            "theory_size": len(res.theory),
            "theory": sorted(str(c) for c in res.theory),
        }
    legacy, new = results["legacy"], results["new"]
    report = {
        "dataset": ds.name,
        "scale": SCALE,
        "seed": SEED,
        "smoke": SMOKE,
        "n_pos": len(ds.pos),
        "n_neg": len(ds.neg),
        "legacy": legacy,
        "new": new,
        "speedup": {
            "ops": round(legacy["ops"] / new["ops"], 3) if new["ops"] else float("inf"),
            "wall": round(legacy["wall_s"] / new["wall_s"], 3) if new["wall_s"] else float("inf"),
        },
        "parity": legacy["theory"] == new["theory"]
        and legacy["epochs"] == new["epochs"]
        and legacy["uncovered"] == new["uncovered"],
    }
    return report


def render(report: dict) -> str:
    lines = [
        f"Coverage kernel — sequential MDIE on {report['dataset']} "
        f"({report['n_pos']}+/{report['n_neg']}-, seed {report['seed']}"
        f"{', smoke' if report['smoke'] else ''})",
        f"{'kernel':>8}  {'wall s':>9}  {'engine ops':>12}  {'epochs':>6}  {'clauses':>7}",
    ]
    for name in ("legacy", "new"):
        r = report[name]
        lines.append(
            f"{name:>8}  {r['wall_s']:>9.3f}  {r['ops']:>12}  {r['epochs']:>6}  {r['theory_size']:>7}"
        )
    sp = report["speedup"]
    lines.append(f"speedup: {sp['wall']:.2f}x wall-clock, {sp['ops']:.2f}x engine ops")
    lines.append(f"parity: {'identical theories' if report['parity'] else 'MISMATCH'}")
    return "\n".join(lines)


def write_report(report: dict) -> pathlib.Path:
    from bench_meta import write_bench_json

    return write_bench_json(ROOT / "BENCH_coverage_kernel.json", report, SMOKE)


def check(report: dict) -> None:
    assert report["parity"], "kernel parity violated: theories differ between legacy and new"
    if not SMOKE:
        sp = report["speedup"]
        assert max(sp["ops"], sp["wall"]) >= 2.0, f"kernel speedup below 2x: {sp}"


def test_coverage_kernel():
    report = run_benchmark()
    print("\n" + render(report) + "\n")
    write_report(report)
    check(report)


if __name__ == "__main__":
    report = run_benchmark()
    print(render(report))
    path = write_report(report)
    print(f"wrote {path}")
    check(report)

"""Scaling study — strong and weak scaling of P²-MDIE.

The paper's claim that the algorithm "fosters scalability on the number
of examples" is a *weak-scaling* claim: partitioning lets the cluster
hold and process datasets that grow with the machine.  The paper only
reports strong scaling (fixed data, Tables 2-3); this bench adds the weak
variant: examples grow proportionally to p, so per-worker subset size is
constant, and ideal behaviour is flat time per epoch.
"""

import pytest

from conftest import SEED, one_shot
from repro.datasets import make_dataset
from repro.parallel import run_p2mdie
from repro.util.fmt import fmt_float, render_table

PS = (1, 2, 4, 8)
POS_PER_WORKER = 40
NEG_PER_WORKER = 6


@pytest.fixture(scope="module")
def weak_runs():
    out = {}
    for p in PS:
        ds = make_dataset(
            "mesh", seed=SEED, n_pos=POS_PER_WORKER * p, n_neg=NEG_PER_WORKER * p
        )
        out[p] = run_p2mdie(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=p, width=10, seed=SEED
        )
    return out


def test_weak_scaling(benchmark, weak_runs, table_sink):
    one_shot(benchmark, lambda: None)  # timing lives in the module fixture
    rows = []
    for p, r in weak_runs.items():
        per_epoch = r.seconds / max(r.epochs, 1)
        rows.append(
            [
                p,
                POS_PER_WORKER * p,
                fmt_float(r.seconds, 2),
                r.epochs,
                fmt_float(per_epoch, 2),
                fmt_float(r.mbytes, 3),
                r.uncovered,
            ]
        )
    table_sink(
        "scaling_weak",
        render_table(
            ["p", "|E+|", "vtime(s)", "epochs", "s/epoch", "MB", "uncovered"],
            rows,
            title="Weak scaling: 40 positives per worker (mesh-like, W=10)",
        ),
    )
    # Weak-scaling efficiency: per-epoch time at p=8 must stay within a
    # small factor of p=1 even though the dataset is 8x larger.
    t1 = weak_runs[1].seconds / max(weak_runs[1].epochs, 1)
    t8 = weak_runs[8].seconds / max(weak_runs[8].epochs, 1)
    assert t8 < 3.0 * t1, f"weak scaling collapsed: {t8:.2f}s vs {t1:.2f}s per epoch"
    # And the 8-worker machine really processed 8x the data.
    assert all(r.epochs >= 1 for r in weak_runs.values())


def test_bench_weak_scaling_p8(benchmark):
    ds = make_dataset("mesh", seed=SEED, n_pos=POS_PER_WORKER * 8, n_neg=NEG_PER_WORKER * 8)
    res = one_shot(
        benchmark, run_p2mdie, ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=8, width=10, seed=SEED
    )
    assert res.epochs >= 1

"""Round-trip tests for Prolog-text serialization."""

import pytest

from repro.logic.clause import Theory
from repro.logic.io import (
    clause_to_prolog,
    examples_to_prolog,
    kb_to_prolog,
    load_problem,
    read_examples,
    read_program,
    save_problem,
    theory_to_prolog,
)
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_clause, parse_term


class TestClauseRoundtrip:
    def test_fact(self):
        c = parse_clause("p(a, 3).")
        assert read_program(clause_to_prolog(c)) == [c]

    def test_rule(self):
        c = parse_clause("p(X) :- q(X, Y), r(Y).")
        assert read_program(clause_to_prolog(c)) == [c]

    def test_negative_numbers(self):
        c = parse_clause("w(e1, -2.5).")
        assert read_program(clause_to_prolog(c)) == [c]


class TestTheoryRoundtrip:
    def test_with_header(self):
        th = Theory([parse_clause("p(X) :- q(X)."), parse_clause("p(a).")])
        text = theory_to_prolog(th, header="learned\ntheory")
        assert text.startswith("% learned")
        assert read_program(text) == list(th)


class TestKbRoundtrip:
    def test_facts_and_rules(self):
        kb = KnowledgeBase()
        kb.add_program("p(a). p(b). bond(m, a1, a2, 7). q(X) :- p(X).")
        text = kb_to_prolog(kb)
        kb2 = KnowledgeBase()
        for c in read_program(text):
            kb2.add_clause(c)
        assert kb2.stats() == kb.stats()
        assert {str(f) for f in kb2.facts_for(("p", 1))} == {"p(a)", "p(b)"}


class TestExamples:
    def test_roundtrip(self):
        ex = [parse_term("active(m1)"), parse_term("active(m2)")]
        assert read_examples(examples_to_prolog(ex)) == ex

    def test_rule_rejected(self):
        with pytest.raises(ValueError, match="rule"):
            read_examples("p(X) :- q(X).")


class TestProblemFiles:
    def test_save_load_roundtrip(self, tmp_path):
        from repro.ilp.modes import ModeSet

        kb = KnowledgeBase()
        kb.add_program("parent(a, b). parent(b, c). female(a).")
        pos = [parse_term("gp(a, c)")]
        neg = [parse_term("gp(c, a)")]
        modes = ModeSet(["modeh(1, gp(+p, +p))", "modeb(*, parent(+p, -p))"])
        save_problem(tmp_path / "prob", kb, pos, neg, modes=list(modes))

        kb2, pos2, neg2, mode_strs = load_problem(tmp_path / "prob")
        assert kb2.stats() == kb.stats()
        assert pos2 == pos and neg2 == neg
        ms2 = ModeSet(mode_strs)
        assert len(ms2) == 2
        ms2.validate()

    def test_dataset_export_learnable(self, tmp_path):
        """A bundled dataset survives the file round-trip and stays
        learnable."""
        from repro.datasets import make_dataset
        from repro.ilp import ModeSet, mdie

        ds = make_dataset("trains", seed=1, scale="small", n_trains=12)
        save_problem(tmp_path / "t", ds.kb, ds.pos, ds.neg, modes=list(ds.modes))
        kb2, pos2, neg2, mode_strs = load_problem(tmp_path / "t")
        res = mdie(kb2, pos2, neg2, ModeSet(mode_strs), ds.config, seed=1)
        assert len(res.theory) >= 1

"""Cross-module integration tests: datasets → learning → evaluation.

These are the 'does the whole reproduction hang together' checks: each
synthetic dataset must be learnable by both algorithms with better-than-
chance training accuracy and matching quality between sequential and
parallel runs.
"""

import pytest

from repro.datasets import make_dataset
from repro.ilp import accuracy, mdie
from repro.logic import Engine
from repro.parallel import run_p2mdie, sequential_seconds


@pytest.mark.parametrize("name", ("trains", "mesh", "pyrimidines"))
def test_sequential_beats_chance(name):
    ds = make_dataset(name, seed=5, scale="small")
    res = mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=5)
    eng = Engine(ds.kb, ds.config.engine_budget())
    acc = accuracy(eng, res.theory, ds.pos, ds.neg)
    majority = 100.0 * max(ds.n_pos, ds.n_neg) / (ds.n_pos + ds.n_neg)
    assert acc > majority, f"{name}: {acc:.1f}% <= majority {majority:.1f}%"


@pytest.mark.parametrize("name", ("trains", "mesh"))
def test_parallel_quality_close_to_sequential(name):
    ds = make_dataset(name, seed=5, scale="small")
    eng = Engine(ds.kb, ds.config.engine_budget())
    seq = mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=5)
    seq_acc = accuracy(eng, seq.theory, ds.pos, ds.neg)
    par = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=4, seed=5)
    par_acc = accuracy(eng, par.theory, ds.pos, ds.neg)
    assert par_acc >= seq_acc - 12.0, f"{name}: parallel {par_acc} vs seq {seq_acc}"


def test_speedup_and_epoch_reduction_on_mesh():
    """The paper's two headline effects on one dataset end-to-end."""
    ds = make_dataset("mesh", seed=5, scale="small")
    seq = mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=5)
    seq_t = sequential_seconds(seq)
    par4 = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=4, width=10, seed=5)
    assert seq_t / par4.seconds > 1.0
    assert par4.epochs < seq.epochs


def test_width_constrained_moves_less_data():
    ds = make_dataset("mesh", seed=5, scale="small")
    wide = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=4, width=None, seed=5)
    narrow = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=4, width=2, seed=5)
    assert narrow.comm.bytes_total < wide.comm.bytes_total


def test_full_determinism_across_algorithms():
    """One seed pins the entire stack: dataset bytes, theories, timings."""
    def roundtrip():
        ds = make_dataset("trains", seed=9, scale="small")
        seq = mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=9)
        par = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=3, seed=9)
        return (
            [str(c) for c in seq.theory],
            seq.ops,
            [str(c) for c in par.theory],
            par.seconds,
            par.comm.bytes_total,
        )

    assert roundtrip() == roundtrip()

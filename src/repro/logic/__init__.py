"""First-order logic substrate: terms, clauses, parsing, unification,
θ-subsumption and a resource-bounded SLD-resolution engine.

This subpackage is a from-scratch replacement for the Prolog substrate
(YAP) that the paper's April ILP system ran on.
"""

from repro.logic.clause import Clause, Theory
from repro.logic.engine import Engine, QueryBudget
from repro.logic.io import (
    clause_to_prolog,
    kb_to_prolog,
    load_problem,
    read_examples,
    read_program,
    save_problem,
    theory_to_prolog,
)
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import ParseError, parse_clause, parse_program, parse_term
from repro.logic.subsumption import reduce_clause, subsume_equivalent, theta_subsumes
from repro.logic.terms import Const, Struct, Term, Var, atom, fresh_var, is_ground, mk_term
from repro.logic.unify import match, rename_apart, resolve, unify

__all__ = [
    "Clause",
    "Theory",
    "Engine",
    "QueryBudget",
    "KnowledgeBase",
    "clause_to_prolog",
    "kb_to_prolog",
    "load_problem",
    "read_examples",
    "read_program",
    "save_problem",
    "theory_to_prolog",
    "ParseError",
    "parse_clause",
    "parse_program",
    "parse_term",
    "reduce_clause",
    "subsume_equivalent",
    "theta_subsumes",
    "Const",
    "Struct",
    "Term",
    "Var",
    "atom",
    "fresh_var",
    "is_ground",
    "mk_term",
    "match",
    "rename_apart",
    "resolve",
    "unify",
]

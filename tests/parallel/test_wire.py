"""Wire-codec tests: round-trip every message type, deterministic byte
counts, pickle fallback, and end-to-end CommStats behaviour."""

import os
import pickle
import subprocess
import sys

import pytest

from repro.ilp.bottom import BottomClause, BottomLiteral
from repro.ilp.refinement import SearchRule
from repro.logic.clause import Clause
from repro.logic.parser import parse_clause, parse_term
from repro.logic.terms import Const, Struct, Var
from repro.parallel import wire
from repro.parallel.messages import (
    AdoptWorker,
    EvaluateRequest,
    EvaluateResult,
    ExamplesReport,
    FTEvaluateRequest,
    FTEvaluateResult,
    FTPipelineRules,
    FTPipelineTask,
    GatherExamples,
    LoadData,
    LoadExamples,
    MarkCovered,
    Ping,
    PipelineRules,
    PipelineTask,
    Pong,
    Repartition,
    RestartPipeline,
    RuleStats,
    SampledEvaluateRequest,
    SampledEvaluateResult,
    StartPipeline,
    Stop,
    UpdateRouting,
)
from repro.ilp.sampling import SampledStats

RULE = parse_clause("active(A) :- atom(A, B, c), bond(A, B, C, 7).")
PARENT = parse_clause("active(A) :- atom(A, B, c).")
FACTS = tuple(parse_term(s) for s in ("atom(m1, a1, c)", "bond(m1, a1, a2, 7)", "w(m1, 2.5)"))
POS = tuple(parse_term(s) for s in ("active(m1)", "active(m2)"))
NEG = (parse_term("active(m9)"),)


def make_bottom() -> BottomClause:
    a, b, c = Var("A"), Var("B"), Var("C")
    lits = [
        BottomLiteral(Struct("atom", (a, b, Const("c"))), frozenset([a]), frozenset([b])),
        BottomLiteral(Struct("bond", (a, b, c, Const(7))), frozenset([a, b]), frozenset([c])),
    ]
    return BottomClause(
        seed=parse_term("active(m1)"),
        head=Struct("active", (a,)),
        literals=lits,
        head_vars=frozenset([a]),
    )


MESSAGES = [
    LoadExamples(partition_id=3),
    LoadData(pos=POS, neg=NEG, facts=FACTS, rules=(RULE, PARENT)),
    StartPipeline(width=10),
    StartPipeline(width=None),
    PipelineTask(bottom=make_bottom(), step=2, width=5, rules=(SearchRule(RULE, 1, parent=PARENT),), origin=1),
    PipelineTask(bottom=None, step=1, width=None, rules=(), origin=4),
    PipelineRules(origin=2, rules=(SearchRule(RULE, 1), SearchRule(PARENT, 0, parent=Clause(PARENT.head)))),
    EvaluateRequest(rules=(RULE, PARENT)),
    EvaluateRequest(rules=(RULE,), candidates=((0b1011, 0),)),
    EvaluateRequest(rules=(RULE, PARENT), candidates=(None, (1 << 200 | 5, 7))),
    EvaluateResult(rank=2, stats=(RuleStats(pos=3, neg=0, pos_cand=0b111, neg_cand=1 << 90),)),
    EvaluateResult(rank=1, stats=()),
    SampledEvaluateRequest(rules=(RULE, PARENT)),
    SampledEvaluateResult(
        rank=2,
        stats=(
            SampledStats(pos_hits=3, pos_n=8, pos_total=30, neg_hits=0, neg_n=5, neg_total=20),
        ),
    ),
    SampledEvaluateResult(rank=1, stats=()),
    MarkCovered(rule=RULE),
    GatherExamples(),
    ExamplesReport(rank=1, pos=POS, neg=NEG),
    Repartition(pos=POS, neg=NEG),
    Stop(),
    # fault-tolerance protocol (repro.fault)
    Ping(token=7),
    Pong(rank=3, token=7, cache_hits=120, cache_misses=11),
    AdoptWorker(
        virtual_rank=2,
        partition_id=2,
        epoch=3,
        completed=((RULE,), (), (PARENT, RULE)),
        current=(PARENT,),
        draw_seeds=True,
        draw_current=True,
    ),
    AdoptWorker(
        virtual_rank=5, partition_id=5, epoch=0, completed=(), current=(), draw_seeds=False
    ),
    RestartPipeline(origin=1, width=10, epoch=4),
    RestartPipeline(origin=3, width=None, epoch=1),
    UpdateRouting(routing=((1, 1), (2, 4), (3, 1))),
    FTEvaluateRequest(round=9, rules=(RULE, PARENT)),
    FTEvaluateResult(round=9, rank=2, stats=(RuleStats(pos=3, neg=1),)),
    FTPipelineTask(
        epoch=2,
        bottom=make_bottom(),
        step=2,
        width=5,
        rules=(SearchRule(RULE, 1, parent=PARENT),),
        origin=1,
    ),
    FTPipelineTask(epoch=1, bottom=None, step=1, width=None, rules=(), origin=4),
    FTPipelineRules(epoch=2, origin=2, rules=(SearchRule(RULE, 1),)),
]


class TestRoundTrip:
    @pytest.mark.parametrize("msg", MESSAGES, ids=lambda m: type(m).__name__)
    def test_round_trip(self, msg):
        data = wire.encode(msg)
        assert isinstance(data, bytes)
        assert wire.decode(data) == msg

    def test_every_message_type_covered(self):
        # Out-of-package payloads register their codecs on import (or, for
        # the coverage certificate, on first use): file formats — the
        # checkpoint (code 21), the theory-registry record (22), the
        # scheduler job record (23), the coverage certificate (29) — the
        # service's wire transport messages (24-27), and the telemetry
        # span batch (28).
        from repro.fault.checkpoint import CheckpointState
        from repro.ilp.sampling import CoverageCertificate, _ensure_codec
        from repro.obs.span import SpanBatch
        from repro.service.jobs import JobRecord
        from repro.service.registry import RegistryRecord
        from repro.service.wiremsg import WireJson, WireQuery, WireQueryEnd, WireShard

        _ensure_codec()
        assert {type(m) for m in MESSAGES} | {
            CheckpointState,
            RegistryRecord,
            JobRecord,
            WireJson,
            WireQuery,
            WireShard,
            WireQueryEnd,
            SpanBatch,
            CoverageCertificate,
        } == set(wire._ENCODERS)

    def test_mpi_tag_table_covers_every_protocol_tag(self):
        # The MPI adapter maps string tags onto integer MPI tags; every
        # Tag member (including the fault-tolerance ping/pong/routing
        # control tags) must have its own distinct id, and the backend's
        # halt control tag must stay outside the protocol table.
        from repro.cluster.message import Tag
        from repro.cluster.mpi_backend import _TAG_IDS, HALT_TAG

        protocol_tags = {
            v for k, v in vars(Tag).items() if not k.startswith("_") and isinstance(v, str)
        }
        assert protocol_tags == set(_TAG_IDS)
        ids = list(_TAG_IDS.values())
        assert len(ids) == len(set(ids)), "duplicate MPI tag ids"
        assert HALT_TAG not in ids

    def test_exotic_constants(self):
        msg = Repartition(
            pos=(
                parse_term("p(-3)"),
                parse_term("p(2.5)"),
                Struct("p", (Const(True), Const(1), Const(1.0))),
                Struct("p", (Const("it's"), Struct("f", (Const(10 ** 30),)))),
            ),
            neg=(),
        )
        dec = wire.decode(wire.encode(msg))
        assert dec == msg
        # bool/int/float survive as distinct constant kinds
        args = dec.pos[2].args
        assert [type(a.value) for a in args] == [bool, int, float]

    def test_decoded_terms_are_interned(self):
        from repro.logic.terms import intern_enabled

        if not intern_enabled():  # pragma: no cover - REPRO_INTERN=0 runs
            pytest.skip("interning disabled")
        msg = MarkCovered(rule=RULE)
        dec = wire.decode(wire.encode(msg))
        # Ground subterms come back pointer-equal to the local copies.
        assert dec.rule.body[0].args[2] is RULE.body[0].args[2]

    def test_smaller_than_pickle(self):
        for msg in MESSAGES:
            data = wire.encode(msg)
            assert len(data) < len(pickle.dumps(msg, pickle.HIGHEST_PROTOCOL))


class TestDeterminism:
    def test_encode_is_deterministic_in_process(self):
        for msg in MESSAGES:
            assert wire.encode(msg) == wire.encode(msg)

    def test_bytes_stable_across_hash_seeds(self):
        """Byte counts must not depend on PYTHONHASHSEED (frozenset
        iteration order differs per process; the codec sorts)."""
        prog = (
            "from tests.parallel.test_wire import MESSAGES\n"
            "from repro.parallel import wire\n"
            "print(';'.join(wire.encode(m).hex() for m in MESSAGES))\n"
        )
        here = [wire.encode(m).hex() for m in MESSAGES]
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = "src" + os.pathsep + os.getcwd() + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            out = subprocess.run(
                [sys.executable, "-c", prog],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
            )
            assert out.returncode == 0, out.stderr
            assert out.stdout.strip().split(";") == here


class TestGatingAndFallback:
    def test_disabled_returns_none(self):
        with wire.configured(False):
            assert wire.encode(Stop()) is None
        with wire.configured(True):
            assert wire.encode(Stop()) is not None

    def test_unknown_payload_returns_none(self):
        assert wire.encode({"not": "a message"}) is None

    def test_payload_nbytes_matches_mode(self):
        from repro.cluster.message import payload_nbytes

        msg = MarkCovered(rule=RULE)
        with wire.configured(True):
            assert payload_nbytes(msg) == len(wire.encode(msg))
        with wire.configured(False):
            assert payload_nbytes(msg) == len(pickle.dumps(msg, pickle.HIGHEST_PROTOCOL))

    def test_decode_rejects_garbage(self):
        with pytest.raises(wire.WireError):
            wire.decode(b"\x00\x01\x02")
        with pytest.raises(wire.WireError):
            wire.decode(wire.encode(Stop()) + b"x")


class TestEndToEnd:
    def test_commstats_deterministic_and_reduced(self):
        from repro.datasets import make_dataset
        from repro.parallel import run_p2mdie

        ds = make_dataset("trains", seed=0, scale="small")
        on = ds.config.replace(wire_codec=True)
        off = ds.config.replace(wire_codec=False)
        r1 = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, on, p=2, seed=0)
        r2 = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, on, p=2, seed=0)
        r3 = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, off, p=2, seed=0)
        # deterministic accounting across identical runs
        assert r1.comm.bytes_total == r2.comm.bytes_total
        assert r1.comm.bytes_by_tag == r2.comm.bytes_by_tag
        # identical learning, identical message count, fewer bytes
        assert list(map(str, r1.theory)) == list(map(str, r3.theory))
        assert r1.comm.messages == r3.comm.messages
        assert r1.comm.bytes_total < r3.comm.bytes_total


class TestServiceWireMessages:
    """The service transport's message types (codes 24-27) and framing."""

    def service_messages(self):
        from repro.service import wiremsg

        return [
            wiremsg.WireJson(payload={"op": "ping"}),
            wiremsg.WireJson(payload={"ok": True, "jobs": [{"job": "j1", "state": "done"}]}),
            wiremsg.WireQuery(name="trains-th", examples=POS, version=None),
            wiremsg.WireQuery(
                name="t", examples=NEG, version=3, micro_batch=64, shards=8, stream=True
            ),
            wiremsg.WireShard(shard=2, lo=100, n=50, covered=(1 << 49) | 5, ops=1234),
            wiremsg.WireQueryEnd(covered=(1 << 200) | 7, n=201, ops=99, shards=4),
        ]

    def test_round_trip(self):
        for msg in self.service_messages():
            data = wire.encode(msg)
            assert isinstance(data, bytes)
            assert wire.decode(data) == msg

    def test_frame_round_trip(self):
        import io

        from repro.service import wiremsg

        buf = io.BytesIO()
        sent = self.service_messages()
        written = [wiremsg.write_frame_to(buf, m) for m in sent]
        assert all(n > wiremsg.FRAME_HEADER.size for n in written)  # header + body
        buf.seek(0)
        got = []
        total = 0
        while True:
            msg, nbytes = wiremsg.read_frame_from(buf)
            if msg is None:
                break
            got.append(msg)
            total += nbytes
        assert got == sent
        assert total == sum(written)

    def test_frame_rejects_oversize(self):
        import io

        from repro.service import wiremsg

        buf = io.BytesIO(wiremsg.FRAME_HEADER.pack(wiremsg.MAX_FRAME + 1) + b"x")
        with pytest.raises(wire.WireError):
            wiremsg.read_frame_from(buf)

    def test_job_record_with_outcome_round_trip(self):
        from repro.service.jobs import JobRecord, JobSpec, OutcomeSummary

        summary = OutcomeSummary(
            rules=2, epochs=3, seconds=1.25, uncovered=0, ops=4200,
            mbytes=0.125, train_accuracy=97.5,
            theory="eastbound(A) :-\n    has_car(A, B).\n",
        )
        for outcome in (None, summary):
            rec = JobRecord(
                job_id="job-0007", seq=7,
                spec=JobSpec(dataset="trains", algo="p2mdie", p=2, seed=5),
                state="done" if outcome else "queued",
                epochs_done=3, outcome=outcome,
            )
            data = wire.encode(rec)
            assert wire.decode(data) == rec

"""Bottom clause (most-specific clause ⊥e) construction.

``build_msh`` in the paper's Fig. 1: given a seed example ``e``, background
knowledge ``B`` and constraints ``C``, produce the most specific clause
that entails ``e`` within the language bias.  This is Muggleton's MDIE
saturation:

1. The head is the example with constants lifted to variables according to
   the matching ``modeh`` template (one variable per (constant, type)).
2. Body literals are added in ``var_depth`` layers.  A body mode's ``+``
   (input) arguments are instantiated with every combination of in-scope
   terms of the right type discovered in *earlier* layers; the engine
   retrieves up to ``recall`` answers per instantiation; each answer is
   variablized (outputs become variables, ``#`` arguments stay constant)
   and appended.

The resulting :class:`BottomClause` both *is* a clause (the most specific
rule) and *indexes* the refinement search: every learned rule is a
subsequence of its literals (see :mod:`repro.ilp.refinement`).
"""

from __future__ import annotations

import itertools
import weakref
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.ilp.config import ILPConfig
from repro.ilp.modes import ModeDecl, ModeSet
from repro.logic.clause import Clause
from repro.logic.engine import Engine
from repro.logic.terms import Const, Struct, Term, Var, fresh_var

__all__ = [
    "BottomLiteral",
    "BottomClause",
    "build_bottom",
    "build_bottom_cached",
    "saturation_cache_stats",
    "SaturationError",
]


class SaturationError(ValueError):
    """No head mode matches the seed example."""


@dataclass(frozen=True)
class BottomLiteral:
    """A variablized body literal plus its dataflow metadata."""

    literal: Term
    input_vars: frozenset
    output_vars: frozenset

    def __str__(self) -> str:
        return str(self.literal)


@dataclass
class BottomClause:
    """The saturated most-specific clause for one seed example."""

    seed: Term
    head: Term
    literals: list[BottomLiteral]
    head_vars: frozenset

    def __len__(self) -> int:
        return len(self.literals)

    def as_clause(self) -> Clause:
        return Clause(self.head, tuple(bl.literal for bl in self.literals))

    def __str__(self) -> str:
        return str(self.as_clause())

    def most_general_rule(self) -> Clause:
        """The search's START_RULE: bare head, empty body."""
        return Clause(self.head, ())


class _VarNamer:
    """Deterministic readable variable names A, B, ..., Z, V26, V27, ..."""

    _LETTERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"

    def __init__(self):
        self.n = 0

    def next(self) -> Var:
        i = self.n
        self.n += 1
        if i < len(self._LETTERS):
            return Var(self._LETTERS[i])
        return Var(f"V{i}")


def _match_head_mode(example: Term, modes: ModeSet) -> ModeDecl:
    if not isinstance(example, Struct):
        raise SaturationError(f"example must be a compound term: {example}")
    mode = modes.head_mode_for(example.indicator)
    if mode is None:
        raise SaturationError(f"no modeh matches example {example}")
    return mode


def build_bottom(
    example: Term,
    engine: Engine,
    modes: ModeSet,
    config: ILPConfig,
    max_combos_per_mode: int = 2000,
) -> BottomClause:
    """Saturate ``example`` against ``engine.kb`` under the mode bias.

    Deterministic: iteration follows mode declaration order and
    first-discovery order of in-scope terms.
    """
    head_mode = _match_head_mode(example, modes)
    namer = _VarNamer()
    return _saturate(example, engine, modes, config, head_mode, namer, max_combos_per_mode)


# -- saturation cache --------------------------------------------------------------
#
# kb -> modes -> {(kb.version, example, bias/budget key) ->
# (BottomClause | SaturationError, ops_spent)}.  Both outer levels are
# weak so discarded problems release their bottoms; the version stamp in
# the key invalidates on any KB mutation.  Saturation is deterministic in
# (example, KB, modes, bias, engine budget) — the engine's memo/indexing
# state changes only op counts, never answers — so a cached bottom is
# exactly what a re-run would build.  Cached BottomClause objects are
# shared: callers must treat them as immutable (they already do —
# refinement only reads).
#
# A hit **replays the recorded operation cost** into the engine's counter:
# the virtual cost model (and hence simulated times, which must be a pure
# function of the run's inputs) is unchanged — the cache saves wall-clock
# seconds, not modeled operations.
_BOTTOM_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_bottom_hits = 0
_bottom_misses = 0


def saturation_cache_stats() -> dict:
    """Process-wide saturation-cache effectiveness counters."""
    return {"hits": _bottom_hits, "misses": _bottom_misses}


def build_bottom_cached(
    example: Term,
    engine: Engine,
    modes: ModeSet,
    config: ILPConfig,
    max_combos_per_mode: int = 2000,
) -> BottomClause:
    """Memoized :func:`build_bottom`.

    Repeated saturations of the same seed — retried seeds across worker
    epochs, cross-validation folds sharing one KB, repeated experiment
    runs — return the cached bottom clause without consuming engine
    operations.  Failed saturations (:class:`SaturationError`) are cached
    too, since retrying them is just as expensive.
    """
    global _bottom_hits, _bottom_misses
    kb = engine.kb
    per_kb = _BOTTOM_CACHE.get(kb)
    if per_kb is None:
        per_kb = _BOTTOM_CACHE[kb] = weakref.WeakKeyDictionary()
    per_modes = per_kb.get(modes)
    if per_modes is None:
        per_modes = per_kb[modes] = {}
    budget = engine.budget
    key = (
        kb.version,
        example,
        config.var_depth,
        config.recall,
        config.max_bottom_literals,
        budget.max_depth,
        budget.max_ops,
        max_combos_per_mode,
    )
    hit = per_modes.get(key)
    if hit is not None:
        _bottom_hits += 1
        obj, ops_spent = hit
        engine.total_ops += ops_spent
        if isinstance(obj, SaturationError):
            raise obj
        return obj
    _bottom_misses += 1
    ops0 = engine.total_ops
    try:
        bottom = build_bottom(example, engine, modes, config, max_combos_per_mode)
    except SaturationError as exc:
        per_modes[key] = (exc, engine.total_ops - ops0)
        raise
    per_modes[key] = (bottom, engine.total_ops - ops0)
    return bottom


def _saturate(
    example: Term,
    engine: Engine,
    modes: ModeSet,
    config: ILPConfig,
    head_mode: ModeDecl,
    namer: "_VarNamer",
    max_combos_per_mode: int,
) -> BottomClause:

    # (constant value, type) -> variable; shared across the whole clause.
    var_for: dict[tuple[object, str], Var] = {}
    # variable -> ground constant it stands for (for engine queries).
    ground_of: dict[Var, Const] = {}
    # type -> ordered list of in-scope variables of that type.
    by_type: dict[str, list[Var]] = {}

    def lift(const: Const, ty: str) -> Var:
        key = (const.value, ty)
        v = var_for.get(key)
        if v is None:
            v = namer.next()
            var_for[key] = v
            ground_of[v] = const
            by_type.setdefault(ty, []).append(v)
        return v

    # --- head -----------------------------------------------------------------
    head_args: list[Term] = []
    for arg, spec in zip(example.args, head_mode.args):
        if not isinstance(arg, Const):
            raise SaturationError(f"example arguments must be constants: {example}")
        if spec.kind == "#":
            head_args.append(arg)
        else:  # '+' and '-' head args both enter the body's scope
            head_args.append(lift(arg, spec.type))
    head = Struct(example.functor, tuple(head_args))
    head_vars = frozenset(v for v in head_args if isinstance(v, Var))

    # --- body layers ------------------------------------------------------------
    body: list[BottomLiteral] = []
    seen_literals: set[Term] = set()
    # Terms available for '+' slots: discovered strictly before this layer.
    available: dict[str, list[Var]] = {ty: list(vs) for ty, vs in by_type.items()}

    for _layer in range(config.var_depth):
        if len(body) >= config.max_bottom_literals:
            break
        new_this_layer: dict[str, list[Var]] = {}
        for mode in modes.body_modes:
            recall = mode.recall if mode.recall is not None else config.recall
            in_positions = mode.input_positions()
            pools = [available.get(mode.args[i].type, []) for i in in_positions]
            if any(not p for p in pools):
                continue
            combos = itertools.islice(itertools.product(*pools), max_combos_per_mode)
            for combo in combos:
                if len(body) >= config.max_bottom_literals:
                    break
                # Build the ground query: inputs grounded, rest free.
                qargs: list[Term] = []
                free_slots: list[int] = []
                it = iter(combo)
                for i, spec in enumerate(mode.args):
                    if spec.kind == "+":
                        qargs.append(ground_of[next(it)])
                    else:
                        qargs.append(fresh_var("_Q"))
                        free_slots.append(i)
                query = Struct(mode.predicate, tuple(qargs))
                for answer in engine.solve(query, limit=recall):
                    assert isinstance(answer, Struct)
                    largs: list[Term] = []
                    in_vars: set[Var] = set()
                    out_vars: set[Var] = set()
                    ok = True
                    it2 = iter(combo)
                    for i, spec in enumerate(mode.args):
                        a = answer.args[i]
                        if spec.kind == "+":
                            v = next(it2)
                            in_vars.add(v)
                            largs.append(v)
                        elif spec.kind == "#":
                            if not isinstance(a, Const):
                                ok = False
                                break
                            largs.append(a)
                        else:  # '-'
                            if not isinstance(a, Const):
                                ok = False
                                break
                            key = (a.value, spec.type)
                            if key in var_for:
                                v = var_for[key]
                            else:
                                v = namer.next()
                                var_for[key] = v
                                ground_of[v] = a
                                new_this_layer.setdefault(spec.type, []).append(v)
                            out_vars.add(v)
                            largs.append(v)
                    if not ok:
                        continue
                    lit = Struct(mode.predicate, tuple(largs))
                    if lit == head or lit in seen_literals:
                        continue
                    seen_literals.add(lit)
                    body.append(
                        BottomLiteral(lit, frozenset(in_vars), frozenset(out_vars))
                    )
                    if len(body) >= config.max_bottom_literals:
                        break
        # Promote this layer's new outputs into scope for the next layer.
        for ty, vs in new_this_layer.items():
            available.setdefault(ty, []).extend(vs)

    return BottomClause(seed=example, head=head, literals=body, head_vars=head_vars)

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``learn``    run sequential MDIE or P²-MDIE on a bundled dataset and print
             the learned theory plus run statistics;
``resume``   continue a checkpointed run bit-identically from a snapshot;
``faults``   run the fault-injection sweep (recovery overhead & parity);
``tables``   run the evaluation matrix and print any of the paper's tables;
``trace``    run one traced epoch and print the pipeline Gantt chart;
``export``   write a bundled dataset to Aleph-style Prolog files;
``serve``    run the learning-as-a-service front door (JSON-lines TCP);
``jobs``     client verbs against a running server: submit/status/cancel/wait;
``registry`` inspect/promote versioned theory artifacts on disk;
``query``    batched coverage queries against a registered theory.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.backend import BACKEND_NAMES, BackendUnavailableError
from repro.datasets import DATASETS, make_dataset
from repro.experiments.runner import run_matrix
from repro.experiments.tables import (
    table1_datasets,
    table2_speedup,
    table3_times,
    table4_communication,
    table5_epochs,
    table6_accuracy,
)
from repro.experiments.trace import occupancy, render_gantt
from repro.ilp import accuracy, mdie
from repro.logic import Engine
from repro.logic.io import save_problem, theory_to_prolog
from repro.parallel import run_p2mdie, sequential_seconds

__all__ = ["main", "build_parser"]


def _parse_width(s: str):
    return None if s in ("nolimit", "none") else int(s)


def _add_backend_arg(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="sim",
        help="execution substrate for parallel runs: 'sim' = deterministic "
        "discrete-event simulation in virtual time (default), 'local' = real "
        "multiprocessing workers with wall-clock timing, 'mpi' = real MPI "
        "cluster via mpi4py (launch under mpiexec). The learned theory is "
        "identical across backends for the same seed/config.",
    )


def _add_fault_args(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--fault-plan",
        metavar="PATH",
        default=None,
        help="JSON fault plan (crashes / stragglers / message drops / elastic "
        "joins) to inject; activates the self-healing protocol. The learned "
        "theory is identical to the fault-free run — only time and "
        "communication change. See repro.fault.plan.FaultPlan.",
    )
    sub_parser.add_argument(
        "--spares",
        type=int,
        default=0,
        help="standby worker hosts (ranks p+1..p+spares) provisioned for "
        "adoption after a crash or for elastic 'join' events",
    )
    sub_parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="write a resumable snapshot of master learning state after every "
        "epoch (wire-codec .ckpt files; continue with `repro resume`)",
    )


def _load_plan(args):
    if getattr(args, "fault_plan", None) is None:
        return None
    from repro.fault.plan import FaultPlan

    p = getattr(args, "p", None)
    try:
        # With a known pool size, rank validation happens here — a plan
        # naming ranks outside 1..p+spares fails at the CLI, not mid-run.
        return FaultPlan.load(
            args.fault_plan,
            p=p if isinstance(p, int) and p > 1 else None,
            spares=getattr(args, "spares", 0) or 0,
        )
    except ValueError as exc:
        print(f"repro: bad fault plan {args.fault_plan}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _cli_backend(args, plan=None):
    """The backend to hand the run front-end: the name, or — for an
    ``mpiexec`` SPMD launch — a constructed MPI backend with non-root
    ranks' stdout muted so the run narrates exactly once."""
    if args.backend != "mpi":
        return args.backend
    from repro.backend import make_backend

    backend = make_backend("mpi", fault_plan=plan)
    if not backend.is_root:
        sys.stdout = open(os.devnull, "w")
    return backend


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    # Shared by every subcommand: `repro learn ... --profile out.pstats`.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="profile the run with cProfile and write pstats data to PATH "
        "(inspect with `python -m pstats PATH` or snakeviz)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    learn = sub.add_parser("learn", help="learn a theory on a bundled dataset", parents=[common])
    learn.add_argument("dataset", choices=sorted(DATASETS))
    learn.add_argument("--p", type=int, default=1, help="processors (1 = sequential MDIE)")
    learn.add_argument("--width", type=_parse_width, default=10, help="pipeline width or 'nolimit'")
    learn.add_argument("--seed", type=int, default=0)
    learn.add_argument("--scale", choices=("small", "paper"), default="small")
    learn.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="record per-stage activity spans and write them as JSONL "
        "(one span per line; render with `repro trace`-style tooling)",
    )
    _add_backend_arg(learn)
    _add_fault_args(learn)

    resume = sub.add_parser(
        "resume",
        help="continue a checkpointed run bit-identically",
        parents=[common],
        description="Continue a run from a .ckpt snapshot written by "
        "`repro learn --checkpoint-dir`. Dataset, scale, p and width are "
        "read back from the checkpoint metadata; the remaining epochs "
        "reproduce the uninterrupted run exactly.",
    )
    resume.add_argument("checkpoint", help="path to an epoch_NNNN.ckpt file")
    _add_backend_arg(resume)
    resume.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="keep checkpointing the continued run into DIR",
    )
    resume.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="record per-stage activity spans and write them as JSONL",
    )

    faults = sub.add_parser(
        "faults",
        help="fault-injection sweep: recovery overhead and theory parity",
        parents=[common],
        description="Run each parallel strategy fault-free and under injected "
        "fault scenarios (worker crash, straggler, crash+standby), assert "
        "the learned theory is identical, and report the recovery overhead.",
    )
    faults.add_argument("--dataset", choices=sorted(DATASETS), default="trains")
    faults.add_argument("--ps", default="2,4")
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--scale", choices=("small", "paper"), default="small")
    faults.add_argument(
        "--strategies",
        default="p2mdie",
        help="comma-separated subset of p2mdie,covpar,independent",
    )
    faults.add_argument(
        "--timeout", type=float, default=2.0, help="failure-detection timeout (seconds)"
    )
    _add_backend_arg(faults)

    tables = sub.add_parser(
        "tables", help="run the evaluation matrix and print paper tables", parents=[common]
    )
    tables.add_argument("--which", default="2,3,4,5,6", help="comma-separated table numbers (1-6)")
    tables.add_argument("--datasets", default="carcinogenesis,mesh,pyrimidines")
    tables.add_argument("--folds", type=int, default=3)
    tables.add_argument("--ps", default="2,4,8")
    tables.add_argument("--seed", type=int, default=0)
    tables.add_argument("--scale", choices=("small", "paper"), default="small")
    _add_backend_arg(tables)

    trace = sub.add_parser(
        "trace", help="render one epoch's pipeline activity (Figs. 3-4)", parents=[common]
    )
    trace.add_argument("dataset", choices=sorted(DATASETS))
    trace.add_argument("--p", type=int, default=3)
    trace.add_argument("--width", type=_parse_width, default=10)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--scale", choices=("small", "paper"), default="small")
    trace.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="also write the spans as JSONL (one span per line)",
    )
    _add_backend_arg(trace)

    export = sub.add_parser(
        "export", help="write a dataset as Aleph-style Prolog files", parents=[common]
    )
    export.add_argument("dataset", choices=sorted(DATASETS))
    export.add_argument("directory")
    export.add_argument("--seed", type=int, default=0)
    export.add_argument("--scale", choices=("small", "paper"), default="small")

    serve_p = sub.add_parser(
        "serve",
        help="run the learning-as-a-service front door",
        parents=[common],
        description="Serve learning jobs and batched coverage queries over a "
        "JSON-lines TCP socket (one JSON request per line, one JSON response "
        "per line).  Jobs run concurrently over --slots worker slots; learned "
        "theories are published to --registry-dir and served to queries.  "
        "Stop with a {\"op\": \"shutdown\"} request or Ctrl-C.",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=7341, help="0 = ephemeral")
    serve_p.add_argument("--slots", type=int, default=2, help="concurrent learning jobs")
    serve_p.add_argument(
        "--state-dir", default=None,
        help="durable job records + checkpoints (enables restart recovery)",
    )
    serve_p.add_argument(
        "--registry-dir", default=None,
        help="theory registry root (enables register_as and query ops)",
    )
    serve_p.add_argument(
        "--chunk-epochs", type=int, default=1,
        help="epochs per chunk for preemptible jobs (cancellation latency)",
    )
    serve_p.add_argument(
        "--auth-token", default=None, metavar="TOKEN",
        help="require clients to authenticate with this token (hello op)",
    )
    serve_p.add_argument(
        "--max-jobs-per-client", type=int, default=0, metavar="N",
        help="reject submits from clients with N active jobs already (0 = unlimited)",
    )
    serve_p.add_argument(
        "--query-shards", type=int, default=0, metavar="K",
        help="default shard count for coverage queries (0 = sequential)",
    )
    serve_p.add_argument(
        "--max-queue", type=int, default=0, metavar="N",
        help="shed submits once N jobs are queued (0 = unbounded)",
    )
    serve_p.add_argument(
        "--max-inflight", type=int, default=0, metavar="N",
        help="shed requests once N are executing (0 = unbounded)",
    )
    serve_p.add_argument(
        "--fault-plan", default=None, metavar="FILE",
        help="service fault plan JSON to inject (chaos testing)",
    )
    serve_p.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus text metrics over plain HTTP on PORT "
        "(0 = ephemeral; scrape with `curl http://host:PORT/metrics`)",
    )
    serve_p.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="append one JSONL span per handled request to FILE",
    )

    jobs_p = sub.add_parser(
        "jobs", help="client verbs against a running `repro serve`"
    )
    # --host/--port live on the leaf subcommands (not on `jobs` itself):
    # argparse classifies every argv token against the active parser's
    # option table before subcommand dispatch, so a `jobs`-level --port
    # would make the leaf-level `--p` ambiguous (--port/--profile).
    client = argparse.ArgumentParser(add_help=False)
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=7341)
    client.add_argument("--token", default=None, help="server auth token")
    client.add_argument(
        "--transport", choices=("json", "wire"), default="json",
        help="client transport (wire = compact binary framing)",
    )
    client.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry shed/reset requests up to N times (capped backoff + jitter)",
    )
    jobs_sub = jobs_p.add_subparsers(dest="jobs_command", required=True)
    js = jobs_sub.add_parser("submit", help="queue one learning job", parents=[common, client])
    js.add_argument("dataset", choices=sorted(DATASETS))
    js.add_argument("--algo", choices=("mdie", "p2mdie", "covpar", "independent"), default="mdie")
    js.add_argument("--p", type=int, default=1)
    js.add_argument("--seed", type=int, default=0)
    js.add_argument("--scale", choices=("small", "paper"), default="small")
    js.add_argument("--backend", choices=BACKEND_NAMES, default="sim")
    js.add_argument("--priority", type=int, default=0, help="higher runs first")
    js.add_argument("--preemptible", action="store_true",
                    help="run in epoch chunks (cancellable mid-run, crash-resumable)")
    js.add_argument("--register-as", default=None, metavar="NAME",
                    help="publish the learned theory to the server's registry")
    js.add_argument("--wait", action="store_true", help="block until the job finishes")
    js.add_argument(
        "--idempotency-key", default=None, metavar="KEY",
        help="dedup key: resubmitting with the same key never duplicates the job "
        "(generated automatically when --retries is set)",
    )
    jst = jobs_sub.add_parser(
        "status", help="status of one job (or all jobs)", parents=[common, client]
    )
    jst.add_argument("job", nargs="?", default=None)
    jc = jobs_sub.add_parser(
        "cancel", help="cancel a queued or preemptible running job", parents=[common, client]
    )
    jc.add_argument("job")
    jw = jobs_sub.add_parser(
        "wait", help="block until a job reaches a terminal state", parents=[common, client]
    )
    jw.add_argument("job")
    jw.add_argument("--timeout", type=float, default=None)
    jg = jobs_sub.add_parser(
        "gc", help="drop old finished jobs from the server", parents=[common, client]
    )
    jg.add_argument(
        "--keep", type=int, default=0,
        help="retain the newest N terminal jobs (default: drop all)",
    )
    jobs_sub.add_parser(
        "shutdown", help="stop the server (running jobs park/finish)",
        parents=[common, client],
    )

    reg_p = sub.add_parser(
        "registry", help="inspect/promote theory artifacts on disk", parents=[common]
    )
    reg_p.add_argument("--registry-dir", required=True, metavar="DIR")
    reg_sub = reg_p.add_subparsers(dest="registry_command", required=True)
    reg_sub.add_parser("list", help="all names, versions and promotions")
    rshow = reg_sub.add_parser("show", help="one record: theory + provenance")
    rshow.add_argument("name")
    rshow.add_argument("--version", type=int, default=None)
    rdiff = reg_sub.add_parser("diff", help="clause diff between two versions")
    rdiff.add_argument("name")
    rdiff.add_argument("old", type=int)
    rdiff.add_argument("new", type=int)
    rprom = reg_sub.add_parser("promote", help="bless a version as the served default")
    rprom.add_argument("name")
    rprom.add_argument("version", type=int)
    rgc = reg_sub.add_parser("gc", help="drop old versions of a theory")
    rgc.add_argument("name")
    rgc.add_argument(
        "--keep", type=int, default=1,
        help="retain the newest N versions (the promoted one always survives)",
    )

    query_p = sub.add_parser(
        "query",
        help="batched coverage queries against a registered theory",
        parents=[common],
        description="Classify ground examples under a registered theory "
        "(offline — reads the registry directly; no server needed).  "
        "Examples come from --examples (one term per line) or default to "
        "the theory's training dataset (reports confusion counts).",
    )
    query_p.add_argument("name", help="registered theory name")
    query_p.add_argument("--registry-dir", required=True, metavar="DIR")
    query_p.add_argument("--version", type=int, default=None)
    query_p.add_argument(
        "--examples", default=None, metavar="FILE",
        help="file with one ground term per line ('-' = stdin)",
    )
    query_p.add_argument(
        "--shards", type=int, default=0,
        help="evaluate the batch shard-parallel over K worker threads",
    )

    load_p = sub.add_parser(
        "loadgen",
        help="drive query traffic at a running server; report percentiles",
        parents=[common, client],
        description="Open-loop load generation against a running `repro "
        "serve`: fire query batches on a deterministic arrival schedule "
        "(uniform, burst, or heavy-tail) and report p50/p95/p99 latency "
        "measured from each request's scheduled send time, so server "
        "backlog shows up as tail latency.  Examples are drawn from the "
        "named dataset's pos+neg pool, cycled to --batch.",
    )
    load_p.add_argument(
        "theory", nargs="?", default=None,
        help="registered theory name to query (omitted with --chaos, "
        "which self-hosts and learns its own)",
    )
    load_p.add_argument("--dataset", choices=sorted(DATASETS), default="trains")
    load_p.add_argument("--seed", type=int, default=0)
    load_p.add_argument("--scale", choices=("small", "paper"), default="small")
    load_p.add_argument("--batch", type=int, default=100, help="examples per request")
    load_p.add_argument("--requests", type=int, default=50, metavar="N")
    load_p.add_argument("--rate", type=float, default=20.0, help="target requests/s")
    load_p.add_argument(
        "--pattern", choices=("uniform", "burst", "heavytail"), default="uniform"
    )
    load_p.add_argument("--shards", type=int, default=0, help="shards per query (0 = server default)")
    load_p.add_argument("--stream", action="store_true", help="use streaming queries")
    load_p.add_argument("--concurrency", type=int, default=8, help="client connections")
    load_p.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline the server enforces end-to-end",
    )
    load_p.add_argument(
        "--chaos", default=None, metavar="PLAN",
        help="self-hosted chaos run: serve with this fault plan JSON, drive "
        "the workload twice (fault-free + chaos) and gate on parity, zero "
        "duplicated jobs and zero corrupt records",
    )
    load_p.add_argument(
        "--bench-out", default=None, metavar="FILE",
        help="write the full (chaos) report as JSON",
    )
    return ap


def _write_trace_out(path: str, trace) -> None:
    """Export a run's ComputeIntervals as a JSONL span file."""
    from repro.obs import spans_from_intervals, write_spans_jsonl

    n = write_spans_jsonl(path, spans_from_intervals(trace))
    print(f"% wrote {n} spans to {path}")


def _print_certificate(res) -> None:
    """Coverage-certificate summary of a sampled run (no-op when exact)."""
    cert = getattr(res, "certificate", None)
    if cert is not None:
        print(f"% coverage-certificate: {cert.summary()}")


def _print_run_epilogue(res) -> None:
    """Shared run statistics: cache effectiveness + fault narrative."""
    if res.cache_stats:
        total = res.cache_hits + res.cache_misses
        rate = (100.0 * res.cache_hits / total) if total else 0.0
        print(
            f"% eval-cache: hits={res.cache_hits} misses={res.cache_misses} "
            f"({rate:.1f}% hit rate)"
        )
    for line in res.fault_events:
        print(f"% fault: {line}")
    for rec in res.fault_log:
        print(f"% injected: {rec}")


def _cmd_learn(args) -> int:
    plan = _load_plan(args)
    # p == 1 is the sequential path: no backend is ever constructed.
    backend = args.backend if args.p == 1 else _cli_backend(args, plan)
    ds = make_dataset(args.dataset, seed=args.seed, scale=args.scale)
    print(f"% dataset {ds.name}: |E+|={ds.n_pos} |E-|={ds.n_neg}")
    meta = (
        ("dataset", args.dataset),
        ("scale", args.scale),
        ("p", str(args.p)),
        ("width", "nolimit" if args.width is None else str(args.width)),
    )
    if args.p == 1:
        if plan is not None:
            print("repro: --fault-plan requires --p > 1 (sequential runs have no pool)", file=sys.stderr)
            return 2
        if args.spares:
            print("repro: --spares requires --p > 1 and a --fault-plan", file=sys.stderr)
            return 2
        if args.trace_out:
            print(
                "repro: --trace-out requires --p > 1 (sequential runs record no activity trace)",
                file=sys.stderr,
            )
            return 2
        res = mdie(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=args.seed,
            checkpoint_dir=args.checkpoint_dir, checkpoint_meta=meta,
        )
        seconds = sequential_seconds(res)
        extra = f"% epochs={res.epochs} ops={res.ops} uncovered={res.uncovered}"
        theory = res.theory
        parallel_res = None
    else:
        if args.spares and plan is None:
            print("repro: --spares requires a --fault-plan (standby hosts are a fault-tolerance feature)", file=sys.stderr)
            return 2
        res = run_p2mdie(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=args.p, width=args.width,
            seed=args.seed, backend=backend,
            record_trace=bool(args.trace_out),
            fault_plan=plan, spares=args.spares,
            checkpoint_dir=args.checkpoint_dir, checkpoint_meta=meta,
        )
        seconds = res.seconds
        extra = (
            f"% epochs={res.epochs} comm={res.mbytes:.3f}MB uncovered={res.uncovered}"
        )
        theory = res.theory
        parallel_res = res
    engine = Engine(ds.kb, ds.config.engine_budget(), kernel=ds.config.coverage_kernel)
    acc = accuracy(engine, theory, ds.pos, ds.neg)
    print(theory_to_prolog(theory, header=f"learned by {'mdie' if args.p == 1 else 'p2-mdie'}"))
    print(extra)
    time_label = "virtual-time" if args.p == 1 or args.backend == "sim" else "wall-time"
    print(f"% {time_label}={seconds:.1f}s training-accuracy={acc:.1f}%")
    _print_certificate(res)
    if parallel_res is not None:
        _print_run_epilogue(parallel_res)
        if args.trace_out:
            _write_trace_out(args.trace_out, parallel_res.trace)
    if args.checkpoint_dir:
        print(f"% checkpoints in {args.checkpoint_dir}/ (continue with `repro resume`)")
    return 0


def _cmd_resume(args) -> int:
    from repro.fault.checkpoint import load_checkpoint

    backend = _cli_backend(args)  # mutes non-root ranks before any output
    state = load_checkpoint(args.checkpoint)
    meta = state.meta_dict()
    dataset = meta.get("dataset")
    if dataset is None:
        print(
            "repro: checkpoint carries no dataset metadata (was it written by "
            "`repro learn --checkpoint-dir`?)",
            file=sys.stderr,
        )
        return 2
    scale = meta.get("scale", "small")
    ds = make_dataset(dataset, seed=state.seed, scale=scale)
    print(
        f"% resuming {state.algo} on {dataset} from epoch {state.epoch} "
        f"({state.remaining} positives uncovered)"
    )
    if state.algo == "mdie":
        res = mdie(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=state.seed,
            resume=state, checkpoint_dir=args.checkpoint_dir, checkpoint_meta=state.meta,
        )
        seconds = sequential_seconds(res)
        theory = res.theory
        extra = f"% epochs={res.epochs} ops={res.ops} uncovered={res.uncovered}"
        parallel_res = None
    elif state.algo == "p2mdie":
        width = _parse_width(meta.get("width", "10"))
        res = run_p2mdie(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=state.n_workers, width=width,
            seed=state.seed, backend=backend, resume=state,
            record_trace=bool(args.trace_out),
            checkpoint_dir=args.checkpoint_dir, checkpoint_meta=state.meta,
        )
        seconds = res.seconds
        theory = res.theory
        extra = f"% epochs={res.epochs} comm={res.mbytes:.3f}MB uncovered={res.uncovered}"
        parallel_res = res
    elif state.algo == "covpar":
        from repro.parallel import run_coverage_parallel

        res = run_coverage_parallel(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=state.n_workers,
            seed=state.seed, backend=backend, resume=state,
            checkpoint_dir=args.checkpoint_dir, checkpoint_meta=state.meta,
        )
        seconds = res.seconds
        theory = res.theory
        extra = f"% epochs={res.epochs} comm={res.mbytes:.3f}MB uncovered={res.uncovered}"
        parallel_res = res
    else:
        print(f"repro: cannot resume algo {state.algo!r}", file=sys.stderr)
        return 2
    engine = Engine(ds.kb, ds.config.engine_budget(), kernel=ds.config.coverage_kernel)
    acc = accuracy(engine, theory, ds.pos, ds.neg)
    print(theory_to_prolog(theory, header=f"resumed {state.algo}"))
    print(extra)
    print(f"% seconds={seconds:.1f} training-accuracy={acc:.1f}%")
    _print_certificate(res)
    if parallel_res is not None:
        _print_run_epilogue(parallel_res)
    if args.trace_out:
        if parallel_res is not None and parallel_res.trace:
            _write_trace_out(args.trace_out, parallel_res.trace)
        else:
            print(
                "repro: --trace-out: this resume recorded no activity trace "
                f"(algo {state.algo!r})",
                file=sys.stderr,
            )
    return 0


def _cmd_faults(args) -> int:
    from repro.experiments.faultsweep import render_fault_sweep, run_fault_sweep

    ps = tuple(int(x) for x in args.ps.split(","))
    strategies = tuple(args.strategies.split(","))
    records = run_fault_sweep(
        dataset=args.dataset,
        ps=ps,
        strategies=strategies,
        seed=args.seed,
        scale=args.scale,
        backend=args.backend,
        timeout=args.timeout,
    )
    print(render_fault_sweep(records))
    bad = [r for r in records if not r.parity]
    if bad:
        print(f"repro: {len(bad)} scenario(s) broke theory parity!", file=sys.stderr)
        return 1
    return 0


def _cmd_tables(args) -> int:
    which = {int(x) for x in args.which.split(",")}
    names = tuple(args.datasets.split(","))
    ps = tuple(int(x) for x in args.ps.split(","))
    if 1 in which:
        datasets = [make_dataset(n, seed=args.seed, scale=args.scale) for n in names]
        print(table1_datasets(datasets) + "\n")
    if which - {1}:
        matrix = run_matrix(
            dataset_names=names, ps=ps, k_folds=args.folds, scale=args.scale,
            seed=args.seed, backend=args.backend,
        )
        renderers = {
            2: table2_speedup,
            3: table3_times,
            4: table4_communication,
            5: table5_epochs,
            6: table6_accuracy,
        }
        for n in sorted(which - {1}):
            print(renderers[n](matrix, ps=ps) + "\n")
    return 0


def _cmd_trace(args) -> int:
    from repro.experiments.trace import stage_summary

    ds = make_dataset(args.dataset, seed=args.seed, scale=args.scale)
    res = run_p2mdie(
        ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=args.p, width=args.width,
        seed=args.seed, record_trace=True, max_epochs=1, backend=args.backend,
    )
    print(render_gantt(res.trace, width=100, t_end=res.seconds))
    occ = occupancy(res.trace, res.seconds)
    print("busy fractions:", "  ".join(f"rank{r}={f:.2f}" for r, f in occ.items()))
    stats = stage_summary(res.trace)
    if stats:
        label_w = max(len(s.label) for s in stats)
        print("stage summary:")
        for s in stats:
            print(f"  {s.label:<{label_w}}  n={s.count:<4d} busy={s.total_seconds:.3f}s")
    if args.trace_out:
        _write_trace_out(args.trace_out, res.trace)
    return 0


def _cmd_export(args) -> int:
    ds = make_dataset(args.dataset, seed=args.seed, scale=args.scale)
    save_problem(args.directory, ds.kb, ds.pos, ds.neg, modes=list(ds.modes))
    print(f"wrote {ds.name} ({ds.n_pos}+/{ds.n_neg}-) to {args.directory}/")
    return 0


def _cmd_serve(args) -> int:
    from repro.service.server import serve

    fault_plan = None
    if args.fault_plan:
        from repro.fault.service import ServiceFaultPlan

        try:
            fault_plan = ServiceFaultPlan.load(args.fault_plan)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro: bad --fault-plan: {exc}", file=sys.stderr)
            return 2

    tracer = None
    if args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer(rank=0, sink=args.trace_out)

    def announce(server) -> None:
        auth = "on" if args.auth_token else "off"
        chaos = " CHAOS" if fault_plan is not None else ""
        metrics = (
            f", metrics=:{server.metrics_bound_port}"
            if server.metrics_bound_port is not None
            else ""
        )
        print(
            f"% serving on {args.host}:{server.port} "
            f"(slots={args.slots}, registry={args.registry_dir or 'off'}, "
            f"auth={auth}, query-shards={args.query_shards or 'seq'}{metrics}){chaos}"
        )
        sys.stdout.flush()

    try:
        serve(
            host=args.host, port=args.port, slots=args.slots,
            state_dir=args.state_dir, registry_dir=args.registry_dir,
            chunk_epochs=args.chunk_epochs, ready=announce,
            auth_token=args.auth_token,
            max_jobs_per_client=args.max_jobs_per_client,
            query_shards=args.query_shards,
            max_queue=args.max_queue, max_inflight=args.max_inflight,
            fault_plan=fault_plan,
            metrics_port=args.metrics_port, tracer=tracer,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        print("% interrupted", file=sys.stderr)
    return 0


def _cmd_jobs(args) -> int:
    # Connection errors are mapped to a friendly message *here*, not in
    # main(): elsewhere a ConnectionError subclass is most likely a
    # BrokenPipeError from truncated stdout (`repro trace | head`), which
    # has nothing to do with the service.
    try:
        return _jobs_verbs(args)
    except ConnectionError as exc:
        print(
            f"repro: cannot reach the service ({exc}); is `repro serve` running?",
            file=sys.stderr,
        )
        return 2
    except TimeoutError as exc:
        print(f"repro: service request timed out ({exc})", file=sys.stderr)
        return 2


def _jobs_verbs(args) -> int:
    from repro.service.jobs import JobSpec
    from repro.service.server import ServiceClient

    with ServiceClient(
        host=args.host, port=args.port,
        token=args.token, transport=args.transport, retries=args.retries,
    ) as client:
        if args.jobs_command == "submit":
            spec = JobSpec(
                dataset=args.dataset, algo=args.algo, p=args.p, seed=args.seed,
                scale=args.scale, backend=args.backend, priority=args.priority,
                preemptible=args.preemptible, register_as=args.register_as,
            )
            job = client.submit(spec, idempotency_key=args.idempotency_key)
            print(f"% submitted {job}")
            if args.wait:
                resp = client.wait(job)
                return _print_job_response(resp)
            return 0
        if args.jobs_command == "status":
            if args.job is None:
                resp = client.request({"op": "jobs"})
                if not resp.get("ok"):
                    print(f"repro: {resp.get('error')}", file=sys.stderr)
                    return 1
                for rec in resp["jobs"]:
                    print(
                        f"{rec['job']}  {rec['state']:<10} {rec['spec']['algo']:<12}"
                        f"{rec['spec']['dataset']:<16} epochs={rec['epochs_done']}"
                    )
                return 0
            return _print_job_response(client.request({"op": "status", "job": args.job}))
        if args.jobs_command == "cancel":
            resp = client.request({"op": "cancel", "job": args.job})
            if not resp.get("ok"):
                print(f"repro: {resp.get('error')}", file=sys.stderr)
                return 1
            print(f"% cancelled={resp['cancelled']}")
            return 0 if resp["cancelled"] else 1
        if args.jobs_command == "shutdown":
            resp = client.request({"op": "shutdown"})
            print("% server shutting down")
            return 0 if resp.get("ok") else 1
        if args.jobs_command == "gc":
            resp = client.request({"op": "gc", "target": "jobs", "keep": args.keep})
            if not resp.get("ok"):
                print(f"repro: {resp.get('error')}", file=sys.stderr)
                return 1
            removed = resp["removed"]
            print(f"% removed {len(removed)} terminal job(s)"
                  + (f": {' '.join(removed)}" if removed else ""))
            return 0
        resp = client.wait(args.job, timeout=args.timeout)
        return _print_job_response(resp)


def _print_job_response(resp: dict) -> int:
    if not resp.get("ok"):
        print(f"repro: {resp.get('error')}", file=sys.stderr)
        return 1
    print(f"% {resp['job']}: {resp['state']} (epochs={resp['epochs_done']})")
    if resp.get("error"):
        print(f"% error: {resp['error']}")
    outcome = resp.get("outcome")
    if outcome:
        print(outcome["theory"])
        print(
            f"% epochs={outcome['epochs']} uncovered={outcome['uncovered']} "
            f"seconds={outcome['seconds']} training-accuracy={outcome['train_accuracy']}%"
        )
    return 0 if resp["state"] in ("done", "cancelled") else 1


def _cmd_registry(args) -> int:
    from repro.service.registry import TheoryRegistry

    try:
        return _registry_verbs(args, TheoryRegistry(args.registry_dir))
    except (ValueError, OSError) as exc:
        # RegistryError is a ValueError: unknown names/versions, corrupt
        # artifacts and unreadable dirs are user errors, not tracebacks.
        print(f"repro: {exc}", file=sys.stderr)
        return 2


def _registry_verbs(args, reg) -> int:
    if args.registry_command == "list":
        names = reg.names()
        if not names:
            print("% registry is empty")
            return 0
        for name in names:
            versions = reg.versions(name)
            promoted = reg.promoted_version(name)
            mark = f" (promoted: v{promoted})" if promoted is not None else ""
            print(f"{name}: versions {versions}{mark}")
        return 0
    if args.registry_command == "show":
        record = reg.get(args.name, args.version)
        print(theory_to_prolog(record.to_theory(), header=f"{record.name} v{record.version}"))
        for k, v in record.provenance:
            print(f"% {k}={v}")
        try:
            cert = reg.get_certificate(args.name, args.version)
        except ValueError as exc:  # RegistryError: corrupt certificate
            print(f"% coverage-certificate: unreadable ({exc})")
        else:
            if cert is not None:
                print(f"% coverage-certificate: {cert.summary()}")
        return 0
    if args.registry_command == "diff":
        diff = reg.diff(args.name, args.old, args.new)
        for c in diff["added"]:
            print(f"+ {c}")
        for c in diff["removed"]:
            print(f"- {c}")
        print(
            f"% {len(diff['added'])} added, {len(diff['removed'])} removed, "
            f"{len(diff['unchanged'])} unchanged"
        )
        return 0
    if args.registry_command == "gc":
        removed = reg.gc(args.name, keep=args.keep)
        gone = ", ".join(f"v{v}" for v in removed) if removed else "nothing"
        print(f"% {args.name}: removed {gone} "
              f"(surviving versions: {reg.versions(args.name)})")
        return 0
    version = reg.promote(args.name, args.version)
    print(f"% promoted {args.name} v{version}")
    return 0


def _cmd_query(args) -> int:
    try:
        return _query_verb(args)
    except (ValueError, OSError) as exc:
        # RegistryError / ParseError are ValueErrors; a missing examples
        # file is an OSError — all expected user errors.
        print(f"repro: {exc}", file=sys.stderr)
        return 2


def _query_verb(args) -> int:
    from repro.logic import parse_term
    from repro.service.query import QueryEngine
    from repro.service.registry import TheoryRegistry

    reg = TheoryRegistry(args.registry_dir)
    engine = QueryEngine(registry=reg)
    record = reg.get(args.name, args.version)
    if args.examples is not None:
        fh = sys.stdin if args.examples == "-" else open(args.examples, encoding="utf-8")
        with fh:
            examples = [
                parse_term(line.strip().rstrip("."))
                for line in fh
                if line.strip() and not line.lstrip().startswith("%")
            ]
        result = engine.query(
            args.name, examples, version=args.version, shards=args.shards or None
        )
        for example, hit in zip(examples, result.decisions()):
            print(f"{example}  {'+' if hit else '-'}")
        print(f"% covered {result.n_covered}/{result.n} (ops={result.ops})")
        return 0
    # Default: classify the training dataset and report confusion counts.
    # (dataset_for shares the query engine's dataset cache, so the KB the
    # prepare step builds is not generated a second time here.)
    ds = engine.dataset_for(args.name, args.version)
    shards = args.shards or None
    res_pos = engine.query(args.name, ds.pos, version=args.version, shards=shards)
    res_neg = engine.query(args.name, ds.neg, version=args.version, shards=shards)
    tp, fp = res_pos.n_covered, res_neg.n_covered
    fn, tn = res_pos.n - tp, res_neg.n - fp
    total = res_pos.n + res_neg.n
    print(f"% {record.name} v{record.version} on {ds.name}:")
    print(f"% tp={tp} fn={fn} tn={tn} fp={fp} accuracy={100.0 * (tp + tn) / total:.1f}%")
    return 0


def _cmd_loadgen(args) -> int:
    try:
        return _loadgen_run(args)
    except ConnectionError as exc:
        print(
            f"repro: cannot reach the service ({exc}); is `repro serve` running?",
            file=sys.stderr,
        )
        return 2


def _loadgen_run(args) -> int:
    import itertools

    from repro.experiments.loadgen import run_loadgen
    from repro.service.server import ServiceClient

    if args.batch < 1:
        print("repro: --batch must be >= 1", file=sys.stderr)
        return 2
    if args.chaos is not None:
        return _loadgen_chaos(args)
    if args.theory is None:
        print("repro: loadgen needs a theory name (or --chaos)", file=sys.stderr)
        return 2
    ds = make_dataset(args.dataset, seed=args.seed, scale=args.scale)
    pool = itertools.cycle(str(e) for e in (*ds.pos, *ds.neg))
    examples = [next(pool) for _ in range(args.batch)]

    def make_client():
        return ServiceClient(
            host=args.host, port=args.port,
            token=args.token, transport=args.transport, retries=args.retries,
        )

    report = run_loadgen(
        make_client, args.theory, examples,
        n_requests=args.requests, rate=args.rate, pattern=args.pattern,
        seed=args.seed, shards=args.shards or None, stream=args.stream,
        concurrency=args.concurrency, deadline_ms=args.deadline_ms,
    )
    if args.bench_out:
        with open(args.bench_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    print(
        f"% {report['pattern']} x{report['n_requests']} @ {report['rate']}/s "
        f"(batch={report['batch']}, shards={report['shards'] or 'server'}, "
        f"stream={report['stream']}): achieved {report['achieved_rps']}/s "
        f"in {report['wall_s']}s, errors={report['errors']}"
    )
    for label, key in (("latency", "latency"), ("first-frame", "first_frame")):
        stats = report.get(key)
        if stats:
            print(
                f"%   {label}: p50={stats['p50_ms']}ms p95={stats['p95_ms']}ms "
                f"p99={stats['p99_ms']}ms max={stats['max_ms']}ms"
            )
    for sample in report["error_samples"]:
        print(f"%   error: {sample}", file=sys.stderr)
    return 0 if report["errors"] == 0 else 1


def _loadgen_chaos(args) -> int:
    from repro.experiments.chaos import chaos_passed, chaos_report_lines, run_chaos
    from repro.fault.service import ServiceFaultPlan

    try:
        plan = ServiceFaultPlan.load(args.chaos)
    except (OSError, ValueError, KeyError) as exc:
        print(f"repro: bad --chaos plan: {exc}", file=sys.stderr)
        return 2
    if args.stream:
        print("repro: --chaos drives plain queries; drop --stream", file=sys.stderr)
        return 2
    report = run_chaos(
        plan,
        dataset=args.dataset, seed=args.seed, scale=args.scale,
        batch=args.batch, requests=args.requests, rate=args.rate,
        pattern=args.pattern, shards=args.shards or 2,
        concurrency=args.concurrency, retries=args.retries or 5,
    )
    for line in chaos_report_lines(report):
        print(line)
    if args.bench_out:
        with open(args.bench_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"% wrote chaos report to {args.bench_out}")
    return 0 if chaos_passed(report) else 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "learn": _cmd_learn,
        "resume": _cmd_resume,
        "faults": _cmd_faults,
        "tables": _cmd_tables,
        "trace": _cmd_trace,
        "export": _cmd_export,
        "serve": _cmd_serve,
        "jobs": _cmd_jobs,
        "registry": _cmd_registry,
        "query": _cmd_query,
        "loadgen": _cmd_loadgen,
    }[args.command]
    try:
        if getattr(args, "profile", None):
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                return handler(args)
            finally:
                profiler.disable()
                profiler.dump_stats(args.profile)
                print(f"% wrote cProfile stats to {args.profile}", file=sys.stderr)
        return handler(args)
    except BackendUnavailableError as exc:
        print(f"repro: backend unavailable: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

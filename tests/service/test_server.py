"""The JSON-lines front door, and the service-level acceptance scenario:
the server sustains ≥ 4 concurrent learning jobs on the *local* backend
while answering batched coverage queries, with query results
bit-identical to one-shot evaluation and job results bit-identical to
direct runs."""

import json
import threading

import pytest

from repro.ilp.coverage import coverage_eval
from repro.logic.engine import Engine
from repro.service import JobSpec, Service
from repro.service.server import ServiceClient, serve


@pytest.fixture
def service(tmp_path):
    svc = Service(
        slots=2,
        state_dir=str(tmp_path / "jobs"),
        registry_dir=str(tmp_path / "registry"),
    )
    yield svc
    svc.close()


def start_server(tmp_path, slots=2, **kwargs):
    """Run serve() on an ephemeral port; returns (port, thread)."""
    ready = threading.Event()
    box = {}

    def on_ready(server):
        box["server"] = server
        ready.set()

    thread = threading.Thread(
        target=serve,
        kwargs=dict(
            port=0,
            slots=slots,
            state_dir=str(tmp_path / "jobs"),
            registry_dir=str(tmp_path / "registry"),
            ready=on_ready,
            **kwargs,
        ),
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=10), "server did not come up"
    return box["server"].port, thread


class TestServiceHandler:
    """Transport-free protocol tests against Service.handle."""

    def test_ping(self, service):
        assert service.handle({"op": "ping"}) == {"ok": True, "pong": True}

    def test_unknown_op_and_bad_spec(self, service):
        assert not service.handle({"op": "frobnicate"})["ok"]
        assert not service.handle({"op": 7})["ok"]
        resp = service.handle({"op": "submit", "spec": {"dataset": "nope"}})
        assert not resp["ok"] and "nope" in resp["error"]

    def test_submit_wait_status_roundtrip(self, service):
        resp = service.handle(
            {"op": "submit", "spec": {"dataset": "trains", "algo": "mdie"}}
        )
        assert resp["ok"]
        job = resp["job"]
        final = service.handle({"op": "wait", "job": job, "timeout": 120})
        assert final["ok"] and final["state"] == "done"
        assert final["outcome"]["rules"] >= 1
        listing = service.handle({"op": "jobs"})
        assert [j["job"] for j in listing["jobs"]] == [job]

    def test_registry_and_query_ops(self, service, trains):
        service.handle(
            {
                "op": "submit",
                "spec": {"dataset": "trains", "algo": "mdie", "register_as": "t"},
            }
        )
        service.scheduler.wait_all(timeout=120)
        listing = service.handle({"op": "registry", "action": "list"})
        assert listing["theories"][0]["name"] == "t"
        shown = service.handle({"op": "registry", "action": "show", "name": "t"})
        assert shown["record"]["version"] == 1
        promoted = service.handle(
            {"op": "registry", "action": "promote", "name": "t", "version": 1}
        )
        assert promoted["promoted"] == 1
        result = service.handle(
            {"op": "query", "theory": "t", "examples": [str(e) for e in trains.pos]}
        )
        assert result["ok"] and result["n_covered"] == len(trains.pos)
        stats = service.handle({"op": "stats"})
        assert stats["jobs"] == {"done": 1}
        assert stats["query"]["batches"] == 1

    def test_query_parse_error_is_contained(self, service):
        resp = service.handle({"op": "query", "theory": "t", "examples": ["(("]})
        assert not resp["ok"]


class TestSocketTransport:
    def test_client_round_trip_over_socket(self, tmp_path, trains):
        port, thread = start_server(tmp_path)
        with ServiceClient(port=port) as client:
            assert client.request({"op": "ping"})["pong"]
            job = client.submit(
                JobSpec(dataset="trains", algo="p2mdie", p=2, register_as="t")
            )
            final = client.wait(job, timeout=120)
            assert final["state"] == "done"
            result = client.query("t", [str(e) for e in trains.pos])
            assert result["n_covered"] == len(trains.pos)
            client.request({"op": "shutdown"})
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_malformed_json_line(self, tmp_path):
        import socket

        port, thread = start_server(tmp_path)
        with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
            fh = sock.makefile("rwb")
            fh.write(b"this is not json\n")
            fh.flush()
            resp = json.loads(fh.readline())
            assert not resp["ok"] and "bad request" in resp["error"]
            fh.write(b'{"op": "shutdown"}\n')
            fh.flush()
            fh.readline()
        thread.join(timeout=10)


class TestAuthQuotaAndNegotiation:
    """Token auth, per-client job quotas, and transport negotiation."""

    def test_unauthenticated_op_rejected_ping_exempt(self, tmp_path):
        from repro.service.server import ClientContext, Service

        svc = Service(slots=1, auth_token="sesame")
        try:
            ctx = ClientContext(client_id="c1")
            resp = svc.handle({"op": "jobs"}, ctx)
            assert not resp["ok"]
            assert 'authentication required: send {"op": "hello"' in resp["error"]
            assert svc.handle({"op": "ping"}, ctx)["pong"]
        finally:
            svc.close()

    def test_bad_token_rejected_good_token_grants(self, tmp_path):
        from repro.service.server import ClientContext, Service

        svc = Service(slots=1, auth_token="sesame")
        try:
            ctx = ClientContext(client_id="c1")
            bad = svc.handle({"op": "hello", "token": "guess"}, ctx)
            assert not bad["ok"] and "token" in bad["error"]
            assert not ctx.authenticated
            good = svc.handle({"op": "hello", "token": "sesame"}, ctx)
            assert good["ok"] and good["auth"] and ctx.authenticated
            assert svc.handle({"op": "jobs"}, ctx)["ok"]
        finally:
            svc.close()

    def test_in_process_callers_are_trusted(self):
        from repro.service.server import Service

        svc = Service(slots=1, auth_token="sesame")
        try:
            assert svc.handle({"op": "jobs"})["ok"]
        finally:
            svc.close()

    def test_job_quota_enforced_then_freed(self, tmp_path):
        from repro.service.server import ClientContext, Service

        svc = Service(
            slots=1, state_dir=str(tmp_path / "jobs"), max_jobs_per_client=1
        )
        try:
            ctx = ClientContext(client_id="greedy", authenticated=True)
            spec = {"dataset": "trains", "algo": "mdie"}
            first = svc.handle({"op": "submit", "spec": spec}, ctx)
            assert first["ok"]
            second = svc.handle({"op": "submit", "spec": spec}, ctx)
            assert not second["ok"] and "quota exceeded" in second["error"]
            # Another client has its own allowance.
            other = ClientContext(client_id="modest", authenticated=True)
            assert svc.handle({"op": "submit", "spec": spec}, other)["ok"]
            # The quota is on *active* jobs: it frees once the job ends.
            done = svc.handle(
                {"op": "wait", "job": first["job"], "timeout": 120}, ctx
            )
            assert done["state"] == "done"
            assert svc.handle({"op": "submit", "spec": spec}, ctx)["ok"]
        finally:
            svc.close()

    def test_auth_and_wire_negotiation_over_socket(self, tmp_path):
        port, thread = start_server(tmp_path, auth_token="sesame")
        # No token: everything but ping is shut.
        with ServiceClient(port=port) as anon:
            assert anon.request({"op": "ping"})["pong"]
            resp = anon.request({"op": "jobs"})
            assert not resp["ok"] and "authentication required" in resp["error"]
        with pytest.raises(RuntimeError, match="token"):
            ServiceClient(port=port, token="guess")
        # Token + wire: the hello authenticates and switches framing.
        with ServiceClient(port=port, token="sesame", transport="wire") as client:
            assert client.transport == "wire"
            assert client.request({"op": "jobs"})["ok"]
            client.request({"op": "shutdown"})
        thread.join(timeout=10)

    def test_client_falls_back_to_json_on_legacy_server(self, tmp_path, monkeypatch):
        from repro.service.server import Service

        # A server that predates the hello op answers "unknown op"; the
        # client must quietly stay on JSON-lines instead of erroring.
        monkeypatch.delattr(Service, "_op_hello")
        port, thread = start_server(tmp_path)
        with ServiceClient(port=port, transport="wire") as client:
            assert client.transport == "json"
            assert client.request({"op": "ping"})["pong"]
            client.request({"op": "shutdown"})
        thread.join(timeout=10)


class TestAcceptance:
    """ISSUE 5 acceptance: ≥ 4 concurrent local-backend jobs + live queries."""

    def test_four_concurrent_local_jobs_with_batched_queries(self, tmp_path, trains):
        seeds = (0, 1, 2, 3)
        port, thread = start_server(tmp_path, slots=4)
        with ServiceClient(port=port) as client:
            # Register a theory to serve queries from while jobs run.
            seed_job = client.submit(
                JobSpec(dataset="trains", algo="mdie", register_as="serving")
            )
            assert client.wait(seed_job, timeout=120)["state"] == "done"

            # 4 learning jobs on the local backend (real OS processes).
            jobs = [
                client.submit(
                    JobSpec(dataset="trains", algo="p2mdie", p=2, seed=s, backend="local")
                )
                for s in seeds
            ]
            # All four must occupy slots concurrently (slots=4, queue empty).
            stats = client.request({"op": "stats"})
            assert stats["ok"]

            # Interleave query batches from several client threads while
            # the jobs run.
            examples = [str(e) for e in trains.pos + trains.neg]
            query_errors = []
            results = []

            def hammer():
                try:
                    with ServiceClient(port=port) as qc:
                        for _ in range(5):
                            results.append(qc.query("serving", examples))
                except Exception as exc:  # noqa: BLE001 - surfaced via assert
                    query_errors.append(exc)

            hammers = [threading.Thread(target=hammer) for _ in range(2)]
            for h in hammers:
                h.start()
            finals = {job: client.wait(job, timeout=300) for job in jobs}
            for h in hammers:
                h.join(timeout=120)

            assert not query_errors
            assert all(f["state"] == "done" for f in finals.values())

            # Query parity: every batch identical, and identical to the
            # one-shot coverage evaluation of the registered theory.
            reg_rec = client.request(
                {"op": "registry", "action": "show", "name": "serving"}
            )
            assert reg_rec["ok"]
            service_side = results[0]
            assert all(r["covered"] == service_side["covered"] for r in results)
            client.request({"op": "shutdown"})
        thread.join(timeout=10)

        # Job parity: each local-backend job's theory is bit-identical to
        # a direct run of the same spec (on sim — cross-backend theory
        # parity is pinned by tests/backend/test_parity.py).  Note the
        # job seed drives the dataset generator too, so the baseline must
        # come from the same spec, not from the shared seed-0 fixture.
        from repro.logic.io import theory_to_prolog
        from repro.service import run_job

        for s in seeds:
            direct = run_job(JobSpec(dataset="trains", algo="p2mdie", p=2, seed=s))
            outcome = finals[jobs[s]]["outcome"]
            assert outcome["theory"] == theory_to_prolog(direct.theory)
            assert outcome["epochs"] == direct.epochs

        # Query parity against one-shot evaluation, computed locally from
        # the same registered theory.
        from repro.logic import parse_program

        examples_t = trains.pos + trains.neg
        text = "\n".join(
            line
            for line in reg_rec["record"]["theory"].splitlines()
            if not line.startswith("%")
        )
        expected_bits = 0
        engine = Engine(
            trains.kb, trains.config.engine_budget(), kernel=trains.config.coverage_kernel
        )
        for clause in parse_program(text):
            bits, _ = coverage_eval(engine, clause, examples_t)
            expected_bits |= bits
        expected = [bool((expected_bits >> i) & 1) for i in range(len(examples_t))]
        assert service_side["covered"] == expected

"""Tests for the pluggable learn_rule search strategies."""

import pytest

from repro.ilp.bottom import build_bottom
from repro.ilp.config import ILPConfig
from repro.ilp.search import learn_rule
from repro.ilp.store import ExampleStore
from repro.logic.parser import parse_clause

STRATEGIES = ("bfs", "best_first", "beam")


@pytest.fixture
def bottom(family_engine, family_modes, family_config, family_pos):
    return build_bottom(family_pos[0], family_engine, family_modes, family_config)


@pytest.fixture
def store(family_pos, family_neg):
    return ExampleStore(family_pos, family_neg)


TARGET = parse_clause("daughter(A, B) :- parent(B, A), female(A).")


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestAllStrategies:
    def test_finds_target(self, family_engine, bottom, store, family_config, strategy):
        cfg = family_config.replace(search_strategy=strategy)
        res = learn_rule(family_engine, bottom, store, cfg, width=None)
        assert any(er.clause == TARGET for er in res.good), strategy

    def test_respects_node_budget(self, family_engine, bottom, store, family_config, strategy):
        cfg = family_config.replace(search_strategy=strategy, max_nodes=7)
        res = learn_rule(family_engine, bottom, store, cfg, width=None)
        assert res.nodes_generated <= 7
        assert res.exhausted

    def test_good_rules_valid(self, family_engine, bottom, store, family_config, strategy):
        cfg = family_config.replace(search_strategy=strategy)
        res = learn_rule(family_engine, bottom, store, cfg, width=None)
        for er in res.good:
            assert er.stats.pos >= cfg.min_pos
            assert er.stats.neg <= cfg.noise

    def test_deterministic(self, family_engine, bottom, store, family_config, strategy):
        cfg = family_config.replace(search_strategy=strategy)
        a = learn_rule(family_engine, bottom, store, cfg, width=None)
        b = learn_rule(family_engine, bottom, store, cfg, width=None)
        assert [e.clause for e in a.good] == [e.clause for e in b.good]


class TestStrategyDifferences:
    def test_best_first_reaches_target_in_fewer_nodes(self, family_engine, bottom, store, family_config):
        """Best-first should find the target rule at least as fast as BFS
        on this problem (the good prefix scores above siblings)."""

        def nodes_to_target(strategy):
            for budget in (5, 10, 20, 40, 80, 160, 320, 640):
                cfg = family_config.replace(search_strategy=strategy, max_nodes=budget)
                res = learn_rule(family_engine, bottom, store, cfg, width=None)
                if any(er.clause == TARGET for er in res.good):
                    return budget
            return 10_000

        assert nodes_to_target("best_first") <= nodes_to_target("bfs")

    def test_beam_width_one_narrows_search(self, family_engine, bottom, store, family_config):
        narrow = family_config.replace(search_strategy="beam", beam_width=1)
        wide = family_config.replace(search_strategy="beam", beam_width=10)
        rn = learn_rule(family_engine, bottom, store, narrow, width=None)
        rw = learn_rule(family_engine, bottom, store, wide, width=None)
        assert rn.nodes_generated <= rw.nodes_generated

    def test_beam_keeps_node_that_trips_budget(self, monkeypatch):
        """Regression: the node evaluated in the same iteration the node
        budget trips used to be dropped before scoring, silently losing a
        beam survivor."""
        from types import SimpleNamespace

        from repro.ilp import search as search_mod
        from repro.ilp.search import _SearchState, _search_beam

        cfg = ILPConfig(min_pos=1, beam_width=5)
        state = _SearchState(good={}, seen=set())

        def evaluate(rule):
            state.nodes += 1
            if state.nodes >= 2:  # budget trips while evaluating "r2"
                state.exhausted = True
            return SimpleNamespace(pos=5), float(state.nodes)

        refined = []
        monkeypatch.setattr(
            search_mod, "refinements", lambda rule, bottom, config: refined.append(rule) or []
        )
        _search_beam(["r1", "r2", "r3"], None, cfg, evaluate, state)
        assert "r2" in refined, "budget-tripping node was not kept as a survivor"
        assert "r3" not in refined  # never evaluated: the budget had tripped

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError, match="search_strategy"):
            ILPConfig(search_strategy="dfs")

    def test_invalid_beam_width(self):
        with pytest.raises(ValueError, match="beam_width"):
            ILPConfig(beam_width=0)


class TestMdieWithStrategies:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_covering_loop_works(self, family_kb, family_pos, family_neg, family_modes, family_config, strategy):
        from repro.ilp.mdie import mdie

        cfg = family_config.replace(search_strategy=strategy)
        res = mdie(family_kb, family_pos, family_neg, family_modes, cfg, seed=1)
        assert res.uncovered == 0

"""Golden parity for the search-layer overhaul (PR 3).

The hash-consed terms, fingerprint-keyed caches, variant-deduplicating
rule bags, saturation cache and wire codec are pure optimisations: every
learned theory, per-epoch log and coverage bitset must be bit-identical
to the PR 2 kernel's.  Sequential parity across the flag matrix runs
in-process; interning (a process-global import-time switch) is checked
against a ``REPRO_INTERN=0`` subprocess.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.datasets import make_dataset
from repro.ilp.mdie import mdie
from repro.parallel import run_coverage_parallel, run_independent, run_p2mdie

DATASETS = [
    ("trains", dict(seed=0, scale="small")),
    ("krki", dict(seed=0, n_pos=40, n_neg=40)),
]


def run_log(res):
    return [(str(s), str(r), c) for s, r, c, _ in res.log]


class TestSequentialFlagParity:
    """clause_fingerprints / saturation_cache off vs on: identical results."""

    @pytest.mark.parametrize("name,kw", DATASETS)
    @pytest.mark.parametrize(
        "overrides",
        [
            dict(clause_fingerprints=True, saturation_cache=True),
            dict(clause_fingerprints=True, saturation_cache=False),
            dict(clause_fingerprints=False, saturation_cache=True),
        ],
        ids=["all-on", "fp-only", "satcache-only"],
    )
    def test_vs_all_off(self, name, kw, overrides):
        ds = make_dataset(name, **kw)
        base = ds.config.replace(clause_fingerprints=False, saturation_cache=False)
        a = mdie(ds.kb, ds.pos, ds.neg, ds.modes, base, seed=0)
        b = mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config.replace(**overrides), seed=0)
        assert sorted(str(c) for c in a.theory) == sorted(str(c) for c in b.theory)
        assert a.epochs == b.epochs and a.uncovered == b.uncovered
        assert run_log(a) == run_log(b)

    @pytest.mark.parametrize("strategy", ["best_first", "beam"])
    def test_other_strategies(self, strategy):
        ds = make_dataset("krki", seed=0, n_pos=30, n_neg=30)
        base = ds.config.replace(
            search_strategy=strategy, clause_fingerprints=False, saturation_cache=False
        )
        new = ds.config.replace(search_strategy=strategy)
        a = mdie(ds.kb, ds.pos, ds.neg, ds.modes, base, seed=0)
        b = mdie(ds.kb, ds.pos, ds.neg, ds.modes, new, seed=0)
        assert sorted(str(c) for c in a.theory) == sorted(str(c) for c in b.theory)
        assert run_log(a) == run_log(b)


class TestParallelFlagParity:
    def theory_of(self, res):
        return sorted(str(c) for c in res.theory)

    @pytest.mark.parametrize("name,kw", DATASETS)
    def test_p2mdie(self, name, kw):
        ds = make_dataset(name, **kw)
        base = ds.config.replace(
            clause_fingerprints=False, saturation_cache=False, wire_codec=False
        )
        a = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, base, p=3, seed=0)
        b = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=3, seed=0)
        assert self.theory_of(a) == self.theory_of(b)
        assert a.epochs == b.epochs and a.uncovered == b.uncovered
        assert [(l.epoch, list(map(str, l.accepted)), l.pos_covered) for l in a.epoch_logs] == [
            (l.epoch, list(map(str, l.accepted)), l.pos_covered) for l in b.epoch_logs
        ]

    def test_independent_and_covpar(self):
        ds = make_dataset("trains", seed=0, scale="small")
        base = ds.config.replace(
            clause_fingerprints=False, saturation_cache=False, wire_codec=False
        )
        a = run_independent(ds.kb, ds.pos, ds.neg, ds.modes, base, p=2, seed=0)
        b = run_independent(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=2, seed=0)
        assert self.theory_of(a) == self.theory_of(b)
        c = run_coverage_parallel(ds.kb, ds.pos, ds.neg, ds.modes, base, p=2, seed=0)
        d = run_coverage_parallel(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=2, seed=0)
        assert self.theory_of(c) == self.theory_of(d)


def test_interning_parity_subprocess():
    """A REPRO_INTERN=0 process learns the identical theory and log."""
    prog = (
        "import json\n"
        "from repro.datasets import make_dataset\n"
        "from repro.ilp.mdie import mdie\n"
        "ds = make_dataset('trains', seed=0, scale='small')\n"
        "res = mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=0)\n"
        "print(json.dumps({'theory': sorted(str(c) for c in res.theory),\n"
        "                  'epochs': res.epochs, 'uncovered': res.uncovered,\n"
        "                  'log': [(str(s), str(r), c) for s, r, c, _ in res.log]}))\n"
    )
    results = {}
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    for intern in ("0", "1"):
        env = dict(os.environ, REPRO_INTERN=intern)
        env["PYTHONPATH"] = os.path.join(root, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        out = subprocess.run(
            [sys.executable, "-c", prog], capture_output=True, text=True, env=env, cwd=root
        )
        assert out.returncode == 0, out.stderr
        results[intern] = json.loads(out.stdout)
    assert results["0"] == results["1"]

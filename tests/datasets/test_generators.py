"""Tests for the synthetic dataset generators (Table 1 substitutes)."""

import pytest

from repro.datasets import DATASETS, make_dataset
from repro.ilp.bottom import build_bottom
from repro.logic.engine import Engine

ALL = ("trains", "carcinogenesis", "mesh", "pyrimidines")
PAPER_SIZES = {
    "carcinogenesis": (162, 136),
    "mesh": (2840, 278),
    "pyrimidines": (848, 764),
}


class TestRegistry:
    def test_all_registered(self):
        assert set(ALL) <= set(DATASETS)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            make_dataset("nope")

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="scale"):
            make_dataset("trains", scale="huge")


@pytest.mark.parametrize("name", ALL)
class TestSmallScale:
    def test_nonempty_and_consistent(self, name):
        ds = make_dataset(name, seed=3, scale="small")
        assert ds.n_pos > 0 and ds.n_neg > 0
        assert ds.kb.n_facts > 0
        assert all(e.functor == ds.pos[0].functor for e in ds.pos + ds.neg)

    def test_deterministic(self, name):
        a = make_dataset(name, seed=11, scale="small")
        b = make_dataset(name, seed=11, scale="small")
        assert [str(e) for e in a.pos] == [str(e) for e in b.pos]
        assert a.kb.stats() == b.kb.stats()

    def test_seed_changes_data(self, name):
        a = make_dataset(name, seed=1, scale="small")
        b = make_dataset(name, seed=2, scale="small")
        # the generated relational structure differs across seeds
        facts_a = {str(f) for ind in a.kb.predicates() for f in a.kb.facts_for(ind)}
        facts_b = {str(f) for ind in b.kb.predicates() for f in b.kb.facts_for(ind)}
        assert facts_a != facts_b

    def test_modes_validate(self, name):
        make_dataset(name, seed=3, scale="small").modes.validate()

    def test_examples_disjoint(self, name):
        ds = make_dataset(name, seed=3, scale="small")
        assert not set(map(str, ds.pos)) & set(map(str, ds.neg))

    def test_every_positive_saturates(self, name):
        ds = make_dataset(name, seed=3, scale="small")
        eng = Engine(ds.kb, ds.config.engine_budget())
        for e in ds.pos[:5]:
            b = build_bottom(e, eng, ds.modes, ds.config)
            assert len(b) > 0

    def test_table1_row(self, name):
        ds = make_dataset(name, seed=3, scale="small")
        row = ds.table1_row()
        assert row == (name, ds.n_pos, ds.n_neg)


@pytest.mark.parametrize("name", sorted(PAPER_SIZES))
def test_paper_scale_cardinalities(name):
    """Paper scale must match Table 1 exactly."""
    ds = make_dataset(name, seed=0, scale="paper")
    assert (ds.n_pos, ds.n_neg) == PAPER_SIZES[name]


class TestTrainsSpecifics:
    def test_target_learnable_structure(self):
        ds = make_dataset("trains", seed=3, scale="small")
        # an eastbound train must exist with a short closed car
        eng = Engine(ds.kb, ds.config.engine_budget())
        from repro.logic.parser import parse_term

        t = ds.pos[0].args[0]
        assert eng.prove(parse_term(f"has_car({t}, C), short(C), closed(C)"))

    def test_custom_n_trains(self):
        ds = make_dataset("trains", seed=3, n_trains=10)
        assert ds.n_pos + ds.n_neg == 10


class TestCarcinogenesisSpecifics:
    def test_bonds_symmetric(self):
        ds = make_dataset("carcinogenesis", seed=3, scale="small")
        store = ds.kb.facts_for(("bond", 3))
        facts = set(map(str, store))
        for f in store:
            a, b, t = f.args
            from repro.logic.terms import Struct

            assert str(Struct("bond", (b, a, t))) in facts

    def test_custom_quotas(self):
        ds = make_dataset("carcinogenesis", seed=3, n_pos=10, n_neg=8)
        assert (ds.n_pos, ds.n_neg) == (10, 8)


class TestMeshSpecifics:
    def test_neg_classes_differ_from_pos(self):
        ds = make_dataset("mesh", seed=3, scale="small")
        true_class = {str(e.args[0]): e.args[1] for e in ds.pos}
        for e in ds.neg:
            edge, cls = str(e.args[0]), e.args[1]
            if edge in true_class:
                assert cls != true_class[edge]

    def test_neighbor_symmetric(self):
        ds = make_dataset("mesh", seed=3, scale="small")
        facts = set(map(str, ds.kb.facts_for(("neighbor", 2))))
        from repro.logic.terms import Struct

        for f in ds.kb.facts_for(("neighbor", 2)):
            a, b = f.args
            assert str(Struct("neighbor", (b, a))) in facts


class TestPyrimidinesSpecifics:
    def test_ranking_antisymmetric(self):
        ds = make_dataset("pyrimidines", seed=3, scale="small")
        pos = set(map(str, ds.pos))
        from repro.logic.terms import Struct

        for e in ds.pos:
            a, b = e.args
            assert str(Struct("great", (b, a))) not in pos

    def test_comparative_relations_irreflexive(self):
        ds = make_dataset("pyrimidines", seed=3, scale="small")
        for f in ds.kb.facts_for(("polar_gt", 2)):
            assert f.args[0] != f.args[1]

"""Tests for cross-validation and the paired t-test machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.crossval import kfold
from repro.experiments.stats import mean_std, paired_ttest
from repro.logic.terms import atom


def _ex(n, pred="p"):
    return [atom(pred, i) for i in range(n)]


class TestKfold:
    def test_counts(self):
        folds = list(kfold(_ex(20), _ex(15, "n"), k=5, seed=0))
        assert len(folds) == 5
        for f in folds:
            assert len(f.train_pos) + len(f.test_pos) == 20
            assert len(f.train_neg) + len(f.test_neg) == 15

    def test_test_sets_partition_data(self):
        folds = list(kfold(_ex(20), _ex(15, "n"), k=5, seed=0))
        all_test_pos = [str(e) for f in folds for e in f.test_pos]
        assert sorted(all_test_pos) == sorted(str(e) for e in _ex(20))
        assert len(all_test_pos) == len(set(all_test_pos))

    def test_train_test_disjoint(self):
        for f in kfold(_ex(20), _ex(15, "n"), k=5, seed=0):
            assert not set(map(str, f.train_pos)) & set(map(str, f.test_pos))
            assert not set(map(str, f.train_neg)) & set(map(str, f.test_neg))

    def test_stratified_balance(self):
        folds = list(kfold(_ex(20), _ex(10, "n"), k=5, seed=0))
        for f in folds:
            assert len(f.test_pos) == 4
            assert len(f.test_neg) == 2

    def test_deterministic(self):
        a = [f.test_pos for f in kfold(_ex(20), _ex(10, "n"), k=5, seed=7)]
        b = [f.test_pos for f in kfold(_ex(20), _ex(10, "n"), k=5, seed=7)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            list(kfold(_ex(20), _ex(10, "n"), k=1))
        with pytest.raises(ValueError):
            list(kfold(_ex(3), _ex(10, "n"), k=5))

    @given(st.integers(5, 40), st.integers(5, 40), st.integers(2, 5), st.integers(0, 50))
    @settings(max_examples=50, deadline=None)
    def test_partition_property(self, npos, nneg, k, seed):
        folds = list(kfold(_ex(npos), _ex(nneg, "n"), k=k, seed=seed))
        sizes = [len(f.test_pos) for f in folds]
        assert sum(sizes) == npos
        assert max(sizes) - min(sizes) <= 1


class TestMeanStd:
    def test_basic(self):
        m, s = mean_std([2.0, 4.0, 4.0, 4.0, 6.0])
        assert m == 4.0
        assert s == pytest.approx(1.4142, abs=1e-3)

    def test_single_value(self):
        assert mean_std([5.0]) == (5.0, 0.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_std([])


class TestPairedTtest:
    def test_clear_difference_significant(self):
        r = paired_ttest([60, 61, 59, 60, 61], [70, 71, 69, 70, 71])
        assert r.significant and r.improved
        assert r.star == "*"

    def test_identical_not_significant(self):
        r = paired_ttest([60.0] * 5, [60.0] * 5)
        assert not r.significant
        assert r.star == ""

    def test_noise_not_significant(self):
        r = paired_ttest([60, 62, 58, 61, 59], [61, 60, 59, 62, 58])
        assert not r.significant

    def test_decline_not_improved(self):
        r = paired_ttest([70, 71, 69, 70, 71], [60, 61, 59, 60, 61])
        assert r.significant and not r.improved

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_ttest([1.0], [2.0])
        with pytest.raises(ValueError):
            paired_ttest([1.0, 2.0], [2.0])

    def test_confidence_threshold(self):
        # borderline case: strict confidence flips significance
        a = [60, 61, 59, 60, 61]
        b = [61, 62, 60, 61, 63]
        loose = paired_ttest(a, b, confidence=0.5)
        strict = paired_ttest(a, b, confidence=0.9999)
        assert loose.significant and not strict.significant

"""Unification and substitutions.

A substitution is a plain ``dict[Var, Term]``.  :func:`walk` resolves
binding chains; :func:`unify` is the standard sound unification (with an
optional occurs check, off by default as in most Prologs, since ILP
saturation/refinement never builds cyclic terms).

Two flavours are provided:

* functional: :func:`unify` / :func:`match` return a *new* dict, convenient
  for library users and tests;
* trail-based: :func:`unify_trail` mutates a shared dict and records
  bindings on a trail list so the engine can backtrack in O(bindings)
  (see :mod:`repro.logic.engine`).
"""

from __future__ import annotations

from typing import MutableMapping, Optional

from repro.logic.terms import Const, Struct, Term, Var, fresh_var

__all__ = [
    "Subst",
    "walk",
    "resolve",
    "unify",
    "unify_trail",
    "undo_trail",
    "match",
    "rename_apart",
    "occurs_in",
]

Subst = MutableMapping[Var, Term]


def walk(term: Term, subst: Subst) -> Term:
    """Follow variable bindings until a non-var or unbound var is reached.

    A self-binding ``X -> X`` (which one-way :func:`match` may record as an
    identity mapping) is treated as terminal rather than chased forever.
    """
    while isinstance(term, Var):
        nxt = subst.get(term)
        if nxt is None or nxt == term:
            return term
        term = nxt
    return term


def resolve(term: Term, subst: Subst) -> Term:
    """Apply ``subst`` deeply to ``term`` (a.k.a. ``instantiate``).

    Identity-preserving: when nothing in ``term`` is affected by the
    substitution (the common case for ground goals on the engine's hot
    path), the original object is returned instead of an equal copy,
    skipping re-allocation and re-hashing.
    """
    term = walk(term, subst)
    if isinstance(term, Struct):
        if term.ground:
            # Ground terms cannot be affected by any substitution.
            return term
        args = term.args
        new_args = None
        for i, a in enumerate(args):
            r = resolve(a, subst)
            if r is not a:
                if new_args is None:
                    new_args = list(args)
                new_args[i] = r
        if new_args is None:
            return term
        return Struct(term.functor, tuple(new_args))
    return term


def occurs_in(var: Var, term: Term, subst: Subst) -> bool:
    """True iff ``var`` occurs in ``term`` under ``subst``."""
    stack = [term]
    while stack:
        t = walk(stack.pop(), subst)
        if isinstance(t, Var):
            if t == var:
                return True
        elif isinstance(t, Struct) and not t.ground:
            stack.extend(t.args)
    return False


def unify(t1: Term, t2: Term, subst: Optional[Subst] = None, occurs_check: bool = False) -> Optional[dict]:
    """Unify two terms; return an extended copy of ``subst`` or ``None``.

    >>> from repro.logic.terms import atom
    >>> s = unify(atom("p", "X", "a"), atom("p", "b", "Y"))
    >>> sorted((str(k), str(v)) for k, v in s.items())
    [('X', 'b'), ('Y', 'a')]
    """
    out: dict = dict(subst) if subst else {}
    trail: list = []
    if unify_trail(t1, t2, out, trail, occurs_check=occurs_check):
        return out
    return None


def unify_trail(t1: Term, t2: Term, subst: Subst, trail: list, occurs_check: bool = False) -> bool:
    """Destructive unification recording new bindings on ``trail``.

    On failure the caller must invoke :func:`undo_trail` with the trail
    length captured before the call (the engine does this on backtracking).
    This function leaves ``subst`` consistent either way — it only *adds*
    bindings.
    """
    stack = [(t1, t2)]
    while stack:
        a, b = stack.pop()
        a = walk(a, subst)
        b = walk(b, subst)
        if a is b:
            continue
        if isinstance(a, Var):
            if isinstance(b, Var) and b == a:
                continue
            if occurs_check and occurs_in(a, b, subst):
                return False
            subst[a] = b
            trail.append(a)
        elif isinstance(b, Var):
            if occurs_check and occurs_in(b, a, subst):
                return False
            subst[b] = a
            trail.append(b)
        elif isinstance(a, Const) and isinstance(b, Const):
            if a != b:
                return False
        elif isinstance(a, Struct) and isinstance(b, Struct):
            if a.interned and b.interned:
                # Both canonical ground terms and not identical (the
                # ``a is b`` fast path above) — they cannot unify.
                return False
            if a.functor != b.functor or len(a.args) != len(b.args):
                return False
            stack.extend(zip(a.args, b.args))
        else:
            return False
    return True


def undo_trail(subst: Subst, trail: list, mark: int) -> None:
    """Remove bindings recorded after ``mark`` (backtracking)."""
    while len(trail) > mark:
        del subst[trail.pop()]


def match(pattern: Term, ground: Term, subst: Optional[Subst] = None) -> Optional[dict]:
    """One-way matching: bind variables of ``pattern`` only.

    Used for θ-subsumption and fact retrieval, where the right-hand side
    must be treated as fixed (its variables are constants for matching
    purposes).  Bindings map pattern variables directly to target terms:
    a variable already bound must re-match an *equal* target term — its
    binding is never chased as a substitution chain, which would let a
    pattern variable bound to a target variable be silently rebound (the
    target side is fixed, so that would be unsound; θ-subsumption compares
    clauses that may share variable names).
    """
    out: dict = dict(subst) if subst else {}
    stack = [(pattern, ground)]
    while stack:
        p, g = stack.pop()
        if isinstance(p, Var):
            bound = out.get(p)
            if bound is None:
                out[p] = g
            elif not (bound is g or bound == g):
                return None
            continue
        if isinstance(p, Const):
            if p != g:
                return None
            continue
        if p.ground:
            # Ground pattern subterm: pure equality, no bindings to record
            # (Struct.__eq__ already short-circuits canonical instances).
            if p is g or p == g:
                continue
            return None
        if not isinstance(g, Struct) or p.functor != g.functor or len(p.args) != len(g.args):
            return None
        stack.extend(zip(p.args, g.args))
    return out


def rename_apart(term: Term, mapping: Optional[dict] = None, prefix: str = "_R") -> Term:
    """Rename all variables in ``term`` to fresh ones.

    ``mapping`` (old var -> new var) may be shared across several terms of
    one clause so that shared variables stay shared.
    """
    if mapping is None:
        mapping = {}

    def go(t: Term) -> Term:
        if isinstance(t, Var):
            if t not in mapping:
                mapping[t] = fresh_var(prefix)
            return mapping[t]
        if isinstance(t, Struct) and not t.ground:
            return Struct(t.functor, tuple(go(a) for a in t.args))
        return t

    return go(term)

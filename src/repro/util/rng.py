"""Seeded randomness plumbing.

Every stochastic choice in the library (example partitioning, seed-example
selection, dataset synthesis, fold assignment) flows through a
:class:`RngStream` derived from a single user-provided seed.  Identical
seeds therefore reproduce identical theories, virtual times and message
byte counts — a property the test suite asserts.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field


def derive_seed(base: int, *labels: object) -> int:
    """Derive a child seed from ``base`` and a label path.

    Uses BLAKE2b over the rendered labels so that child streams are
    statistically independent and insensitive to call ordering.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(base)).encode())
    for label in labels:
        h.update(b"/")
        h.update(repr(label).encode())
    return int.from_bytes(h.digest(), "big")


def make_rng(base: int, *labels: object) -> random.Random:
    """Create a :class:`random.Random` seeded via :func:`derive_seed`."""
    return random.Random(derive_seed(base, *labels))


@dataclass
class RngStream:
    """A named hierarchy of reproducible RNGs.

    >>> root = RngStream(seed=42)
    >>> a = root.child("partition")
    >>> b = root.child("partition")
    >>> a.rng.random() == b.rng.random()
    True
    """

    seed: int
    path: tuple = ()
    _rng: random.Random | None = field(default=None, repr=False)

    @property
    def rng(self) -> random.Random:
        if self._rng is None:
            self._rng = random.Random(derive_seed(self.seed, *self.path))
        return self._rng

    def child(self, *labels: object) -> "RngStream":
        return RngStream(seed=self.seed, path=self.path + tuple(labels))

    # Convenience passthroughs -------------------------------------------------
    def shuffle(self, xs: list) -> None:
        self.rng.shuffle(xs)

    def choice(self, xs):
        return self.rng.choice(xs)

    def randint(self, a: int, b: int) -> int:
        return self.rng.randint(a, b)

    def random(self) -> float:
        return self.rng.random()

    def uniform(self, a: float, b: float) -> float:
        return self.rng.uniform(a, b)

    def sample(self, xs, k: int):
        return self.rng.sample(xs, k)

    def gauss(self, mu: float, sigma: float) -> float:
        return self.rng.gauss(mu, sigma)

"""Fault-sweep experiment scenario: overhead records + parity assertions."""

from repro.experiments.faultsweep import (
    default_scenarios,
    render_fault_sweep,
    run_fault_sweep,
)


class TestSweep:
    def test_p2mdie_sweep_keeps_parity(self):
        records = run_fault_sweep(
            dataset="trains", ps=(2,), strategies=("p2mdie",), seed=0, timeout=1.0
        )
        assert {r.scenario for r in records} == set(default_scenarios())
        assert all(r.parity for r in records)
        crash = next(r for r in records if r.scenario == "crash")
        assert crash.recoveries == 1
        assert crash.overhead > 0.0
        supervised = next(r for r in records if r.scenario == "supervised")
        assert supervised.recoveries == 0

    def test_render(self):
        records = run_fault_sweep(
            dataset="trains", ps=(2,), strategies=("independent",), seed=0, timeout=1.0
        )
        text = render_fault_sweep(records)
        assert "independent" in text and "overhead" in text
        assert "False" not in text

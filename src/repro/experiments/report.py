"""Full evaluation report generation.

Bundles every table of the paper's §5 plus run metadata into one markdown
document — the artifact a reproduction run hands to a reviewer.  Used by
``python -m repro tables`` consumers and by the benchmark suite's output
directory.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.datasets.base import Dataset
from repro.experiments.runner import MatrixResult, width_label
from repro.experiments.stats import mean_std, paired_ttest
from repro.experiments.tables import (
    table1_datasets,
    table2_speedup,
    table3_times,
    table4_communication,
    table5_epochs,
    table6_accuracy,
)

__all__ = ["ReportMeta", "render_report", "speedup_summary"]


@dataclass(frozen=True)
class ReportMeta:
    """Provenance for a report: what was run, at what scale, which seed."""

    scale: str = "small"
    seed: int = 0
    k_folds: int = 3
    notes: str = ""


def speedup_summary(result: MatrixResult, ps: Sequence[int] = (2, 4, 8)) -> list[dict]:
    """Per (dataset, width) speedup rows as structured data.

    Complements the text tables for programmatic consumers (plots,
    regression tracking).
    """
    out = []
    for ds in sorted({r.dataset for r in result.records}):
        seq = result.fold_values("seconds", ds, None, 1)
        if not seq:
            continue
        widths = sorted(
            {r.width for r in result.records if r.dataset == ds and r.p > 1},
            key=lambda w: (w is not None, w or 0),
        )
        for w in widths:
            row = {"dataset": ds, "width": width_label(w)}
            for p in ps:
                par = result.fold_values("seconds", ds, w, p)
                if par and len(par) == len(seq):
                    sp = [s / q for s, q in zip(seq, par)]
                    row[f"p{p}"] = sum(sp) / len(sp)
            out.append(row)
    return out


def render_report(
    result: MatrixResult,
    datasets: Optional[Sequence[Dataset]] = None,
    meta: Optional[ReportMeta] = None,
    ps: Sequence[int] = (2, 4, 8),
    confidence: float = 0.98,
) -> str:
    """Render the complete §5 evaluation as a markdown document."""
    meta = meta or ReportMeta()
    buf = io.StringIO()
    w = buf.write
    w("# P²-MDIE evaluation report\n\n")
    w(f"- scale: `{meta.scale}`\n- seed: `{meta.seed}`\n- folds: `{meta.k_folds}`\n")
    if meta.notes:
        w(f"- notes: {meta.notes}\n")
    w("\n")
    if datasets:
        w("```\n" + table1_datasets(datasets) + "\n```\n\n")
    for renderer in (table2_speedup, table3_times, table4_communication, table5_epochs):
        w("```\n" + renderer(result, ps=ps) + "\n```\n\n")
    w("```\n" + table6_accuracy(result, ps=ps, confidence=confidence) + "\n```\n\n")

    # Evaluation-cache effectiveness (fault-tolerance observability: a
    # recovery shows up as a cache-miss spike in the affected cells).
    w("## Evaluation-cache effectiveness\n\n")
    any_cache = False
    for ds in sorted({r.dataset for r in result.records}):
        for p in sorted({r.p for r in result.records if r.dataset == ds}):
            cells = result.cells(ds, p=p)
            hits = sum(c.cache_hits for c in cells)
            misses = sum(c.cache_misses for c in cells)
            total = hits + misses
            if not total:
                continue
            any_cache = True
            w(
                f"- {ds}, p={p}: {hits} hits / {misses} misses "
                f"({100.0 * hits / total:.1f}% hit rate)\n"
            )
    if not any_cache:
        w("- no evaluation-cache activity recorded\n")
    w("\n")

    # Significance narrative (the paper's Table 6 discussion).
    w("## Accuracy significance vs sequential\n\n")
    any_row = False
    for ds in sorted({r.dataset for r in result.records}):
        seq = result.fold_values("test_accuracy", ds, None, 1)
        if len(seq) < 2:
            continue
        for width in sorted(
            {r.width for r in result.records if r.dataset == ds and r.p > 1},
            key=lambda x: (x is not None, x or 0),
        ):
            for p in ps:
                par = result.fold_values("test_accuracy", ds, width, p)
                if len(par) != len(seq):
                    continue
                t = paired_ttest(seq, par, confidence=confidence)
                if t.significant:
                    any_row = True
                    direction = "improved" if t.improved else "degraded"
                    m_seq, _ = mean_std(seq)
                    m_par, _ = mean_std(par)
                    w(
                        f"- {ds}, width {width_label(width)}, p={p}: "
                        f"{m_seq:.2f} → {m_par:.2f} ({direction}, p-value {t.pvalue:.3f})\n"
                    )
    if not any_row:
        w("- no cell differs significantly from the sequential run\n")
    return buf.getvalue()

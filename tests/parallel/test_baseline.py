"""Tests for the coverage-parallel baseline (§6 related work)."""

import pytest

from repro.cluster.message import Tag
from repro.ilp.theory import accuracy
from repro.logic.engine import Engine
from repro.parallel.coverage_parallel import run_coverage_parallel
from repro.parallel.p2mdie import run_p2mdie


class TestBaselineLearning:
    def test_learns(self, kb, pos, neg, modes, config):
        res = run_coverage_parallel(kb, pos, neg, modes, config, p=2, batch_size=8, seed=3)
        assert res.uncovered == 0
        eng = Engine(kb, config.engine_budget())
        assert accuracy(eng, res.theory, pos, neg) == 100.0

    def test_deterministic(self, kb, pos, neg, modes, config):
        a = run_coverage_parallel(kb, pos, neg, modes, config, p=2, batch_size=4, seed=3)
        b = run_coverage_parallel(kb, pos, neg, modes, config, p=2, batch_size=4, seed=3)
        assert list(a.theory) == list(b.theory)
        assert a.seconds == b.seconds

    def test_invalid_batch_size(self, kb, pos, neg, modes, config):
        from repro.parallel.coverage_parallel import CoverageParallelMaster

        with pytest.raises(ValueError):
            CoverageParallelMaster(2, kb, pos, neg, modes, config, batch_size=0)

    def test_max_epochs(self, kb, pos, neg, modes, config):
        res = run_coverage_parallel(kb, pos, neg, modes, config, p=2, seed=3, max_epochs=1)
        assert res.epochs <= 1


class TestGranularityEffect:
    def test_fine_grain_more_rounds_than_coarse(self, kb, pos, neg, modes, config):
        """batch_size=1 (Konstantopoulos) must send many more evaluate
        rounds than batch_size=32 (Graham et al.)."""
        fine = run_coverage_parallel(kb, pos, neg, modes, config, p=2, batch_size=1, seed=3, max_epochs=1)
        coarse = run_coverage_parallel(kb, pos, neg, modes, config, p=2, batch_size=32, seed=3, max_epochs=1)
        assert fine.comm.messages > coarse.comm.messages

    def test_fine_grain_slower(self, kb, pos, neg, modes, config):
        """Latency-bound fine-grained evaluation is slower — the paper's
        explanation for Konstantopoulos' poor results."""
        fine = run_coverage_parallel(kb, pos, neg, modes, config, p=2, batch_size=1, seed=3, max_epochs=2)
        coarse = run_coverage_parallel(kb, pos, neg, modes, config, p=2, batch_size=32, seed=3, max_epochs=2)
        assert fine.seconds > coarse.seconds

    def test_p2mdie_beats_fine_grained_baseline(self, kb, pos, neg, modes, config):
        """The paper's headline comparison: pipelined data-parallelism
        outperforms fine-grained coverage parallelism."""
        p2 = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3)
        base = run_coverage_parallel(kb, pos, neg, modes, config, p=3, batch_size=1, seed=3)
        assert p2.seconds < base.seconds

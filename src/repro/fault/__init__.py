"""Fault-tolerance & elasticity subsystem.

Three cooperating layers make the parallel strategies survive an
unreliable pool:

* :mod:`repro.fault.plan` — deterministic fault descriptions
  (:class:`FaultPlan`): worker crashes, stragglers, message loss and
  elastic joins, injected identically by the sim and local backends;
* :mod:`repro.fault.checkpoint` — versioned, wire-codec-serialized
  snapshots of master learning state written at epoch boundaries, and
  the machinery behind ``repro resume``;
* :mod:`repro.fault.recovery` — the self-healing protocol: logical
  workers decoupled from physical hosts, heartbeat/timeout failure
  detection, deterministic state reconstruction by replay, task
  reassignment and elastic pool growth;
* :mod:`repro.fault.service` — the serving tier's counterpart
  (:class:`ServiceFaultPlan`): connection resets, engine-lease faults,
  scheduler-slot crashes and persistence-write failures injected into
  the live service front door and job scheduler.

The subsystem is strictly opt-in: with no plan (or an empty one) every
execution path is byte-for-byte identical to the fault-unaware code.

Only the plan layer is imported eagerly — the cluster scheduler depends
on it, and the scheduler must stay importable without dragging in the
parallel package (which the checkpoint/recovery layers build on).
"""

from repro.fault.plan import (
    FaultPlan,
    FaultRecord,
    MessageLoss,
    Straggler,
    WorkerCrash,
    WorkerJoin,
    normalize_plan,
)

__all__ = [
    "FaultPlan",
    "FaultRecord",
    "MessageLoss",
    "Straggler",
    "WorkerCrash",
    "WorkerJoin",
    "normalize_plan",
    "CheckpointState",
    "EpochRecord",
    "load_checkpoint",
    "save_checkpoint",
    "PoolSupervisor",
    "RecoveryError",
    "rebuild_shard",
    "ServiceFaultPlan",
    "ServiceFaultInjector",
    "InjectedFault",
    "normalize_service_plan",
]

_LAZY = {
    "CheckpointState": "repro.fault.checkpoint",
    "EpochRecord": "repro.fault.checkpoint",
    "load_checkpoint": "repro.fault.checkpoint",
    "save_checkpoint": "repro.fault.checkpoint",
    "PoolSupervisor": "repro.fault.recovery",
    "RecoveryError": "repro.fault.recovery",
    "rebuild_shard": "repro.fault.recovery",
    "ServiceFaultPlan": "repro.fault.service",
    "ServiceFaultInjector": "repro.fault.service",
    "InjectedFault": "repro.fault.service",
    "normalize_service_plan": "repro.fault.service",
}


def __getattr__(name: str):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(mod), name)

#!/usr/bin/env python
"""Reproduce the paper's speedup experiment on the carcinogenesis-like
dataset: sequential MDIE vs P²-MDIE at p ∈ {2, 4, 8}, both pipeline
widths, with a pipeline-activity trace of one epoch (Figs. 3-4 style).

Run:  python examples/carcinogenesis_speedup.py [--scale paper]
"""

import argparse

from repro.datasets import make_dataset
from repro.experiments.trace import occupancy, render_gantt
from repro.ilp import mdie
from repro.parallel import run_p2mdie, sequential_seconds
from repro.util.fmt import fmt_float, render_table


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", choices=("small", "paper"), default="small")
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args()

    ds = make_dataset("carcinogenesis", seed=args.seed, scale=args.scale)
    print(f"dataset: {ds.name} ({args.scale})  |E+|={ds.n_pos}  |E-|={ds.n_neg}")

    seq = mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=args.seed)
    seq_t = sequential_seconds(seq)
    print(f"\nsequential: {len(seq.theory)} rules, {seq.epochs} epochs, {seq_t:.0f} virtual s")

    rows = []
    for width in (None, 10):
        wname = "nolimit" if width is None else str(width)
        for p in (2, 4, 8):
            r = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=p, width=width, seed=args.seed)
            rows.append(
                [
                    wname,
                    p,
                    fmt_float(r.seconds, 1),
                    fmt_float(seq_t / r.seconds, 2),
                    fmt_float(r.mbytes, 3),
                    r.epochs,
                    len(r.theory),
                ]
            )
    print()
    print(
        render_table(
            ["width", "p", "time(s)", "speedup", "MB", "epochs", "rules"],
            rows,
            title="P2-MDIE vs sequential (virtual time on the simulated cluster)",
        )
    )

    # One traced epoch on 3 workers — the paper's Fig. 3/4 picture.
    traced = run_p2mdie(
        ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=3, width=10, seed=args.seed,
        record_trace=True, max_epochs=1,
    )
    print("\npipeline activity, one epoch, 3 workers (digits = search stage):")
    print(render_gantt(traced.trace, width=90, t_end=traced.seconds))
    occ = occupancy(traced.trace, traced.seconds)
    print("busy fractions:", "  ".join(f"rank{r}={f:.2f}" for r, f in occ.items()))


if __name__ == "__main__":
    main()

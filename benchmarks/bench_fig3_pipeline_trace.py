"""Figures 3-4 — the pipelined rule search, rendered as a Gantt trace.

The paper's Figs. 3-4 are schematic: three workers, each running its
pipeline stage and forwarding good rules to the next.  We reproduce the
figure as a stage-activity trace of an actual 3-worker epoch: each worker
must execute search stages s1, s2 and s3 (one per concurrently live
pipeline), and the stage granularity should be balanced across workers.
"""

import pytest

from conftest import SEED, one_shot
from repro.datasets import make_dataset
from repro.experiments.trace import occupancy, render_gantt, stage_summary
from repro.parallel import run_p2mdie


@pytest.fixture(scope="module")
def traced_run(scale):
    ds = make_dataset("carcinogenesis", seed=SEED, scale=scale)
    return run_p2mdie(
        ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=3, width=10, seed=SEED,
        record_trace=True, max_epochs=1,
    )


def test_fig3_trace(benchmark, traced_run, table_sink):
    gantt = one_shot(benchmark, render_gantt, traced_run.trace, width=100, t_end=traced_run.seconds)
    occ = occupancy(traced_run.trace, traced_run.seconds)
    summary = stage_summary(traced_run.trace)
    lines = [
        "Figure 3/4. One P2-MDIE epoch on 3 workers (stage digits = search(sK),",
        "s=saturate, e=evaluate, m=mark_covered, .=idle)",
        "",
        gantt,
        "",
        "busy fraction per rank: "
        + "  ".join(f"{r}:{f:.2f}" for r, f in occ.items()),
        "",
        "stage totals:",
    ]
    for st in summary:
        lines.append(f"  {st.label:<14} count={st.count:<4} total={st.total_seconds:.3f}s")
    table_sink("fig3_pipeline_trace", "\n".join(lines))

    labels = {iv.label for iv in traced_run.trace}
    # every pipeline stage ran somewhere (p=3 stages)
    assert {"search(s1)", "search(s2)", "search(s3)"} <= labels
    # each worker executed all three stages (the pipeline fold-back, Fig. 3)
    for rank in (1, 2, 3):
        ran = {iv.label for iv in traced_run.trace if iv.rank == rank}
        assert {"search(s1)", "search(s2)", "search(s3)"} <= ran, f"rank {rank} missed a stage"


def test_pipeline_balance(benchmark, traced_run):
    """§4.1: 'the granularity of the tasks executed in parallel are very
    similar, leading to balanced computations'."""
    occ = one_shot(benchmark, occupancy, traced_run.trace, traced_run.seconds)
    worker_occ = [v for r, v in occ.items() if r != 0]
    assert max(worker_occ) - min(worker_occ) < 0.6


def test_bench_traced_epoch(benchmark, scale):
    ds = make_dataset("carcinogenesis", seed=SEED, scale=scale)
    res = one_shot(
        benchmark, run_p2mdie, ds.kb, ds.pos, ds.neg, ds.modes, ds.config,
        p=3, width=10, seed=SEED, record_trace=True, max_epochs=1,
    )
    assert res.trace

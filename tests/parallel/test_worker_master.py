"""Unit-level tests of worker/master behaviour observed through runs."""

import pytest

from repro.cluster.message import Tag
from repro.ilp.refinement import SearchRule
from repro.logic.parser import parse_clause
from repro.parallel.master import P2Master
from repro.parallel.messages import (
    EvaluateRequest,
    EvaluateResult,
    PipelineRules,
    PipelineTask,
    RuleStats,
)
from repro.parallel.p2mdie import SharedProblem, run_p2mdie
from repro.parallel.partition import partition_examples
from repro.parallel.worker import P2Worker
from repro.util.rng import make_rng


class TestSharedProblem:
    def test_worker_problem_by_rank(self, kb, pos, neg, modes, config):
        parts = partition_examples(pos, neg, 3, make_rng(0))
        shared = SharedProblem(kb, parts, modes, config)
        for rank in (1, 2, 3):
            wp = shared.worker_problem(rank)
            assert wp.pos == parts[rank - 1].pos
            assert wp.kb is kb
            assert wp.config is config


class TestWorkerRing:
    def test_next_worker_wraps(self, kb, pos, neg, modes, config):
        parts = partition_examples(pos, neg, 3, make_rng(0))
        shared = SharedProblem(kb, parts, modes, config)
        w1 = P2Worker(1, shared, 3)
        w3 = P2Worker(3, shared, 3)
        assert w1._next_worker() == 2
        assert w3._next_worker() == 1

    def test_single_worker_ring_is_self(self, kb, pos, neg, modes, config):
        parts = partition_examples(pos, neg, 1, make_rng(0))
        shared = SharedProblem(kb, parts, modes, config)
        w = P2Worker(1, shared, 1)
        assert w._next_worker() == 1


class TestPipelineFlow:
    def test_every_pipeline_visits_all_stages(self, kb, pos, neg, modes, config):
        """learn_rule' messages must number p*(p-1) per epoch: each of the p
        pipelines crosses p-1 inter-worker hops."""
        p = 3
        res = run_p2mdie(kb, pos, neg, modes, config, p=p, seed=3, max_epochs=1)
        # messages tagged learn_rule' in the first epoch
        # (bytes_by_tag counts all epochs; max_epochs=1 isolates one)
        assert res.comm.bytes_by_tag.get(Tag.LEARN_RULE, 0) > 0
        # p RULES messages reach the master
        assert res.comm.bytes_by_tag.get(Tag.RULES, 0) > 0

    def test_rules_bag_deduplicated(self, kb, pos, neg, modes, config):
        # every accepted clause is unique
        res = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3)
        accepted = [str(c) for log in res.epoch_logs for c in log.accepted]
        assert len(accepted) == len(set(accepted))

    def test_remaining_never_negative(self, kb, pos, neg, modes, config):
        res = run_p2mdie(kb, pos, neg, modes, config, p=4, seed=1)
        assert res.uncovered >= 0


class TestMessages:
    def test_payloads_picklable(self):
        import pickle

        sr = SearchRule(parse_clause("p(X) :- q(X)."), 2)
        msgs = [
            PipelineTask(bottom=None, step=1, width=10, rules=(sr,), origin=1),
            PipelineRules(origin=2, rules=(sr,)),
            EvaluateRequest(rules=(sr.clause,)),
            EvaluateResult(rank=1, stats=(RuleStats(pos=3, neg=1),)),
        ]
        for m in msgs:
            clone = pickle.loads(pickle.dumps(m))
            assert clone == m

    def test_master_width_defaults_to_config(self, config):
        m = P2Master(n_workers=2, total_pos=10, config=config)
        assert m.width == config.pipeline_width
        m2 = P2Master(n_workers=2, total_pos=10, config=config, width=None)
        assert m2.width is None

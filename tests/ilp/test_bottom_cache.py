"""Saturation cache: hits return the cached bottom, replay the recorded
op cost, and invalidate on KB mutation / bias change."""

import pytest

from repro.ilp.bottom import SaturationError, build_bottom, build_bottom_cached
from repro.ilp.config import ILPConfig
from repro.ilp.mdie import mdie
from repro.ilp.modes import ModeSet
from repro.logic.engine import Engine
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_term


@pytest.fixture
def kb():
    kb = KnowledgeBase()
    kb.add_program("q(a, b). q(b, c). r(b). r(c).")
    return kb


@pytest.fixture
def modes():
    return ModeSet(["modeh(1, p(+t))", "modeb(*, q(+t, -t))", "modeb(1, r(+t))"])


CONFIG = ILPConfig(min_pos=1, var_depth=2)
EX = parse_term("p(a)")


class TestCache:
    def test_hit_returns_same_object(self, kb, modes):
        e = Engine(kb, CONFIG.engine_budget())
        b1 = build_bottom_cached(EX, e, modes, CONFIG)
        b2 = build_bottom_cached(EX, e, modes, CONFIG)
        assert b2 is b1
        assert str(b1) == str(build_bottom(EX, e, modes, CONFIG))

    def test_hit_replays_op_cost(self, kb, modes):
        e = Engine(kb, CONFIG.engine_budget())
        ops0 = e.total_ops
        build_bottom_cached(EX, e, modes, CONFIG)
        first = e.total_ops - ops0
        assert first > 0
        ops1 = e.total_ops
        build_bottom_cached(EX, e, modes, CONFIG)
        # the virtual cost model is unchanged by caching
        assert e.total_ops - ops1 == first

    def test_shared_across_engines_same_kb(self, kb, modes):
        e1 = Engine(kb, CONFIG.engine_budget())
        e2 = Engine(kb, CONFIG.engine_budget())
        assert build_bottom_cached(EX, e1, modes, CONFIG) is build_bottom_cached(
            EX, e2, modes, CONFIG
        )

    def test_kb_mutation_invalidates(self, kb, modes):
        e = Engine(kb, CONFIG.engine_budget())
        b1 = build_bottom_cached(EX, e, modes, CONFIG)
        kb.add_program("q(a, z). r(z).")
        b2 = build_bottom_cached(EX, e, modes, CONFIG)
        assert b2 is not b1
        assert len(b2.literals) > len(b1.literals)

    def test_bias_key_sensitivity(self, kb, modes):
        e = Engine(kb, CONFIG.engine_budget())
        b1 = build_bottom_cached(EX, e, modes, CONFIG)
        b2 = build_bottom_cached(EX, e, modes, CONFIG.replace(var_depth=1))
        assert b2 is not b1

    def test_saturation_error_cached(self, kb, modes):
        e = Engine(kb, CONFIG.engine_budget())
        bad = parse_term("unknown(a)")
        with pytest.raises(SaturationError):
            build_bottom_cached(bad, e, modes, CONFIG)
        with pytest.raises(SaturationError):
            build_bottom_cached(bad, e, modes, CONFIG)


class TestMDIEParity:
    def test_same_theory_and_log_with_and_without_cache(self, family_kb, family_pos, family_neg, family_modes, family_config):
        on = family_config.replace(saturation_cache=True)
        off = family_config.replace(saturation_cache=False)
        a = mdie(family_kb, family_pos, family_neg, family_modes, on, seed=0)
        b = mdie(family_kb, family_pos, family_neg, family_modes, off, seed=0)
        assert [str(c) for c in a.theory] == [str(c) for c in b.theory]
        assert a.epochs == b.epochs and a.uncovered == b.uncovered
        assert [(str(s), str(r), c) for s, r, c, _ in a.log] == [
            (str(s), str(r), c) for s, r, c, _ in b.log
        ]

    def test_repeated_run_is_deterministic(self, family_kb, family_pos, family_neg, family_modes, family_config):
        cfg = family_config.replace(saturation_cache=True)
        a = mdie(family_kb, family_pos, family_neg, family_modes, cfg, seed=0)
        b = mdie(family_kb, family_pos, family_neg, family_modes, cfg, seed=0)
        assert [str(c) for c in a.theory] == [str(c) for c in b.theory]
        # op accounting identical too: cache hits replay recorded cost
        assert a.ops == b.ops

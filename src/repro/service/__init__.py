"""Learning-as-a-service: long-lived serving on top of the run layer.

The paper treats each ILP run as a one-shot cluster job.  This package
turns the repository into a *service*: expensive theory **learning** runs
as background jobs over a shared pool of backend slots, while cheap
theory **application** (coverage / prediction queries) is answered from a
registry of already-learned theories — the same decoupling that lets
clustering systems separate an expensive fit from cheap assignment
queries.

Components
----------
:mod:`repro.service.jobs`
    :class:`JobSpec` (a declarative learning request), its durable
    :class:`JobRecord`, and :func:`run_job` — one spec executed to a
    :class:`JobOutcome` exactly as ``repro learn`` would.
:mod:`repro.service.scheduler`
    :class:`JobScheduler` — concurrent execution of many jobs over
    ``slots`` worker threads with priority/FIFO queueing, cancellation
    and checkpoint-based preemption/resume (reusing
    :mod:`repro.fault.checkpoint`).
:mod:`repro.service.registry`
    :class:`TheoryRegistry` — versioned on-disk theory artifacts in the
    compact wire encoding with config-signature and provenance stamps;
    list / get / diff / promote operations.
:mod:`repro.service.query`
    :class:`QueryEngine` — batched coverage/prediction queries against
    registered theories with a per-theory prepared-KB cache;
    bit-identical to one-shot :func:`repro.ilp.coverage.coverage_eval`.
:mod:`repro.service.server`
    :class:`Service` (transport-free request handler) plus the JSON-lines
    TCP front door behind ``repro serve`` and the matching
    :class:`ServiceClient`.

Everything is stdlib-only (threads, sockets, JSON) — no new
dependencies.
"""

from repro.service.jobs import JobOutcome, JobRecord, JobSpec, run_job
from repro.service.query import QueryEngine, QueryResult
from repro.service.registry import RegistryError, RegistryRecord, TheoryRegistry
from repro.service.scheduler import JobScheduler, SchedulerError
from repro.service.server import Service, ServiceClient, serve

__all__ = [
    "JobSpec",
    "JobRecord",
    "JobOutcome",
    "run_job",
    "JobScheduler",
    "SchedulerError",
    "TheoryRegistry",
    "RegistryRecord",
    "RegistryError",
    "QueryEngine",
    "QueryResult",
    "Service",
    "ServiceClient",
    "serve",
]

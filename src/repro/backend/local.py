"""LocalProcessBackend: run the generators on real OS processes.

Each rank becomes one ``multiprocessing`` process; ranks are connected by
a full mesh of duplex pipes.  The same master/worker generators that run
in virtual time on :class:`~repro.backend.sim.SimBackend` run here
unmodified — ``compute`` syscalls become (traced) no-ops because real
CPUs charge themselves, and ``seconds`` in the returned
:class:`~repro.backend.base.BackendRun` is genuine wall-clock time.

Transport notes
---------------
* **Non-blocking sends.**  The simulated model (paper §2.2) makes sends
  non-blocking; a naive ``Connection.send`` is not (it blocks once the OS
  pipe buffer fills), which can deadlock a ring of mutually-sending
  ranks.  Every rank therefore owns a background *sender thread* draining
  an unbounded queue, so the generator thread never blocks on a send and
  always stays available to receive.
* **Blocking receives** poll all peer connections with
  ``multiprocessing.connection.wait``; non-matching arrivals are parked
  in a local mailbox, mirroring the scheduler's matching rules.  Timed
  receives (the fault-tolerant masters' failure detector) resume with
  ``None`` on expiry.
* **Accounting** uses the same payload sizing (wire codec when enabled,
  pickle otherwise) and :class:`~repro.cluster.scheduler.CommStats` as
  the simulation, so communication volumes are directly comparable
  across substrates.  Wire-encodable payloads actually travel as their
  encoded bytes and are decoded on receipt — the accounted bytes are the
  shipped bytes.
* **Failures.**  Child exceptions are reported with their full traceback
  over a result pipe and re-raised in the parent — aggregated across
  ranks, so the root cause is visible even when peers fail derivatively
  (EOF storms) or the run has to be timed out.  The wall-clock
  ``timeout`` remains the last-resort watchdog for true deadlocks; on
  expiry any tracebacks already reported are included in the error.
* **Fault injection** (:class:`~repro.fault.plan.FaultPlan`): injected
  worker crashes hard-kill the child (``os._exit``) when it is about to
  process its *n*-th matching message — the same logical trigger the
  simulator uses, so both substrates inject identical faults.
  Stragglers sleep real time after compute intervals; message loss drops
  the *n*-th payload on a link before it reaches the pipe.  Under an
  active plan the parent tolerates worker deaths (the self-healing
  master is expected to recover); only rank 0's failure fails the run.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import threading
import time
import traceback
from multiprocessing.connection import Connection, wait
from typing import Optional, Sequence

from repro.backend.base import Backend, BackendError, BackendRun, BackendTimeoutError, drive
from repro.cluster.message import Message, marshal_payload, payload_nbytes
from repro.cluster.process import (
    BcastOp,
    ComputeInterval,
    ComputeOp,
    RecvOp,
    SendOp,
    SimProcess,
)
from repro.cluster.scheduler import CommStats
from repro.fault.plan import (
    MAX_STRAGGLE_SLEEP as _MAX_STRAGGLE_SLEEP,
    FaultPlan,
    FaultRecord,
    Straggler,
    WorkerCrash,
)

__all__ = ["LocalProcessBackend", "LocalContext"]

_SENDER_STOP = object()

#: exit code of an injected-crash child (distinguishes it from real bugs).
_CRASH_EXIT = 66

# (the straggler sleep cap _MAX_STRAGGLE_SLEEP is shared with the MPI
# backend via repro.fault.plan.MAX_STRAGGLE_SLEEP)


class _InjectedCrash(BaseException):
    """Raised inside a child to simulate a hard worker crash."""


class LocalContext:
    """Immediate-mode execution context for one rank (runs in the child).

    Satisfies :class:`~repro.backend.base.ExecutionContext`; its
    ``execute`` method performs each yielded syscall for real.
    """

    def __init__(
        self,
        rank: int,
        n_procs: int,
        peers: dict[int, Connection],
        record_trace: bool = False,
        fault_tolerant: bool = False,
        crash: Optional[WorkerCrash] = None,
        straggler: Optional[Straggler] = None,
        losses: Optional[dict] = None,
    ):
        self.rank = rank
        self._n_procs = n_procs
        self._peers = peers
        self._live_conns = list(peers.values())
        self.record_trace = record_trace
        #: under an active fault plan, undeliverable sends (peer crashed)
        #: are dropped instead of poisoning this rank.
        self.fault_tolerant = fault_tolerant
        self._crash = crash
        self._crash_seen = 0
        self._straggler = straggler
        self._losses = losses or {}
        self._sent_count: dict[int, int] = {}
        #: injected events observed by this rank (drops), shipped home
        #: with the results so both substrates report the same log.
        self.fault_log: list[FaultRecord] = []
        self.stats = CommStats()
        self.trace: list[ComputeInterval] = []
        self._mailbox: list[Message] = []
        self._seq = 0
        self._t0 = time.perf_counter()
        self._last_mark = 0.0
        self._send_error: Optional[BaseException] = None
        self._outq: "queue.SimpleQueue" = queue.SimpleQueue()
        self._sender = threading.Thread(target=self._sender_loop, daemon=True)
        self._sender.start()

    # -- syscall constructors (same surface as ProcContext) ---------------------
    def send(self, dst: int, payload: object, tag: str) -> SendOp:
        return SendOp(dst, payload, tag)

    def bcast(self, payload: object, tag: str, dsts=None) -> BcastOp:
        if dsts is None:
            dsts = [r for r in range(self.n_procs) if r != self.rank]
        return BcastOp(tuple(dsts), payload, tag)

    def recv(
        self, src: Optional[int] = None, tag: Optional[str] = None, timeout: Optional[float] = None
    ) -> RecvOp:
        return RecvOp(src, tag, timeout)

    def compute(self, ops: int, label: str = "compute") -> ComputeOp:
        return ComputeOp(int(ops), label)

    # -- introspection -----------------------------------------------------------
    @property
    def clock(self) -> float:
        """Wall-clock seconds since this rank started."""
        return time.perf_counter() - self._t0

    @property
    def n_procs(self) -> int:
        return self._n_procs

    def reset_clock(self) -> None:
        self._t0 = time.perf_counter()
        self._last_mark = 0.0

    # -- execution ---------------------------------------------------------------
    def execute(self, op):
        """Perform one syscall; returns a Message for receives."""
        if isinstance(op, SendOp):
            self._post(op.dst, op.payload, op.tag)
            return None
        if isinstance(op, BcastOp):
            for dst in op.dsts:
                self._post(dst, op.payload, op.tag)
            return None
        if isinstance(op, RecvOp):
            return self._recv(op)
        if isinstance(op, ComputeOp):
            # Real CPU time has already passed between yields; just trace it.
            now = self.clock
            if self._straggler is not None and now >= self._straggler.after_time:
                extra = min((now - self._last_mark) * (self._straggler.factor - 1.0), _MAX_STRAGGLE_SLEEP)
                if extra > 0:
                    time.sleep(extra)
                    now = self.clock
            if self.record_trace:
                self.trace.append(ComputeInterval(self.rank, self._last_mark, now, op.label))
            self._last_mark = now
            return None
        raise TypeError(f"rank {self.rank} yielded non-syscall {op!r}")

    def _post(self, dst: int, payload: object, tag: str) -> None:
        if self._send_error is not None and not self.fault_tolerant:
            raise BackendError(f"rank {self.rank}: send failed") from self._send_error
        if dst == self.rank:
            raise ValueError(f"rank {self.rank} sending to itself")
        if dst not in self._peers:
            raise ValueError(f"send to unknown rank {dst}")
        # Task payloads ship in the compact wire encoding (when enabled);
        # the same bytes drive the accounting, so CommStats match the sim
        # backend exactly.  Unknown payloads fall back to pickled objects.
        data = marshal_payload(payload)
        if data is not None:
            nbytes = len(data)
            body: object = data
        else:
            nbytes = payload_nbytes(payload)
            body = payload
        now = self.clock
        self._seq += 1
        self.stats.record(
            Message(
                src=self.rank,
                dst=dst,
                tag=tag,
                payload=payload,
                nbytes=nbytes,
                send_time=now,
                arrival_time=now,
                seq=self._seq,
            )
        )
        # Injected message loss: the sender is charged, the payload dies.
        n = self._sent_count.get(dst, 0) + 1
        self._sent_count[dst] = n
        if n in self._losses.get(dst, ()):
            self.fault_log.append(
                FaultRecord(kind="drop", rank=self.rank, time=now, detail=f"->{dst} #{n} tag={tag}")
            )
            return
        self._outq.put((dst, (self.rank, tag, body, nbytes, data is not None)))

    def _sender_loop(self) -> None:
        while True:
            item = self._outq.get()
            if item is _SENDER_STOP:
                return
            dst, wire = item
            try:
                self._peers[dst].send(wire)
            except BaseException as exc:
                if self.fault_tolerant:
                    # Peer crashed: drop and keep serving the survivors.
                    continue
                self._send_error = exc  # surfaced on the next send/close
                return

    def _recv(self, spec: RecvOp) -> Optional[Message]:
        deadline = None if spec.timeout is None else time.perf_counter() + spec.timeout
        while True:
            for i, m in enumerate(self._mailbox):
                if spec.matches(m):
                    self._maybe_crash(m)
                    return self._mailbox.pop(i)
            if not self._live_conns:
                if deadline is not None:
                    # Nothing can ever arrive; honour the timeout contract.
                    time.sleep(max(0.0, deadline - time.perf_counter()))
                    return None
                raise BackendError(
                    f"rank {self.rank}: receive {spec} can never be satisfied "
                    "(all peers exited, mailbox has no match)"
                )
            if deadline is None:
                ready = wait(self._live_conns)
            else:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return None
                ready = wait(self._live_conns, timeout=remaining)
                if not ready:
                    return None
            for conn in ready:
                try:
                    src, tag, payload, nbytes, encoded = conn.recv()
                except (EOFError, OSError):
                    # Peer exited; buffered data was drained first, so
                    # nothing is lost — stop watching this connection.
                    self._live_conns.remove(conn)
                    continue
                if encoded:
                    # Imported lazily: repro.backend must stay importable
                    # while repro.parallel (which imports it back) loads.
                    from repro.parallel.wire import decode as wire_decode

                    payload = wire_decode(payload)
                self._seq += 1
                now = self.clock
                self._mailbox.append(
                    Message(
                        src=src,
                        dst=self.rank,
                        tag=tag,
                        payload=payload,
                        nbytes=nbytes,
                        send_time=now,
                        arrival_time=now,
                        seq=self._seq,
                    )
                )

    def _maybe_crash(self, msg: Message) -> None:
        """Injected crash: die when about to process the n-th matching
        message — the same deterministic trigger the simulator counts."""
        crash = self._crash
        if crash is None or crash.on_recv is None:
            return
        if crash.tag is not None and crash.tag != msg.tag:
            return
        self._crash_seen += 1
        if self._crash_seen >= crash.on_recv:
            raise _InjectedCrash()

    def close(self) -> None:
        """Flush and stop the sender thread; surface any send failure."""
        self._outq.put(_SENDER_STOP)
        self._sender.join(timeout=30.0)
        if self._send_error is not None and not self.fault_tolerant:
            raise BackendError(f"rank {self.rank}: send failed") from self._send_error


def _child_main(
    proc: SimProcess,
    n_procs: int,
    peers: dict,
    inherited,
    result_conn,
    barrier,
    record_trace: bool,
    wire_enabled: bool,
    fault_tolerant: bool = False,
    crash: Optional[WorkerCrash] = None,
    straggler: Optional[Straggler] = None,
    losses: Optional[dict] = None,
) -> None:
    """Entry point of one rank's OS process."""
    # Close pipe ends belonging to other ranks.  Under 'fork' every child
    # inherits the whole mesh; if these stayed open, a peer's exit would
    # never surface as EOF in _recv (some process would always hold the
    # other end of its pipes).
    for conn in inherited:
        conn.close()
    # Pin the parent's resolved wire-codec setting: under 'spawn' the
    # parent's in-process override (ILPConfig.wire_codec via
    # wire.configured) would otherwise be lost and children would fall
    # back to the REPRO_WIRE environment default.
    from repro.parallel.wire import set_enabled

    set_enabled(wire_enabled)
    try:
        ctx = LocalContext(
            proc.rank,
            n_procs,
            peers,
            record_trace=record_trace,
            fault_tolerant=fault_tolerant,
            crash=crash,
            straggler=straggler,
            losses=losses,
        )
        barrier.wait()
        ctx.reset_clock()
        drive(proc, ctx)
        elapsed = ctx.clock
        ctx.close()
        # The trace travels as a wire-codec SpanBatch (code 28), the same
        # encoding `repro trace --trace-out` writes — one format for spans
        # whether they cross a pipe, an MPI gather, or land in a file.
        from repro.obs.span import encode_batch

        span_bytes = encode_batch(proc.rank, ctx.trace)
        result_conn.send(("ok", proc.rank, proc, ctx.stats, elapsed, span_bytes, ctx.fault_log))
    except _InjectedCrash:
        # A crashed worker reports nothing and flushes nothing — it just
        # dies, exactly like a killed machine.
        os._exit(_CRASH_EXIT)
    except BaseException as exc:
        try:
            result_conn.send(("error", proc.rank, repr(exc), traceback.format_exc()))
        except BaseException:  # pragma: no cover - result pipe gone
            pass
    finally:
        result_conn.close()


class LocalProcessBackend(Backend):
    """Real parallel execution on the local host via ``multiprocessing``.

    Parameters
    ----------
    timeout:
        Wall-clock budget for the whole run, in seconds.  ``None`` (the
        default) falls back to the ``REPRO_LOCAL_TIMEOUT`` environment
        variable, or waits forever when that is unset too.  Set it to
        convert deadlocks into
        :class:`~repro.backend.base.BackendTimeoutError`.
    start_method:
        ``multiprocessing`` start method.  Defaults to ``fork`` where
        available (cheap — no re-import, no argument pickling), falling
        back to the platform default otherwise.
    fault_plan:
        Arm fault injection (crashes / stragglers / message loss) and
        switch the supervisor to fault-tolerant expectations: worker
        deaths are recorded, not fatal — the self-healing master decides
        the run's fate.  Rank 0 failing always fails the run.
    """

    name = "local"
    supports_fault_injection = True

    def __init__(
        self,
        record_trace: bool = False,
        timeout: Optional[float] = None,
        start_method: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self.record_trace = record_trace
        if timeout is None:
            env = os.environ.get("REPRO_LOCAL_TIMEOUT")
            timeout = float(env) if env else None
        self.timeout = timeout
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else None
        self.start_method = start_method
        self.fault_plan = fault_plan

    def run(self, procs: Sequence[SimProcess]) -> BackendRun:
        ordered = sorted(procs, key=lambda p: p.rank)
        n = len(ordered)
        ranks = [p.rank for p in ordered]
        if ranks != list(range(n)):
            raise ValueError(f"ranks must be contiguous 0..{n - 1}, got {ranks}")
        plan = self.fault_plan
        ft = plan is not None
        mpctx = mp.get_context(self.start_method)
        from repro.parallel.wire import enabled as wire_enabled_now

        wire_flag = wire_enabled_now()

        # Full mesh of duplex pipes + one result pipe per rank.
        ends: dict[int, dict[int, Connection]] = {r: {} for r in ranks}
        for i in ranks:
            for j in ranks:
                if i < j:
                    a, b = mpctx.Pipe(duplex=True)
                    ends[i][j] = a
                    ends[j][i] = b
        result_parent: dict[int, Connection] = {}
        result_child: dict[int, Connection] = {}
        for r in ranks:
            result_parent[r], result_child[r] = mpctx.Pipe(duplex=False)
        barrier = mpctx.Barrier(n)

        def _foreign_ends(rank: int) -> list[Connection]:
            """Every transport end that is not this rank's own."""
            return [c for r in ranks if r != rank for c in ends[r].values()] + [
                result_child[r] for r in ranks if r != rank
            ]

        children = [
            mpctx.Process(
                target=_child_main,
                args=(
                    p,
                    n,
                    ends[p.rank],
                    _foreign_ends(p.rank),
                    result_child[p.rank],
                    barrier,
                    self.record_trace,
                    wire_flag,
                    ft,
                    plan.crash_for(p.rank) if ft else None,
                    plan.straggler_for(p.rank) if ft else None,
                    plan.losses_for(p.rank) if ft else None,
                ),
                name=f"repro-rank{p.rank}",
                daemon=True,
            )
            for p in ordered
        ]
        for c in children:
            c.start()
        # Parent keeps no transport ends open: close ours so EOFs propagate.
        for r in ranks:
            result_child[r].close()
            for conn in ends[r].values():
                conn.close()

        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        results: dict[int, tuple] = {}
        errors: dict[int, tuple[str, str]] = {}  # rank -> (repr, traceback)
        deaths: dict[int, str] = {}  # rank -> description (ft mode)
        fault_log: list[FaultRecord] = []
        pending = {result_parent[r]: r for r in ranks}
        child_by_rank = {p.rank: c for p, c in zip(ordered, children)}
        t0 = time.monotonic()
        failed = False

        def _fail_message(header: str) -> str:
            parts = [header]
            for rank in sorted(errors):
                err, tb = errors[rank]
                parts.append(f"--- rank {rank} failed: {err} ---\n{tb.rstrip()}")
            for rank in sorted(deaths):
                parts.append(f"--- rank {rank}: {deaths[rank]} ---")
            return "\n".join(parts)

        def _drain_errors(grace: float) -> None:
            """Harvest late error reports so the root cause is surfaced."""
            until = time.monotonic() + grace
            while pending and time.monotonic() < until:
                ready = wait(list(pending), timeout=max(0.0, until - time.monotonic()))
                if not ready:
                    return
                for conn in ready:
                    rank = pending.pop(conn)
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        continue
                    if msg[0] == "error":
                        errors[rank] = (msg[2], msg[3])
                    else:
                        results[rank] = msg

        def _raise_timeout() -> None:
            _drain_errors(grace=2.0)
            header = (
                f"local backend timed out after {self.timeout}s with "
                f"ranks {sorted(pending.values())} still running "
                "(transport or protocol deadlock?)"
            )
            raise BackendTimeoutError(_fail_message(header))

        def _record_death(rank: int) -> None:
            code = child_by_rank[rank].exitcode
            if ft and rank != 0:
                kind = "injected crash" if code == _CRASH_EXIT else f"died (exitcode {code})"
                deaths[rank] = kind
                fault_log.append(
                    FaultRecord(kind="crash", rank=rank, time=time.monotonic() - t0, detail=kind)
                )
            else:
                errors.setdefault(
                    rank, (f"died without reporting a result (exitcode {code})", "")
                )

        def _take(conn, rank, block_ok: bool) -> None:
            nonlocal failed
            try:
                if not block_ok and not conn.poll(1.0):
                    del pending[conn]
                    _record_death(rank)
                    failed = bool(errors)
                    return
                msg = conn.recv()
            except (EOFError, OSError):
                del pending[conn]
                _record_death(rank)
                failed = bool(errors)
                return
            del pending[conn]
            if msg[0] == "error":
                if ft and rank != 0:
                    # Tolerated: the self-healing master routes around it.
                    deaths[rank] = f"failed: {msg[2]}"
                    fault_log.append(
                        FaultRecord(
                            kind="crash", rank=rank, time=time.monotonic() - t0, detail=msg[2]
                        )
                    )
                else:
                    errors[rank] = (msg[2], msg[3])
                    failed = True
            else:
                results[rank] = msg

        try:
            while pending and not failed:
                if ft and 0 in results:
                    # The master finished; give stragglers/zombies a short
                    # grace period to deliver their final states, then move on.
                    _drain_errors(grace=10.0)
                    break
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    _raise_timeout()
                # Watch result pipes plus the sentinels of still-pending
                # children, so a rank dying hard (no result message) is
                # noticed immediately rather than at the timeout.
                sentinel_ranks = {child_by_rank[r].sentinel: r for r in pending.values()}
                ready = wait(list(pending) + list(sentinel_ranks), timeout=remaining)
                if not ready:
                    _raise_timeout()
                conn_ready = [x for x in ready if x in pending]
                for conn in conn_ready:
                    _take(conn, pending[conn], block_ok=True)
                    if failed:
                        break
                if not conn_ready and not failed:
                    # Only sentinels fired: the child exited; its result may
                    # still be in flight, so give the pipe a short grace poll.
                    for s in ready:
                        rank = sentinel_ranks.get(s)
                        if rank is not None and rank in pending.values():
                            _take(result_parent[rank], rank, block_ok=False)
                            if failed:
                                break
            if failed:
                # Collect the other ranks' reports too: when one rank dies
                # its peers usually fail derivatively (EOF), and the root
                # cause should be in the message, not lost to a terminate.
                _drain_errors(grace=2.0)
        finally:
            if pending or failed:
                for c in children:
                    if c.is_alive():
                        c.terminate()
            for c in children:
                c.join(timeout=10.0)
                if c.is_alive():  # pragma: no cover - last resort
                    c.kill()
                    c.join()
            for conn in result_parent.values():
                conn.close()
        if failed or 0 not in results:
            raise BackendError(_fail_message("local backend run failed"))

        comm = CommStats()
        clocks: list[float] = []
        trace: list[ComputeInterval] = []
        final_procs: list[SimProcess] = []
        from repro.obs.span import decode_batch

        for r in sorted(results):
            _, _, proc, stats, elapsed, span_bytes, rfaults = results[r]
            final_procs.append(proc)
            clocks.append(elapsed)
            trace.extend(decode_batch(span_bytes))
            fault_log.extend(rfaults)
            comm.merge(stats)
        trace.sort(key=lambda iv: (iv.start, iv.rank))
        fault_log.sort(key=lambda f: f.time)
        return BackendRun(
            seconds=max(clocks) if clocks else 0.0,
            comm=comm,
            clocks=clocks,
            trace=trace,
            procs=final_procs,
            fault_log=fault_log,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LocalProcessBackend(timeout={self.timeout}, start_method={self.start_method!r})"

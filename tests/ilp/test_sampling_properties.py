"""Property-based parity suite for sampled coverage (hypothesis).

Two pinned invariants, quantified over seeds and sample parameters:

* **Sampling off is bit-identical.**  With ``coverage_sampling`` off —
  explicitly, by default, or with the env override set but overridden —
  runs produce identical theories, identical per-epoch logs, identical
  engine-operation counts, and identical coverage *bitsets*.  The
  sampling layer must be invisible when disabled.
* **Sampling on is certified exact.**  Every sampled run emits a
  :class:`~repro.ilp.sampling.CoverageCertificate` whose exact recheck
  passed for every accepted clause, and whose exact counts satisfy the
  acceptance predicate — screening may change *which* rules get an exact
  look, never the exactness of what is accepted.

CI runs this module under the pinned ``sampling-ci`` hypothesis profile
(registered in ``conftest.py``) so the example stream is reproducible
across machines.
"""

import os

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp.bottom import build_bottom
from repro.ilp.config import SAMPLING_ENV, ILPConfig
from repro.ilp.coverage import popcount
from repro.ilp.heuristics import is_good
from repro.ilp.mdie import mdie
from repro.ilp.sampling import (
    ClauseCertificate,
    CoverageCertificate,
    SampledStats,
    certificate_from_bytes,
    certificate_to_bytes,
    make_sampler,
    stratum_size,
)
from repro.ilp.search import learn_rule
from repro.ilp.store import ExampleStore
from repro.logic.engine import Engine
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_term
from repro.ilp.modes import ModeSet


def _family():
    kb = KnowledgeBase()
    kb.add_program(
        """
        parent(ann, mary). parent(ann, tom). parent(tom, eve). parent(tom, ian).
        parent(sue, bob). parent(bob, joan). parent(eve, kim). parent(mary, liz).
        female(ann). female(mary). female(eve). female(sue). female(joan).
        female(kim). female(liz). male(tom). male(ian). male(bob).
        """
    )
    pos = [
        parse_term(s)
        for s in (
            "daughter(mary, ann)",
            "daughter(eve, tom)",
            "daughter(joan, bob)",
            "daughter(kim, eve)",
            "daughter(liz, mary)",
        )
    ]
    neg = [
        parse_term(s)
        for s in (
            "daughter(tom, ann)",
            "daughter(ian, tom)",
            "daughter(eve, ann)",
            "daughter(ann, mary)",
            "daughter(bob, sue)",
        )
    ]
    modes = ModeSet(
        [
            "modeh(1, daughter(+person, +person))",
            "modeb(*, parent(+person, -person))",
            "modeb(*, parent(-person, +person))",
            "modeb(1, female(+person))",
            "modeb(1, male(+person))",
        ]
    )
    config = ILPConfig(min_pos=1, noise=0, max_clause_length=3, var_depth=2, max_nodes=500)
    return kb, pos, neg, modes, config


KB, POS, NEG, MODES, CONFIG = _family()


def _run(config, seed):
    res = mdie(KB, POS, NEG, MODES, config, seed=seed)
    return res


def _log_triples(res):
    """Per-epoch log minus the ops column (caches make ops path-dependent
    between exact and full-sample runs, never between off-mode runs)."""
    return [(str(s), str(r), c) for s, r, c, _ in res.log]


def _fingerprint(res):
    """Everything the off-mode parity pins, ops included."""
    return (
        sorted(str(c) for c in res.theory),
        [(str(s), str(r), c, ops) for s, r, c, ops in res.log],
        res.epochs,
        res.uncovered,
        res.ops,
        res.cache_hits,
        res.cache_misses,
    )


class TestOffPathBitIdentical:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_disabled_variants_identical(self, seed):
        """Default config, explicit False, and explicit False with the env
        override set must be indistinguishable, run for run."""
        had = os.environ.pop(SAMPLING_ENV, None)
        try:
            base = _fingerprint(_run(CONFIG, seed))
            explicit = _fingerprint(_run(CONFIG.replace(coverage_sampling=False), seed))
            os.environ[SAMPLING_ENV] = "1"
            overridden = _fingerprint(
                _run(CONFIG.replace(coverage_sampling=False), seed)
            )
        finally:
            if had is None:
                os.environ.pop(SAMPLING_ENV, None)
            else:
                os.environ[SAMPLING_ENV] = had
        assert base == explicit == overridden

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_search_bitsets_identical(self, seed):
        """learn_rule with sampler=None returns bit-identical coverage
        bitsets to a config that never heard of sampling."""
        import random

        rng = random.Random(seed)
        example = POS[rng.randrange(len(POS))]
        runs = []
        for config in (CONFIG, CONFIG.replace(coverage_sampling=False)):
            engine = Engine(KB, config.engine_budget())
            store = ExampleStore(POS, NEG)
            bottom = build_bottom(example, engine, MODES, config)
            result = learn_rule(engine, bottom, store, config, width=None, sampler=None)
            runs.append(
                [
                    (str(er.clause), er.stats.pos_bits, er.stats.neg_bits, er.score)
                    for er in sorted(result.good, key=lambda er: er.sort_key())
                ]
            )
        assert runs[0] == runs[1]
        assert runs[0], "search found no good rules — property is vacuous"

    def test_off_run_has_no_certificate(self):
        assert _run(CONFIG, 0).certificate is None


class TestOnPathCertified:
    @given(
        seed=st.integers(0, 2**16),
        fraction=st.sampled_from([0.25, 0.5, 0.75]),
        min_stratum=st.sampled_from([1, 2, 3]),
    )
    @settings(max_examples=25, deadline=None)
    def test_certificate_recheck_always_passes(self, seed, fraction, min_stratum):
        config = CONFIG.replace(
            coverage_sampling=True, sample_fraction=fraction, sample_min=min_stratum
        )
        res = _run(config, seed)
        cert = res.certificate
        assert cert is not None and cert.seed == seed
        assert cert.ok, "an accepted clause failed its exact recheck"
        assert len(cert.entries) == len(res.theory)
        for entry in cert.entries:
            assert entry.exact_good
            assert is_good(entry.exact_pos, entry.exact_neg, config)
            assert not entry.deferred  # sequential runs always screen
        for label, n, total in cert.strata:
            assert n == stratum_size(total, fraction, min_stratum)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_full_sample_run_matches_exact_run(self, seed):
        """fraction=1.0 makes the screen exact: the sampled run must accept
        the same rules in the same order as the reference run."""
        exact = _run(CONFIG, seed)
        sampled = _run(
            CONFIG.replace(coverage_sampling=True, sample_fraction=1.0, sample_min=1),
            seed,
        )
        assert sorted(str(c) for c in exact.theory) == sorted(
            str(c) for c in sampled.theory
        )
        assert _log_triples(exact) == _log_triples(sampled)
        assert sampled.certificate is not None and sampled.certificate.ok


class TestSamplerProperties:
    @given(
        n_pos=st.integers(0, 200),
        n_neg=st.integers(0, 200),
        seed=st.integers(0, 2**16),
        fraction=st.floats(0.05, 1.0),
        min_stratum=st.integers(1, 32),
    )
    @settings(max_examples=100, deadline=None)
    def test_masks_deterministic_and_well_formed(
        self, n_pos, n_neg, seed, fraction, min_stratum
    ):
        kw = dict(fraction=fraction, delta=0.05, min_stratum=min_stratum)
        a = make_sampler(n_pos, n_neg, seed, **kw)
        b = make_sampler(n_pos, n_neg, seed, **kw)
        assert a == b  # redraw is free: masks never need shipping
        assert popcount(a.pos_mask) == a.pos_n == stratum_size(n_pos, fraction, min_stratum)
        assert popcount(a.neg_mask) == a.neg_n == stratum_size(n_neg, fraction, min_stratum)
        assert a.pos_mask < (1 << max(n_pos, 1))
        assert a.neg_mask < (1 << max(n_neg, 1))


@st.composite
def sampled_stats(draw):
    pos_total = draw(st.integers(0, 500))
    pos_n = draw(st.integers(0, pos_total))
    pos_hits = draw(st.integers(0, pos_n))
    neg_total = draw(st.integers(0, 500))
    neg_n = draw(st.integers(0, neg_total))
    neg_hits = draw(st.integers(0, neg_n))
    return SampledStats(pos_hits, pos_n, pos_total, neg_hits, neg_n, neg_total)


class TestBoundProperties:
    @given(s=sampled_stats(), delta=st.floats(0.001, 0.5))
    @settings(max_examples=200, deadline=None)
    def test_bounds_bracket_estimates(self, s, delta):
        assert 0 <= s.est_pos() <= s.pos_total
        assert 0 <= s.est_neg() <= s.neg_total
        assert s.est_pos() <= s.pos_upper(delta) <= s.pos_total
        assert 0 <= s.neg_lower(delta) <= s.est_neg()

    @given(s=sampled_stats())
    @settings(max_examples=200, deadline=None)
    def test_full_sample_bounds_are_exact(self, s):
        if s.pos_n == s.pos_total:
            assert s.pos_upper(0.05) == s.pos_hits
        if s.neg_n == s.neg_total:
            assert s.neg_lower(0.05) == s.neg_hits

    @given(s=sampled_stats())
    @settings(max_examples=100, deadline=None)
    def test_screen_never_beats_smaller_delta(self, s):
        """Shrinking delta (more confidence demanded) can only widen the
        bounds — screening becomes strictly more conservative."""
        assert s.pos_upper(0.01) >= s.pos_upper(0.2)
        assert s.neg_lower(0.01) <= s.neg_lower(0.2)

    @given(a=sampled_stats(), b=sampled_stats())
    @settings(max_examples=100, deadline=None)
    def test_merge_is_fieldwise_sum(self, a, b):
        m = a.merged(b)
        assert (m.pos_hits, m.pos_n, m.pos_total) == (
            a.pos_hits + b.pos_hits,
            a.pos_n + b.pos_n,
            a.pos_total + b.pos_total,
        )
        assert (m.neg_hits, m.neg_n, m.neg_total) == (
            a.neg_hits + b.neg_hits,
            a.neg_n + b.neg_n,
            a.neg_total + b.neg_total,
        )


@st.composite
def certificates(draw):
    entries = draw(
        st.lists(
            st.builds(
                ClauseCertificate,
                clause=st.text(
                    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
                    max_size=40,
                ),
                est_pos=st.integers(0, 1000),
                est_neg=st.integers(0, 1000),
                sample_pos_n=st.integers(0, 1000),
                sample_neg_n=st.integers(0, 1000),
                exact_pos=st.integers(0, 1000),
                exact_neg=st.integers(0, 1000),
                exact_good=st.booleans(),
                deferred=st.booleans(),
            ),
            max_size=6,
        )
    )
    strata = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["pos", "neg", "pos@r1", "neg@r7"]),
                st.integers(0, 10_000),
                st.integers(0, 10_000),
            ),
            max_size=6,
        )
    )
    return CoverageCertificate(
        seed=draw(st.integers(0, 2**32)),
        fraction=draw(st.floats(0.01, 1.0)),
        delta=draw(st.floats(0.001, 0.5)),
        min_stratum=draw(st.integers(1, 64)),
        strata=tuple(strata),
        entries=tuple(entries),
    )


class TestCertificateRoundtrips:
    @given(cert=certificates())
    @settings(max_examples=100, deadline=None)
    def test_dict_roundtrip(self, cert):
        assert CoverageCertificate.from_dict(cert.to_dict()) == cert

    @given(cert=certificates())
    @settings(max_examples=100, deadline=None)
    def test_wire_roundtrip(self, cert):
        assert certificate_from_bytes(certificate_to_bytes(cert)) == cert

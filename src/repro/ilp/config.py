"""ILP configuration — the paper's constraint set ``C``.

One :class:`ILPConfig` value parameterises both the sequential MDIE
algorithm (Fig. 1) and P²-MDIE (Fig. 5): language constraints (clause
length, variable-introduction depth ``i``), acceptance constraints (noise,
minimum positive cover), search resources (the paper tunes "a threshold on
the number of rules that can be generated on each search"), and the
pipeline width ``W``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.logic.engine import QueryBudget

__all__ = ["ILPConfig", "NO_LIMIT", "SAMPLING_ENV"]

#: Sentinel for an unconstrained pipeline width (the paper's "nolimit").
NO_LIMIT: Optional[int] = None

#: Environment variable resolving the ``coverage_sampling`` tri-state.
SAMPLING_ENV = "REPRO_COVERAGE_SAMPLING"


@dataclass(frozen=True)
class ILPConfig:
    """Constraints ``C`` plus search/pipeline parameters.

    Attributes
    ----------
    max_clause_length:
        Maximum number of *body* literals in a rule.
    var_depth:
        Progol's ``i`` parameter: number of saturation layers when building
        the bottom clause (how far new variables may be chained).
    recall:
        Default recall bound per mode declaration (max solutions retrieved
        per input-binding when saturating); individual modes may override.
    max_bottom_literals:
        Hard cap on bottom-clause body size.
    noise:
        Maximum number of negative examples a rule may cover and still be
        "consistent" (global count, aggregated over subsets in the
        parallel algorithm).
    min_pos:
        Minimum number of positive examples a rule must cover to be "good".
    max_nodes:
        Maximum number of rules generated per ``learn_rule`` search — the
        knob the paper used to bound sequential runs to two hours.
    pipeline_width:
        The paper's ``W``: max rules streamed between pipeline stages
        (``None`` = "nolimit").
    heuristic:
        Scoring function name (see :mod:`repro.ilp.heuristics`).
    select_seed_randomly:
        Seed-example selection policy; the paper selects randomly.
    on_uncoverable:
        What to do with a positive example no good rule covers: ``"skip"``
        (leave uncovered, the default) or ``"memorize"`` (add the example
        itself as a unit rule, Progol-style).
    reorder_body:
        Apply the selectivity-based body-literal reordering transformation
        before coverage testing (see :mod:`repro.ilp.reorder`); changes
        engine operation counts, never semantics.
    coverage_inheritance:
        Exploit specialisation monotonicity: evaluate each refinement only
        on the examples its parent rule covered (search-side narrowing and
        master-shipped candidate bitsets).  Identical results, fewer
        engine operations.
    coverage_kernel:
        Which engine kernel coverage testing runs on: ``"new"`` (iterative
        machine, ground-goal memo, multi-argument indexing), ``"legacy"``
        (the seed recursive interpreter with first-argument indexing) or
        None (resolve via the ``REPRO_COVERAGE_KERNEL`` environment
        variable, defaulting to new).
    clause_fingerprints:
        Key evaluation caches and master rule bags by the canonical
        variant-invariant clause fingerprint
        (:meth:`repro.logic.clause.Clause.fingerprint`) instead of the
        literal clause: θ-variant rules share one evaluation and one bag
        slot.  Identical learned theories (variants have identical
        coverage by definition), fewer engine operations and messages.
    saturation_cache:
        Memoize ``build_bottom`` per (example, KB version, bias): repeated
        seed saturations — retried seeds across worker epochs,
        cross-validation folds sharing a KB — reuse the cached bottom
        clause instead of re-running the engine.
    coverage_sampling:
        Score search candidates on a stratified example sample with
        confidence bounds (see :mod:`repro.ilp.sampling`); every clause is
        re-evaluated exactly before acceptance, and the run emits a
        :class:`~repro.ilp.sampling.CoverageCertificate` recording the
        sampled-vs-exact agreement.  ``None`` resolves via the
        ``REPRO_COVERAGE_SAMPLING`` environment variable, defaulting to
        off (the bit-identical reference path).
    sample_fraction:
        Fraction of each stratum (positives, negatives — per shard in the
        parallel algorithm) drawn into the sample.
    sample_min:
        Minimum sample size per stratum; strata at or below it are
        evaluated in full.
    sample_delta:
        Per-bound confidence parameter: each Hoeffding screen bound holds
        with probability ``1 - sample_delta``.
    wire_codec:
        Serialize parallel messages with the compact symbol-table wire
        codec (:mod:`repro.parallel.wire`) instead of raw pickle — both
        for the communication accounting the paper measures and for the
        bytes actually shipped by the real backends.  ``None`` resolves
        via the ``REPRO_WIRE`` environment variable, defaulting to on.
    search_strategy:
        ``learn_rule`` queue discipline: ``"bfs"`` (the paper's April
        configuration: top-down breadth-first), ``"best_first"``
        (heuristic-ordered priority queue) or ``"beam"`` (level-synchronous
        with ``beam_width`` survivors per level).
    beam_width:
        Nodes kept per level under the beam strategy.
    engine_max_depth / engine_max_ops:
        Resource bounds for each coverage-test query.
    """

    max_clause_length: int = 4
    var_depth: int = 2
    recall: int = 20
    max_bottom_literals: int = 60
    noise: int = 0
    min_pos: int = 2
    max_nodes: int = 600
    pipeline_width: Optional[int] = 10
    heuristic: str = "coverage"
    select_seed_randomly: bool = True
    on_uncoverable: str = "skip"
    reorder_body: bool = False
    coverage_inheritance: bool = True
    coverage_kernel: Optional[str] = None
    clause_fingerprints: bool = True
    saturation_cache: bool = True
    coverage_sampling: Optional[bool] = None
    sample_fraction: float = 0.25
    sample_min: int = 16
    sample_delta: float = 0.05
    wire_codec: Optional[bool] = None
    search_strategy: str = "bfs"
    beam_width: int = 5
    engine_max_depth: int = 8
    engine_max_ops: int = 200_000

    def __post_init__(self):
        if self.max_clause_length < 1:
            raise ValueError("max_clause_length must be >= 1")
        if self.var_depth < 1:
            raise ValueError("var_depth must be >= 1")
        if self.recall < 1:
            raise ValueError("recall must be >= 1")
        if self.noise < 0:
            raise ValueError("noise must be >= 0")
        if self.min_pos < 1:
            raise ValueError("min_pos must be >= 1")
        if self.pipeline_width is not None and self.pipeline_width < 1:
            raise ValueError("pipeline_width must be >= 1 or None (nolimit)")
        if self.on_uncoverable not in ("skip", "memorize"):
            raise ValueError("on_uncoverable must be 'skip' or 'memorize'")
        if self.search_strategy not in ("bfs", "best_first", "beam"):
            raise ValueError("search_strategy must be 'bfs', 'best_first' or 'beam'")
        if self.coverage_kernel not in (None, "new", "legacy"):
            raise ValueError("coverage_kernel must be 'new', 'legacy' or None")
        if self.beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        if not (0.0 < self.sample_fraction <= 1.0):
            raise ValueError("sample_fraction must be in (0, 1]")
        if self.sample_min < 1:
            raise ValueError("sample_min must be >= 1")
        if not (0.0 < self.sample_delta < 1.0):
            raise ValueError("sample_delta must be in (0, 1)")

    def sampling_enabled(self) -> bool:
        """Resolve the ``coverage_sampling`` tri-state (env when None).

        Resolved at use sites rather than by rewriting the config, so
        ``repr(config)`` — the checkpoint/registry ``config_sig`` — is
        stable whichever way the mode was selected.
        """
        if self.coverage_sampling is not None:
            return self.coverage_sampling
        return os.environ.get(SAMPLING_ENV, "").strip().lower() in ("1", "on", "true")

    def engine_budget(self) -> QueryBudget:
        return QueryBudget(max_depth=self.engine_max_depth, max_ops=self.engine_max_ops)

    def with_width(self, width: Optional[int]) -> "ILPConfig":
        """Copy of this config with a different pipeline width."""
        return replace(self, pipeline_width=width)

    def replace(self, **kw) -> "ILPConfig":
        return replace(self, **kw)

"""Golden sampled-vs-exact leg on carcinogenesis.

This is the CI ``sampling-parity`` job's artifact producer: one exact run
and one sampled run of sequential MDIE on the same carcinogenesis
instance, with the sampled run's :class:`CoverageCertificate` exported —
as JSON and in the wire encoding — when ``REPRO_CERT_OUT`` names a
directory.  The assertions are the headline exactness claims:

* every accepted clause of the sampled run passed its exact recheck;
* the sampled theory's *exact* training accuracy is no worse than the
  exact run's (screening may change the search trajectory, never the
  exactness of what was accepted);
* the exported wire artifact round-trips to the in-memory certificate.
"""

import json
import os

from repro.datasets import make_dataset
from repro.ilp.mdie import mdie
from repro.ilp.sampling import certificate_from_bytes, certificate_to_bytes
from repro.ilp.theory import accuracy
from repro.logic.engine import Engine

SEED = 0


def _runs():
    ds = make_dataset("carcinogenesis", seed=SEED, scale="small")
    exact = mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=SEED)
    sampled_config = ds.config.replace(
        coverage_sampling=True, sample_fraction=0.5, sample_min=8, sample_delta=0.05
    )
    sampled = mdie(ds.kb, ds.pos, ds.neg, ds.modes, sampled_config, seed=SEED)
    return ds, exact, sampled


def _export(ds, exact, sampled):
    """Write the certificate artifacts for the CI upload step."""
    out = os.environ.get("REPRO_CERT_OUT")
    if not out:
        return
    os.makedirs(out, exist_ok=True)
    cert = sampled.certificate
    with open(os.path.join(out, "carcinogenesis.cert"), "wb") as fh:
        fh.write(certificate_to_bytes(cert))
    eng = Engine(ds.kb, ds.config.engine_budget())
    summary = {
        "dataset": "carcinogenesis",
        "seed": SEED,
        "scale": "small",
        "certificate": cert.to_dict(),
        "exact_theory_clauses": len(exact.theory),
        "sampled_theory_clauses": len(sampled.theory),
        "exact_accuracy": accuracy(eng, exact.theory, ds.pos, ds.neg),
        "sampled_accuracy": accuracy(eng, sampled.theory, ds.pos, ds.neg),
    }
    with open(os.path.join(out, "carcinogenesis.cert.json"), "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)


def test_golden_sampled_vs_exact_carcinogenesis():
    ds, exact, sampled = _runs()

    assert exact.certificate is None  # the reference path stays certificate-free
    cert = sampled.certificate
    assert cert is not None and cert.ok
    assert len(cert.entries) == len(sampled.theory)
    assert not any(e.deferred for e in cert.entries)  # sequential: every
    # accepted clause went through a live screen

    eng = Engine(ds.kb, ds.config.engine_budget())
    exact_acc = accuracy(eng, exact.theory, ds.pos, ds.neg)
    sampled_acc = accuracy(eng, sampled.theory, ds.pos, ds.neg)
    assert sampled_acc >= exact_acc

    # the exported artifact is faithful: wire bytes round-trip
    assert certificate_from_bytes(certificate_to_bytes(cert)) == cert

    _export(ds, exact, sampled)

"""Statistics for the accuracy table (paper Table 6).

The paper reports per-cell mean accuracy with standard deviation and uses
"the paired t-test to detect significance ... up to a 98% confidence
level", starring cells that differ significantly from the sequential run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as _sstats

__all__ = ["mean_std", "paired_ttest", "PairedTest"]


def mean_std(xs: Sequence[float]) -> tuple[float, float]:
    """Sample mean and (n-1) standard deviation, as the paper reports."""
    n = len(xs)
    if n == 0:
        raise ValueError("empty sample")
    m = sum(xs) / n
    if n == 1:
        return m, 0.0
    var = sum((x - m) ** 2 for x in xs) / (n - 1)
    return m, math.sqrt(var)


@dataclass(frozen=True)
class PairedTest:
    """Result of a paired t-test between two fold-accuracy vectors."""

    t: float
    pvalue: float
    significant: bool
    improved: bool  # mean(b) > mean(a) among significant results

    @property
    def star(self) -> str:
        """The paper's '*' marker (significant difference vs sequential)."""
        return "*" if self.significant else ""


def paired_ttest(a: Sequence[float], b: Sequence[float], confidence: float = 0.98) -> PairedTest:
    """Two-sided paired t-test: is ``b`` (parallel) different from ``a``
    (sequential) at the given confidence level?

    >>> r = paired_ttest([60.0, 61.0, 59.5, 60.2, 60.8],
    ...                  [70.1, 71.0, 69.8, 70.5, 70.9])
    >>> (r.significant, r.improved)
    (True, True)
    """
    if len(a) != len(b):
        raise ValueError("paired samples must have equal length")
    if len(a) < 2:
        raise ValueError("need at least 2 pairs")
    diffs = [y - x for x, y in zip(a, b)]
    if all(abs(d) < 1e-12 for d in diffs):
        return PairedTest(t=0.0, pvalue=1.0, significant=False, improved=False)
    t, p = _sstats.ttest_rel(b, a)
    significant = bool(p < (1.0 - confidence))
    mean_diff = sum(diffs) / len(diffs)
    return PairedTest(
        t=float(t), pvalue=float(p), significant=significant, improved=significant and mean_diff > 0
    )

"""Example store: a (sub)set of training examples with liveness tracking.

Both the sequential algorithm and each parallel worker hold their examples
in an :class:`ExampleStore`.  Positive examples are never physically
removed; instead an ``alive`` bitmask tracks which are still uncovered.
Because coverage bitsets are computed over the *full* positive list, cached
rule evaluations stay valid across ``mark_covered`` steps — only the mask
changes.  (Negative examples are never removed.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.ilp.coverage import CoverageStats, coverage_bitset, popcount
from repro.ilp.reorder import optimize_clause_order
from repro.logic.clause import Clause
from repro.logic.engine import Engine
from repro.logic.terms import Term

__all__ = ["ExampleStore"]


class ExampleStore:
    """Positive/negative examples plus a coverage-evaluation cache.

    ``reorder_body=True`` evaluates a selectivity-reordered variant of
    each rule (see :mod:`repro.ilp.reorder`) while caching under the
    original clause — a pure engine-cost optimisation.
    """

    def __init__(self, pos: Sequence[Term], neg: Sequence[Term], reorder_body: bool = False):
        self.pos: list[Term] = list(pos)
        self.neg: list[Term] = list(neg)
        self.reorder_body = reorder_body
        #: bitmask over ``self.pos``: bit i set ⇔ example i still uncovered.
        self.alive: int = (1 << len(self.pos)) - 1
        # clause -> (pos_bits over full pos list, neg_bits)
        self._cache: dict[Clause, tuple[int, int]] = {}
        self._hits = 0
        self._misses = 0

    # -- liveness ---------------------------------------------------------------
    @property
    def n_pos(self) -> int:
        return len(self.pos)

    @property
    def n_neg(self) -> int:
        return len(self.neg)

    @property
    def remaining(self) -> int:
        """Number of still-uncovered positive examples."""
        return popcount(self.alive)

    def alive_examples(self) -> list[Term]:
        return [e for i, e in enumerate(self.pos) if self.alive >> i & 1]

    def alive_indices(self) -> list[int]:
        return [i for i in range(len(self.pos)) if self.alive >> i & 1]

    def kill(self, pos_bits: int) -> int:
        """Remove covered positives; returns how many were newly covered."""
        newly = popcount(self.alive & pos_bits)
        self.alive &= ~pos_bits
        return newly

    # -- evaluation ---------------------------------------------------------------
    def evaluate(self, engine: Engine, rule: Clause) -> CoverageStats:
        """Evaluate ``rule`` on this store (alive positives, all negatives).

        Results are cached per clause; the cache survives ``kill`` because
        bitsets are over the full example lists.
        """
        cached = self._cache.get(rule)
        if cached is None:
            self._misses += 1
            to_eval = rule
            if self.reorder_body and rule.body:
                to_eval = optimize_clause_order(engine.kb, rule)
            pb = coverage_bitset(engine, to_eval, self.pos)
            nb = coverage_bitset(engine, to_eval, self.neg)
            self._cache[rule] = (pb, nb)
        else:
            self._hits += 1
            pb, nb = cached
        live = pb & self.alive
        return CoverageStats(pos=popcount(live), neg=popcount(nb), pos_bits=live, neg_bits=nb)

    # -- cache effectiveness (reported by the benchmark suite) -------------------
    def cache_size(self) -> int:
        return len(self._cache)

    def cache_hits(self) -> int:
        """Evaluations answered from the cache since construction."""
        return self._hits

    def cache_misses(self) -> int:
        """Evaluations that had to run the engine since construction."""
        return self._misses

    def cache_hit_rate(self) -> float:
        """Fraction of evaluations served from cache (0.0 when unused)."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def clear_cache(self) -> None:
        """Drop cached bitsets (counters are preserved)."""
        self._cache.clear()

"""DES-level fault semantics: timed receives, crash/straggler/loss events."""

import pytest

from repro.cluster.process import SimProcess
from repro.cluster.scheduler import DeadlockError, Scheduler
from repro.fault.plan import FaultPlan, MessageLoss, Straggler, WorkerCrash


class Echo(SimProcess):
    """Replies 'pong' to every 'ping'; stops on 'stop'."""

    def run(self, ctx):
        while True:
            msg = yield ctx.recv()
            if msg.payload == "stop":
                return
            yield ctx.compute(10, label="work")
            yield ctx.send(msg.src, "pong", tag="pong")


class TestRecvTimeout:
    def test_timeout_resumes_with_none(self):
        class Waiter(SimProcess):
            def __init__(self):
                super().__init__(0)
                self.got = "unset"
                self.when = None

            def run(self, ctx):
                self.got = yield ctx.recv(timeout=2.5)
                self.when = ctx.clock
                yield ctx.send(1, "stop", tag="stop")

        w = Waiter()
        sched = Scheduler([w, Echo(1)])
        sched.run()
        assert w.got is None
        assert w.when == pytest.approx(2.5)

    def test_message_beats_timeout(self):
        class Asker(SimProcess):
            def __init__(self):
                super().__init__(0)
                self.got = None

            def run(self, ctx):
                yield ctx.send(1, "ping", tag="ping")
                self.got = yield ctx.recv(timeout=100.0)
                yield ctx.send(1, "stop", tag="stop")

        a = Asker()
        Scheduler([a, Echo(1)]).run()
        assert a.got is not None and a.got.payload == "pong"

    def test_timed_recv_prevents_deadlock_error(self):
        class OnlyWaits(SimProcess):
            def run(self, ctx):
                got = yield ctx.recv(timeout=1.0)
                assert got is None

        Scheduler([OnlyWaits(0)]).run()  # no DeadlockError

        class WaitsForever(SimProcess):
            def run(self, ctx):
                yield ctx.recv()

        with pytest.raises(DeadlockError):
            Scheduler([WaitsForever(0)]).run()


class Master(SimProcess):
    """Pings worker 1 n times with a timed receive; counts replies."""

    def __init__(self, n=3, timeout=5.0):
        super().__init__(0)
        self.n = n
        self.timeout = timeout
        self.replies = 0
        self.timeouts = 0

    def run(self, ctx):
        for _ in range(self.n):
            yield ctx.send(1, "ping", tag="ping")
            msg = yield ctx.recv(timeout=self.timeout)
            if msg is None:
                self.timeouts += 1
            else:
                self.replies += 1
        yield ctx.send(1, "stop", tag="stop")


class TestCrash:
    def test_on_recv_crash_counts_matching_messages(self):
        m = Master(n=3)
        plan = FaultPlan(crashes=(WorkerCrash(rank=1, on_recv=2, tag="ping"),))
        sched = Scheduler([m, Echo(1)], fault_plan=plan)
        sched.run()
        assert m.replies == 1  # first ping answered, second killed the worker
        assert m.timeouts == 2
        assert [f.kind for f in sched.fault_log] == ["crash"]
        assert sched.fault_log[0].rank == 1

    def test_at_time_crash_kills_blocked_process(self):
        m = Master(n=1, timeout=10.0)
        plan = FaultPlan(crashes=(WorkerCrash(rank=1, at_time=0.0),))
        sched = Scheduler([m, Echo(1)], fault_plan=plan)
        sched.run()
        assert m.replies == 0 and m.timeouts == 1

    def test_sends_to_dead_rank_vanish(self):
        m = Master(n=2, timeout=1.0)
        plan = FaultPlan(crashes=(WorkerCrash(rank=1, at_time=0.0),))
        sched = Scheduler([m, Echo(1)], fault_plan=plan)
        sched.run()  # the post-crash pings are dropped, no error
        assert m.timeouts == 2


class TestStraggler:
    def test_straggler_scales_compute_time(self):
        m1 = Master(n=2)
        s1 = Scheduler([m1, Echo(1)])
        t_base = s1.run()
        m2 = Master(n=2)
        plan = FaultPlan(stragglers=(Straggler(rank=1, factor=10.0),))
        s2 = Scheduler([m2, Echo(1)], fault_plan=plan)
        t_slow = s2.run()
        assert m2.replies == 2  # results unchanged
        assert t_slow > t_base  # but time inflated


class TestMessageLoss:
    def test_nth_message_on_link_dropped(self):
        m = Master(n=3)
        plan = FaultPlan(losses=(MessageLoss(src=0, dst=1, nth=2),))
        sched = Scheduler([m, Echo(1)], fault_plan=plan)
        sched.run()
        assert m.replies == 2
        assert m.timeouts == 1
        assert any(f.kind == "drop" for f in sched.fault_log)

    def test_sender_still_charged_for_lost_message(self):
        m = Master(n=1, timeout=1.0)
        plan = FaultPlan(losses=(MessageLoss(src=0, dst=1, nth=1),))
        sched = Scheduler([m, Echo(1)], fault_plan=plan)
        sched.run()
        # ping (lost) + stop: both appear in the communication accounting.
        assert sched.stats.messages == 2

"""Integration tests for the P²-MDIE algorithm (Figs. 5-7)."""

import pytest

from repro.cluster.message import Tag
from repro.ilp.mdie import mdie
from repro.ilp.theory import accuracy, confusion
from repro.logic.engine import Engine
from repro.parallel.p2mdie import run_p2mdie, sequential_seconds


class TestEndToEnd:
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_learns_at_any_p(self, kb, pos, neg, modes, config, p):
        res = run_p2mdie(kb, pos, neg, modes, config, p=p, seed=3)
        assert res.uncovered == 0
        eng = Engine(kb, config.engine_budget())
        assert accuracy(eng, res.theory, pos, neg) == 100.0

    def test_consistency_preserved(self, kb, pos, neg, modes, config):
        # noise=0: learned theory must cover no negatives (global check)
        res = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3)
        eng = Engine(kb, config.engine_budget())
        rep = confusion(eng, res.theory, pos, neg)
        assert rep.fp == 0

    def test_deterministic(self, kb, pos, neg, modes, config):
        a = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=9)
        b = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=9)
        assert list(a.theory) == list(b.theory)
        assert a.seconds == b.seconds
        assert a.comm.bytes_total == b.comm.bytes_total
        assert a.epochs == b.epochs

    def test_different_seeds_may_differ(self, kb, pos, neg, modes, config):
        a = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=1)
        b = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=2)
        # not asserting inequality of theories (they may coincide), but the
        # runs must both be valid and the partitioning differs
        assert a.uncovered == 0 and b.uncovered == 0

    def test_speedup_positive(self):
        # The toy family problem sits below the parallel break-even point
        # now that the coverage kernel prunes most sequential work (tiny
        # problems are latency-bound — the paper makes the same point), so
        # the modeled speedup is asserted on a partition-worthy workload.
        from repro.datasets import make_dataset

        ds = make_dataset("krki", seed=0, scale="small")
        seq = mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=3)
        par = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=3, seed=3)
        assert sequential_seconds(seq) / par.seconds > 1.0


class TestWidth:
    def test_width_limits_message_size(self, kb, pos, neg, modes, config):
        wide = run_p2mdie(kb, pos, neg, modes, config, p=3, width=None, seed=3)
        narrow = run_p2mdie(kb, pos, neg, modes, config, p=3, width=1, seed=3)
        wide_rules = wide.comm.bytes_by_tag.get(Tag.LEARN_RULE, 0)
        narrow_rules = narrow.comm.bytes_by_tag.get(Tag.LEARN_RULE, 0)
        assert narrow_rules < wide_rules

    def test_nolimit_default_from_config(self, kb, pos, neg, modes, config):
        cfg = config.replace(pipeline_width=None)
        res = run_p2mdie(kb, pos, neg, modes, cfg, p=2, seed=3)
        assert res.uncovered == 0


class TestArtifacts:
    def test_epoch_logs(self, kb, pos, neg, modes, config):
        res = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3)
        assert res.epochs == len(res.epoch_logs)
        accepted = [c for log in res.epoch_logs for c in log.accepted]
        assert accepted == list(res.theory)
        covered = sum(log.pos_covered for log in res.epoch_logs)
        assert covered == len(pos) - res.uncovered

    def test_comm_tags_present(self, kb, pos, neg, modes, config):
        res = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3)
        tags = set(res.comm.bytes_by_tag)
        assert Tag.LOAD_EXAMPLES in tags
        assert Tag.START_PIPELINE in tags
        assert Tag.RULES in tags
        assert Tag.EVALUATE in tags
        assert Tag.STOP in tags

    def test_trace_recorded_on_request(self, kb, pos, neg, modes, config):
        res = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3, record_trace=True)
        assert res.trace
        ranks = {iv.rank for iv in res.trace}
        assert {1, 2, 3} <= ranks

    def test_clocks_below_makespan(self, kb, pos, neg, modes, config):
        res = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3)
        assert max(res.clocks) == pytest.approx(res.seconds)

    def test_max_epochs_bound(self, kb, pos, neg, modes, config):
        res = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3, max_epochs=1)
        assert res.epochs <= 1


class TestEdgeCases:
    def test_more_workers_than_examples(self, kb, pos, neg, modes, config):
        res = run_p2mdie(kb, pos[:3], neg[:3], modes, config, p=6, seed=3)
        # some workers have no data; run must still terminate cleanly
        assert res.epochs >= 1

    def test_stall_terminates(self, kb, pos, neg, modes, config):
        # impossible min_pos: no rule is ever good; stall detector must fire
        cfg = config.replace(min_pos=len(pos) + 1)
        res = run_p2mdie(kb, pos, neg, modes, cfg, p=3, seed=3, stall_limit=2)
        assert len(res.theory) == 0
        assert res.uncovered == len(pos)

    def test_p1_single_worker_pipeline(self, kb, pos, neg, modes, config):
        res = run_p2mdie(kb, pos, neg, modes, config, p=1, seed=3)
        assert res.uncovered == 0

    def test_invalid_p(self, kb, pos, neg, modes, config):
        with pytest.raises(ValueError):
            run_p2mdie(kb, pos, neg, modes, config, p=0, seed=3)

"""Rule-quality heuristics and the "good rule" acceptance test.

The paper's April configuration "evaluates rules using a heuristic that
relies on the number of positive and negative examples" and orders the
rule bag "based on their global coverage".  We provide that coverage
heuristic as the default plus the standard alternatives (compression,
Laplace, m-estimate) behind one registry so ablations can swap them.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.ilp.config import ILPConfig
from repro.logic.clause import Clause

__all__ = ["score_rule", "is_good", "HEURISTICS", "register_heuristic"]

# heuristic(pos, neg, length) -> float; higher is better.
HEURISTICS: dict[str, Callable[[int, int, int], float]] = {}


def register_heuristic(name: str):
    def deco(fn: Callable[[int, int, int], float]):
        HEURISTICS[name] = fn
        return fn

    return deco


@register_heuristic("coverage")
def _coverage(pos: int, neg: int, length: int) -> float:
    """P - N: the paper's global-coverage ordering."""
    return float(pos - neg)


@register_heuristic("compression")
def _compression(pos: int, neg: int, length: int) -> float:
    """P - N - L + 1: Progol-style compression."""
    return float(pos - neg - length + 1)


@register_heuristic("laplace")
def _laplace(pos: int, neg: int, length: int) -> float:
    """(P + 1) / (P + N + 2): Laplace-corrected precision."""
    return (pos + 1.0) / (pos + neg + 2.0)


@register_heuristic("mestimate")
def _mestimate(pos: int, neg: int, length: int, m: float = 2.0, prior: float = 0.5) -> float:
    """(P + m*prior) / (P + N + m)."""
    return (pos + m * prior) / (pos + neg + m)


@register_heuristic("precision")
def _precision(pos: int, neg: int, length: int) -> float:
    total = pos + neg
    return pos / total if total else 0.0


def score_rule(pos: int, neg: int, length: int, config: ILPConfig) -> float:
    """Score a rule under the configured heuristic (higher = better)."""
    try:
        fn = HEURISTICS[config.heuristic]
    except KeyError:
        raise ValueError(f"unknown heuristic {config.heuristic!r}") from None
    return fn(pos, neg, length)


def is_good(pos: int, neg: int, config: ILPConfig) -> bool:
    """The paper's ``is_good``: consistent (noise-bounded negative cover)
    and sufficiently complete (minimum positive cover)."""
    return pos >= config.min_pos and neg <= config.noise

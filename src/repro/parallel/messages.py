"""Task payloads exchanged by the P²-MDIE master and workers.

These are the paper's worker tasks (Fig. 6) plus the inter-stage pipeline
message (Fig. 7 line 17).  All payloads are plain picklable dataclasses;
their pickled size is what the Table 4 communication accounting charges.

Design note: per §4.1 the training data itself is *not* shipped — "we
assumed ... the data can be shared by all processors, through a
distributed file system".  :class:`LoadExamples` therefore carries only
the partition id; the simulated shared filesystem is
:class:`repro.parallel.p2mdie.SharedProblem`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ilp.bottom import BottomClause
from repro.ilp.refinement import SearchRule
from repro.logic.clause import Clause

__all__ = [
    "LoadExamples",
    "LoadData",
    "StartPipeline",
    "PipelineTask",
    "PipelineRules",
    "EvaluateRequest",
    "EvaluateResult",
    "MarkCovered",
    "GatherExamples",
    "ExamplesReport",
    "Repartition",
    "Stop",
    "RuleStats",
]


@dataclass(frozen=True)
class LoadExamples:
    """'Load your subset' notification (data comes from the shared FS)."""

    partition_id: int


@dataclass(frozen=True)
class LoadData:
    """Ship the training data itself (no shared filesystem, §4.1).

    "Obviously, if file sharing is not possible one needs to exchange
    messages containing the referred data."  This message carries one
    worker's example subset plus the full background knowledge as terms,
    so the one-time distribution cost is measured rather than assumed
    ("Example data is loaded only once, hence the transmission cost
    should be low in both approaches").
    """

    pos: tuple
    neg: tuple
    facts: tuple
    rules: tuple


@dataclass(frozen=True)
class StartPipeline:
    """Start a pipeline rooted at the receiving worker (Fig. 6)."""

    width: Optional[int]  # None = nolimit


@dataclass(frozen=True)
class PipelineTask:
    """``learn_rule'(⊥e, step, w, S)`` shipped to the next stage (Fig. 7).

    ``bottom`` is None when the originating worker had no usable seed (its
    positives were exhausted); such pipelines pass through unchanged so the
    master still receives exactly ``p`` result sets.
    """

    bottom: Optional[BottomClause]
    step: int
    width: Optional[int]
    rules: tuple[SearchRule, ...]
    origin: int  # rank that seeded this pipeline


@dataclass(frozen=True)
class PipelineRules:
    """Final rules of one pipeline, delivered to the master."""

    origin: int
    rules: tuple[SearchRule, ...]


@dataclass(frozen=True)
class EvaluateRequest:
    """Master → workers: evaluate these rules on your local subset."""

    rules: tuple[Clause, ...]


@dataclass(frozen=True)
class RuleStats:
    """One rule's local evaluation: alive-positive and negative cover."""

    pos: int
    neg: int


@dataclass(frozen=True)
class EvaluateResult:
    """Worker → master: per-rule local stats, in request order."""

    rank: int
    stats: tuple[RuleStats, ...]


@dataclass(frozen=True)
class MarkCovered:
    """Master → workers: rule accepted; retract covered positives."""

    rule: Clause


@dataclass(frozen=True)
class GatherExamples:
    """Master → workers: report your remaining examples (repartitioning).

    Part of the optional inter-epoch repartitioning extension — the
    alternative §4.1 considers and rejects "mainly because the high
    communication cost of repartitioning".  Implemented so that cost can
    be measured rather than assumed.
    """


@dataclass(frozen=True)
class ExamplesReport:
    """Worker → master: the local alive positives and all negatives."""

    rank: int
    pos: tuple
    neg: tuple


@dataclass(frozen=True)
class Repartition:
    """Master → one worker: replace your subset with these examples.

    Unlike :class:`LoadExamples` this ships the example terms themselves
    (the shared-filesystem shortcut does not apply to a mid-run reshuffle),
    so its pickled size is the repartitioning cost the paper worried about.
    """

    pos: tuple
    neg: tuple


@dataclass(frozen=True)
class Stop:
    """Master → workers: learning finished."""

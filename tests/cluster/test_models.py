"""Unit + property tests for network/cost models and message accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.costmodel import OpsCostModel, WallClockCostModel
from repro.cluster.message import Message, Tag, payload_nbytes
from repro.cluster.network import FAST_ETHERNET, GIGABIT, INFINIBAND_LIKE, NetworkModel


class TestNetworkModel:
    def test_sender_busy_time_monotone(self):
        n = FAST_ETHERNET
        assert n.sender_busy_time(1000) < n.sender_busy_time(100_000)

    def test_zero_bytes_costs_overhead(self):
        n = NetworkModel(latency_s=0.1, bandwidth_bps=1e6, send_overhead_s=0.01)
        assert n.sender_busy_time(0) == 0.01

    def test_arrival_delay_is_latency(self):
        assert FAST_ETHERNET.arrival_delay() == FAST_ETHERNET.latency_s

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bps=0)

    def test_preset_ordering(self):
        # faster fabrics have lower latency and higher bandwidth
        assert INFINIBAND_LIKE.latency_s < GIGABIT.latency_s < FAST_ETHERNET.latency_s
        assert INFINIBAND_LIKE.bandwidth_bps > GIGABIT.bandwidth_bps > FAST_ETHERNET.bandwidth_bps


class TestCostModel:
    def test_linear(self):
        cm = OpsCostModel(sec_per_op=2.0)
        assert cm.seconds_for_ops(3) == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OpsCostModel(sec_per_op=0)
        with pytest.raises(ValueError):
            WallClockCostModel(scale=-1)

    def test_wallclock_scale(self):
        cm = WallClockCostModel(scale=2.0)
        assert cm.seconds_for_ops(3) == 6.0

    @given(st.integers(0, 10**9))
    @settings(max_examples=50, deadline=None)
    def test_nonnegative(self, ops):
        assert OpsCostModel().seconds_for_ops(ops) >= 0


class TestPayloadSize:
    def test_bigger_payload_bigger_size(self):
        assert payload_nbytes(list(range(1000))) > payload_nbytes([1])

    def test_deterministic(self):
        p = {"rules": ["a", "b"], "n": 3}
        assert payload_nbytes(p) == payload_nbytes(p)

    @given(st.lists(st.integers(0, 255), max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_any_picklable(self, xs):
        assert payload_nbytes(xs) > 0


class TestMessage:
    def test_fields(self):
        m = Message(src=0, dst=1, tag=Tag.RULES, payload="x", nbytes=10, send_time=1.0, arrival_time=2.0, seq=1)
        assert m.arrival_time > m.send_time
        assert "rules" in str(m)

    def test_tags_are_distinct(self):
        tags = [getattr(Tag, a) for a in dir(Tag) if not a.startswith("_")]
        assert len(tags) == len(set(tags))

"""mpi4py port adapter (documentation + optional real-cluster backend).

The simulated :class:`~repro.cluster.process.ProcContext` API was designed
to map one-to-one onto mpi4py's lowercase (pickle-based) methods, so the
P²-MDIE master/worker code can run on a real cluster by swapping the
context object:

==========================  =========================================
simulated                    mpi4py
==========================  =========================================
``yield ctx.send(d, x, t)``  ``comm.send(x, dest=d, tag=TAGS[t])``
``yield ctx.bcast(x, t)``    loop of ``comm.send`` (or ``comm.bcast``)
``m = yield ctx.recv()``     ``comm.recv(source=ANY_SOURCE, ...)``
``yield ctx.compute(ops)``   (no-op — real CPUs charge themselves)
==========================  =========================================

This module provides :class:`MPIContext`, a drop-in context whose methods
*execute immediately* instead of being yielded; :func:`drive_with_mpi`
drives a :class:`~repro.cluster.process.SimProcess` generator against it.
It imports mpi4py lazily and raises a clear error when unavailable (as on
this offline host), so the rest of the library never depends on MPI.

Two surfaces beyond the plain 1:1 mapping make the fault-tolerance
protocol (:mod:`repro.fault`) work on a real cluster:

* **Timed receives** — ``RecvOp.timeout`` is honoured with a
  deadline-bounded ``comm.iprobe`` poll loop that resumes the generator
  with ``None`` on expiry, exactly like the sim scheduler and the local
  backend.  That is the whole surface
  :class:`~repro.fault.recovery.FTMasterMixin` needs for heartbeat
  probes and silence detection.
* **The halt tag** — MPI has no notion of "a peer exited", so
  :class:`~repro.backend.mpi.MPIBackend` releases ranks that are still
  blocked in a receive (retired crash victims, falsely-declared-dead
  workers) with a backend-level :data:`HALT_TAG` control message.  A
  context constructed with ``watch_halt=True`` raises :class:`MPIHalt`
  when one arrives; the tag id lives outside :data:`_TAG_IDS`, so halt
  messages are never visible to the generators.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.cluster.message import Message, Tag, payload_nbytes
from repro.cluster.process import BcastOp, ComputeOp, RecvOp, SendOp, SimProcess

__all__ = ["MPIContext", "MPIHalt", "HALT_TAG", "drive_with_mpi", "mpi_available"]

#: protocol tag -> MPI integer tag.  Covers *every* ``Tag`` member
#: (including the fault-tolerance ping/pong/routing tags) with a distinct
#: id, so tag-filtered probes and receives are unambiguous on a real
#: communicator — completeness is enforced by the wire registry test.
_TAG_IDS = {
    Tag.LOAD_EXAMPLES: 1,
    Tag.START_PIPELINE: 2,
    Tag.LEARN_RULE: 3,
    Tag.RULES: 4,
    Tag.EVALUATE: 5,
    Tag.RESULT: 6,
    Tag.MARK_COVERED: 7,
    Tag.STOP: 8,
    Tag.PING: 9,
    Tag.PONG: 10,
    Tag.ROUTING: 11,
}
_ID_TAGS = {v: k for k, v in _TAG_IDS.items()}

#: backend-level shutdown-barrier tag (outside ``_TAG_IDS`` — never
#: delivered to generators).  Rank 0 sends it to every rank after its own
#: generator finishes; see :class:`~repro.backend.mpi.MPIBackend`.
HALT_TAG = 90

#: iprobe poll interval bounds (seconds): start fine-grained so heartbeat
#: round-trips stay sharp, back off to keep idle waits cheap.
_POLL_MIN = 0.0005
_POLL_MAX = 0.002


class MPIHalt(Exception):
    """Rank 0 released this rank via the backend halt barrier."""


def mpi_available() -> bool:
    try:
        import mpi4py  # noqa: F401

        return True
    except ImportError:
        return False


class MPIContext:
    """Execute ProcContext-style operations on a real MPI communicator.

    ``watch_halt`` arms interception of the backend's :data:`HALT_TAG`
    (non-root ranks under :class:`~repro.backend.mpi.MPIBackend`); the
    plain adapter (``drive_with_mpi``) leaves it off and keeps the exact
    blocking ``comm.recv`` mapping documented above.
    """

    def __init__(self, comm=None, watch_halt: bool = False):
        if comm is None:
            from mpi4py import MPI  # lazy; raises ImportError offline

            comm = MPI.COMM_WORLD
        self._comm = comm
        self.rank = comm.Get_rank()
        self.n_procs = comm.Get_size()
        self.watch_halt = watch_halt

    # -- syscall constructors (same surface as ProcContext) ---------------------
    def send(self, dst: int, payload: object, tag: str) -> SendOp:
        return SendOp(dst, payload, tag)

    def bcast(self, payload: object, tag: str, dsts=None) -> BcastOp:
        if dsts is None:
            dsts = [r for r in range(self.n_procs) if r != self.rank]
        return BcastOp(tuple(dsts), payload, tag)

    def recv(
        self,
        src: Optional[int] = None,
        tag: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> RecvOp:
        return RecvOp(src, tag, timeout)

    def compute(self, ops: int, label: str = "compute") -> ComputeOp:
        return ComputeOp(int(ops), label)

    def execute(self, op):
        """Perform one syscall; returns a Message for receives."""
        if isinstance(op, SendOp):
            self._comm.send(op.payload, dest=op.dst, tag=_TAG_IDS.get(op.tag, 99))
            return None
        if isinstance(op, BcastOp):
            for dst in op.dsts:
                self._comm.send(op.payload, dest=dst, tag=_TAG_IDS.get(op.tag, 99))
            return None
        if isinstance(op, RecvOp):
            return self._recv(op)
        if isinstance(op, ComputeOp):
            return None  # real CPU time passes by itself
        raise TypeError(f"unknown syscall {op!r}")

    def _recv(self, op: RecvOp) -> Optional[Message]:
        from mpi4py import MPI  # noqa: PLC0415 - lazy, only recv needs constants

        src = MPI.ANY_SOURCE if op.src is None else op.src
        tag = MPI.ANY_TAG if op.tag is None else _TAG_IDS.get(op.tag, 99)
        status = MPI.Status()
        if op.timeout is None and not self.watch_halt:
            payload = self._comm.recv(source=src, tag=tag, status=status)
            return self._message(status, payload)
        # Timed (or halt-watched) receive: MPI has no recv-with-timeout, so
        # poll iprobe against a wall-clock deadline and resume the
        # generator with None on expiry — the same contract as the sim
        # scheduler and the local backend's pipe wait.
        deadline = None if op.timeout is None else time.perf_counter() + op.timeout
        poll = _POLL_MIN
        while True:
            if self.watch_halt and self._comm.iprobe(source=MPI.ANY_SOURCE, tag=HALT_TAG):
                raise MPIHalt()
            if self._comm.iprobe(source=src, tag=tag):
                payload = self._comm.recv(source=src, tag=tag, status=status)
                return self._message(status, payload)
            if deadline is not None and time.perf_counter() >= deadline:
                return None
            time.sleep(poll)
            poll = min(poll * 2, _POLL_MAX)

    def _message(self, status, payload) -> Message:
        if self.watch_halt and status.Get_tag() == HALT_TAG:
            # An ANY_TAG iprobe can match a halt that races the dedicated
            # halt check above; it is still a halt, not a message.
            raise MPIHalt()
        return Message(
            src=status.Get_source(),
            dst=self.rank,
            tag=_ID_TAGS.get(status.Get_tag(), str(status.Get_tag())),
            payload=payload,
            nbytes=payload_nbytes(payload),
            send_time=0.0,
            arrival_time=0.0,
            seq=0,
        )


def drive_with_mpi(proc: SimProcess, comm=None) -> None:
    """Run a SimProcess generator against a real MPI communicator.

    This is the entry point an ``mpiexec``-launched script would call; it
    is exercised only where mpi4py exists.
    """
    ctx = MPIContext(comm)
    gen = proc.run(ctx)  # SimProcess.run only uses the ctx constructors
    result = None
    try:
        while True:
            op = gen.send(result)
            result = ctx.execute(op)
    except StopIteration:
        return
